// Code transformations of the multi-criteria optimising compiler (the WCC
// stand-in, Falk et al. [2]).
//
// Each pass is a semantics-preserving rewrite of one function inside a
// program.  Profitability is judged against the target's cost model where it
// matters (strength reduction), mirroring how WCC consults its WCET/energy
// plug-ins.  The passes are deliberately conservative: a transformation that
// cannot be proven safe on the structured IR is skipped, never forced.
//
// Safety notes documented per pass; the test suite checks semantic
// preservation by differential execution against the untransformed program.
#pragma once

#include "ir/program.hpp"
#include "isa/target_model.hpp"

namespace teamplay::compiler {

/// Per-block constant propagation and folding.  Returns #instructions folded.
int constant_fold(ir::Function& fn);

/// Per-block common-subexpression elimination over pure single-def values.
/// Returns #instructions replaced by register moves.
int cse(ir::Function& fn);

/// Cost-model-guided strength reduction.  Safe cases only:
///   x*0 -> 0, x*1 -> x, x*2 -> x+x, x*2^k -> x<<k (exact in wrapping
///   arithmetic), x/1 -> x, x%1 -> 0.
/// Each rewrite is applied only when the target model prices it cheaper.
/// Returns #instructions rewritten.
int strength_reduce(ir::Function& fn, const isa::TargetModel& model);

/// Dead-code elimination: removes pure instructions whose destination is
/// never read (whole-function read set, iterated to fixpoint).
/// Returns #instructions removed.
int dce(ir::Function& fn);

/// Loop-invariant constant hoisting (LICM restricted to kMovImm): moves
/// constant materialisations whose destination has exactly one definition in
/// the function out of every enclosing loop.  Safe because a single-def
/// immediate produces the same value on every iteration; a zero-trip loop
/// merely defines registers nobody reads.  Returns #instructions hoisted.
int hoist_loop_constants(ir::Function& fn);

/// Unroll counted loops by `factor`.  Applicable when the loop has a static
/// trip count divisible by the factor, the body does not write the index
/// register, and the body carries no loop-to-loop register dependencies
/// (state must flow through memory, which the use-case kernels respect; the
/// check is conservative).  Returns #loops unrolled.
int unroll_loops(ir::Function& fn, int factor);

/// Inline call sites whose callee has at most `max_callee_instrs` static
/// instructions (negative = inline everything).  Inlining is transitive:
/// calls inside an inlined body are themselves considered (terminates
/// because the IR forbids recursion).  Returns #calls inlined.
int inline_calls(const ir::Program& program, ir::Function& fn,
                 int max_callee_instrs = -1);

}  // namespace teamplay::compiler
