// Multi-objective optimisation engines for the compiler's configuration
// search.
//
// The paper's WCC integration uses the Flower Pollination Algorithm for
// multi-objective compiler tuning (Jadhav & Falk [5]); we implement FPA as
// the default engine plus two baselines the ablation bench (A1) compares
// against: NSGA-II (the standard evolutionary multi-objective reference) and
// a weighted-sum hill climber (the "traditional" single-objective approach).
//
// All engines minimise a vector of objectives over genomes in [0,1]^d; the
// caller maps genomes onto discrete pass configurations.
#pragma once

#include <functional>
#include <vector>

#include "support/rng.hpp"

namespace teamplay::compiler {

using Genome = std::vector<double>;      ///< point in [0,1]^d
using Objectives = std::vector<double>;  ///< to minimise, all dimensions

struct Solution {
    Genome genome;
    Objectives objectives;
};

/// Evaluated configuration search: genome -> objective vector.
using EvalFn = std::function<Objectives(const Genome&)>;

/// Pareto dominance (minimisation): a dominates b.
[[nodiscard]] bool dominates(const Objectives& a, const Objectives& b);

/// Indices of the non-dominated solutions.
[[nodiscard]] std::vector<std::size_t> pareto_indices(
    const std::vector<Solution>& solutions);

/// Keep only non-dominated entries (stable order).
[[nodiscard]] std::vector<Solution> pareto_filter(
    std::vector<Solution> solutions);

/// Monte-Carlo hypervolume indicator of a front w.r.t. a reference point
/// (all objectives must be <= ref).  Larger is better.  Exact enough at
/// 20k samples for the ablation comparisons.
[[nodiscard]] double hypervolume(const std::vector<Objectives>& front,
                                 const Objectives& ref, int samples,
                                 support::Rng& rng);

/// Outcome of a search run.
struct MooRun {
    std::vector<Solution> front;  ///< non-dominated archive
    int evaluations = 0;
};

struct FpaParams {
    int population = 16;
    int iterations = 30;
    double p_switch = 0.8;     ///< global-vs-local pollination probability
    double levy_lambda = 1.5;  ///< Lévy flight exponent
    std::size_t archive_cap = 64;
};

/// Multi-objective Flower Pollination Algorithm: global pollination moves
/// flowers toward a random archive member with Lévy-distributed steps; local
/// pollination mixes two random flowers.  Non-dominated newcomers replace
/// their parent; the archive keeps the running Pareto set.
[[nodiscard]] MooRun fpa_optimise(const EvalFn& eval, int dims,
                                  const FpaParams& params, support::Rng& rng);

struct Nsga2Params {
    int population = 24;
    int generations = 25;
    double crossover_prob = 0.9;
    double mutation_prob = -1.0;  ///< default 1/dims when negative
    double eta_c = 15.0;          ///< SBX distribution index
    double eta_m = 20.0;          ///< polynomial mutation index
};

/// Standard NSGA-II (fast non-dominated sort, crowding distance, binary
/// tournament, SBX + polynomial mutation).
[[nodiscard]] MooRun nsga2_optimise(const EvalFn& eval, int dims,
                                    const Nsga2Params& params,
                                    support::Rng& rng);

struct WeightedSumParams {
    int restarts = 6;
    int iterations = 60;
    double step = 0.25;
};

/// Traditional baseline: random-restart hill climbing on a randomly weighted
/// scalarisation.  Collects the best point of each restart, Pareto-filtered.
[[nodiscard]] MooRun weighted_sum_optimise(const EvalFn& eval, int dims,
                                           const WeightedSumParams& params,
                                           support::Rng& rng);

}  // namespace teamplay::compiler
