#include "compiler/passes.hpp"

#include <bit>
#include <map>
#include <optional>
#include <set>

namespace teamplay::compiler {

namespace {

using ir::Instr;
using ir::Opcode;
using ir::Reg;
using ir::Word;

/// Compile-time evaluation mirroring the machine's wrapping semantics.
Word eval_const(Opcode op, Word a, Word b) {
    using U = std::uint64_t;
    switch (op) {
        case Opcode::kAdd: return static_cast<Word>(static_cast<U>(a) + static_cast<U>(b));
        case Opcode::kSub: return static_cast<Word>(static_cast<U>(a) - static_cast<U>(b));
        case Opcode::kMul: return static_cast<Word>(static_cast<U>(a) * static_cast<U>(b));
        case Opcode::kDiv: return b == 0 ? 0 : a / b;
        case Opcode::kRem: return b == 0 ? 0 : a % b;
        case Opcode::kAnd: return a & b;
        case Opcode::kOr: return a | b;
        case Opcode::kXor: return a ^ b;
        case Opcode::kShl:
            return static_cast<Word>(static_cast<U>(a) << (static_cast<U>(b) & 63U));
        case Opcode::kShr:
            return static_cast<Word>(static_cast<U>(a) >> (static_cast<U>(b) & 63U));
        case Opcode::kCmpEq: return a == b ? 1 : 0;
        case Opcode::kCmpNe: return a != b ? 1 : 0;
        case Opcode::kCmpLt: return a < b ? 1 : 0;
        case Opcode::kCmpLe: return a <= b ? 1 : 0;
        case Opcode::kCmpGt: return a > b ? 1 : 0;
        case Opcode::kCmpGe: return a >= b ? 1 : 0;
        case Opcode::kMin: return a < b ? a : b;
        case Opcode::kMax: return a > b ? a : b;
        default: return 0;
    }
}

std::optional<Word> eval_unop(Opcode op, Word a) {
    switch (op) {
        case Opcode::kMov: return a;
        case Opcode::kNot: return ~a;
        case Opcode::kNeg: return -a;
        case Opcode::kAbs: return a < 0 ? -a : a;
        case Opcode::kPopcnt:
            return static_cast<Word>(
                std::popcount(static_cast<std::uint64_t>(a)));
        default: return std::nullopt;
    }
}

bool is_binop(Opcode op) {
    return ir::reads_a(op) && ir::reads_b(op) && op != Opcode::kStore &&
           op != Opcode::kSelect;
}

}  // namespace

int constant_fold(ir::Function& fn) {
    int folded = 0;
    ir::visit(*fn.body, [&folded](ir::Node& node) {
        if (node.kind != ir::NodeKind::kBlock) return;
        std::map<Reg, Word> consts;  // per-block, conservatively reset
        for (auto& instr : node.instrs) {
            const auto known = [&consts](Reg r) {
                return consts.find(r) != consts.end();
            };
            std::optional<Word> value;
            switch (instr.op) {
                case Opcode::kMovImm:
                    value = instr.imm;
                    break;
                case Opcode::kSelect:
                    if (known(instr.a) && known(instr.b) && known(instr.c)) {
                        value = consts[instr.c] != 0 ? consts[instr.a]
                                                     : consts[instr.b];
                        instr = Instr{.op = Opcode::kMovImm, .dst = instr.dst,
                                      .imm = *value, .secret = instr.secret};
                        ++folded;
                    }
                    break;
                default:
                    if (is_binop(instr.op) && known(instr.a) &&
                        known(instr.b)) {
                        value = eval_const(instr.op, consts[instr.a],
                                           consts[instr.b]);
                        instr = Instr{.op = Opcode::kMovImm, .dst = instr.dst,
                                      .imm = *value, .secret = instr.secret};
                        ++folded;
                    } else if (ir::reads_a(instr.op) && !ir::reads_b(instr.op) &&
                               !ir::reads_c(instr.op) && known(instr.a)) {
                        const auto v = eval_unop(instr.op, consts[instr.a]);
                        if (v) {
                            value = *v;
                            const bool was_mov = instr.op == Opcode::kMov;
                            instr = Instr{.op = Opcode::kMovImm,
                                          .dst = instr.dst, .imm = *value,
                                          .secret = instr.secret};
                            if (!was_mov) ++folded;
                        }
                    }
                    break;
            }
            if (ir::writes_dst(instr.op) && instr.dst != ir::kNoReg) {
                if (value) {
                    consts[instr.dst] = *value;
                } else {
                    consts.erase(instr.dst);
                }
            }
        }
    });
    return folded;
}

int cse(ir::Function& fn) {
    int replaced = 0;
    ir::visit(*fn.body, [&replaced](ir::Node& node) {
        if (node.kind != ir::NodeKind::kBlock) return;

        // Registers defined more than once in the block cannot take part
        // (their value is position-dependent).
        std::map<Reg, int> def_count;
        for (const auto& instr : node.instrs)
            if (ir::writes_dst(instr.op) && instr.dst != ir::kNoReg)
                ++def_count[instr.dst];
        const auto single_def = [&def_count](Reg r) {
            const auto it = def_count.find(r);
            return it == def_count.end() || it->second == 1;
        };

        struct Key {
            Opcode op;
            Reg a, b, c;
            Word imm;
            auto operator<=>(const Key&) const = default;
        };
        std::map<Key, Reg> available;
        for (auto& instr : node.instrs) {
            if (!ir::is_pure(instr.op) || !ir::writes_dst(instr.op) ||
                instr.op == Opcode::kMov || instr.op == Opcode::kNop ||
                instr.secret)
                continue;
            if ((ir::reads_a(instr.op) && !single_def(instr.a)) ||
                (ir::reads_b(instr.op) && !single_def(instr.b)) ||
                (ir::reads_c(instr.op) && !single_def(instr.c)) ||
                !single_def(instr.dst))
                continue;
            const Key key{instr.op, ir::reads_a(instr.op) ? instr.a : ir::kNoReg,
                          ir::reads_b(instr.op) ? instr.b : ir::kNoReg,
                          ir::reads_c(instr.op) ? instr.c : ir::kNoReg,
                          instr.op == Opcode::kMovImm ? instr.imm : 0};
            const auto it = available.find(key);
            if (it != available.end() && it->second != instr.dst) {
                instr = Instr{.op = Opcode::kMov, .dst = instr.dst,
                              .a = it->second};
                ++replaced;
            } else {
                available.emplace(key, instr.dst);
            }
        }
    });
    return replaced;
}

int strength_reduce(ir::Function& fn, const isa::TargetModel& model) {
    int rewritten = 0;
    const double mul_cost = model.energy_of(isa::InstrClass::kMul);
    const double alu_cost = model.energy_of(isa::InstrClass::kAlu);
    const double div_cycles = model.cycles_of(isa::InstrClass::kDiv);
    const double alu_cycles = model.cycles_of(isa::InstrClass::kAlu);

    ir::visit(*fn.body, [&](ir::Node& node) {
        if (node.kind != ir::NodeKind::kBlock) return;
        std::map<Reg, Word> consts;
        for (auto& instr : node.instrs) {
            // Track constants for operand lookup.
            if (instr.op == Opcode::kMovImm) consts[instr.dst] = instr.imm;

            const auto const_of = [&consts](Reg r) -> std::optional<Word> {
                const auto it = consts.find(r);
                if (it == consts.end()) return std::nullopt;
                return it->second;
            };

            if (instr.op == Opcode::kMul) {
                const auto cb = const_of(instr.b);
                const auto ca = const_of(instr.a);
                const Reg var = cb ? instr.a : instr.b;
                const std::optional<Word> k = cb ? cb : ca;
                if (k) {
                    if (*k == 0) {
                        instr = Instr{.op = Opcode::kMovImm, .dst = instr.dst,
                                      .imm = 0};
                        ++rewritten;
                    } else if (*k == 1) {
                        instr = Instr{.op = Opcode::kMov, .dst = instr.dst,
                                      .a = var};
                        ++rewritten;
                    } else if (*k == 2 && mul_cost > alu_cost) {
                        instr = Instr{.op = Opcode::kAdd, .dst = instr.dst,
                                      .a = var, .b = var};
                        ++rewritten;
                    }
                }
            } else if (instr.op == Opcode::kDiv) {
                const auto cb = const_of(instr.b);
                if (cb && *cb == 1 && div_cycles > alu_cycles) {
                    instr = Instr{.op = Opcode::kMov, .dst = instr.dst,
                                  .a = instr.a};
                    ++rewritten;
                }
            } else if (instr.op == Opcode::kRem) {
                const auto cb = const_of(instr.b);
                if (cb && *cb == 1) {
                    instr = Instr{.op = Opcode::kMovImm, .dst = instr.dst,
                                  .imm = 0};
                    ++rewritten;
                }
            }

            if (ir::writes_dst(instr.op) && instr.dst != ir::kNoReg &&
                instr.op != Opcode::kMovImm)
                consts.erase(instr.dst);
        }
    });
    return rewritten;
}

int dce(ir::Function& fn) {
    int removed_total = 0;
    for (;;) {
        // Whole-function read set.
        std::set<Reg> read;
        if (fn.ret_reg != ir::kNoReg) read.insert(fn.ret_reg);
        ir::visit(*fn.body, [&read](const ir::Node& node) {
            switch (node.kind) {
                case ir::NodeKind::kBlock:
                    for (const auto& instr : node.instrs) {
                        if (ir::reads_a(instr.op)) read.insert(instr.a);
                        if (ir::reads_b(instr.op)) read.insert(instr.b);
                        if (ir::reads_c(instr.op)) read.insert(instr.c);
                    }
                    break;
                case ir::NodeKind::kIf:
                    read.insert(node.cond);
                    break;
                case ir::NodeKind::kLoop:
                    if (node.trip_reg != ir::kNoReg)
                        read.insert(node.trip_reg);
                    break;
                case ir::NodeKind::kCall:
                    for (const Reg arg : node.args) read.insert(arg);
                    break;
                default:
                    break;
            }
        });

        int removed = 0;
        ir::visit(*fn.body, [&read, &removed](ir::Node& node) {
            if (node.kind != ir::NodeKind::kBlock) return;
            auto& instrs = node.instrs;
            const auto is_dead = [&read](const Instr& instr) {
                return ir::is_pure(instr.op) && ir::writes_dst(instr.op) &&
                       instr.dst != ir::kNoReg && !read.contains(instr.dst);
            };
            const auto before = instrs.size();
            std::erase_if(instrs, is_dead);
            removed += static_cast<int>(before - instrs.size());
        });
        removed_total += removed;
        if (removed == 0) break;
    }
    return removed_total;
}

namespace {

/// Def counts over a whole function (for single-definition checks).
std::map<Reg, int> def_counts(const ir::Function& fn) {
    std::map<Reg, int> counts;
    ir::visit(*fn.body, [&counts](const ir::Node& node) {
        switch (node.kind) {
            case ir::NodeKind::kBlock:
                for (const auto& instr : node.instrs)
                    if (ir::writes_dst(instr.op) && instr.dst != ir::kNoReg)
                        ++counts[instr.dst];
                break;
            case ir::NodeKind::kLoop:
                if (node.index_reg != ir::kNoReg) ++counts[node.index_reg];
                break;
            case ir::NodeKind::kCall:
                if (node.ret != ir::kNoReg) ++counts[node.ret];
                break;
            default:
                break;
        }
    });
    return counts;
}

/// Pull hoistable kMovImm instructions out of `node` (recursively), given
/// the single-def register set.  Collected instructions are appended to
/// `hoisted` in program order.
void extract_constants(ir::Node& node, const std::map<Reg, int>& defs,
                       std::vector<Instr>& hoisted) {
    ir::visit(node, [&](ir::Node& n) {
        if (n.kind != ir::NodeKind::kBlock) return;
        auto& instrs = n.instrs;
        auto keep = instrs.begin();
        for (auto it = instrs.begin(); it != instrs.end(); ++it) {
            const bool hoistable =
                it->op == Opcode::kMovImm && it->dst != ir::kNoReg &&
                !it->secret && defs.count(it->dst) != 0 &&
                defs.at(it->dst) == 1;
            if (hoistable) {
                hoisted.push_back(*it);
            } else {
                *keep++ = *it;
            }
        }
        instrs.erase(keep, instrs.end());
    });
}

/// Recursive LICM over a region: loops found under `node` get their
/// single-def constants moved into a prelude block inserted before them in
/// the surrounding Seq.
int hoist_in_children(ir::Node& node, const std::map<Reg, int>& defs) {
    int hoisted_total = 0;
    if (node.kind == ir::NodeKind::kSeq) {
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            ir::Node& child = *node.children[i];
            if (child.kind == ir::NodeKind::kLoop) {
                std::vector<Instr> hoisted;
                extract_constants(*child.body, defs, hoisted);
                hoisted_total += static_cast<int>(hoisted.size());
                if (!hoisted.empty()) {
                    node.children.insert(
                        node.children.begin() +
                            static_cast<std::ptrdiff_t>(i),
                        ir::Node::block(std::move(hoisted)));
                    ++i;  // skip the prelude we just inserted
                }
            } else {
                hoisted_total += hoist_in_children(child, defs);
            }
        }
    } else {
        if (node.then_branch)
            hoisted_total += hoist_in_children(*node.then_branch, defs);
        if (node.else_branch)
            hoisted_total += hoist_in_children(*node.else_branch, defs);
        if (node.body) hoisted_total += hoist_in_children(*node.body, defs);
    }
    return hoisted_total;
}

/// The only genuine unrolling hazard on this IR: a body that writes the
/// loop's own index register (the replicas' remapped index chain would be
/// clobbered).  Loop-carried *data* registers are safe: replicating the
/// body f times executes exactly the same iteration sequence, so register
/// and memory state flow identically to the rolled loop.
bool body_writes_index(const ir::Node& body, Reg index_reg) {
    if (index_reg == ir::kNoReg) return false;
    bool writes = false;
    ir::visit(body, [&](const ir::Node& node) {
        switch (node.kind) {
            case ir::NodeKind::kBlock:
                for (const auto& instr : node.instrs)
                    if (ir::writes_dst(instr.op) && instr.dst == index_reg)
                        writes = true;
                break;
            case ir::NodeKind::kLoop:
                if (node.index_reg == index_reg) writes = true;
                break;
            case ir::NodeKind::kCall:
                if (node.ret == index_reg) writes = true;
                break;
            default:
                break;
        }
    });
    return writes;
}

/// Remap reads of `from` to `to` throughout a cloned replica body.
void remap_reads(ir::Node& node, Reg from, Reg to) {
    ir::visit(node, [from, to](ir::Node& n) {
        switch (n.kind) {
            case ir::NodeKind::kBlock:
                for (auto& instr : n.instrs) {
                    if (ir::reads_a(instr.op) && instr.a == from)
                        instr.a = to;
                    if (ir::reads_b(instr.op) && instr.b == from)
                        instr.b = to;
                    if (ir::reads_c(instr.op) && instr.c == from)
                        instr.c = to;
                }
                break;
            case ir::NodeKind::kIf:
                if (n.cond == from) n.cond = to;
                break;
            case ir::NodeKind::kLoop:
                if (n.trip_reg == from) n.trip_reg = to;
                break;
            case ir::NodeKind::kCall:
                for (auto& arg : n.args)
                    if (arg == from) arg = to;
                break;
            default:
                break;
        }
    });
}

}  // namespace

int hoist_loop_constants(ir::Function& fn) {
    const auto defs = def_counts(fn);
    return hoist_in_children(*fn.body, defs);
}

int unroll_loops(ir::Function& fn, int factor) {
    if (factor < 2) return 0;
    int unrolled = 0;
    int next_reg = fn.reg_count;

    ir::visit(*fn.body, [&](ir::Node& node) {
        if (node.kind != ir::NodeKind::kLoop) return;
        if (node.trip_reg != ir::kNoReg) return;  // dynamic trip: skip
        if (node.trip <= 0 || node.trip % factor != 0) return;
        // Innermost loops only: unrolling an outer loop would replicate the
        // nest and explode code size for little overhead saved.
        bool has_inner_loop = false;
        ir::visit(*node.body, [&has_inner_loop](const ir::Node& inner) {
            if (inner.kind == ir::NodeKind::kLoop) has_inner_loop = true;
        });
        if (has_inner_loop) return;
        if (body_writes_index(*node.body, node.index_reg)) return;

        // One stride constant per unrolled iteration, then chained index
        // increments: idx_k = idx_{k-1} + stride.  Cost per unrolled
        // iteration: 1 move + (factor-1) adds, against (factor-1) saved
        // loop-overhead charges.
        std::vector<ir::NodePtr> replicas;
        replicas.reserve(static_cast<std::size_t>(factor) + 1);
        const Reg stride_reg = next_reg++;
        if (node.index_reg != ir::kNoReg) {
            std::vector<Instr> prelude;
            prelude.push_back(Instr{.op = Opcode::kMovImm, .dst = stride_reg,
                                    .imm = node.stride});
            replicas.push_back(ir::Node::block(std::move(prelude)));
        }
        Reg prev_index = node.index_reg;
        for (int k = 0; k < factor; ++k) {
            auto replica = node.body->clone();
            if (k > 0 && node.index_reg != ir::kNoReg) {
                const Reg idx_k = next_reg++;
                remap_reads(*replica, node.index_reg, idx_k);
                std::vector<Instr> step;
                step.push_back(Instr{.op = Opcode::kAdd, .dst = idx_k,
                                     .a = prev_index, .b = stride_reg});
                std::vector<ir::NodePtr> seq;
                seq.push_back(ir::Node::block(std::move(step)));
                seq.push_back(std::move(replica));
                replica = ir::Node::seq(std::move(seq));
                prev_index = idx_k;
            }
            replicas.push_back(std::move(replica));
        }
        node.body = ir::Node::seq(std::move(replicas));
        node.trip /= factor;
        node.bound = node.trip;
        node.stride *= factor;
        ++unrolled;
    });
    fn.reg_count = next_reg;
    return unrolled;
}

namespace {

/// Offset every register reference in a cloned callee body by `base`.
void offset_regs(ir::Node& node, int base) {
    ir::visit(node, [base](ir::Node& n) {
        const auto shift = [base](Reg& r) {
            if (r != ir::kNoReg) r += base;
        };
        switch (n.kind) {
            case ir::NodeKind::kBlock:
                for (auto& instr : n.instrs) {
                    if (ir::writes_dst(instr.op)) shift(instr.dst);
                    if (ir::reads_a(instr.op)) shift(instr.a);
                    if (ir::reads_b(instr.op)) shift(instr.b);
                    if (ir::reads_c(instr.op)) shift(instr.c);
                }
                break;
            case ir::NodeKind::kIf:
                shift(n.cond);
                break;
            case ir::NodeKind::kLoop:
                shift(n.trip_reg);
                shift(n.index_reg);
                break;
            case ir::NodeKind::kCall:
                for (auto& arg : n.args) shift(arg);
                shift(n.ret);
                break;
            default:
                break;
        }
    });
}

}  // namespace

int inline_calls(const ir::Program& program, ir::Function& fn,
                 int max_callee_instrs) {
    int inlined = 0;
    ir::visit(*fn.body, [&](ir::Node& node) {
        if (node.kind != ir::NodeKind::kCall) return;
        const ir::Function* callee = program.find(node.callee);
        if (callee == nullptr || !callee->body) return;
        if (max_callee_instrs >= 0) {
            int instrs = 0;
            ir::for_each_instr(*callee->body,
                               [&instrs](const Instr&) { ++instrs; });
            if (instrs > max_callee_instrs) return;
        }

        const int base = fn.reg_count;
        auto body = callee->body->clone();
        offset_regs(*body, base);

        std::vector<Instr> arg_moves;
        for (std::size_t i = 0; i < node.args.size(); ++i)
            arg_moves.push_back(Instr{.op = Opcode::kMov,
                                      .dst = static_cast<Reg>(base) +
                                             static_cast<Reg>(i),
                                      .a = node.args[i]});
        std::vector<ir::NodePtr> seq;
        if (!arg_moves.empty())
            seq.push_back(ir::Node::block(std::move(arg_moves)));
        seq.push_back(std::move(body));
        if (node.ret != ir::kNoReg && callee->ret_reg != ir::kNoReg) {
            std::vector<Instr> ret_move;
            ret_move.push_back(Instr{.op = Opcode::kMov, .dst = node.ret,
                                     .a = callee->ret_reg + base});
            seq.push_back(ir::Node::block(std::move(ret_move)));
        }

        fn.reg_count += callee->reg_count;
        node.kind = ir::NodeKind::kSeq;
        node.children = std::move(seq);
        node.callee.clear();
        node.args.clear();
        node.ret = ir::kNoReg;
        ++inlined;
    });
    return inlined;
}

}  // namespace teamplay::compiler
