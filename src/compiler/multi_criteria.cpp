#include "compiler/multi_criteria.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "energy/analyser.hpp"
#include "security/taint.hpp"
#include "security/transforms.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "wcet/analyser.hpp"

namespace teamplay::compiler {

std::string_view security_level_name(SecurityLevel level) {
    switch (level) {
        case SecurityLevel::kNone: return "none";
        case SecurityLevel::kBalance: return "balance";
        case SecurityLevel::kLadder: return "ladder";
    }
    return "?";
}

std::string PassConfig::label() const {
    std::ostringstream os;
    os << "u" << unroll_factor << (inline_calls_pass ? "+inl" : "")
       << (fold ? "+fold" : "") << (cse_pass ? "+cse" : "")
       << (strength ? "+sr" : "") << (licm ? "+licm" : "")
       << (dce_pass ? "+dce" : "") << "/sec="
       << security_level_name(security) << "/opp" << opp_index;
    return os.str();
}

MultiCriteriaCompiler::MultiCriteriaCompiler(const ir::Program& source,
                                             const platform::Core& core,
                                             sim::SimOptions sim)
    : source_(&source), core_(&core), sim_(std::move(sim)) {}

PassConfig MultiCriteriaCompiler::traditional_config() const {
    PassConfig config;
    // A solid -O2-style scalar baseline (folding, CSE, strength reduction,
    // LICM, DCE) without the WCET/energy-directed knobs (unrolling tuned by
    // the analysers, inlining, security level, DVFS selection) — the
    // "traditional toolchain" the paper compares against.
    config.fold = true;
    config.cse_pass = true;
    config.strength = true;
    config.licm = true;
    config.dce_pass = true;
    config.inline_calls_pass = false;
    // No unrolling or inlining: embedded baselines ship -Os-style builds
    // (code size and analysability first), which is exactly the flow the
    // paper's industrial partners used before TeamPlay.
    config.unroll_factor = 1;
    config.security = SecurityLevel::kNone;
    config.opp_index = core_->max_opp();  // race-to-idle default
    return config;
}

TaskVersion MultiCriteriaCompiler::compile(const std::string& function,
                                           const PassConfig& config) const {
    // Clone and transform.  Passes run in a fixed order: inline first (so
    // later passes see the whole body), scalar cleanups, unrolling, then the
    // security countermeasure, and DCE last to sweep dead values.
    auto transformed = std::make_shared<ir::Program>(*source_);
    ir::Function* fn = transformed->find(function);
    if (fn == nullptr)
        throw std::invalid_argument("compile: undefined function '" +
                                    function + "'");

    if (config.inline_calls_pass) inline_calls(*transformed, *fn);
    // Scalar cleanups run whole-program (callees too), like any real
    // compiler; the analyser-driven knobs (inlining above, unrolling below,
    // security, DVFS) apply to the task entry.
    for (auto& [name, function] : transformed->functions) {
        if (config.fold) constant_fold(function);
        if (config.strength) strength_reduce(function, core_->model);
        if (config.cse_pass) cse(function);
        if (config.licm) hoist_loop_constants(function);
        if (config.dce_pass && name != fn->name) dce(function);
    }
    if (config.unroll_factor > 1) unroll_loops(*fn, config.unroll_factor);
    switch (config.security) {
        case SecurityLevel::kBalance:
            security::balance_secret_branches(*transformed, *fn);
            break;
        case SecurityLevel::kLadder:
            security::ladderise(*transformed, *fn);
            break;
        case SecurityLevel::kNone:
            break;
    }
    if (config.dce_pass) dce(*fn);

    TaskVersion version;
    version.config = config;
    version.program = transformed;
    ir::for_each_instr(*fn->body, [&version](const ir::Instr&) {
        ++version.static_instrs;
    });

    const auto taint = security::analyze_taint(*transformed, *fn);
    version.leakage = taint.leakage_proxy();

    if (core_->model.predictable) {
        const wcet::Analyser wcet_analyser(*transformed);
        const auto wcet = wcet_analyser.analyse(function, *core_,
                                                config.opp_index);
        const energy::Analyser energy_analyser(*transformed);
        const auto energy = energy_analyser.analyse(function, *core_,
                                                    config.opp_index);
        version.analysable = wcet.analysable && energy.analysable;
        version.wcet_s = wcet.time_s;
        version.wcec_j = energy.wcec_j;
        version.time_s = wcet.time_s;
        version.energy_j = energy.wcec_j;
        version.energy_dynamic_j = energy.wce_dynamic_j;
    } else {
        // Complex core: representative cost measured over a few simulator
        // runs (the in-compiler equivalent of a quick profiling pass).
        constexpr int kRuns = 3;
        double time_acc = 0.0;
        double energy_acc = 0.0;
        double dynamic_acc = 0.0;
        const ir::Function* entry = transformed->find(function);
        const std::vector<ir::Word> args(
            static_cast<std::size_t>(entry->param_count), 0);
        // Candidate programs are throwaway, so compile the trace directly
        // (no shared-cache churn) and hand it to each per-run machine.
        std::shared_ptr<const sim::CompiledTrace> trace;
        if (sim_.backend == sim::SimBackend::kTrace)
            trace = sim::TraceCompiler::compile(*transformed, function,
                                                core_->model);
        for (int r = 0; r < kRuns; ++r) {
            sim::Machine machine(*transformed, *core_, config.opp_index,
                                 /*seed=*/1000 + static_cast<unsigned>(r),
                                 sim::SimOptions{sim_.backend, nullptr});
            machine.attach_trace(function, trace);
            const auto run = machine.run(function, args);
            time_acc += run.time_s;
            energy_acc += run.energy_j();
            dynamic_acc += run.dynamic_energy_j;
        }
        version.analysable = false;
        version.time_s = time_acc / kRuns;
        version.energy_j = energy_acc / kRuns;
        version.energy_dynamic_j = dynamic_acc / kRuns;
    }
    return version;
}

PassConfig MultiCriteriaCompiler::decode(const Genome& genome,
                                         bool explore_security) const {
    const auto pick = [&genome](std::size_t i, int buckets) {
        const double g = i < genome.size() ? std::clamp(genome[i], 0.0, 1.0)
                                           : 0.0;
        const int bucket = std::min(static_cast<int>(g * buckets),
                                    buckets - 1);
        return bucket;
    };
    PassConfig config;
    static constexpr int kUnrollChoices[] = {1, 2, 4, 8};
    config.unroll_factor = kUnrollChoices[pick(0, 4)];
    config.inline_calls_pass = pick(1, 2) == 1;
    config.cse_pass = pick(2, 2) == 1;
    config.strength = pick(3, 2) == 1;
    config.fold = pick(4, 2) == 1;
    config.security =
        explore_security ? static_cast<SecurityLevel>(pick(5, 3))
                         : SecurityLevel::kNone;
    config.opp_index = static_cast<std::size_t>(
        pick(6, static_cast<int>(core_->opps.size())));
    config.licm = pick(7, 2) == 1;
    config.dce_pass = true;
    return config;
}

Objectives MultiCriteriaCompiler::evaluate(const std::string& function,
                                           const PassConfig& config) const {
    const TaskVersion version = compile(function, config);
    return {version.time_s, version.energy_j, version.leakage};
}

std::vector<TaskVersion> MultiCriteriaCompiler::optimise(
    const std::string& function, const Options& options) const {
    support::Rng rng(options.seed);
    const EvalFn eval = [this, &function, &options](const Genome& genome) {
        return evaluate(function, decode(genome, options.explore_security));
    };

    MooRun run;
    switch (options.engine) {
        case Engine::kFpa: {
            FpaParams params;
            params.population = options.population;
            params.iterations = options.iterations;
            run = fpa_optimise(eval, kGenomeDims, params, rng);
            break;
        }
        case Engine::kNsga2: {
            Nsga2Params params;
            params.population = options.population;
            params.generations = options.iterations;
            run = nsga2_optimise(eval, kGenomeDims, params, rng);
            break;
        }
        case Engine::kWeightedSum: {
            WeightedSumParams params;
            params.restarts = std::max(1, options.population / 2);
            params.iterations = options.iterations * 4;
            run = weighted_sum_optimise(eval, kGenomeDims, params, rng);
            break;
        }
    }

    // Materialise versions from the front plus the traditional baseline.
    std::vector<TaskVersion> versions;
    versions.reserve(run.front.size() + 1);
    for (const auto& solution : run.front)
        versions.push_back(compile(
            function, decode(solution.genome, options.explore_security)));
    versions.push_back(compile(function, traditional_config()));

    // Non-dominated filter over the materialised set (the baseline may be
    // dominated; keep it only if it survives).
    std::vector<Solution> as_solutions;
    as_solutions.reserve(versions.size());
    for (const auto& version : versions)
        as_solutions.push_back(Solution{
            {}, {version.time_s, version.energy_j, version.leakage}});
    const auto keep = pareto_indices(as_solutions);
    std::vector<TaskVersion> front;
    front.reserve(keep.size());
    for (const auto i : keep) front.push_back(std::move(versions[i]));

    // Deduplicate identical objective vectors (different genomes can decode
    // to the same config) and cap the version count.
    std::sort(front.begin(), front.end(),
              [](const TaskVersion& a, const TaskVersion& b) {
                  return a.time_s < b.time_s;
              });
    front.erase(std::unique(front.begin(), front.end(),
                            [](const TaskVersion& a, const TaskVersion& b) {
                                return a.time_s == b.time_s &&
                                       a.energy_j == b.energy_j &&
                                       a.leakage == b.leakage;
                            }),
                front.end());
    if (front.size() > options.max_versions) {
        // Thin uniformly, always keeping the fastest and the most frugal.
        std::vector<TaskVersion> thinned;
        const double step = static_cast<double>(front.size() - 1) /
                            static_cast<double>(options.max_versions - 1);
        for (std::size_t k = 0; k < options.max_versions; ++k)
            thinned.push_back(
                front[static_cast<std::size_t>(std::round(step * k))]);
        front = std::move(thinned);
    }
    return front;
}

}  // namespace teamplay::compiler
