#include "compiler/moo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace teamplay::compiler {

bool dominates(const Objectives& a, const Objectives& b) {
    bool strictly_better = false;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        if (a[i] > b[i]) return false;
        if (a[i] < b[i]) strictly_better = true;
    }
    return strictly_better;
}

std::vector<std::size_t> pareto_indices(
    const std::vector<Solution>& solutions) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < solutions.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < solutions.size() && !dominated; ++j) {
            if (i != j &&
                dominates(solutions[j].objectives, solutions[i].objectives))
                dominated = true;
        }
        if (!dominated) front.push_back(i);
    }
    return front;
}

std::vector<Solution> pareto_filter(std::vector<Solution> solutions) {
    const auto keep = pareto_indices(solutions);
    std::vector<Solution> result;
    result.reserve(keep.size());
    for (const std::size_t i : keep) result.push_back(std::move(solutions[i]));
    return result;
}

double hypervolume(const std::vector<Objectives>& front, const Objectives& ref,
                   int samples, support::Rng& rng) {
    if (front.empty() || ref.empty() || samples <= 0) return 0.0;
    const std::size_t dims = ref.size();

    // Sampling box: [ideal, ref] where ideal is the componentwise minimum.
    Objectives ideal = front.front();
    for (const auto& point : front)
        for (std::size_t d = 0; d < dims; ++d)
            ideal[d] = std::min(ideal[d], point[d]);
    double box_volume = 1.0;
    for (std::size_t d = 0; d < dims; ++d) {
        if (ref[d] <= ideal[d]) return 0.0;
        box_volume *= ref[d] - ideal[d];
    }

    int hits = 0;
    Objectives sample(dims);
    for (int s = 0; s < samples; ++s) {
        for (std::size_t d = 0; d < dims; ++d)
            sample[d] = rng.uniform(ideal[d], ref[d]);
        for (const auto& point : front) {
            bool dominated = true;
            for (std::size_t d = 0; d < dims; ++d)
                if (point[d] > sample[d]) {
                    dominated = false;
                    break;
                }
            if (dominated) {
                ++hits;
                break;
            }
        }
    }
    return box_volume * static_cast<double>(hits) /
           static_cast<double>(samples);
}

namespace {

void clamp01(Genome& genome) {
    for (double& g : genome) g = std::clamp(g, 0.0, 1.0);
}

/// Insert into a bounded Pareto archive; drops dominated members.  When the
/// archive overflows, the entry closest to its neighbours (crowding proxy:
/// objective-space L1 distance to nearest member) is evicted.
void archive_insert(std::vector<Solution>& archive, Solution candidate,
                    std::size_t cap) {
    for (const auto& member : archive)
        if (dominates(member.objectives, candidate.objectives) ||
            member.objectives == candidate.objectives)
            return;
    std::erase_if(archive, [&candidate](const Solution& member) {
        return dominates(candidate.objectives, member.objectives);
    });
    archive.push_back(std::move(candidate));
    if (archive.size() <= cap) return;

    // Evict the most crowded member.
    std::size_t evict = 0;
    double min_dist = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < archive.size(); ++i) {
        double nearest = std::numeric_limits<double>::max();
        for (std::size_t j = 0; j < archive.size(); ++j) {
            if (i == j) continue;
            double dist = 0.0;
            for (std::size_t d = 0; d < archive[i].objectives.size(); ++d)
                dist += std::abs(archive[i].objectives[d] -
                                 archive[j].objectives[d]);
            nearest = std::min(nearest, dist);
        }
        if (nearest < min_dist) {
            min_dist = nearest;
            evict = i;
        }
    }
    archive.erase(archive.begin() + static_cast<std::ptrdiff_t>(evict));
}

/// Mantegna's algorithm for Lévy-stable step lengths.
double levy_step(double lambda, support::Rng& rng) {
    const double sigma = std::pow(
        std::tgamma(1.0 + lambda) * std::sin(std::numbers::pi * lambda / 2.0) /
            (std::tgamma((1.0 + lambda) / 2.0) * lambda *
             std::pow(2.0, (lambda - 1.0) / 2.0)),
        1.0 / lambda);
    const double u = rng.gaussian(0.0, sigma);
    const double v = std::abs(rng.gaussian());
    if (v < 1e-12) return 0.0;
    return u / std::pow(v, 1.0 / lambda);
}

}  // namespace

MooRun fpa_optimise(const EvalFn& eval, int dims, const FpaParams& params,
                    support::Rng& rng) {
    MooRun run;
    std::vector<Solution> population;
    population.reserve(static_cast<std::size_t>(params.population));
    for (int i = 0; i < params.population; ++i) {
        Genome genome(static_cast<std::size_t>(dims));
        for (double& g : genome) g = rng.uniform();
        Objectives obj = eval(genome);
        ++run.evaluations;
        Solution solution{std::move(genome), std::move(obj)};
        archive_insert(run.front, solution, params.archive_cap);
        population.push_back(std::move(solution));
    }

    for (int iter = 0; iter < params.iterations; ++iter) {
        for (auto& flower : population) {
            Genome candidate = flower.genome;
            if (rng.chance(params.p_switch) && !run.front.empty()) {
                // Global pollination: Lévy flight toward an archive member.
                const auto& guide =
                    run.front[rng.below(run.front.size())].genome;
                for (std::size_t d = 0; d < candidate.size(); ++d) {
                    const double step = 0.1 * levy_step(params.levy_lambda, rng);
                    candidate[d] += step * (guide[d] - candidate[d]);
                }
            } else {
                // Local pollination: mix two random flowers.
                const auto& a =
                    population[rng.below(population.size())].genome;
                const auto& b =
                    population[rng.below(population.size())].genome;
                const double epsilon = rng.uniform();
                for (std::size_t d = 0; d < candidate.size(); ++d)
                    candidate[d] += epsilon * (a[d] - b[d]);
            }
            clamp01(candidate);
            Objectives obj = eval(candidate);
            ++run.evaluations;
            Solution offspring{std::move(candidate), std::move(obj)};
            archive_insert(run.front, offspring, params.archive_cap);
            // Replace the parent when the offspring is at least as good.
            if (dominates(offspring.objectives, flower.objectives) ||
                (!dominates(flower.objectives, offspring.objectives) &&
                 rng.chance(0.5)))
                flower = std::move(offspring);
        }
    }
    run.front = pareto_filter(std::move(run.front));
    return run;
}

namespace {

/// Fast non-dominated sort: returns front index per solution (0 = best).
std::vector<int> non_dominated_sort(const std::vector<Solution>& pop) {
    const std::size_t n = pop.size();
    std::vector<std::vector<std::size_t>> dominated_by(n);
    std::vector<int> domination_count(n, 0);
    std::vector<int> rank(n, 0);
    std::vector<std::size_t> current;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            if (dominates(pop[i].objectives, pop[j].objectives))
                dominated_by[i].push_back(j);
            else if (dominates(pop[j].objectives, pop[i].objectives))
                ++domination_count[i];
        }
        if (domination_count[i] == 0) {
            rank[i] = 0;
            current.push_back(i);
        }
    }
    int front = 0;
    while (!current.empty()) {
        std::vector<std::size_t> next;
        for (const std::size_t i : current) {
            for (const std::size_t j : dominated_by[i]) {
                if (--domination_count[j] == 0) {
                    rank[j] = front + 1;
                    next.push_back(j);
                }
            }
        }
        ++front;
        current = std::move(next);
    }
    return rank;
}

/// Crowding distance within one front (indices into pop).
std::vector<double> crowding(const std::vector<Solution>& pop,
                             const std::vector<std::size_t>& front) {
    std::vector<double> distance(pop.size(), 0.0);
    if (front.empty()) return distance;
    const std::size_t m = pop[front[0]].objectives.size();
    for (std::size_t obj = 0; obj < m; ++obj) {
        std::vector<std::size_t> order = front;
        std::sort(order.begin(), order.end(),
                  [&pop, obj](std::size_t a, std::size_t b) {
                      return pop[a].objectives[obj] < pop[b].objectives[obj];
                  });
        const double lo = pop[order.front()].objectives[obj];
        const double hi = pop[order.back()].objectives[obj];
        distance[order.front()] = std::numeric_limits<double>::infinity();
        distance[order.back()] = std::numeric_limits<double>::infinity();
        if (hi <= lo) continue;
        for (std::size_t k = 1; k + 1 < order.size(); ++k)
            distance[order[k]] += (pop[order[k + 1]].objectives[obj] -
                                   pop[order[k - 1]].objectives[obj]) /
                                  (hi - lo);
    }
    return distance;
}

}  // namespace

MooRun nsga2_optimise(const EvalFn& eval, int dims, const Nsga2Params& params,
                      support::Rng& rng) {
    MooRun run;
    const double pm = params.mutation_prob > 0.0
                          ? params.mutation_prob
                          : 1.0 / static_cast<double>(dims);

    std::vector<Solution> pop;
    pop.reserve(static_cast<std::size_t>(params.population));
    for (int i = 0; i < params.population; ++i) {
        Genome genome(static_cast<std::size_t>(dims));
        for (double& g : genome) g = rng.uniform();
        Objectives obj = eval(genome);
        ++run.evaluations;
        pop.push_back(Solution{std::move(genome), std::move(obj)});
    }

    const auto sbx = [&rng, &params](double a, double b) {
        const double u = rng.uniform();
        const double beta =
            u <= 0.5 ? std::pow(2.0 * u, 1.0 / (params.eta_c + 1.0))
                     : std::pow(1.0 / (2.0 * (1.0 - u)),
                                1.0 / (params.eta_c + 1.0));
        return std::pair{0.5 * ((1.0 + beta) * a + (1.0 - beta) * b),
                         0.5 * ((1.0 - beta) * a + (1.0 + beta) * b)};
    };
    const auto mutate = [&rng, &params, pm](Genome& genome) {
        for (double& g : genome) {
            if (!rng.chance(pm)) continue;
            const double u = rng.uniform();
            const double delta =
                u < 0.5 ? std::pow(2.0 * u, 1.0 / (params.eta_m + 1.0)) - 1.0
                        : 1.0 - std::pow(2.0 * (1.0 - u),
                                         1.0 / (params.eta_m + 1.0));
            g += delta;
        }
        clamp01(genome);
    };

    for (int gen = 0; gen < params.generations; ++gen) {
        const auto rank = non_dominated_sort(pop);
        std::vector<std::size_t> all(pop.size());
        for (std::size_t i = 0; i < pop.size(); ++i) all[i] = i;
        const auto crowd = crowding(pop, all);
        const auto tournament = [&]() -> const Solution& {
            const std::size_t a = rng.below(pop.size());
            const std::size_t b = rng.below(pop.size());
            if (rank[a] != rank[b]) return pop[rank[a] < rank[b] ? a : b];
            return pop[crowd[a] > crowd[b] ? a : b];
        };

        std::vector<Solution> offspring;
        offspring.reserve(pop.size());
        while (offspring.size() < pop.size()) {
            Genome c1 = tournament().genome;
            Genome c2 = tournament().genome;
            if (rng.chance(params.crossover_prob)) {
                for (std::size_t d = 0; d < c1.size(); ++d) {
                    const auto [x, y] = sbx(c1[d], c2[d]);
                    c1[d] = x;
                    c2[d] = y;
                }
            }
            mutate(c1);
            mutate(c2);
            for (Genome* child : {&c1, &c2}) {
                if (offspring.size() >= pop.size()) break;
                Objectives obj = eval(*child);
                ++run.evaluations;
                offspring.push_back(Solution{std::move(*child), std::move(obj)});
            }
        }

        // Environmental selection over parents + offspring.
        std::vector<Solution> merged = std::move(pop);
        for (auto& child : offspring) merged.push_back(std::move(child));
        const auto merged_rank = non_dominated_sort(merged);
        std::vector<std::size_t> order(merged.size());
        for (std::size_t i = 0; i < merged.size(); ++i) order[i] = i;
        std::vector<std::size_t> all_merged = order;
        const auto merged_crowd = crowding(merged, all_merged);
        std::sort(order.begin(), order.end(),
                  [&merged_rank, &merged_crowd](std::size_t a, std::size_t b) {
                      if (merged_rank[a] != merged_rank[b])
                          return merged_rank[a] < merged_rank[b];
                      return merged_crowd[a] > merged_crowd[b];
                  });
        pop.clear();
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(params.population); ++i)
            pop.push_back(std::move(merged[order[i]]));
    }

    for (auto& solution : pop)
        archive_insert(run.front, solution, 256);
    run.front = pareto_filter(std::move(run.front));
    return run;
}

MooRun weighted_sum_optimise(const EvalFn& eval, int dims,
                             const WeightedSumParams& params,
                             support::Rng& rng) {
    MooRun run;
    for (int restart = 0; restart < params.restarts; ++restart) {
        // Random weight vector on the simplex.
        std::vector<double> weights(3, 0.0);
        double total = 0.0;
        for (double& w : weights) {
            w = rng.uniform(0.05, 1.0);
            total += w;
        }
        for (double& w : weights) w /= total;

        Genome current(static_cast<std::size_t>(dims));
        for (double& g : current) g = rng.uniform();
        Objectives current_obj = eval(current);
        ++run.evaluations;
        const auto scalar = [&weights](const Objectives& obj) {
            double s = 0.0;
            for (std::size_t i = 0; i < obj.size(); ++i)
                s += (i < weights.size() ? weights[i] : 1.0) * obj[i];
            return s;
        };

        for (int iter = 0; iter < params.iterations; ++iter) {
            Genome candidate = current;
            const std::size_t d = rng.below(candidate.size());
            candidate[d] += rng.uniform(-params.step, params.step);
            clamp01(candidate);
            Objectives obj = eval(candidate);
            ++run.evaluations;
            if (scalar(obj) < scalar(current_obj)) {
                current = std::move(candidate);
                current_obj = std::move(obj);
            }
        }
        archive_insert(run.front, Solution{current, current_obj}, 64);
    }
    run.front = pareto_filter(std::move(run.front));
    return run;
}

}  // namespace teamplay::compiler
