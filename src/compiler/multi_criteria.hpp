// The multi-criteria optimising compiler (centre box of Fig. 1).
//
// Given a task entry function and a core, it explores the space of pass
// configurations (unrolling, inlining, classic scalar optimisations,
// security countermeasure level, DVFS operating point) and returns a Pareto
// front of compiled task *versions* over the three ETS objectives:
//
//   time     — static WCET bound on predictable cores,
//              measured mean over simulator runs on complex cores;
//   energy   — static WCEC bound / measured mean, same split;
//   security — static leakage proxy from the taint analysis.
//
// The front of versions is exactly what the coordination layer consumes
// (multi-version task scheduling, Roeder et al. [20]).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compiler/moo.hpp"
#include "compiler/passes.hpp"
#include "ir/program.hpp"
#include "platform/platform.hpp"
#include "sim/backend.hpp"

namespace teamplay::compiler {

/// Security countermeasure level applied by the pipeline.
enum class SecurityLevel : std::uint8_t { kNone, kBalance, kLadder };

[[nodiscard]] std::string_view security_level_name(SecurityLevel level);

/// One point in the configuration space.
struct PassConfig {
    bool fold = true;
    bool cse_pass = true;
    bool strength = true;
    bool dce_pass = true;
    bool inline_calls_pass = false;
    bool licm = false;      ///< loop-invariant constant hoisting
    int unroll_factor = 1;  ///< 1, 2, 4 or 8
    SecurityLevel security = SecurityLevel::kNone;
    std::size_t opp_index = 0;

    [[nodiscard]] std::string label() const;
};

/// A compiled task version with its analysed ETS properties.
struct TaskVersion {
    PassConfig config;
    bool analysable = false;  ///< static bounds valid (predictable core)
    double wcet_s = 0.0;      ///< static WCET bound (predictable only)
    double wcec_j = 0.0;      ///< static worst-case energy (predictable only)
    double time_s = 0.0;      ///< representative time (bound or measured mean)
    double energy_j = 0.0;    ///< representative dynamic+static energy
    /// Dynamic-only share of energy_j: what the version itself controls; the
    /// scheduler adds static/idle energy from the platform model.
    double energy_dynamic_j = 0.0;
    double leakage = 0.0;     ///< static leakage proxy (0 = constant-flow)
    int static_instrs = 0;    ///< code size proxy
    std::shared_ptr<const ir::Program> program;  ///< transformed program
};

/// The compiler front-end for one (program, core) pair.
class MultiCriteriaCompiler {
public:
    /// `sim` selects the simulator tier used to evaluate candidates on
    /// complex cores.  Candidate programs are throwaway, so their traces are
    /// compiled directly and never admitted to a shared TraceCache.
    MultiCriteriaCompiler(const ir::Program& source,
                          const platform::Core& core,
                          sim::SimOptions sim = {});

    /// Apply one configuration and analyse the result.
    [[nodiscard]] TaskVersion compile(const std::string& function,
                                      const PassConfig& config) const;

    enum class Engine : std::uint8_t { kFpa, kNsga2, kWeightedSum };

    struct Options {
        Engine engine = Engine::kFpa;
        int population = 12;
        int iterations = 14;
        std::uint64_t seed = 42;
        /// Include the security knob in the search space (off for tasks with
        /// no secrets: saves search budget).
        bool explore_security = true;
        /// Cap on returned versions (selected by crowding, keeps extremes).
        std::size_t max_versions = 8;
    };

    /// Multi-objective search; returns the non-dominated versions sorted by
    /// ascending time.  Always includes the baseline config (all scalar
    /// passes, no unroll/inline, max frequency) for reference.
    [[nodiscard]] std::vector<TaskVersion> optimise(
        const std::string& function, const Options& options) const;

    /// Map a genome in [0,1]^8 onto a configuration (exposed for tests).
    [[nodiscard]] PassConfig decode(const Genome& genome,
                                    bool explore_security) const;

    /// The "traditional toolchain" reference configuration: -O2-style scalar
    /// passes, no multi-objective exploration, maximum frequency.
    [[nodiscard]] PassConfig traditional_config() const;

private:
    [[nodiscard]] Objectives evaluate(const std::string& function,
                                      const PassConfig& config) const;

    const ir::Program* source_;
    const platform::Core* core_;
    sim::SimOptions sim_;
};

/// Number of genome dimensions used by `decode`.
inline constexpr int kGenomeDims = 8;

}  // namespace teamplay::compiler
