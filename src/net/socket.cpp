#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace teamplay::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw TransportError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
    // Request/reply RPC over tiny-to-mid frames: Nagle only adds latency.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    const std::string service = std::to_string(port);
    if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &found) != 0 ||
        found == nullptr)
        throw TransportError("cannot resolve " + host);

    int fd = -1;
    for (const addrinfo* it = found; it != nullptr; it = it->ai_next) {
        fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
        if (fd < 0) continue;
        if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(found);
    if (fd < 0)
        throw TransportError("cannot connect to " + host + ":" + service);
    set_nodelay(fd);
    return Socket(fd);
}

void Socket::send_all(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < size) {
        // MSG_NOSIGNAL: a dead peer must surface as EPIPE here, not as a
        // process-killing SIGPIPE.
        const ssize_t n =
            ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
}

void Socket::recv_all(void* data, std::size_t size) {
    auto* bytes = static_cast<std::uint8_t*>(data);
    std::size_t received = 0;
    while (received < size) {
        const ssize_t n = ::recv(fd_, bytes + received, size - received, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv");
        }
        if (n == 0) throw TransportError("connection closed mid-message");
        received += static_cast<std::size_t>(n);
    }
}

std::size_t Socket::recv_some(void* data, std::size_t size) {
    while (true) {
        const ssize_t n = ::recv(fd_, data, size, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("recv");
        }
        return static_cast<std::size_t>(n);
    }
}

void Socket::shutdown_both() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// -- Listener -----------------------------------------------------------------

Listener::Listener(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_ANY);
    address.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof address) !=
        0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throw_errno("bind port " + std::to_string(port));
    }
    if (::listen(fd_, 16) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throw_errno("listen");
    }
    socklen_t length = sizeof address;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) ==
        0)
        port_ = ntohs(address.sin_port);
}

Listener::~Listener() {
    if (fd_ >= 0) ::close(fd_);
}

std::optional<Socket> Listener::accept_one() {
    while (true) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            set_nodelay(fd);
            return Socket(fd);
        }
        if (errno == EINTR) continue;
        // `stop` shut the listening socket down: accept fails from then on
        // (EINVAL on Linux), which is the clean way to end the loop.
        return std::nullopt;
    }
}

void Listener::stop() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

// -- framing ------------------------------------------------------------------

void send_frame(Socket& socket, std::span<const std::uint8_t> payload) {
    if (payload.size() > kMaxFrameBytes)
        throw TransportError("frame exceeds size cap");
    std::uint8_t prefix[4];
    const auto length = static_cast<std::uint32_t>(payload.size());
    for (int byte = 0; byte < 4; ++byte)
        prefix[byte] = static_cast<std::uint8_t>(length >> (8 * byte));
    socket.send_all(prefix, sizeof prefix);
    if (!payload.empty()) socket.send_all(payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> recv_frame(Socket& socket) {
    std::uint8_t prefix[4];
    // EOF before the first prefix byte is an orderly goodbye; EOF anywhere
    // after it is a torn frame.
    const std::size_t first = socket.recv_some(prefix, 1);
    if (first == 0) return std::nullopt;
    socket.recv_all(prefix + 1, sizeof prefix - 1);
    std::uint32_t length = 0;
    for (int byte = 0; byte < 4; ++byte)
        length |= static_cast<std::uint32_t>(prefix[byte]) << (8 * byte);
    if (length > kMaxFrameBytes)
        throw TransportError("frame length exceeds size cap");
    std::vector<std::uint8_t> payload(length);
    if (length > 0) socket.recv_all(payload.data(), length);
    return payload;
}

}  // namespace teamplay::net
