#include "net/remote_shard.hpp"

#include <future>
#include <stdexcept>
#include <utility>

namespace teamplay::net {

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string payload_text(const core::wire::Buffer& payload) {
    return {payload.begin(), payload.end()};
}

}  // namespace

RemoteShard::RemoteShard(Options options) : options_(std::move(options)) {}

RemoteShard::~RemoteShard() {
    std::vector<std::shared_ptr<Connection>> connections;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
        connections = connections_;
    }
    for (const auto& connection : connections)
        connection->socket.shutdown_both();
    std::vector<std::thread> readers;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        readers.swap(readers_);
    }
    // Each reader fails the pendings of its connection on the way out, so
    // every outstanding ticket completes before destruction finishes.
    for (auto& reader : readers)
        if (reader.joinable()) reader.join();
}

core::ScenarioTicket RemoteShard::submit(
    core::ScenarioRequest request, core::ScenarioEngine::Completion on_complete) {
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);

    const auto encode_start = Clock::now();
    Envelope envelope;
    envelope.id = id;
    envelope.type = MsgType::kSubmit;
    envelope.payload = core::wire::encode(request);  // throws on null program
    const double encode_s = seconds_since(encode_start);
    const auto frame = encode_envelope(envelope);

    auto state = core::detail::make_external_ticket(
        id, std::move(request), std::move(on_complete),
        [this, id] { send_cancel(id); });

    auto sent_at = std::make_shared<Clock::time_point>(Clock::now());
    Handler handler = [this, state, encode_s, sent_at](
                          Envelope* reply, const std::string& failure) {
        if (reply == nullptr) {
            core::detail::complete_external_ticket(
                *state, {},
                std::make_exception_ptr(
                    RemoteShardError(endpoint() + ": " + failure)),
                /*cancelled=*/false);
            return;
        }
        const double rtt_s = seconds_since(*sent_at);
        switch (reply->type) {
            case MsgType::kReplyReport: {
                const auto decode_start = Clock::now();
                core::ToolchainReport report;
                try {
                    report = core::wire::decode_report(reply->payload);
                } catch (const core::wire::WireError& e) {
                    core::detail::complete_external_ticket(
                        *state, {},
                        std::make_exception_ptr(RemoteShardError(
                            endpoint() + ": reply rejected: " + e.what())),
                        /*cancelled=*/false);
                    return;
                }
                const double decode_s = seconds_since(decode_start);
                report.stage_laps.push_back({"net/encode", encode_s});
                report.stage_laps.push_back({"net/rtt", rtt_s});
                report.stage_laps.push_back({"net/decode", decode_s});
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    telemetry_.record("net/encode", encode_s);
                    telemetry_.record("net/rtt", rtt_s);
                    telemetry_.record("net/decode", decode_s);
                }
                core::detail::complete_external_ticket(
                    *state, std::move(report), nullptr, /*cancelled=*/false);
                return;
            }
            case MsgType::kReplyCancelled:
                core::detail::complete_external_ticket(
                    *state, {},
                    std::make_exception_ptr(core::CancelledError(
                        core::detail::ticket_request(*state).label)),
                    /*cancelled=*/true);
                return;
            case MsgType::kReplyShed:
                // Server-side admission refusal or budget shed: re-raise
                // as the same retryable class the local engine throws,
                // carrying the server's reason text.
                core::detail::complete_external_ticket(
                    *state, {},
                    std::make_exception_ptr(core::ShedError(
                        core::ShedError::Reason::kRemote,
                        core::detail::ticket_request(*state).label,
                        payload_text(reply->payload))),
                    /*cancelled=*/false, /*shed=*/true);
                return;
            case MsgType::kReplyError:
                core::detail::complete_external_ticket(
                    *state, {},
                    std::make_exception_ptr(std::runtime_error(
                        "remote shard error: " +
                        payload_text(reply->payload))),
                    /*cancelled=*/false);
                return;
            default:
                core::detail::complete_external_ticket(
                    *state, {},
                    std::make_exception_ptr(RemoteShardError(
                        endpoint() + ": unexpected reply type")),
                    /*cancelled=*/false);
                return;
        }
    };

    transact(id, frame, std::move(handler), sent_at);
    return core::detail::wrap_external_ticket(state);
}

std::optional<core::EvaluationResult> RemoteShard::fetch(
    const core::EvaluationKey& key) {
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    Envelope envelope;
    envelope.id = id;
    envelope.type = MsgType::kFetch;
    envelope.payload = core::wire::encode(key);
    const auto frame = encode_envelope(envelope);

    auto promise = std::make_shared<
        std::promise<std::optional<core::EvaluationResult>>>();
    auto future = promise->get_future();
    transact(
        id, frame,
        [promise](Envelope* reply, const std::string&) {
            if (reply == nullptr ||
                reply->type != MsgType::kReplyResult) {
                promise->set_value(std::nullopt);
                return;
            }
            try {
                promise->set_value(
                    core::wire::decode_result(reply->payload));
            } catch (const core::wire::WireError&) {
                promise->set_value(std::nullopt);
            }
        },
        nullptr);
    return future.get();
}

std::optional<core::BatchStats> RemoteShard::stats() {
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    Envelope envelope;
    envelope.id = id;
    envelope.type = MsgType::kStats;
    const auto frame = encode_envelope(envelope);

    auto promise =
        std::make_shared<std::promise<std::optional<core::BatchStats>>>();
    auto future = promise->get_future();
    transact(
        id, frame,
        [promise](Envelope* reply, const std::string&) {
            if (reply == nullptr || reply->type != MsgType::kReplyStats) {
                promise->set_value(std::nullopt);
                return;
            }
            try {
                promise->set_value(
                    core::wire::decode_batch_stats(reply->payload));
            } catch (const core::wire::WireError&) {
                promise->set_value(std::nullopt);
            }
        },
        nullptr);
    return future.get();
}

core::StageTelemetry RemoteShard::transport_telemetry() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return telemetry_;
}

bool RemoteShard::healthy() {
    const std::lock_guard<std::mutex> send_lock(send_mutex_);
    try {
        return ensure_connected(/*attempts_override=*/1) != nullptr;
    } catch (const std::exception&) {
        return false;
    }
}

void RemoteShard::transact(std::uint64_t id,
                           const core::wire::Buffer& frame, Handler handler,
                           const std::shared_ptr<Clock::time_point>& sent_at) {
    std::string failure;
    bool fail = false;
    {
        const std::lock_guard<std::mutex> send_lock(send_mutex_);
        std::shared_ptr<Connection> conn;
        try {
            conn = ensure_connected();
        } catch (const std::exception& e) {
            failure = e.what();
            fail = true;
        }
        if (!fail) {
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                pending_.emplace(id, Pending{conn, handler});
            }
            bool sent = false;
            try {
                if (sent_at) *sent_at = Clock::now();
                send_frame(conn->socket, frame);
                sent = true;
            } catch (const TransportError&) {
                drop_connection(conn);
            }
            if (!sent) {
                // The connection died since the last exchange (half-open
                // TCP looks alive until the first write).  One reconnect
                // and resend; the pending entry is re-tagged so the dying
                // reader's cleanup does not fail it underneath us — unless
                // that cleanup already won, in which case the handler has
                // fired and we must stay silent.
                bool still_pending = false;
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    still_pending = pending_.find(id) != pending_.end();
                }
                if (still_pending) {
                    std::shared_ptr<Connection> fresh;
                    try {
                        fresh = ensure_connected();
                    } catch (const std::exception& e) {
                        if (take_pending(id)) {
                            failure = e.what();
                            fail = true;
                        }
                        fresh = nullptr;
                    }
                    if (fresh != nullptr) {
                        bool retagged = false;
                        {
                            const std::lock_guard<std::mutex> lock(mutex_);
                            const auto it = pending_.find(id);
                            if (it != pending_.end()) {
                                it->second.conn = fresh;
                                retagged = true;
                            }
                        }
                        if (retagged) {
                            try {
                                if (sent_at) *sent_at = Clock::now();
                                send_frame(fresh->socket, frame);
                            } catch (const TransportError& e) {
                                drop_connection(fresh);
                                if (take_pending(id)) {
                                    failure = e.what();
                                    fail = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    // Outside send_mutex_: the handler runs user code (ticket completions)
    // that may itself submit.
    if (fail) handler(nullptr, failure);
}

std::shared_ptr<RemoteShard::Connection> RemoteShard::ensure_connected(
    int attempts_override) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            throw RemoteShardError(endpoint() + ": client shut down");
        if (conn_ != nullptr) return conn_;
    }
    double backoff_s = options_.initial_backoff_s;
    std::string last_error = "unreachable";
    const int attempts =
        attempts_override > 0 ? attempts_override
        : options_.connect_attempts > 0 ? options_.connect_attempts
                                        : 1;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff_s));
            backoff_s = std::min(backoff_s * 2.0, options_.max_backoff_s);
        }
        try {
            auto socket =
                Socket::connect_to(options_.host, options_.port);
            auto conn = std::make_shared<Connection>();
            conn->socket = std::move(socket);
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stopped_)
                throw RemoteShardError(endpoint() + ": client shut down");
            conn_ = conn;
            connections_.push_back(conn);
            readers_.emplace_back([this, conn] { reader_loop(conn); });
            return conn;
        } catch (const TransportError& e) {
            last_error = e.what();
        }
    }
    throw RemoteShardError(endpoint() + ": " + last_error);
}

void RemoteShard::reader_loop(const std::shared_ptr<Connection>& conn) {
    while (true) {
        std::optional<std::vector<std::uint8_t>> frame;
        try {
            frame = recv_frame(conn->socket);
        } catch (const TransportError&) {
            frame.reset();
        }
        if (!frame.has_value()) break;
        Envelope envelope;
        try {
            envelope = decode_envelope(*frame);
        } catch (const core::wire::WireError&) {
            break;  // the reply stream itself is corrupt
        }
        Handler handler;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = pending_.find(envelope.id);
            if (it != pending_.end()) {
                handler = std::move(it->second.handler);
                pending_.erase(it);
            }
        }
        // Unmatched ids (a reply raced a local failure) are dropped.
        if (handler) handler(&envelope, {});
    }
    // This connection generation is dead: fail every request that was sent
    // on it and will never be answered.  Requests already re-tagged onto a
    // newer connection are left alone.
    std::vector<Handler> orphans;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (conn_ == conn) conn_ = nullptr;
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->second.conn == conn) {
                orphans.push_back(std::move(it->second.handler));
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (auto& handler : orphans)
        handler(nullptr, "connection lost before the reply arrived");
}

void RemoteShard::drop_connection(
    const std::shared_ptr<Connection>& conn) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (conn_ == conn) conn_ = nullptr;
    }
    conn->socket.shutdown_both();  // unblocks the reader, which cleans up
}

bool RemoteShard::take_pending(std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pending_.erase(id) != 0;
}

void RemoteShard::send_cancel(std::uint64_t id) {
    Envelope envelope;
    envelope.id = id;
    envelope.type = MsgType::kCancel;
    const auto frame = encode_envelope(envelope);
    const std::lock_guard<std::mutex> send_lock(send_mutex_);
    std::shared_ptr<Connection> conn;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        conn = conn_;
    }
    // No live connection: the submit this cancel names is already failing
    // through its reader cleanup, so there is nothing left to cancel.
    if (conn == nullptr) return;
    try {
        send_frame(conn->socket, frame);
    } catch (const TransportError&) {
        drop_connection(conn);
    }
}

}  // namespace teamplay::net
