#include "net/protocol.hpp"

namespace teamplay::net {

core::wire::Buffer encode_envelope(const Envelope& envelope) {
    core::wire::Buffer out;
    out.reserve(9 + envelope.payload.size());
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<std::uint8_t>(envelope.id >> shift));
    out.push_back(static_cast<std::uint8_t>(envelope.type));
    out.insert(out.end(), envelope.payload.begin(), envelope.payload.end());
    return out;
}

Envelope decode_envelope(std::span<const std::uint8_t> frame) {
    if (frame.size() < 9)
        throw core::wire::WireFormatError("envelope shorter than header");
    Envelope envelope;
    for (int byte = 0; byte < 8; ++byte)
        envelope.id |= static_cast<std::uint64_t>(frame[
                           static_cast<std::size_t>(byte)])
                       << (8 * byte);
    const std::uint8_t type = frame[8];
    if (type < static_cast<std::uint8_t>(MsgType::kSubmit) ||
        type > static_cast<std::uint8_t>(MsgType::kReplyShed))
        throw core::wire::WireFormatError("envelope type invalid");
    envelope.type = static_cast<MsgType>(type);
    envelope.payload.assign(frame.begin() + 9, frame.end());
    return envelope;
}

}  // namespace teamplay::net
