#include "net/shard_server.hpp"

#include <map>
#include <string>
#include <utility>

#include "net/protocol.hpp"

namespace teamplay::net {

namespace {

std::string describe(const std::exception_ptr& error) {
    try {
        std::rethrow_exception(error);
    } catch (const std::exception& e) {
        return e.what();
    } catch (...) {
        return "unknown error";
    }
}

core::wire::Buffer text_payload(const std::string& text) {
    return {text.begin(), text.end()};
}

}  // namespace

struct ShardServer::Connection {
    Socket socket;
    std::thread reader;
    /// One reply frame at a time; completions run on engine pool threads.
    std::mutex write_mutex;
    std::mutex inflight_mutex;
    struct InflightSlot {
        core::ScenarioTicket ticket;
        /// A cancel that arrives while the submit is still registering its
        /// ticket is remembered and applied at registration.
        bool cancel_requested = false;
    };
    std::map<std::uint64_t, InflightSlot> inflight;

    /// Best-effort reply: a peer that vanished mid-scenario simply never
    /// hears the answer — the scenario itself completed and is cached.
    void reply(const Envelope& envelope) {
        const auto frame = encode_envelope(envelope);
        const std::lock_guard<std::mutex> lock(write_mutex);
        try {
            send_frame(socket, frame);
        } catch (const TransportError&) {
        }
    }
};

namespace {

core::ScenarioEngine::Options served_engine(
    core::ScenarioEngine::Options options) {
    // A caller-only engine executes scenarios inside ticket waits — but a
    // server never waits on its tickets (the completion callback *is* the
    // reply), so zero workers would park every submission forever.
    if (options.worker_threads == 0) options.worker_threads = 1;
    return options;
}

}  // namespace

ShardServer::ShardServer(Options options)
    : engine_(served_engine(std::move(options.engine))),
      listener_(options.port) {
    accept_thread_ = std::thread([this] { accept_loop(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::stop() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) return;
        stopped_ = true;
    }
    listener_.stop();
    if (accept_thread_.joinable()) accept_thread_.join();

    std::vector<std::shared_ptr<Connection>> connections;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        connections.swap(connections_);
    }
    for (const auto& connection : connections)
        connection->socket.shutdown_both();
    for (const auto& connection : connections)
        if (connection->reader.joinable()) connection->reader.join();
    // Drain in-flight scenarios before returning: their completions hold
    // Connection references and must not outlive a caller that tears the
    // server down and then inspects the engine.
    for (const auto& connection : connections) {
        std::vector<core::ScenarioTicket> tickets;
        {
            const std::lock_guard<std::mutex> lock(
                connection->inflight_mutex);
            for (auto& [id, slot] : connection->inflight)
                if (slot.ticket.valid()) tickets.push_back(slot.ticket);
        }
        for (auto& ticket : tickets) ticket.wait();
    }
}

void ShardServer::accept_loop() {
    while (auto socket = listener_.accept_one()) {
        auto connection = std::make_shared<Connection>();
        connection->socket = std::move(*socket);
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (stopped_) return;
            connections_.push_back(connection);
        }
        connection->reader = std::thread(
            [this, connection] { serve_connection(connection); });
    }
}

void ShardServer::serve_connection(
    const std::shared_ptr<Connection>& connection) {
    while (true) {
        std::optional<std::vector<std::uint8_t>> frame;
        try {
            frame = recv_frame(connection->socket);
        } catch (const TransportError&) {
            break;  // torn frame or dead peer: the stream is unusable
        }
        if (!frame.has_value()) break;  // orderly goodbye
        try {
            handle_frame(connection, *frame);
        } catch (const core::wire::WireError&) {
            // The envelope *header* could not be parsed, so there is no id
            // to answer on — framing discipline is gone, drop the
            // connection.  (A bad payload inside a good envelope is
            // answered with kReplyError in handle_frame instead.)
            break;
        }
    }
}

void ShardServer::handle_frame(const std::shared_ptr<Connection>& connection,
                               std::span<const std::uint8_t> frame) {
    Envelope envelope = decode_envelope(frame);
    const std::uint64_t id = envelope.id;
    switch (envelope.type) {
        case MsgType::kSubmit: {
            std::shared_ptr<core::wire::ScenarioRequestFrame> request;
            try {
                request =
                    std::make_shared<core::wire::ScenarioRequestFrame>(
                        core::wire::decode_request(envelope.payload));
            } catch (const core::wire::WireError& e) {
                connection->reply(
                    {id, MsgType::kReplyError, text_payload(e.what())});
                return;
            }
            {
                const std::lock_guard<std::mutex> lock(
                    connection->inflight_mutex);
                connection->inflight.try_emplace(id);
            }
            // The frame owns the program/platform the submitted request
            // points at; the completion's capture keeps it alive until the
            // scenario is done.
            auto ticket = engine_.submit(
                request->request(),
                [connection, request, id](
                    const core::ScenarioOutcome& outcome) {
                    Envelope reply;
                    reply.id = id;
                    if (outcome.shed) {
                        // Admission refusal or mid-flight budget shed:
                        // its own reply type, so the client can re-raise
                        // the retryable ShedError and count it apart
                        // from caller cancels.
                        reply.type = MsgType::kReplyShed;
                        reply.payload =
                            text_payload(describe(outcome.error));
                    } else if (outcome.cancelled) {
                        reply.type = MsgType::kReplyCancelled;
                        reply.payload =
                            text_payload(describe(outcome.error));
                    } else if (outcome.error) {
                        reply.type = MsgType::kReplyError;
                        reply.payload =
                            text_payload(describe(outcome.error));
                    } else {
                        reply.type = MsgType::kReplyReport;
                        reply.payload = core::wire::encode(*outcome.report);
                    }
                    connection->reply(reply);
                    const std::lock_guard<std::mutex> lock(
                        connection->inflight_mutex);
                    connection->inflight.erase(id);
                });
            {
                const std::lock_guard<std::mutex> lock(
                    connection->inflight_mutex);
                const auto it = connection->inflight.find(id);
                if (it != connection->inflight.end()) {
                    if (it->second.cancel_requested) ticket.cancel();
                    it->second.ticket = std::move(ticket);
                }
            }
            return;
        }
        case MsgType::kFetch: {
            try {
                const auto key = core::wire::decode_key(envelope.payload);
                const auto result = engine_.peek_cached(key);
                if (result != nullptr)
                    connection->reply({id, MsgType::kReplyResult,
                                       core::wire::encode(*result)});
                else
                    connection->reply({id, MsgType::kReplyMiss, {}});
            } catch (const core::wire::WireError& e) {
                connection->reply(
                    {id, MsgType::kReplyError, text_payload(e.what())});
            }
            return;
        }
        case MsgType::kCancel: {
            const std::lock_guard<std::mutex> lock(
                connection->inflight_mutex);
            const auto it = connection->inflight.find(id);
            if (it != connection->inflight.end()) {
                if (it->second.ticket.valid())
                    it->second.ticket.cancel();
                else
                    it->second.cancel_requested = true;
            }
            return;
        }
        case MsgType::kStats: {
            core::BatchStats stats;
            stats.workers = engine_.concurrency();
            stats.cache = engine_.cache_stats();
            stats.stage_telemetry = engine_.stage_telemetry();
            stats.admission = engine_.admission_stats();
            connection->reply(
                {id, MsgType::kReplyStats, core::wire::encode(stats)});
            return;
        }
        default:
            // A reply type arriving at the server: protocol confusion,
            // answered in kind so the peer can diagnose it.
            connection->reply({id, MsgType::kReplyError,
                               text_payload("unexpected message type")});
            return;
    }
}

}  // namespace teamplay::net
