// ShardServer: one ScenarioEngine behind a TCP accept/decode/submit/reply
// loop (DESIGN.md §11).
//
// One accept thread, one reader thread per connection; the engine's own
// pool executes the scenarios, and each completion callback writes the
// reply back under the connection's write lock (replies interleave in
// completion order — the correlation id in the envelope is what matches
// them to requests, not arrival order).  A structurally valid envelope
// whose payload fails strict wire decoding is answered with kReplyError
// and the connection keeps serving; a torn frame drops the connection
// (the framing itself can no longer be trusted).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/scenario_engine.hpp"
#include "net/socket.hpp"

namespace teamplay::net {

class ShardServer {
public:
    struct Options {
        std::uint16_t port = 0;  ///< 0 = ephemeral (tests, loopback benches)
        core::ScenarioEngine::Options engine;
    };

    /// Binds and starts serving immediately; throws TransportError when
    /// the port cannot be bound.
    explicit ShardServer(Options options);
    ~ShardServer();

    ShardServer(const ShardServer&) = delete;
    ShardServer& operator=(const ShardServer&) = delete;

    [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

    /// The wrapped engine (loopback tests compare its output and counters
    /// against the remote path).
    [[nodiscard]] core::ScenarioEngine& engine() { return engine_; }

    /// Stop accepting, drop every connection, drain in-flight scenarios.
    /// Idempotent; the destructor calls it.
    void stop();

private:
    struct Connection;

    void accept_loop();
    void serve_connection(const std::shared_ptr<Connection>& connection);
    void handle_frame(const std::shared_ptr<Connection>& connection,
                      std::span<const std::uint8_t> frame);

    /// Engine first: it is destroyed last, after every reader thread was
    /// joined, and its destructor drains scenarios whose completions still
    /// hold Connection shared_ptrs.
    core::ScenarioEngine engine_;
    Listener listener_;
    std::mutex mutex_;  ///< guards connections_ and stopped_
    std::vector<std::shared_ptr<Connection>> connections_;
    bool stopped_ = false;
    std::thread accept_thread_;
};

}  // namespace teamplay::net
