// Shard-fabric RPC protocol: envelopes over length-prefixed frames.
//
// Every frame on a fabric connection is one Envelope: a u64 correlation id
// (chosen by the client, echoed by the server), a message-type byte, and a
// payload.  Payloads of the structured messages are sealed core::wire
// buffers — checksummed and strictly decoded on arrival — so a corrupted
// payload is detected inside the frame and answered with kReplyError
// rather than poisoning the connection.  Error/cancel reply payloads are
// plain UTF-8 text (the exception message).
//
//   client -> server                server -> client
//   kSubmit  wire::ScenarioRequest  kReplyReport     wire::ToolchainReport
//                                   kReplyCancelled  text
//                                   kReplyShed       text (admission
//                                    refusal or budget shed; retryable)
//                                   kReplyError      text
//   kFetch   wire::EvaluationKey    kReplyResult     wire::EvaluationResult
//                                   kReplyMiss       (empty)
//   kCancel  (empty; id names the   (no direct reply; the submit's own
//             in-flight submit)      reply becomes kReplyCancelled)
//   kStats   (empty)                kReplyStats      wire::BatchStats
#pragma once

#include <cstdint>
#include <span>

#include "core/wire.hpp"

namespace teamplay::net {

enum class MsgType : std::uint8_t {
    kSubmit = 1,
    kFetch = 2,
    kCancel = 3,
    kStats = 4,
    kReplyReport = 5,
    kReplyResult = 6,
    kReplyMiss = 7,
    kReplyError = 8,
    kReplyCancelled = 9,
    kReplyStats = 10,
    kReplyShed = 11,
};

struct Envelope {
    std::uint64_t id = 0;
    MsgType type = MsgType::kSubmit;
    core::wire::Buffer payload;
};

/// Serialise: u64 id LE, u8 type, payload bytes.
[[nodiscard]] core::wire::Buffer encode_envelope(const Envelope& envelope);

/// Parse an envelope; throws core::wire::WireFormatError on a frame
/// shorter than the header or an unknown type byte.  The payload is not
/// interpreted here — its own codec validates it.
[[nodiscard]] Envelope decode_envelope(std::span<const std::uint8_t> frame);

}  // namespace teamplay::net
