// RemoteShard: a shard that happens to live in another process.
//
// `submit → ScenarioTicket` keeps the engine's ticket semantics exactly:
// the in-flight RPC *is* the ticket (minted through the engine's
// external-ticket hooks with no pool behind it), `cancel()` sends the
// cancel RPC, and a dropped connection fails the ticket with
// RemoteShardError — a subclass of the retryable CancelledError class, so
// existing retry loops cover transport loss without learning a new
// exception type.  Reconnection uses capped exponential backoff; a send
// onto a connection that died since the last exchange gets one
// reconnect-and-resend before the ticket fails.
//
// Every completed round trip records three per-hop laps — "net/encode"
// (request serialisation), "net/rtt" (frame out to reply frame in) and
// "net/decode" (report deserialisation) — into the returned report's
// stage_laps and into `transport_telemetry()`, which
// ShardedScenarioEngine folds into its service-wide StageTelemetry.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario_engine.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace teamplay::net {

/// Transport-level ticket failure.  Derives from the engine's retryable
/// cancellation class: the scenario did not fail, this attempt did.
class RemoteShardError : public core::CancelledError {
public:
    explicit RemoteShardError(const std::string& message)
        : core::CancelledError(RawMessage{},
                               "remote shard unavailable: " + message) {}
};

class RemoteShard {
public:
    struct Options {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0;
        /// Connection establishment: attempts before giving up, with
        /// exponential backoff between them, capped.
        int connect_attempts = 5;
        double initial_backoff_s = 0.01;
        double max_backoff_s = 0.25;
    };

    explicit RemoteShard(Options options);
    ~RemoteShard();

    RemoteShard(const RemoteShard&) = delete;
    RemoteShard& operator=(const RemoteShard&) = delete;

    /// Ship the scenario to the remote engine; the returned ticket behaves
    /// exactly like a local one (wait/get/cancel, completion callback on
    /// the reader thread).  The request's program and platform must stay
    /// alive until the ticket completes, as with ScenarioEngine::submit.
    /// Throws std::invalid_argument for a request without program or
    /// platform (same contract as the engine); transport failures surface
    /// through the ticket, not here.
    [[nodiscard]] core::ScenarioTicket submit(
        core::ScenarioRequest request,
        core::ScenarioEngine::Completion on_complete = {});

    /// Ask the remote cache for a result it may hold (kFetch RPC).
    /// Nullopt on a peer miss *and* on any transport failure — shaped for
    /// EvaluationCache::RemoteFetch, where the fabric must never fail a
    /// lookup.
    [[nodiscard]] std::optional<core::EvaluationResult> fetch(
        const core::EvaluationKey& key);

    /// Snapshot of the remote engine's cache/telemetry counters (kStats
    /// RPC); nullopt when the shard is unreachable.
    [[nodiscard]] std::optional<core::BatchStats> stats();

    /// Cheap liveness probe: true when a connection is up, or when one
    /// single connect attempt (no backoff) succeeds.  A live-looking
    /// half-open connection counts as healthy — the probe never sends
    /// traffic; the first real exchange flushes out stale liveness.
    /// Groundwork for health-checked rerouting in the shard router.
    [[nodiscard]] bool healthy();

    /// Client-side per-hop laps (net/encode, net/rtt, net/decode) across
    /// every completed round trip.
    [[nodiscard]] core::StageTelemetry transport_telemetry() const;

    [[nodiscard]] std::string endpoint() const {
        return options_.host + ":" + std::to_string(options_.port);
    }

private:
    using Clock = std::chrono::steady_clock;
    /// Reply handler: called exactly once with the reply envelope, or with
    /// nullptr and a failure description when the request can no longer be
    /// answered.
    using Handler = std::function<void(Envelope*, const std::string&)>;

    struct Connection {
        Socket socket;
    };
    struct Pending {
        std::shared_ptr<Connection> conn;  ///< generation the send used
        Handler handler;
    };

    /// Register `handler` under `id` and send `frame`, reconnecting (with
    /// backoff) as needed and retrying the send once on a connection that
    /// died since the last exchange.  Never throws: failures route to the
    /// handler exactly once, outside the send lock.
    void transact(std::uint64_t id, const core::wire::Buffer& frame,
                  Handler handler,
                  const std::shared_ptr<Clock::time_point>& sent_at);

    /// Requires send_mutex_.  Returns the live connection, establishing
    /// one (attempts × backoff) if necessary; throws RemoteShardError when
    /// the endpoint stays unreachable.  `attempts_override` > 0 caps the
    /// connect attempts for this call (healthy() probes with 1).
    [[nodiscard]] std::shared_ptr<Connection> ensure_connected(
        int attempts_override = 0);

    void reader_loop(const std::shared_ptr<Connection>& conn);
    void drop_connection(const std::shared_ptr<Connection>& conn);
    /// Remove the pending entry for `id`; true when this call removed it
    /// (the caller then owns invoking its handler).
    [[nodiscard]] bool take_pending(std::uint64_t id);
    void send_cancel(std::uint64_t id);

    Options options_;
    std::atomic<std::uint64_t> next_id_{1};
    /// Coarse: serialises connect/reconnect/frame-send sequences so the
    /// connection generation cannot change under a sender.  Never held
    /// while a handler (and thus user code) runs.
    std::mutex send_mutex_;
    /// Leaf lock: pending map, live connection pointer, telemetry,
    /// shutdown flag.
    mutable std::mutex mutex_;
    std::shared_ptr<Connection> conn_;
    std::map<std::uint64_t, Pending> pending_;
    core::StageTelemetry telemetry_;
    bool stopped_ = false;
    /// Every connection ever opened (for shutdown) and every reader
    /// thread (for join); both bounded by the reconnect count.
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<std::thread> readers_;
};

}  // namespace teamplay::net
