// Blocking POSIX TCP primitives for the shard fabric (DESIGN.md §11).
//
// Deliberately minimal: RAII sockets, a listener with an unblockable
// accept, and length-prefixed framing (the same u32 LE prefix the wire
// codec's `append_frame` uses on disk) — no event loop, no non-blocking
// I/O.  The fabric's concurrency comes from threads (one reader per
// connection, the engine's own pool for work), which keeps the transport
// auditable and the failure model simple: every partial read or write
// surfaces as a TransportError on the thread that owns the operation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace teamplay::net {

/// Socket-layer failure: connect refused, peer reset, torn frame.  Always
/// retryable at the RPC layer — the bytes on the wire are self-contained
/// requests, so a failed attempt never leaves partial state behind.
class TransportError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Frames larger than this are rejected on both sides before any
/// allocation: a corrupted length prefix must not look like a 4 GiB
/// message.  Generous — the largest real message (a report with compiled
/// fronts) is a few MiB.
inline constexpr std::size_t kMaxFrameBytes = 256u * 1024 * 1024;

/// One connected TCP stream, closed on destruction.  Reads and writes may
/// run on different threads concurrently (recv on the reader thread, send
/// under the owner's write lock); `shutdown_both` from any thread unblocks
/// both directions.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;
    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket& operator=(Socket&& other) noexcept;

    /// Connect to `host:port` (numeric or resolvable name); throws
    /// TransportError when the connection cannot be established.
    [[nodiscard]] static Socket connect_to(const std::string& host,
                                           std::uint16_t port);

    [[nodiscard]] bool valid() const { return fd_ >= 0; }

    /// Write exactly `size` bytes; throws TransportError on any failure.
    void send_all(const void* data, std::size_t size);

    /// Read exactly `size` bytes; throws TransportError on error or EOF.
    void recv_all(void* data, std::size_t size);

    /// Read up to `size` bytes; returns 0 on orderly EOF, throws on error.
    /// Used for the first byte of a frame, where EOF is a clean goodbye
    /// rather than a torn message.
    [[nodiscard]] std::size_t recv_some(void* data, std::size_t size);

    /// Unblock any thread sitting in recv/send on this socket.
    void shutdown_both() noexcept;

    void close() noexcept;

private:
    int fd_ = -1;
};

/// Listening endpoint.  Port 0 binds an ephemeral port (tests and
/// loopback benches); `port()` reports the bound one.
class Listener {
public:
    /// Throws TransportError when the port cannot be bound.
    explicit Listener(std::uint16_t port);
    ~Listener();

    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Block for the next connection; nullopt once `stop` was called.
    [[nodiscard]] std::optional<Socket> accept_one();

    /// Unblock a pending `accept_one` and refuse further connections.
    void stop() noexcept;

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

// -- framing ------------------------------------------------------------------

/// Send one length-prefixed frame (u32 LE payload length + payload).
void send_frame(Socket& socket, std::span<const std::uint8_t> payload);

/// Receive one frame.  Returns nullopt on orderly EOF *between* frames;
/// throws TransportError on a torn prefix, torn payload, or a length
/// beyond kMaxFrameBytes.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> recv_frame(
    Socket& socket);

}  // namespace teamplay::net
