#include "isa/target_model.hpp"

namespace teamplay::isa {

InstrClass instr_class(ir::Opcode op) {
    using ir::Opcode;
    switch (op) {
        case Opcode::kNop:
            return InstrClass::kNop;
        case Opcode::kMovImm:
        case Opcode::kMov:
            return InstrClass::kMove;
        case Opcode::kMul:
            return InstrClass::kMul;
        case Opcode::kDiv:
        case Opcode::kRem:
            return InstrClass::kDiv;
        case Opcode::kLoad:
            return InstrClass::kLoad;
        case Opcode::kStore:
            return InstrClass::kStore;
        case Opcode::kSelect:
            return InstrClass::kSelect;
        default:
            return InstrClass::kAlu;
    }
}

std::string_view instr_class_name(InstrClass cls) {
    switch (cls) {
        case InstrClass::kNop: return "nop";
        case InstrClass::kMove: return "move";
        case InstrClass::kAlu: return "alu";
        case InstrClass::kMul: return "mul";
        case InstrClass::kDiv: return "div";
        case InstrClass::kLoad: return "load";
        case InstrClass::kStore: return "store";
        case InstrClass::kSelect: return "select";
    }
    return "?";
}

namespace {

/// Helper to fill the cost table in class order.
void set_costs(TargetModel& m, CostEntry nop, CostEntry move, CostEntry alu,
               CostEntry mul, CostEntry div, CostEntry load, CostEntry store,
               CostEntry select) {
    m.cost[static_cast<std::size_t>(InstrClass::kNop)] = nop;
    m.cost[static_cast<std::size_t>(InstrClass::kMove)] = move;
    m.cost[static_cast<std::size_t>(InstrClass::kAlu)] = alu;
    m.cost[static_cast<std::size_t>(InstrClass::kMul)] = mul;
    m.cost[static_cast<std::size_t>(InstrClass::kDiv)] = div;
    m.cost[static_cast<std::size_t>(InstrClass::kLoad)] = load;
    m.cost[static_cast<std::size_t>(InstrClass::kStore)] = store;
    m.cost[static_cast<std::size_t>(InstrClass::kSelect)] = select;
}

}  // namespace

TargetModel cortex_m0_model() {
    TargetModel m;
    m.name = "cortex-m0";
    m.predictable = true;
    // Shaped after the Georgiou et al. comprehensive Cortex-M0 model [9]:
    // single-cycle ALU and (fast-multiplier option) MUL, no hardware divider
    // (runtime routine dominated by ~17 cycles), 2-cycle flash/SRAM access.
    // Dynamic energies in the tens-of-pJ-per-instruction range typical of an
    // M0 at 1.8 V.
    set_costs(m,
              /*nop*/ {1.0, 20.0},
              /*move*/ {1.0, 26.0},
              /*alu*/ {1.0, 30.0},
              /*mul*/ {1.0, 42.0},
              /*div*/ {17.0, 480.0},
              /*load*/ {2.0, 64.0},
              /*store*/ {2.0, 60.0},
              /*select*/ {3.0, 92.0});
    m.branch_cycles = 3.0;
    m.branch_energy_pj = 85.0;
    // Per-iteration overhead: index increment (1) + compare (1) + taken
    // branch (2, partially folded) on the M0's 3-stage pipeline.
    m.loop_iter_cycles = 4.0;
    m.loop_iter_energy_pj = 118.0;
    m.call_cycles = 4.0;
    m.call_energy_pj = 120.0;
    m.nominal_voltage = 1.8;
    m.data_alpha_pj_per_bit = 1.2;
    return m;
}

TargetModel leon3_model() {
    TargetModel m;
    m.name = "leon3ft";
    m.predictable = true;
    // GR712RC: dual-core LEON3FT, 7-stage in-order pipeline.  Predictable by
    // design; rad-hard process makes per-instruction energy much larger than
    // a commercial M0 (shaped after the GR712RC power dataset [29]).
    set_costs(m,
              /*nop*/ {1.0, 180.0},
              /*move*/ {1.0, 210.0},
              /*alu*/ {1.0, 240.0},
              /*mul*/ {2.0, 420.0},
              /*div*/ {35.0, 6200.0},
              /*load*/ {2.0, 460.0},
              /*store*/ {2.0, 430.0},
              /*select*/ {3.0, 720.0});
    m.branch_cycles = 3.0;
    m.branch_energy_pj = 560.0;
    // Increment + compare + taken branch through the 7-stage pipeline.
    m.loop_iter_cycles = 5.0;
    m.loop_iter_energy_pj = 960.0;
    m.call_cycles = 6.0;
    m.call_energy_pj = 1100.0;
    m.nominal_voltage = 1.8;
    m.data_alpha_pj_per_bit = 4.0;
    return m;
}

TargetModel cortex_a15_model() {
    TargetModel m;
    m.name = "cortex-a15";
    m.predictable = false;
    // Apalis TK1 big core: 3-wide out-of-order.  Mean effective latencies
    // are sub-cycle for ALU work; caches and the OoO window introduce the
    // variance that defeats static WCET analysis.
    set_costs(m,
              /*nop*/ {0.3, 120.0},
              /*move*/ {0.35, 150.0},
              /*alu*/ {0.4, 180.0},
              /*mul*/ {1.0, 320.0},
              /*div*/ {9.0, 2400.0},
              /*load*/ {1.2, 380.0},
              /*store*/ {1.1, 350.0},
              /*select*/ {0.8, 300.0});
    m.branch_cycles = 1.5;
    m.branch_energy_pj = 260.0;
    m.loop_iter_cycles = 1.2;
    m.loop_iter_energy_pj = 240.0;
    m.call_cycles = 5.0;
    m.call_energy_pj = 700.0;
    m.nominal_voltage = 1.0;
    m.data_alpha_pj_per_bit = 2.2;
    m.cache_miss_prob = 0.02;
    m.cache_miss_penalty = 60.0;
    m.timing_jitter_sigma = 0.08;
    return m;
}

TargetModel cortex_a57_model() {
    TargetModel m;
    m.name = "cortex-a57";
    m.predictable = false;
    set_costs(m,
              /*nop*/ {0.28, 110.0},
              /*move*/ {0.3, 135.0},
              /*alu*/ {0.35, 165.0},
              /*mul*/ {0.9, 290.0},
              /*div*/ {8.0, 2100.0},
              /*load*/ {1.1, 340.0},
              /*store*/ {1.0, 320.0},
              /*select*/ {0.7, 270.0});
    m.branch_cycles = 1.4;
    m.branch_energy_pj = 230.0;
    m.loop_iter_cycles = 1.1;
    m.loop_iter_energy_pj = 215.0;
    m.call_cycles = 5.0;
    m.call_energy_pj = 640.0;
    m.nominal_voltage = 1.0;
    m.data_alpha_pj_per_bit = 2.0;
    m.cache_miss_prob = 0.018;
    m.cache_miss_penalty = 55.0;
    m.timing_jitter_sigma = 0.07;
    return m;
}

TargetModel denver2_model() {
    TargetModel m;
    m.name = "denver2";
    m.predictable = false;
    // Dynamic-code-optimisation core: excellent steady-state throughput but
    // the largest timing variance of the supported cores (re-optimisation
    // events), which is why the paper's TX2 flow must profile dynamically.
    set_costs(m,
              /*nop*/ {0.25, 115.0},
              /*move*/ {0.28, 140.0},
              /*alu*/ {0.3, 170.0},
              /*mul*/ {0.8, 300.0},
              /*div*/ {7.0, 2000.0},
              /*load*/ {1.0, 350.0},
              /*store*/ {0.95, 330.0},
              /*select*/ {0.6, 280.0});
    m.branch_cycles = 1.3;
    m.branch_energy_pj = 240.0;
    m.loop_iter_cycles = 1.0;
    m.loop_iter_energy_pj = 220.0;
    m.call_cycles = 4.5;
    m.call_energy_pj = 620.0;
    m.nominal_voltage = 1.0;
    m.data_alpha_pj_per_bit = 2.1;
    m.cache_miss_prob = 0.02;
    m.cache_miss_penalty = 58.0;
    m.timing_jitter_sigma = 0.15;
    return m;
}

TargetModel gpu_sm_model() {
    TargetModel m;
    m.name = "gpu-sm";
    m.predictable = false;
    // Aggregate of the embedded GPU's streaming multiprocessors as one
    // throughput core: data-parallel kernels (the CNN layers, vision
    // filters) see very low effective per-operation latency and energy, at
    // the price of high launch overhead (call cost) and timing variance.
    set_costs(m,
              /*nop*/ {0.05, 30.0},
              /*move*/ {0.06, 40.0},
              /*alu*/ {0.07, 48.0},
              /*mul*/ {0.08, 55.0},
              /*div*/ {1.5, 600.0},
              /*load*/ {0.25, 110.0},
              /*store*/ {0.25, 105.0},
              /*select*/ {0.1, 70.0});
    m.branch_cycles = 0.8;   // divergence cost
    m.branch_energy_pj = 90.0;
    m.loop_iter_cycles = 0.2;
    m.loop_iter_energy_pj = 40.0;
    m.call_cycles = 4000.0;  // kernel launch latency
    m.call_energy_pj = 500000.0;
    m.nominal_voltage = 1.0;
    m.data_alpha_pj_per_bit = 1.0;
    m.cache_miss_prob = 0.01;
    m.cache_miss_penalty = 120.0;
    m.timing_jitter_sigma = 0.12;
    return m;
}

TargetModel pill_fpga_model() {
    TargetModel m;
    m.name = "pill-fpga";
    m.predictable = true;
    // The camera pill's low-power FPGA co-processor: fixed-function image
    // kernels, fully deterministic, extremely low dynamic energy.
    set_costs(m,
              /*nop*/ {1.0, 4.0},
              /*move*/ {1.0, 5.0},
              /*alu*/ {1.0, 6.0},
              /*mul*/ {1.0, 9.0},
              /*div*/ {8.0, 70.0},
              /*load*/ {1.0, 8.0},
              /*store*/ {1.0, 8.0},
              /*select*/ {1.0, 7.0});
    m.branch_cycles = 1.0;
    m.branch_energy_pj = 6.0;
    m.loop_iter_cycles = 1.0;
    m.loop_iter_energy_pj = 6.0;
    m.call_cycles = 2.0;
    m.call_energy_pj = 12.0;
    m.nominal_voltage = 1.2;
    m.data_alpha_pj_per_bit = 0.4;
    return m;
}

}  // namespace teamplay::isa
