// ISA-level timing and energy cost models.
//
// This is the substrate for the paper's Energy Modelling Challenge (Sec.
// III-B): each supported core ships a per-instruction-class table of cycle
// counts and dynamic energy costs, in the spirit of the published Cortex-M0
// model (Georgiou et al. [9]) and the GR712RC/LEON3 power data (Nikov et al.
// [8][29]).  Predictable cores have exact deterministic costs; complex cores
// additionally carry stochastic timing parameters (cache misses, pipeline
// jitter) that make static analysis unsound — which is precisely what forces
// the paper's second workflow.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ir/instr.hpp"

namespace teamplay::isa {

/// Coarse instruction classes: the granularity at which the energy-model
/// fitting methodology works (finer than "one number", coarser than
/// per-encoding; the sweet spot reported by the TeamPlay energy work).
enum class InstrClass : std::uint8_t {
    kNop,
    kMove,    ///< register moves and immediates
    kAlu,     ///< add/sub/logic/compare/shift
    kMul,
    kDiv,
    kLoad,
    kStore,
    kSelect,  ///< branch-free conditional: costed as a short ALU sequence
};

inline constexpr int kNumInstrClasses =
    static_cast<int>(InstrClass::kSelect) + 1;

/// Classify an IR opcode.
[[nodiscard]] InstrClass instr_class(ir::Opcode op);

/// Class mnemonic for reports.
[[nodiscard]] std::string_view instr_class_name(InstrClass cls);

/// Cost of one instruction class on a target: latency in cycles and dynamic
/// energy per execution at the nominal voltage.
struct CostEntry {
    double cycles = 1.0;
    double energy_pj = 0.0;
};

/// Per-core cost model.
struct TargetModel {
    std::string name;

    /// True when instruction latencies are statically exact (Sec. II-A's
    /// definition of a predictable architecture).
    bool predictable = true;

    std::array<CostEntry, kNumInstrClasses> cost{};

    // Structural overheads charged by both the simulator and the static
    // analyses, so static bounds are sound by construction on predictable
    // cores.
    double branch_cycles = 2.0;        ///< per executed If (compare+branch)
    double branch_energy_pj = 0.0;
    double loop_iter_cycles = 2.0;     ///< per iteration (index+test+branch)
    double loop_iter_energy_pj = 0.0;
    double call_cycles = 4.0;          ///< per call (save/restore/jump)
    double call_energy_pj = 0.0;

    /// Reference voltage the energy table was characterised at; dynamic
    /// energy scales with (V/Vnom)^2 when running at another operating point.
    double nominal_voltage = 1.2;

    /// Data-dependent power component: each instruction's instantaneous
    /// power also carries alpha * popcount(operand) pJ.  This is what the
    /// power side-channel metrics observe (Hamming-weight leakage model).
    double data_alpha_pj_per_bit = 1.5;

    // -- complex-architecture stochastic timing ----------------------------
    // Ignored (must be zero) for predictable cores.
    double cache_miss_prob = 0.0;      ///< per memory access
    double cache_miss_penalty = 0.0;   ///< cycles added on a miss
    double timing_jitter_sigma = 0.0;  ///< multiplicative latency noise

    /// Cycles an instruction of class `cls` takes (mean for complex cores).
    [[nodiscard]] double cycles_of(InstrClass cls) const {
        return cost[static_cast<std::size_t>(cls)].cycles;
    }
    /// Dynamic energy at nominal voltage, in picojoules.
    [[nodiscard]] double energy_of(InstrClass cls) const {
        return cost[static_cast<std::size_t>(cls)].energy_pj;
    }
};

// -- factory functions for the cores the paper's platforms use -------------

/// ARM Cortex-M0 (Nucleo STM32F091RC, camera pill, DL-on-M0 use cases).
[[nodiscard]] TargetModel cortex_m0_model();

/// Gaisler LEON3FT (GR712RC, space use case).  Predictable by design.
[[nodiscard]] TargetModel leon3_model();

/// ARM Cortex-A15 (Apalis TK1).  Complex: OoO pipeline, caches.
[[nodiscard]] TargetModel cortex_a15_model();

/// ARM Cortex-A57 (Jetson TX2 / Nano big cores).  Complex.
[[nodiscard]] TargetModel cortex_a57_model();

/// NVIDIA Denver 2 (Jetson TX2).  Complex, aggressive code morphing -> high
/// timing variance.
[[nodiscard]] TargetModel denver2_model();

/// Embedded GPU streaming-multiprocessor aggregate (TK1/TX2/Nano GPU).
/// Modelled as a throughput core: low effective cycles for MUL-heavy code,
/// high data-parallel energy efficiency, very high timing variance.
[[nodiscard]] TargetModel gpu_sm_model();

/// Low-power FPGA image co-processor of the camera pill, modelled as a fixed
/// accelerator core that executes the offloaded kernels very efficiently.
[[nodiscard]] TargetModel pill_fpga_model();

}  // namespace teamplay::isa
