// Static Worst-Case Execution Time analysis (the aiT stand-in of Fig. 1).
//
// Works compositionally over the structured IR: blocks sum their instruction
// latencies, alternatives take the maximum branch, loops multiply the body by
// the static bound, and calls expand the callee bound (memoised; recursion is
// rejected by IR validation).  On predictable cores the resulting bound is
// *sound and exact for the worst path* because the simulator charges the same
// cost tables.  On complex cores the analysis refuses — static WCET is
// meaningless there (Sec. II-B) — and reports why, which is the signal the
// toolchain uses to switch to the dynamic-profiling workflow.
#pragma once

#include <map>
#include <string>

#include "ir/program.hpp"
#include "platform/platform.hpp"

namespace teamplay::wcet {

struct WcetResult {
    bool analysable = false;
    double cycles = 0.0;
    double time_s = 0.0;
    std::string reason;  ///< filled when !analysable

    /// Worst-case number of *executed instructions* along the WCET path
    /// (used by the energy analyser to bound data-dependent energy).
    std::int64_t path_instrs = 0;
};

class Analyser {
public:
    explicit Analyser(const ir::Program& program) : program_(&program) {}

    /// Bound the WCET of `function` on `core` at operating point `opp_index`.
    [[nodiscard]] WcetResult analyse(const std::string& function,
                                     const platform::Core& core,
                                     std::size_t opp_index) const;

    /// Worst-case cycles of a single node (exposed for the proof builder in
    /// the contract system, which re-derives bounds rule by rule).
    [[nodiscard]] double node_cycles(const ir::Node& node,
                                     const isa::TargetModel& model) const;

private:
    struct Accum {
        double cycles = 0.0;
        std::int64_t instrs = 0;
    };

    [[nodiscard]] Accum walk(const ir::Node& node,
                             const isa::TargetModel& model,
                             std::map<std::string, Accum>& memo) const;

    const ir::Program* program_;
};

}  // namespace teamplay::wcet
