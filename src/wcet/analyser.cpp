#include "wcet/analyser.hpp"

#include <stdexcept>

namespace teamplay::wcet {

Analyser::Accum Analyser::walk(const ir::Node& node,
                               const isa::TargetModel& model,
                               std::map<std::string, Accum>& memo) const {
    Accum acc;
    switch (node.kind) {
        case ir::NodeKind::kBlock:
            for (const auto& instr : node.instrs) {
                acc.cycles += model.cycles_of(isa::instr_class(instr.op));
                ++acc.instrs;
            }
            break;
        case ir::NodeKind::kSeq:
            for (const auto& child : node.children) {
                const Accum c = walk(*child, model, memo);
                acc.cycles += c.cycles;
                acc.instrs += c.instrs;
            }
            break;
        case ir::NodeKind::kIf: {
            acc.cycles += model.branch_cycles;
            const Accum then_acc = walk(*node.then_branch, model, memo);
            Accum else_acc;
            if (node.else_branch) else_acc = walk(*node.else_branch, model, memo);
            // Alternative rule: the worst branch bounds both time and the
            // instruction count (each taken independently stays sound).
            acc.cycles += std::max(then_acc.cycles, else_acc.cycles);
            acc.instrs += std::max(then_acc.instrs, else_acc.instrs);
            break;
        }
        case ir::NodeKind::kLoop: {
            const Accum body = walk(*node.body, model, memo);
            const auto bound = static_cast<double>(node.bound);
            acc.cycles += bound * (model.loop_iter_cycles + body.cycles);
            acc.instrs += node.bound * body.instrs;
            break;
        }
        case ir::NodeKind::kCall: {
            const ir::Function* callee = program_->find(node.callee);
            if (callee == nullptr)
                throw std::runtime_error("wcet: undefined callee '" +
                                         node.callee + "'");
            const auto it = memo.find(node.callee);
            Accum callee_acc;
            if (it != memo.end()) {
                callee_acc = it->second;
            } else {
                callee_acc = walk(*callee->body, model, memo);
                memo.emplace(node.callee, callee_acc);
            }
            acc.cycles += model.call_cycles + callee_acc.cycles;
            acc.instrs += callee_acc.instrs;
            break;
        }
    }
    return acc;
}

double Analyser::node_cycles(const ir::Node& node,
                             const isa::TargetModel& model) const {
    std::map<std::string, Accum> memo;
    return walk(node, model, memo).cycles;
}

WcetResult Analyser::analyse(const std::string& function,
                             const platform::Core& core,
                             std::size_t opp_index) const {
    WcetResult result;
    if (!core.model.predictable) {
        result.analysable = false;
        result.reason = "core '" + core.name +
                        "' is not statically analysable (out-of-order "
                        "pipeline / caches); use the dynamic profiler";
        return result;
    }
    const ir::Function* fn = program_->find(function);
    if (fn == nullptr) {
        result.analysable = false;
        result.reason = "undefined function '" + function + "'";
        return result;
    }
    std::map<std::string, Accum> memo;
    const Accum acc = walk(*fn->body, core.model, memo);
    result.analysable = true;
    result.cycles = acc.cycles;
    result.path_instrs = acc.instrs;
    result.time_s = acc.cycles / core.opp(opp_index).freq_hz;
    return result;
}

}  // namespace teamplay::wcet
