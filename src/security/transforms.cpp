#include "security/transforms.hpp"

#include <map>
#include <optional>
#include <set>

#include "isa/target_model.hpp"
#include "security/taint.hpp"

namespace teamplay::security {

namespace {

/// Flatten an arm into its instruction list if it contains only Seq/Block
/// nodes (no nested control flow); nullopt otherwise.
std::optional<std::vector<ir::Instr>> flatten_arm(const ir::Node* arm) {
    std::vector<ir::Instr> out;
    if (arm == nullptr) return out;  // missing else arm == empty arm
    bool ok = true;
    ir::visit(*arm, [&ok](const ir::Node& node) {
        if (node.kind != ir::NodeKind::kSeq &&
            node.kind != ir::NodeKind::kBlock)
            ok = false;
    });
    if (!ok) return std::nullopt;
    ir::for_each_instr(*arm,
                       [&out](const ir::Instr& instr) { out.push_back(instr); });
    return out;
}

/// True when every instruction is register-pure (no memory access).
bool all_pure(const std::vector<ir::Instr>& instrs) {
    for (const auto& instr : instrs)
        if (!ir::is_pure(instr.op)) return false;
    return true;
}

/// Rename the destinations of an arm to fresh registers, keeping internal
/// def-use chains intact.  Returns the rewritten instructions and the map
/// original-reg -> final renamed reg.
std::pair<std::vector<ir::Instr>, std::map<ir::Reg, ir::Reg>> rename_arm(
    const std::vector<ir::Instr>& instrs, int& next_reg) {
    std::map<ir::Reg, ir::Reg> renames;
    std::vector<ir::Instr> out;
    out.reserve(instrs.size());
    for (ir::Instr instr : instrs) {
        const auto remap = [&renames](ir::Reg r) {
            const auto it = renames.find(r);
            return it == renames.end() ? r : it->second;
        };
        if (ir::reads_a(instr.op)) instr.a = remap(instr.a);
        if (ir::reads_b(instr.op)) instr.b = remap(instr.b);
        if (ir::reads_c(instr.op)) instr.c = remap(instr.c);
        if (ir::writes_dst(instr.op) && instr.dst != ir::kNoReg) {
            const ir::Reg fresh = next_reg++;
            renames[instr.dst] = fresh;
            instr.dst = fresh;
        }
        out.push_back(instr);
    }
    return {std::move(out), std::move(renames)};
}

/// Per-instruction-class static counts of an arm.
std::array<std::int64_t, isa::kNumInstrClasses> class_profile(
    const std::vector<ir::Instr>& instrs) {
    std::array<std::int64_t, isa::kNumInstrClasses> counts{};
    for (const auto& instr : instrs)
        ++counts[static_cast<std::size_t>(isa::instr_class(instr.op))];
    return counts;
}

/// A harmless dummy instruction of the requested class, operating on a
/// scratch register.  Stores are padded with loads instead (same latency
/// class on the supported targets) because a dummy store would clobber
/// memory.
ir::Instr dummy_of_class(isa::InstrClass cls, ir::Reg scratch,
                         ir::Reg zero_reg) {
    using ir::Opcode;
    switch (cls) {
        case isa::InstrClass::kNop:
            return {.op = Opcode::kNop};
        case isa::InstrClass::kMove:
            return {.op = Opcode::kMov, .dst = scratch, .a = scratch};
        case isa::InstrClass::kAlu:
            return {.op = Opcode::kAdd, .dst = scratch, .a = scratch,
                    .b = scratch};
        case isa::InstrClass::kMul:
            return {.op = Opcode::kMul, .dst = scratch, .a = scratch,
                    .b = scratch};
        case isa::InstrClass::kDiv:
            return {.op = Opcode::kDiv, .dst = scratch, .a = scratch,
                    .b = scratch};
        case isa::InstrClass::kLoad:
        case isa::InstrClass::kStore: {
            // Dummy memory op: load through the never-written zero register
            // so the address is always mem[0] (dummy stores would clobber
            // memory, so stores are padded with loads of the same latency
            // class instead).
            ir::Instr instr;
            instr.op = Opcode::kLoad;
            instr.dst = scratch;
            instr.a = zero_reg;
            instr.imm = 0;
            return instr;
        }
        case isa::InstrClass::kSelect:
            return {.op = Opcode::kSelect, .dst = scratch, .a = scratch,
                    .b = scratch, .c = scratch};
    }
    return {.op = Opcode::kNop};
}

}  // namespace

TransformStats ladderise(const ir::Program& program, ir::Function& fn) {
    TransformStats stats;
    const auto targets = secret_branches(program, fn);
    if (targets.empty()) return stats;
    const std::set<const ir::Node*> target_set(targets.begin(), targets.end());

    int next_reg = fn.reg_count;
    ir::visit(*fn.body, [&](ir::Node& node) {
        if (node.kind != ir::NodeKind::kIf || !target_set.contains(&node))
            return;
        const auto then_instrs = flatten_arm(node.then_branch.get());
        const auto else_instrs = flatten_arm(node.else_branch.get());
        if (!then_instrs || !else_instrs || !all_pure(*then_instrs) ||
            !all_pure(*else_instrs)) {
            ++stats.skipped;
            return;
        }

        auto [then_code, then_map] = rename_arm(*then_instrs, next_reg);
        auto [else_code, else_map] = rename_arm(*else_instrs, next_reg);

        // Merge: every register written by either arm gets a branch-free
        // select on the (still untouched) condition register.
        std::set<ir::Reg> written;
        for (const auto& [orig, renamed] : then_map) written.insert(orig);
        for (const auto& [orig, renamed] : else_map) written.insert(orig);

        std::vector<ir::Instr> merged = std::move(then_code);
        merged.insert(merged.end(), else_code.begin(), else_code.end());
        for (const ir::Reg r : written) {
            const auto t = then_map.find(r);
            const auto e = else_map.find(r);
            merged.push_back(ir::Instr{
                .op = ir::Opcode::kSelect,
                .dst = r,
                .a = t == then_map.end() ? r : t->second,
                .b = e == else_map.end() ? r : e->second,
                .c = node.cond});
        }

        // Rewrite the If node in place into a straight-line block.
        node.kind = ir::NodeKind::kBlock;
        node.instrs = std::move(merged);
        node.then_branch.reset();
        node.else_branch.reset();
        node.cond = ir::kNoReg;
        ++stats.rewritten;
    });
    fn.reg_count = next_reg;
    return stats;
}

TransformStats balance_secret_branches(const ir::Program& program,
                                       ir::Function& fn) {
    TransformStats stats;
    const auto targets = secret_branches(program, fn);
    if (targets.empty()) return stats;
    const std::set<const ir::Node*> target_set(targets.begin(), targets.end());

    const ir::Reg scratch = fn.reg_count;
    const ir::Reg zero_reg = fn.reg_count + 1;  // never written: always 0
    bool used_scratch = false;

    ir::visit(*fn.body, [&](ir::Node& node) {
        if (node.kind != ir::NodeKind::kIf || !target_set.contains(&node))
            return;
        const auto then_instrs = flatten_arm(node.then_branch.get());
        const auto else_instrs = flatten_arm(node.else_branch.get());
        if (!then_instrs || !else_instrs) {
            ++stats.skipped;
            return;
        }
        const auto then_prof = class_profile(*then_instrs);
        const auto else_prof = class_profile(*else_instrs);

        std::vector<ir::Instr> pad_then;
        std::vector<ir::Instr> pad_else;
        for (int c = 0; c < isa::kNumInstrClasses; ++c) {
            const auto cls = static_cast<isa::InstrClass>(c);
            const std::int64_t diff =
                then_prof[static_cast<std::size_t>(c)] -
                else_prof[static_cast<std::size_t>(c)];
            auto& pad = diff > 0 ? pad_else : pad_then;
            for (std::int64_t n = 0; n < std::abs(diff); ++n)
                pad.push_back(dummy_of_class(cls, scratch, zero_reg));
        }
        if (pad_then.empty() && pad_else.empty()) {
            // Arms already share a class profile: the branch is balanced as
            // written; count it as handled.
            ++stats.rewritten;
            return;
        }
        used_scratch = true;

        const auto append = [](ir::NodePtr& arm, std::vector<ir::Instr> pad) {
            if (pad.empty()) return;
            auto block = ir::Node::block(std::move(pad));
            if (!arm) {
                std::vector<ir::NodePtr> children;
                children.push_back(std::move(block));
                arm = ir::Node::seq(std::move(children));
            } else if (arm->kind == ir::NodeKind::kSeq) {
                arm->children.push_back(std::move(block));
            } else {
                std::vector<ir::NodePtr> children;
                children.push_back(std::move(arm));
                children.push_back(std::move(block));
                arm = ir::Node::seq(std::move(children));
            }
        };
        append(node.then_branch, std::move(pad_then));
        append(node.else_branch, std::move(pad_else));
        ++stats.rewritten;
    });
    if (used_scratch) fn.reg_count = zero_reg + 1;
    return stats;
}

}  // namespace teamplay::security
