#include "security/leakage.hpp"

#include <algorithm>

#include "support/stats.hpp"

namespace teamplay::security {

LeakageReport measure_leakage(const SecretRunner& runner, int samples,
                              int secret_bits, std::uint64_t seed) {
    LeakageReport report;
    if (samples < 4) return report;
    report.samples = samples;

    support::Rng rng(seed);
    const std::uint64_t secret_space =
        secret_bits >= 64 ? ~0ULL : ((1ULL << secret_bits) - 1);

    // -- random-secret campaign: timing MI / spread, power MI ---------------
    std::vector<int> labels;
    std::vector<double> cycles;
    std::vector<double> mean_power;
    labels.reserve(static_cast<std::size_t>(samples));
    for (int i = 0; i < samples; ++i) {
        const auto secret =
            static_cast<ir::Word>(rng.next() & secret_space);
        const auto run = runner(secret);
        labels.push_back(static_cast<int>(secret & 1));
        cycles.push_back(run.cycles);
        mean_power.push_back(support::mean(run.power_trace));
    }
    report.timing_mi_bits = support::mutual_information(labels, cycles);
    report.timing_spread_cycles =
        support::maximum(cycles) - support::minimum(cycles);
    report.power_mi_bits = support::mutual_information(labels, mean_power);

    // -- fixed-vs-random campaign: pointwise Welch t-test --------------------
    const auto fixed_secret =
        static_cast<ir::Word>(rng.next() & secret_space);
    std::vector<std::vector<double>> fixed_traces;
    std::vector<std::vector<double>> random_traces;
    std::size_t min_len = SIZE_MAX;
    const int per_class = samples / 2;
    for (int i = 0; i < per_class; ++i) {
        auto fixed_run = runner(fixed_secret);
        const auto random_secret =
            static_cast<ir::Word>(rng.next() & secret_space);
        auto random_run = runner(random_secret);
        min_len = std::min({min_len, fixed_run.power_trace.size(),
                            random_run.power_trace.size()});
        fixed_traces.push_back(std::move(fixed_run.power_trace));
        random_traces.push_back(std::move(random_run.power_trace));
    }
    if (min_len == SIZE_MAX || min_len == 0) return report;

    double max_t = 0.0;
    std::vector<double> fixed_point(fixed_traces.size());
    std::vector<double> random_point(random_traces.size());
    for (std::size_t p = 0; p < min_len; ++p) {
        for (std::size_t i = 0; i < fixed_traces.size(); ++i)
            fixed_point[i] = fixed_traces[i][p];
        for (std::size_t i = 0; i < random_traces.size(); ++i)
            random_point[i] = random_traces[i][p];
        max_t = std::max(max_t,
                         std::abs(support::welch_t(fixed_point, random_point)));
    }
    report.power_max_t = max_t;
    return report;
}

}  // namespace teamplay::security
