// Secret-taint analysis (the static half of the SecurityAnalyser).
//
// Secrets enter via instructions flagged `secret` (key loads).  Taint flows
// through register dataflow; the analysis reports the structures that leak
// through time or power side channels: secret-dependent branches (timing),
// secret-dependent memory addressing (cache timing), and secret-dependent
// loop trip counts.  These counts are also the static leakage proxy the
// multi-criteria compiler minimises as its third objective.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace teamplay::security {

struct TaintReport {
    int secret_sources = 0;
    int secret_branches = 0;       ///< If nodes with tainted condition
    int secret_memory_ops = 0;     ///< loads/stores with tainted address
    int secret_loop_bounds = 0;    ///< dynamic loops with tainted trip reg
    bool memory_tainted = false;   ///< some store wrote a tainted value

    /// True when any secret-dependent observable structure exists.
    [[nodiscard]] bool leaky() const {
        return secret_branches > 0 || secret_memory_ops > 0 ||
               secret_loop_bounds > 0;
    }

    /// Scalar proxy used as the compiler's security objective: branches and
    /// variable loop bounds dominate (whole-path timing), memory ops
    /// contribute cache-granular leakage.
    [[nodiscard]] double leakage_proxy() const {
        return 4.0 * secret_branches + 4.0 * secret_loop_bounds +
               1.0 * secret_memory_ops;
    }
};

/// Analyse one function (following calls; tainted arguments taint callee
/// parameters; a tainted memory write conservatively taints all later
/// loads).  `tainted_params` optionally marks parameters as secret at entry.
[[nodiscard]] TaintReport analyze_taint(
    const ir::Program& program, const ir::Function& fn,
    const std::set<int>& tainted_params = {});

/// The set of If nodes (by pre-order index among If nodes) whose condition
/// is secret-tainted; used by the transforms to pick rewrite targets.
[[nodiscard]] std::vector<const ir::Node*> secret_branches(
    const ir::Program& program, const ir::Function& fn,
    const std::set<int>& tainted_params = {});

}  // namespace teamplay::security
