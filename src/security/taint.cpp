#include "security/taint.hpp"

namespace teamplay::security {

namespace {

/// Dataflow state: which registers (of the current frame) are tainted, plus
/// the single conservative memory-taint bit.
struct State {
    std::vector<bool> regs;
    bool memory = false;
};

struct Walker {
    const ir::Program* program;
    TaintReport report;
    std::vector<const ir::Node*> branches;
    int depth = 0;
    /// Structure counting is disabled while iterating loop bodies to a taint
    /// fixpoint, so each leaky structure is reported exactly once.
    bool counting = true;

    bool tainted(const State& state, ir::Reg r) const {
        return r != ir::kNoReg && state.regs[static_cast<std::size_t>(r)];
    }

    void walk(const ir::Function& fn, const ir::Node& node, State& state) {
        switch (node.kind) {
            case ir::NodeKind::kBlock:
                for (const auto& instr : node.instrs) walk_instr(instr, state);
                break;
            case ir::NodeKind::kSeq:
                for (const auto& child : node.children)
                    walk(fn, *child, state);
                break;
            case ir::NodeKind::kIf: {
                if (counting && tainted(state, node.cond)) {
                    ++report.secret_branches;
                    branches.push_back(&node);
                }
                // Merge both branch outcomes (may-taint union).
                State then_state = state;
                walk(fn, *node.then_branch, then_state);
                State else_state = state;
                if (node.else_branch)
                    walk(fn, *node.else_branch, else_state);
                for (std::size_t i = 0; i < state.regs.size(); ++i)
                    state.regs[i] = then_state.regs[i] || else_state.regs[i];
                state.memory = then_state.memory || else_state.memory;
                break;
            }
            case ir::NodeKind::kLoop: {
                if (counting && node.trip_reg != ir::kNoReg &&
                    tainted(state, node.trip_reg))
                    ++report.secret_loop_bounds;
                // Phase 1: iterate the body to a taint fixpoint with
                // counting disabled (taint can flow through loop-carried
                // registers and memory, so one pass is not enough).
                const bool was_counting = counting;
                counting = false;
                for (int iter = 0; iter < 8; ++iter) {
                    const State before = state;
                    walk(fn, *node.body, state);
                    if (before.regs == state.regs &&
                        before.memory == state.memory)
                        break;
                }
                counting = was_counting;
                // Phase 2: one walk with the stable entry state to report
                // each leaky structure exactly once.
                if (counting) walk(fn, *node.body, state);
                break;
            }
            case ir::NodeKind::kCall: {
                const ir::Function* callee = program->find(node.callee);
                if (callee == nullptr || depth > 32) break;
                State inner;
                inner.regs.assign(
                    static_cast<std::size_t>(callee->reg_count), false);
                inner.memory = state.memory;
                for (std::size_t i = 0;
                     i < node.args.size() && i < inner.regs.size(); ++i)
                    inner.regs[i] = tainted(state, node.args[i]);
                ++depth;
                walk(*callee, *callee->body, inner);
                --depth;
                state.memory = inner.memory;
                if (node.ret != ir::kNoReg && callee->ret_reg != ir::kNoReg &&
                    inner.regs[static_cast<std::size_t>(callee->ret_reg)])
                    state.regs[static_cast<std::size_t>(node.ret)] = true;
                break;
            }
        }
    }

    void walk_instr(const ir::Instr& instr, State& state) {
        using ir::Opcode;
        bool in_taint = false;
        if (ir::reads_a(instr.op)) in_taint |= tainted(state, instr.a);
        if (ir::reads_b(instr.op)) in_taint |= tainted(state, instr.b);
        if (ir::reads_c(instr.op)) in_taint |= tainted(state, instr.c);

        if (instr.secret) {
            if (counting) ++report.secret_sources;
            in_taint = true;
        }

        switch (instr.op) {
            case Opcode::kLoad:
                if (counting && tainted(state, instr.a))
                    ++report.secret_memory_ops;
                // Conservative: loads observe the memory taint bit.
                in_taint |= state.memory;
                break;
            case Opcode::kStore:
                if (counting && tainted(state, instr.a))
                    ++report.secret_memory_ops;
                if (tainted(state, instr.b)) {
                    state.memory = true;
                    report.memory_tainted = true;
                }
                return;  // no dst
            default:
                break;
        }
        if (ir::writes_dst(instr.op) && instr.dst != ir::kNoReg)
            state.regs[static_cast<std::size_t>(instr.dst)] = in_taint;
    }
};

Walker run_walker(const ir::Program& program, const ir::Function& fn,
                  const std::set<int>& tainted_params) {
    Walker walker;
    walker.program = &program;
    State state;
    state.regs.assign(static_cast<std::size_t>(fn.reg_count), false);
    for (const int p : tainted_params)
        if (p >= 0 && p < fn.reg_count)
            state.regs[static_cast<std::size_t>(p)] = true;
    if (fn.body) walker.walk(fn, *fn.body, state);
    return walker;
}

}  // namespace

TaintReport analyze_taint(const ir::Program& program, const ir::Function& fn,
                          const std::set<int>& tainted_params) {
    return run_walker(program, fn, tainted_params).report;
}

std::vector<const ir::Node*> secret_branches(
    const ir::Program& program, const ir::Function& fn,
    const std::set<int>& tainted_params) {
    return run_walker(program, fn, tainted_params).branches;
}

}  // namespace teamplay::security
