// SecurityOptimiser program transformations (Fig. 1).
//
// Two countermeasures against the timing/power side channels, in increasing
// strength:
//
//  * balance_secret_branches — pad the cheaper arm of every secret-dependent
//    branch with class-matched dummy instructions so both arms take the same
//    worst-case time.  Cheap, removes the *timing* channel of the branch, but
//    first-order power leakage remains (the arms execute different data).
//
//  * ladderise — the "semi-automatic ladderisation" of Brown et al. [12] /
//    Marquer & Richmond [11]: rewrite a secret-dependent branch into
//    straight-line code that executes BOTH arms into renamed registers and
//    merges the results with branch-free selects.  Control flow no longer
//    depends on the secret at all.  Applicable when both arms are pure
//    (register-only) code; the transform verifies applicability and leaves
//    other branches untouched (the tool is semi-automatic in the paper, too).
#pragma once

#include "ir/program.hpp"

namespace teamplay::security {

struct TransformStats {
    int rewritten = 0;  ///< branches transformed
    int skipped = 0;    ///< secret branches left untouched (not applicable)
};

/// Rewrite secret-dependent pure branches of `fn` into select-based
/// straight-line code.  Extends fn.reg_count for renamed registers.
TransformStats ladderise(const ir::Program& program, ir::Function& fn);

/// Equalise the instruction-class profile of both arms of every
/// secret-dependent branch by appending dummy instructions to the cheaper
/// arm.  Works on branches whose arms contain only blocks (no nested loops
/// or calls).
TransformStats balance_secret_branches(const ir::Program& program,
                                       ir::Function& fn);

}  // namespace teamplay::security
