// Measured side-channel leakage metrics (the dynamic half of the
// SecurityAnalyser), following the Indiscernibility Methodology of Marquer
// et al. [10]: quantify information leakage from observables without
// assuming a particular attack.
//
// Three attack-agnostic observables are scored:
//   * timing: mutual information between a secret bit and total cycle count,
//     plus the raw worst-case timing spread over secrets;
//   * power (first order): TVLA-style fixed-vs-random Welch t-test over the
//     aligned per-instruction power trace;
//   * power (information): mutual information between a secret bit and the
//     trace's mean power.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace teamplay::security {

struct LeakageReport {
    int samples = 0;
    // Timing channel.
    double timing_mi_bits = 0.0;       ///< MI(secret bit; cycles)
    double timing_spread_cycles = 0.0; ///< max - min cycles over secrets
    // Power channel.
    double power_max_t = 0.0;          ///< max |Welch t| across trace points
    double power_mi_bits = 0.0;        ///< MI(secret bit; mean trace power)

    /// Conventional TVLA threshold: |t| > 4.5 indicates first-order leakage.
    [[nodiscard]] bool power_leaky() const { return power_max_t > 4.5; }
    /// Any observable channel carrying measurable information.
    [[nodiscard]] bool leaky() const {
        return timing_mi_bits > 0.05 || power_leaky() ||
               timing_spread_cycles > 0.5;
    }
};

/// Executes the device under test once for a given secret and returns the
/// run (with power trace).  The runner owns input staging and machine state.
using SecretRunner = std::function<sim::RunResult(ir::Word secret)>;

/// Measure leakage by sampling executions over random secrets (for the MI
/// metrics and timing spread) and fixed-vs-random classes (for the t-test).
/// `secret_bits` bounds the secret space (secrets drawn uniformly from
/// [0, 2^secret_bits)); the labelled bit is bit 0.
[[nodiscard]] LeakageReport measure_leakage(const SecretRunner& runner,
                                            int samples, int secret_bits,
                                            std::uint64_t seed);

}  // namespace teamplay::security
