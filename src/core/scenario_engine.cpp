#include "core/scenario_engine.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "core/stages.hpp"

namespace teamplay::core {

std::string BatchStats::to_string() const {
    std::ostringstream os;
    os << scenarios << " scenarios in " << wall_s << " s (" << scenarios_per_s
       << " scenarios/s, " << workers << " threads; cache: " << cache.hits
       << " hits / " << cache.misses << " misses, " << cache.entries
       << " entries)";
    return os.str();
}

ScenarioEngine::ScenarioEngine(Options options)
    : pool_(options.worker_threads),
      predictable_stages_(predictable_stage_configuration()),
      complex_stages_(complex_stage_configuration()) {}

ScenarioEngine::~ScenarioEngine() = default;

ToolchainReport ScenarioEngine::run_scenario(
    const ScenarioRequest& request) {
    if (request.program == nullptr || request.platform == nullptr)
        throw std::invalid_argument(
            "ScenarioRequest requires a program and a platform");
    ScenarioContext context;
    context.request = &request;
    context.program = request.program;
    context.program_fp = fingerprint_program(*request.program);
    context.platform = request.platform;
    context.options = request.options;
    context.cache = &cache_;
    context.pool = &pool_;
    {
        const std::lock_guard<std::mutex> lock(validated_mutex_);
        context.program_validated =
            validated_programs_.contains(context.program_fp);
    }

    const auto& stages = request.platform->predictable()
                             ? predictable_stages_
                             : complex_stages_;
    for (const auto& stage : stages) stage->run(context);
    // Record only after the pipeline (and thus ParseStage's validation)
    // succeeded, so an invalid program is re-validated — and re-rejected —
    // on every attempt.
    {
        const std::lock_guard<std::mutex> lock(validated_mutex_);
        validated_programs_.insert(context.program_fp);
    }
    return std::move(context.report);
}

ToolchainReport ScenarioEngine::run(const ScenarioRequest& request) {
    return run_scenario(request);
}

std::vector<ToolchainReport> ScenarioEngine::run_all(
    std::span<const ScenarioRequest> requests, BatchStats* stats) {
    const auto before = cache_.stats();
    const auto start = std::chrono::steady_clock::now();

    std::vector<ToolchainReport> reports(requests.size());
    pool_.parallel_for(requests.size(), [&](std::size_t i) {
        reports[i] = run_scenario(requests[i]);
    });

    if (stats != nullptr) {
        const auto after = cache_.stats();
        stats->scenarios = requests.size();
        stats->workers = pool_.concurrency();
        stats->wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        stats->scenarios_per_s =
            stats->wall_s > 0.0
                ? static_cast<double>(requests.size()) / stats->wall_s
                : 0.0;
        stats->cache.hits = after.hits - before.hits;
        stats->cache.misses = after.misses - before.misses;
        stats->cache.entries = after.entries;
    }
    return reports;
}

}  // namespace teamplay::core
