#include "core/scenario_engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <sstream>
#include <utility>

#include "core/stages.hpp"
#include "sim/trace.hpp"

namespace teamplay::core {

namespace detail {

/// Shared state behind one ScenarioTicket: the owned request, the
/// cancellation token, and the completion rendezvous (mutex/cv for
/// blocking waiters, an atomic for cheap polling).
struct TicketState {
    std::size_t id = 0;
    ScenarioRequest request;
    support::ThreadPool* pool = nullptr;
    ScenarioEngine::Completion on_complete;
    /// External tickets only (transport clients): invoked by the first
    /// `ScenarioTicket::cancel()` call, outside any lock.  Immutable after
    /// construction.
    std::function<void()> on_cancel;

    std::atomic<bool> cancel{false};
    std::atomic<bool> started{false};   ///< execution began on some thread
    std::atomic<bool> finished{false};
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool cancelled = false;
    bool shed = false;
    bool retrieved = false;
    ToolchainReport report;
    std::exception_ptr error;
};

}  // namespace detail

namespace {

/// Shared completion tail of engine-executed and external tickets: run the
/// callback, publish under the rendezvous lock, release the waiters.
void publish_ticket(detail::TicketState& state, ToolchainReport report,
                    std::exception_ptr error, bool cancelled,
                    bool shed = false) {
    if (state.on_complete) {
        ScenarioOutcome outcome;
        outcome.id = state.id;
        outcome.label = state.request.label;
        outcome.report = error ? nullptr : &report;
        outcome.error = error;
        outcome.cancelled = cancelled;
        outcome.shed = shed;
        try {
            state.on_complete(outcome);
        } catch (...) {
            if (!error) error = std::current_exception();
        }
    }

    {
        const std::lock_guard<std::mutex> lock(state.mutex);
        state.report = std::move(report);
        state.error = error;
        state.cancelled = cancelled;
        state.shed = shed;
        state.done = true;
    }
    state.finished.store(true, std::memory_order_release);
    state.cv.notify_all();
}

}  // namespace

namespace detail {

std::shared_ptr<TicketState> make_external_ticket(
    std::size_t id, ScenarioRequest request,
    ScenarioEngine::Completion on_complete,
    std::function<void()> on_cancel) {
    auto state = std::make_shared<TicketState>();
    state->id = id;
    state->request = std::move(request);
    state->on_complete = std::move(on_complete);
    state->on_cancel = std::move(on_cancel);
    // No pool and `started` pre-set: ScenarioTicket::wait must never try
    // to help-drain work that runs in another process.
    state->started.store(true, std::memory_order_release);
    return state;
}

ScenarioTicket wrap_external_ticket(std::shared_ptr<TicketState> state) {
    return ScenarioTicket(std::move(state));
}

void complete_external_ticket(TicketState& state, ToolchainReport report,
                              std::exception_ptr error, bool cancelled,
                              bool shed) {
    publish_ticket(state, std::move(report), error, cancelled, shed);
}

const ScenarioRequest& ticket_request(const TicketState& state) {
    return state.request;
}

std::size_t ticket_id(const TicketState& state) { return state.id; }

}  // namespace detail

// -- ScenarioTicket -----------------------------------------------------------

std::size_t ScenarioTicket::id() const { return state_->id; }

bool ScenarioTicket::done() const {
    return state_->finished.load(std::memory_order_acquire);
}

void ScenarioTicket::wait() const {
    auto& state = *state_;
    // Help drain the pool while our own task is still queued: with zero
    // workers this is what executes the scenario (in submission order), and
    // with workers it keeps the waiting thread productive instead of idle.
    // Once the task is running on another thread we stop picking up foreign
    // work — otherwise waiting on an early ticket could commit this thread
    // to a later submission's whole scenario and inflate the early ticket's
    // observed latency far past its actual completion.
    while (!state.finished.load(std::memory_order_acquire)) {
        if (state.started.load(std::memory_order_acquire)) break;
        if (!state.pool->try_run_one()) break;
    }
    std::unique_lock<std::mutex> lock(state.mutex);
    state.cv.wait(lock, [&state] { return state.done; });
}

ToolchainReport ScenarioTicket::get() {
    wait();
    auto& state = *state_;
    const std::lock_guard<std::mutex> lock(state.mutex);
    if (state.error) std::rethrow_exception(state.error);
    if (state.retrieved)
        throw std::logic_error("ScenarioTicket::get() is single-shot");
    state.retrieved = true;
    return std::move(state.report);
}

void ScenarioTicket::cancel() {
    if (!state_->cancel.exchange(true, std::memory_order_relaxed) &&
        state_->on_cancel)
        state_->on_cancel();
}

bool ScenarioTicket::cancel_requested() const {
    return state_->cancel.load(std::memory_order_relaxed);
}

// -- BatchStats ---------------------------------------------------------------

void BatchStats::merge(const BatchStats& other) {
    scenarios += other.scenarios;
    workers += other.workers;
    wall_s = std::max(wall_s, other.wall_s);
    scenarios_per_s =
        wall_s > 0.0 ? static_cast<double>(scenarios) / wall_s : 0.0;
    cache.merge(other.cache);
    stage_telemetry.merge(other.stage_telemetry);
    admission.merge(other.admission);
}

std::string BatchStats::to_string() const {
    std::ostringstream os;
    os << scenarios << " scenarios in " << wall_s << " s (" << scenarios_per_s
       << " scenarios/s, " << workers << " threads; cache: " << cache.hits
       << " hits / " << cache.misses << " misses, " << cache.evictions
       << " evictions, " << cache.entries << " entries)";
    return os.str();
}

// -- ScenarioEngine -----------------------------------------------------------

ScenarioEngine::ScenarioEngine(Options options)
    : cache_(options.cache_budget, std::move(options.result_store)),
      sim_(std::move(options.sim)),
      admission_(options.admission),
      predictable_stages_(predictable_stage_configuration()),
      complex_stages_(complex_stage_configuration()),
      // Lane 0 is reserved for parallel_for fan-out of running scenarios;
      // lanes 1..N map the priority classes (see thread_pool.hpp).
      pool_(options.worker_threads, kNumPriorityClasses + 1) {
    // Materialise the trace cache up front so every stage (and, through
    // ShardedScenarioEngine, every shard) shares one instance and its stats
    // are observable via trace_cache().
    if (sim_.backend == sim::SimBackend::kTrace && sim_.trace_cache == nullptr)
        sim_.trace_cache = sim::TraceCache::process_wide();
}

ScenarioEngine::~ScenarioEngine() {
    // Outstanding submissions run to completion before the members they
    // dereference go away: a caller-only engine drains them here, and a
    // worker pool finishes the rest inside ~ThreadPool — which runs first
    // (pool_ is the last-declared member) and joins every worker while the
    // stages, cache and telemetry are still alive.  Cancelled tickets exit
    // at their first stage boundary.
    while (pool_.try_run_one()) {
    }
}

ToolchainReport ScenarioEngine::run_scenario(
    const ScenarioRequest& request, const std::atomic<bool>* cancelled) {
    if (request.program == nullptr || request.platform == nullptr)
        throw std::invalid_argument(
            "ScenarioRequest requires a program and a platform");
    ScenarioContext context;
    context.request = &request;
    context.program = request.program;
    context.program_fp = fingerprint_program(*request.program);
    context.platform = request.platform;
    context.options = request.options;
    context.cache = &cache_;
    context.pool = &pool_;
    context.sim = sim_;
    context.cancelled = cancelled;
    {
        const std::lock_guard<std::mutex> lock(validated_mutex_);
        context.program_validated =
            validated_programs_.contains(context.program_fp);
    }

    const auto& stages = request.platform->predictable()
                             ? predictable_stages_
                             : complex_stages_;
    std::vector<std::string_view> stage_names;
    stage_names.reserve(stages.size());
    for (const auto& stage : stages) stage_names.push_back(stage->name());
    for (std::size_t i = 0; i < stages.size(); ++i) {
        const auto& stage = stages[i];
        // Cooperative cancellation, checked at every stage boundary: work
        // already handed to the cache completes (single-flight slots are
        // never abandoned), so a cancelled request stays retryable.
        if (cancelled != nullptr &&
            cancelled->load(std::memory_order_relaxed))
            throw CancelledError(request.label);
        // Deadline budget, enforced at the same boundaries: shed (throws
        // ShedError, equally retryable) once the rolling estimate of the
        // remaining stages no longer fits before the deadline.
        if (request.deadline.has_value())
            admission_.enforce_budget(
                request.priority, *request.deadline,
                std::span<const std::string_view>(stage_names).subspan(i),
                request.label);
        const auto lap_start = std::chrono::steady_clock::now();
        stage->run(context);
        context.report.stage_laps.push_back(
            {std::string(stage->name()),
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           lap_start)
                 .count()});
    }
    // Record only after the pipeline (and thus ParseStage's validation)
    // succeeded, so an invalid program is re-validated — and re-rejected —
    // on every attempt.
    {
        const std::lock_guard<std::mutex> lock(validated_mutex_);
        validated_programs_.insert(context.program_fp);
    }
    {
        const std::lock_guard<std::mutex> lock(telemetry_mutex_);
        telemetry_.merge(context.report.stage_laps);
    }
    return std::move(context.report);
}

void ScenarioEngine::execute(detail::TicketState& state) {
    state.started.store(true, std::memory_order_release);
    admission_.on_start(state.request.priority);
    ToolchainReport report;
    std::exception_ptr error;
    bool cancelled = false;
    bool shed = false;
    try {
        report = run_scenario(state.request, &state.cancel);
        admission_.on_completed(state.request.priority, report.stage_laps);
    } catch (const ShedError&) {
        shed = true;
        error = std::current_exception();
        admission_.on_shed(state.request.priority);
    } catch (const CancelledError&) {
        cancelled = true;
        error = std::current_exception();
        admission_.on_cancelled(state.request.priority);
    } catch (...) {
        error = std::current_exception();
        admission_.on_failed(state.request.priority);
    }
    publish_ticket(state, std::move(report), error, cancelled, shed);
}

ScenarioTicket ScenarioEngine::submit(ScenarioRequest request,
                                      Completion on_complete) {
    auto state = std::make_shared<detail::TicketState>();
    state->id = next_ticket_id_.fetch_add(1, std::memory_order_relaxed);
    state->request = std::move(request);
    state->pool = &pool_;
    state->on_complete = std::move(on_complete);
    // Admission gate: a refused request never touches the pool — its
    // ticket is published failed (retryable ShedError) right here, on the
    // submitting thread, so overload answers in microseconds.
    if (auto rejection = admission_.try_admit(state->request.priority,
                                              state->request.deadline,
                                              state->request.label)) {
        state->started.store(true, std::memory_order_release);
        publish_ticket(*state, {}, rejection, /*cancelled=*/false,
                       /*shed=*/true);
        return ScenarioTicket(std::move(state));
    }
    // The task owns a reference to the state, so a caller that drops its
    // ticket (fire-and-forget with a completion callback) is safe.  The
    // pool lane is the priority class (lane 0 belongs to stage fan-out);
    // the deadline orders the request within its lane (EDF), so a tight
    // deadline admitted after a loose one still starts first.
    pool_.submit([this, state] { execute(*state); },
                 1 + static_cast<std::size_t>(state->request.priority),
                 state->request.deadline);
    return ScenarioTicket(std::move(state));
}

ToolchainReport ScenarioEngine::run(const ScenarioRequest& request) {
    return submit(request).get();
}

std::vector<ToolchainReport> ScenarioEngine::run_all(
    std::span<const ScenarioRequest> requests, BatchStats* stats) {
    const auto before = cache_.stats();
    const auto admission_before = admission_.stats();
    const auto start = std::chrono::steady_clock::now();

    std::vector<ScenarioTicket> tickets;
    tickets.reserve(requests.size());
    for (const auto& request : requests) tickets.push_back(submit(request));

    std::vector<ToolchainReport> reports(requests.size());
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        try {
            reports[i] = tickets[i].get();
        } catch (...) {
            if (!first_error) first_error = std::current_exception();
        }
    }

    if (stats != nullptr) {
        const auto after = cache_.stats();
        stats->scenarios = requests.size();
        stats->workers = pool_.concurrency();
        stats->wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        stats->scenarios_per_s =
            stats->wall_s > 0.0
                ? static_cast<double>(requests.size()) / stats->wall_s
                : 0.0;
        stats->cache = after.since(before);
        stats->admission = admission_.stats().since(admission_before);
        // Merge in request order: deterministic, and identical in shape to
        // what a streamed consumer would aggregate from its callbacks.
        for (const auto& report : reports)
            stats->stage_telemetry.merge(report.stage_laps);
    }
    if (first_error) std::rethrow_exception(first_error);
    return reports;
}

StageTelemetry ScenarioEngine::stage_telemetry() const {
    const std::lock_guard<std::mutex> lock(telemetry_mutex_);
    return telemetry_;
}

}  // namespace teamplay::core
