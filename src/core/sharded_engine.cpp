#include "core/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "csl/csl.hpp"
#include "ir/fingerprint.hpp"
#include "net/remote_shard.hpp"
#include "sim/trace.hpp"

namespace teamplay::core {

namespace {

/// Finalising mix (splitmix64): the structural fingerprint is
/// well-distributed in the high bits but the modulo below consumes the low
/// ones, so stir before reducing.
std::uint64_t stir(std::uint64_t value) {
    value += 0x9E3779B97F4A7C15ULL;
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9ULL;
    value = (value ^ (value >> 27)) * 0x94D049BB133111EBULL;
    return value ^ (value >> 31);
}

std::uint64_t routing_fingerprint(const ir::Program* program,
                                  const csl::AppSpec* spec) {
    if (program == nullptr) return 0;  // unreachable: shard_of pins these
    // Route by the *primary kernel* — the first task's entry (a pipeline's
    // source stage).  Applications that share their front kernels (the
    // cross-program memoisation case) then colocate even though their
    // tails differ, which a fold over every entry would scatter.
    if (spec != nullptr && !spec->tasks.empty())
        return ir::structural_fingerprint(*program,
                                          spec->tasks.front().entry);
    // No spec available (unparsed or unparsable CSL): fall back to program
    // content so routing stays deterministic; the shard reports any CSL
    // error through the ticket.
    return fingerprint_program(*program);
}

net::RemoteShard::Options parse_endpoint(const std::string& endpoint) {
    const auto colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == endpoint.size())
        throw std::invalid_argument(
            "remote shard endpoint must be host:port, got \"" + endpoint +
            "\"");
    unsigned long port = 0;  // NOLINT(google-runtime-int)
    try {
        std::size_t consumed = 0;
        port = std::stoul(endpoint.substr(colon + 1), &consumed);
        if (consumed != endpoint.size() - colon - 1) port = 0;
    } catch (const std::exception&) {
        port = 0;
    }
    if (port == 0 || port > 65535)
        throw std::invalid_argument(
            "remote shard endpoint has an invalid port: \"" + endpoint +
            "\"");
    net::RemoteShard::Options options;
    options.host = endpoint.substr(0, colon);
    options.port = static_cast<std::uint16_t>(port);
    return options;
}

}  // namespace

ShardedScenarioEngine::ShardedScenarioEngine(Options options) {
    // Validate and build the remote clients first so a malformed endpoint
    // throws before any engine (and its pool) is spun up.  shards == 0 is
    // only normalised to 1 when there are no remotes: with remotes it
    // means a pure front-end that routes everything across the wire.
    remote_failures_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        options.remote_endpoints.size());
    for (std::size_t i = 0; i < options.remote_endpoints.size(); ++i)
        remote_failures_[i].store(0, std::memory_order_relaxed);
    remotes_.reserve(options.remote_endpoints.size());
    for (const auto& endpoint : options.remote_endpoints)
        remotes_.push_back(
            std::make_unique<net::RemoteShard>(parse_endpoint(endpoint)));
    fetch_peers_.reserve(options.fetch_peers.size());
    for (const auto& endpoint : options.fetch_peers)
        fetch_peers_.push_back(
            std::make_unique<net::RemoteShard>(parse_endpoint(endpoint)));

    const std::size_t shard_count =
        options.shards == 0 && remotes_.empty() ? 1 : options.shards;
    // One trace cache for the whole service: materialise it before the
    // shards so every shard's engine receives the same instance.
    if (options.sim.backend == sim::SimBackend::kTrace &&
        options.sim.trace_cache == nullptr)
        options.sim.trace_cache = sim::TraceCache::process_wide();
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
        ScenarioEngine::Options shard_options;
        shard_options.worker_threads =
            options.worker_threads / shard_count +
            (i < options.worker_threads % shard_count ? 1 : 0);
        shard_options.cache_budget = options.cache_budget;
        shard_options.result_store = options.result_store;
        shard_options.sim = options.sim;
        shard_options.admission = options.admission;
        shards_.push_back(std::make_unique<ScenarioEngine>(shard_options));
    }

    if (!fetch_peers_.empty()) {
        // First hit wins; peers never throw (transport failures are
        // swallowed into misses inside RemoteShard::fetch).  The raw
        // pointers stay valid for the shards' whole lifetime — the peer
        // vector is declared before the shards and destroyed after them.
        std::vector<net::RemoteShard*> peers;
        peers.reserve(fetch_peers_.size());
        for (const auto& peer : fetch_peers_) peers.push_back(peer.get());
        for (const auto& shard : shards_)
            shard->set_remote_fetch(
                [peers](const EvaluationKey& key)
                    -> std::optional<EvaluationResult> {
                    for (net::RemoteShard* peer : peers)
                        if (auto result = peer->fetch(key)) return result;
                    return std::nullopt;
                });
    }
}

ShardedScenarioEngine::~ShardedScenarioEngine() = default;

std::size_t ShardedScenarioEngine::shard_of(
    const ScenarioRequest& request) const {
    // Nothing to route with one shard: skip the transient parse and the
    // fingerprint walk entirely (the CLI default).
    if (shard_count() == 1) return 0;
    // A malformed request is pinned to shard 0, which reports the error
    // through its ticket.
    if (request.program == nullptr) return 0;
    // A request carrying only CSL source is parsed into a transient spec
    // for routing; the request itself is forwarded untouched, so the
    // scenario's own parse runs inside its shard's ParseStage (identical
    // stage telemetry and error surface to the single engine).  A
    // malformed source routes on program content and the shard raises the
    // CslError into the ticket.
    const csl::AppSpec* spec =
        request.spec.has_value() ? &*request.spec : nullptr;
    std::optional<csl::AppSpec> transient;
    if (spec == nullptr && request.program != nullptr &&
        !request.csl_source.empty()) {
        try {
            transient = csl::parse(request.csl_source);
            spec = &*transient;
        } catch (const csl::CslError&) {
        }
    }
    return stir(routing_fingerprint(request.program, spec)) %
           shard_count();
}

ScenarioTicket ShardedScenarioEngine::submit(ScenarioRequest request,
                                             Completion on_complete) {
    const std::size_t shard = shard_of(request);
    if (shard < shards_.size())
        return shards_[shard]->submit(std::move(request),
                                      std::move(on_complete));
    const std::size_t remote = shard - shards_.size();
    // Health bookkeeping rides the completion: a transport failure
    // (RemoteShardError) bumps the remote's consecutive-failure gauge;
    // any completed exchange — a report, a server-side shed, a cancel,
    // even a server error reply — proves the remote alive and resets it.
    std::atomic<std::uint64_t>* failures = &remote_failures_[remote];
    return remotes_[remote]->submit(
        std::move(request),
        [failures, on_complete = std::move(on_complete)](
            const ScenarioOutcome& outcome) {
            bool transport_failure = false;
            if (outcome.error) {
                try {
                    std::rethrow_exception(outcome.error);
                } catch (const net::RemoteShardError&) {
                    transport_failure = true;
                } catch (...) {
                }
            }
            if (transport_failure)
                failures->fetch_add(1, std::memory_order_relaxed);
            else
                failures->store(0, std::memory_order_relaxed);
            if (on_complete) on_complete(outcome);
        });
}

ToolchainReport ShardedScenarioEngine::run(const ScenarioRequest& request) {
    return submit(request).get();
}

std::vector<ToolchainReport> ShardedScenarioEngine::run_all(
    std::span<const ScenarioRequest> requests, BatchStats* stats) {
    std::vector<EvaluationCache::Stats> before;
    std::vector<AdmissionStats> admission_before;
    std::vector<std::optional<BatchStats>> remote_before;
    if (stats != nullptr) {
        before.reserve(shards_.size());
        admission_before.reserve(shards_.size());
        for (const auto& shard : shards_) {
            before.push_back(shard->cache_stats());
            admission_before.push_back(shard->admission_stats());
        }
        remote_before.reserve(remotes_.size());
        for (const auto& remote : remotes_)
            remote_before.push_back(remote->stats());
    }
    const auto start = std::chrono::steady_clock::now();

    std::vector<ScenarioTicket> tickets;
    tickets.reserve(requests.size());
    for (const auto& request : requests) tickets.push_back(submit(request));

    std::vector<ToolchainReport> reports(requests.size());
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        try {
            reports[i] = tickets[i].get();
        } catch (...) {
            if (!first_error) first_error = std::current_exception();
        }
    }

    if (stats != nullptr) {
        stats->scenarios = requests.size();
        stats->workers = concurrency();
        stats->wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
        stats->scenarios_per_s =
            stats->wall_s > 0.0
                ? static_cast<double>(requests.size()) / stats->wall_s
                : 0.0;
        // Per-shard counter deltas fold into one batch-wide view; entries/
        // resident_cost are end-of-batch gauges, summed across shards.
        // Remote shards contribute the delta of two stats RPCs; a remote
        // that was unreachable at either edge contributes nothing rather
        // than a bogus delta.
        stats->cache = {};
        stats->admission = {};
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            stats->cache.merge(shards_[i]->cache_stats().since(before[i]));
            stats->admission.merge(
                shards_[i]->admission_stats().since(admission_before[i]));
        }
        for (std::size_t i = 0; i < remotes_.size(); ++i) {
            if (!remote_before[i].has_value()) continue;
            const auto after = remotes_[i]->stats();
            if (after.has_value()) {
                stats->cache.merge(
                    after->cache.since(remote_before[i]->cache));
                stats->admission.merge(after->admission.since(
                    remote_before[i]->admission));
            }
        }
        // The per-remote consecutive-failure gauges ride along so a batch
        // caller sees transport health without a second accessor.
        stats->admission.remote_failures.resize(
            std::max(stats->admission.remote_failures.size(),
                     remotes_.size()),
            0);
        for (std::size_t i = 0; i < remotes_.size(); ++i)
            stats->admission.remote_failures[i] +=
                remote_failures_[i].load(std::memory_order_relaxed);
        // Remote reports carry their server-side stage laps plus the
        // client-side net/* hop laps, so one fold covers both sides.
        for (const auto& report : reports)
            stats->stage_telemetry.merge(report.stage_laps);
    }
    if (first_error) std::rethrow_exception(first_error);
    return reports;
}

AdmissionStats ShardedScenarioEngine::admission_stats() const {
    AdmissionStats folded;
    for (const auto& shard : shards_)
        folded.merge(shard->admission_stats());
    for (const auto& remote : remotes_)
        if (const auto stats = remote->stats())
            folded.merge(stats->admission);
    // This front-end's transport-health gauges, in endpoint order.  The
    // merge above sums element-wise, so remote-side entries (normally
    // empty — a server engine has no remotes) would stack under ours;
    // acceptable for a gauge vector documented as "this engine's view".
    AdmissionStats local;
    local.remote_failures.reserve(remotes_.size());
    for (std::size_t i = 0; i < remotes_.size(); ++i)
        local.remote_failures.push_back(
            remote_failures_[i].load(std::memory_order_relaxed));
    folded.merge(local);
    return folded;
}

EvaluationCache::Stats ShardedScenarioEngine::cache_stats() const {
    EvaluationCache::Stats folded;
    for (const auto& shard : shards_) folded.merge(shard->cache_stats());
    for (const auto& remote : remotes_)
        if (const auto stats = remote->stats())
            folded.merge(stats->cache);
    return folded;
}

EvaluationCache::Stats ShardedScenarioEngine::shard_cache_stats(
    std::size_t shard) const {
    return shards_.at(shard)->cache_stats();
}

StageTelemetry ShardedScenarioEngine::stage_telemetry() const {
    StageTelemetry folded;
    for (const auto& shard : shards_) folded.merge(shard->stage_telemetry());
    for (const auto& remote : remotes_) {
        // Server-side pipeline stages and client-side transport hops are
        // disjoint lap sets (net/* laps are only ever recorded on this
        // side), so folding both never double-counts.
        if (const auto stats = remote->stats())
            folded.merge(stats->stage_telemetry);
        folded.merge(remote->transport_telemetry());
    }
    return folded;
}

std::size_t ShardedScenarioEngine::concurrency() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) total += shard->concurrency();
    for (const auto& remote : remotes_)
        if (const auto stats = remote->stats()) total += stats->workers;
    return total;
}

void ShardedScenarioEngine::flush_result_store() {
    for (const auto& shard : shards_) shard->flush_result_store();
}

void ShardedScenarioEngine::clear_caches() {
    for (const auto& shard : shards_) shard->clear_cache();
}

}  // namespace teamplay::core
