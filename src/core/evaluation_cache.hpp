// Memoised analysis results shared across pipeline stages and scenarios.
//
// Every expensive per-(task entry, core class, OPP) computation of the
// toolchain — a multi-criteria compiled Pareto front, a PowProfiler
// measurement campaign, a taint analysis — is a pure function of the source
// program and a handful of option values.  The cache keys on exactly that
// tuple plus an `AnalysisKind` discriminator and an options fingerprint, so
// a batch of scenarios that share an application re-analyses each key once,
// no matter how many platform/option variations the batch sweeps.
//
// Concurrency: lookups are single-flight.  The first requester of a key
// computes the value while later requesters block on a shared future, so a
// worker pool hammering the same key does the work once and all observers
// see one identical result (a prerequisite for the engine's determinism
// guarantee).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "compiler/multi_criteria.hpp"
#include "profiler/pow_profiler.hpp"

namespace teamplay::core {

/// What a cache entry holds.
enum class AnalysisKind : std::uint8_t {
    kCompiledFront,  ///< multi-criteria compiler Pareto front (static flow)
    kProfile,        ///< PowProfiler measurement campaign (complex flow)
    kTaint,          ///< static leakage proxy of an entry function
};

[[nodiscard]] std::string_view analysis_kind_name(AnalysisKind kind);

/// FNV-1a accumulator for the option values that influence a result.
struct Fingerprint {
    std::uint64_t value = 14695981039346656037ULL;

    Fingerprint& mix(std::uint64_t word);
    Fingerprint& mix(double number);
    Fingerprint& mix(std::string_view text);
};

struct EvaluationKey {
    /// Content fingerprint of the analysed IR program (see
    /// `fingerprint_program`).  Deliberately not a pointer: a long-lived
    /// engine must not serve stale results when a freed program's address
    /// is reused by a new one.
    std::uint64_t program_fp = 0;
    std::string entry;              ///< task entry function
    std::string core_class;         ///< "" for program-wide analyses
    std::size_t opp_index = 0;      ///< 0 when the kind spans all OPPs
    AnalysisKind kind = AnalysisKind::kCompiledFront;
    std::uint64_t params = 0;       ///< fingerprint of influencing options

    auto operator<=>(const EvaluationKey&) const = default;
};

/// Content hash of a program (its canonical textual dump), the program
/// component of every EvaluationKey.
[[nodiscard]] std::uint64_t fingerprint_program(const ir::Program& program);

/// One memoised result; only the member matching the key's kind is set.
struct EvaluationResult {
    std::shared_ptr<const std::vector<compiler::TaskVersion>> front;
    profiler::TaskProfile profile;
    double leakage = 0.0;
};

class EvaluationCache {
public:
    using Compute = std::function<EvaluationResult()>;

    /// Return the result for `key`, invoking `compute` exactly once per key
    /// across all threads.  A compute that throws propagates to every
    /// waiter and leaves the key uncached so it can be retried.
    [[nodiscard]] std::shared_ptr<const EvaluationResult> lookup(
        const EvaluationKey& key, const Compute& compute);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t entries = 0;

        [[nodiscard]] double hit_ratio() const {
            const auto total = hits + misses;
            return total > 0 ? static_cast<double>(hits) /
                                   static_cast<double>(total)
                             : 0.0;
        }
    };

    [[nodiscard]] Stats stats() const;
    void clear();

private:
    using Slot = std::shared_future<std::shared_ptr<const EvaluationResult>>;

    mutable std::mutex mutex_;
    std::map<EvaluationKey, Slot> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

}  // namespace teamplay::core
