// Memoised analysis results shared across pipeline stages and scenarios.
//
// Every expensive per-(task entry, core class, OPP) computation of the
// toolchain — a multi-criteria compiled Pareto front, a PowProfiler
// measurement campaign, a taint analysis — is a pure function of the source
// program and a handful of option values.  The cache keys on exactly that
// tuple plus an `AnalysisKind` discriminator and an options fingerprint.
// The program component is the *structural fingerprint* of the entry
// function's reachable sub-program (ir::structural_fingerprint), not
// whole-program identity, so a batch re-analyses each key once no matter
// how many platform/option variations it sweeps — and scenarios from
// *different* applications that embed the same kernel share the memoised
// result too (cross-program memoisation).
//
// Concurrency: lookups are single-flight.  The first requester of a key
// computes the value while later requesters block on a shared future, so a
// worker pool hammering the same key does the work once and all observers
// see one identical result (a prerequisite for the engine's determinism
// guarantee).
//
// Bounding: a long-lived service cannot let the cache grow without limit.
// An optional `Budget` (max resident entries and/or max resident cost)
// turns the cache into an LRU: completed entries are kept on a recency
// list, a hit refreshes recency, and admission evicts from the cold end
// until the budget holds again.  In-flight slots (compute still running)
// are *never* evicted — eviction only considers completed entries — so
// single-flight semantics survive any budget, including one smaller than a
// single entry (which simply makes that entry uncached after its waiters
// are served).  Eviction changes only *when* a value is recomputed, never
// the value: results stay byte-identical under any budget.
//
// Persistence: an optional attached ResultStore (result_store.hpp) gives
// completed entries a life beyond the process.  A miss consults the store
// before computing — a store hit is decoded, checksum-verified and
// admitted exactly as if computed, so single-flight semantics, eviction
// and determinism are untouched; entries spill to the store on LRU
// eviction and on shutdown flush (`flush_to_store`, run by the
// destructor).  The store is shared: several caches (engine shards) and
// several processes can point at one directory, which is how a restarted
// or sibling service warm-starts.  Store corruption is never fatal — a
// rejected frame is counted and the entry recomputed.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "compiler/multi_criteria.hpp"
#include "profiler/pow_profiler.hpp"

namespace teamplay::core {

class ResultStore;

/// What a cache entry holds.
enum class AnalysisKind : std::uint8_t {
    kCompiledFront,  ///< multi-criteria compiler Pareto front (static flow)
    kProfile,        ///< PowProfiler measurement campaign (complex flow)
    kTaint,          ///< static leakage proxy of an entry function
};

[[nodiscard]] std::string_view analysis_kind_name(AnalysisKind kind);

/// FNV-1a accumulator for the option values that influence a result.
struct Fingerprint {
    std::uint64_t value = 14695981039346656037ULL;

    Fingerprint& mix(std::uint64_t word);
    Fingerprint& mix(double number);
    Fingerprint& mix(std::string_view text);
};

struct EvaluationKey {
    /// Canonical structural fingerprint of the entry function's reachable
    /// sub-program (see `ir::structural_fingerprint`), *not* whole-program
    /// identity: two applications embedding the same kernel produce the
    /// same fingerprint, so memoised fronts/profiles/taints are shared
    /// across programs.  Deliberately not a pointer: a long-lived engine
    /// must not serve stale results when a freed program's address is
    /// reused by a new one.
    std::uint64_t structural_fp = 0;
    std::string entry;              ///< task entry function
    std::string core_class;         ///< "" for program-wide analyses
    std::size_t opp_index = 0;      ///< 0 when the kind spans all OPPs
    AnalysisKind kind = AnalysisKind::kCompiledFront;
    std::uint64_t params = 0;       ///< fingerprint of influencing options

    auto operator<=>(const EvaluationKey&) const = default;
};

/// Content hash of a program (its canonical textual dump), the program
/// component of every EvaluationKey.
[[nodiscard]] std::uint64_t fingerprint_program(const ir::Program& program);

/// One memoised result; only the member matching the key's kind is set.
struct EvaluationResult {
    std::shared_ptr<const std::vector<compiler::TaskVersion>> front;
    profiler::TaskProfile profile;
    double leakage = 0.0;
};

/// Relative retention weight of a result: 1 for a scalar entry plus 1 per
/// compiled version held (each TaskVersion owns a transformed program
/// clone, the dominant memory of the cache).
[[nodiscard]] double evaluation_result_cost(const EvaluationResult& result);

class EvaluationCache {
public:
    using Compute = std::function<EvaluationResult()>;

    /// Remote cache tier (net/remote_shard.hpp): asks a fabric peer for a
    /// result it may already hold.  Returns nullopt on a peer miss; any
    /// transport failure must be swallowed by the callable or it is treated
    /// as a miss — a flaky peer can never fail a lookup, only slow it.
    using RemoteFetch =
        std::function<std::optional<EvaluationResult>(const EvaluationKey&)>;

    /// Retention budget; 0 means unbounded on that axis.  `max_entries`
    /// bounds completed resident entries, `max_cost` bounds their summed
    /// `evaluation_result_cost`.
    struct Budget {
        std::size_t max_entries = 0;
        double max_cost = 0.0;

        [[nodiscard]] bool bounded() const {
            return max_entries > 0 || max_cost > 0.0;
        }
    };

    EvaluationCache() = default;
    /// `store` (may be null) persists completed entries across processes;
    /// it is fixed for the cache's lifetime, so no lock guards the pointer.
    explicit EvaluationCache(Budget budget,
                             std::shared_ptr<ResultStore> store = nullptr)
        : budget_(budget), store_(std::move(store)) {}
    ~EvaluationCache();

    /// Return the result for `key`, invoking `compute` exactly once per
    /// *resident generation* of the key across all threads (an evicted key
    /// recomputes on its next lookup).  A compute that throws propagates to
    /// every waiter and leaves the key uncached so it can be retried.
    [[nodiscard]] std::shared_ptr<const EvaluationResult> lookup(
        const EvaluationKey& key, const Compute& compute);

    /// One consistent snapshot: every field is read under the same lock, so
    /// `entries` is the live entry count at the moment `hits`/`misses`/
    /// `evictions` were sampled (no stale mixtures).
    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;   ///< entries dropped to hold the budget
        /// Result-store traffic of *this cache* (all zero without an
        /// attached store).  A store hit is also a cache miss — the miss
        /// was served by decoding instead of computing; `store_misses`
        /// counts the misses that had to compute, so "recomputes of
        /// previously stored keys" is exactly this counter on a warm run.
        std::uint64_t store_hits = 0;
        std::uint64_t store_misses = 0;
        std::uint64_t spills = 0;         ///< entries appended to the store
        std::uint64_t store_rejects = 0;  ///< corrupt frames → recomputed
        /// Remote-fetch traffic (all zero without a fetch hook): misses
        /// that the store could not serve ask a fabric peer before
        /// computing.  `remote_misses` counts the lookups that then had to
        /// compute locally, so "recomputes of results a peer held" is
        /// exactly zero remote misses on a fully warmed fabric.
        std::uint64_t remote_hits = 0;
        std::uint64_t remote_misses = 0;
        std::size_t entries = 0;       ///< live entries (incl. in-flight)
        double resident_cost = 0.0;    ///< summed cost of completed entries

        [[nodiscard]] double hit_ratio() const {
            const auto total = hits + misses;
            return total > 0 ? static_cast<double>(hits) /
                                   static_cast<double>(total)
                             : 0.0;
        }

        /// Fold another snapshot in (commutative, like StageTelemetry's
        /// merge): counters and gauges sum, so per-shard snapshots
        /// aggregate into one service-wide view without ad-hoc summing in
        /// callers.
        void merge(const Stats& other);

        /// Counter delta since an earlier snapshot of the *same* cache:
        /// hits/misses/evictions subtract, while `entries`/`resident_cost`
        /// (point-in-time gauges) keep this snapshot's values.
        [[nodiscard]] Stats since(const Stats& before) const;
    };

    [[nodiscard]] Stats stats() const;
    [[nodiscard]] Budget budget() const { return budget_; }

    /// Install (or clear, with an empty function) the remote cache tier.
    /// Consulted on the owner path of a miss *after* the store consult and
    /// *before* computing: local memory, then local disk, then the fabric,
    /// then work — each tier strictly cheaper than the next.
    void set_remote_fetch(RemoteFetch fetch);

    /// Completed-entry probe for serving a peer's fetch: returns the value
    /// when `key` is resident and ready, else consults the attached store
    /// directly (nothing is admitted, no LRU refresh, no counters — a
    /// peer's probe must not perturb this cache's own statistics or
    /// retention).  Null on a genuine miss; never computes, never blocks
    /// on an in-flight slot.
    [[nodiscard]] std::shared_ptr<const EvaluationResult> peek(
        const EvaluationKey& key) const;

    /// Drop every completed entry and reset all counters (hits, misses,
    /// evictions, store counters) to zero — documented behaviour, relied on
    /// by callers that reuse one engine across measurement phases.  Nothing
    /// is spilled: callers that want the dropped entries persisted call
    /// `flush_to_store` first.  In-flight slots are left untouched so
    /// concurrent waiters still observe single-flight.
    void clear();

    /// Spill every completed resident entry to the attached store (no-op
    /// without one; entries the store already holds are skipped).  The
    /// destructor calls this, so a cache that dies with its engine leaves
    /// its completed work behind for the next process.
    void flush_to_store();

private:
    using Slot = std::shared_future<std::shared_ptr<const EvaluationResult>>;

    struct Entry {
        Slot slot;
        double cost = 0.0;
        bool ready = false;                       ///< compute finished
        std::list<EvaluationKey>::iterator lru{}; ///< valid iff ready
    };

    using Spillage =
        std::vector<std::pair<EvaluationKey,
                              std::shared_ptr<const EvaluationResult>>>;

    /// Mark `key` completed, put it at the hot end of the LRU list, and
    /// evict cold completed entries until the budget holds (spilling the
    /// victims to the attached store, outside the cache lock).
    void admit(const EvaluationKey& key, double cost);
    void evict_over_budget_locked(Spillage* spillage);
    void spill(const Spillage& spillage);

    Budget budget_;
    /// Immutable after construction (no lock needed to read the pointer;
    /// the store has its own internal synchronisation).
    std::shared_ptr<ResultStore> store_;
    mutable std::mutex mutex_;
    std::map<EvaluationKey, Entry> entries_;
    std::list<EvaluationKey> lru_;  ///< completed keys, hot front, cold back
    double resident_cost_ = 0.0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t store_hits_ = 0;
    std::uint64_t store_misses_ = 0;
    std::uint64_t spills_ = 0;
    std::uint64_t store_rejects_ = 0;
    std::uint64_t remote_hits_ = 0;
    std::uint64_t remote_misses_ = 0;
    /// Read under `mutex_`, invoked outside it (a fetch is a blocking RPC).
    RemoteFetch remote_fetch_;
};

}  // namespace teamplay::core
