#include "core/result_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <string>
#include <utility>

#include "core/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TEAMPLAY_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace teamplay::core {

namespace {

/// Segment header: magic + the wire version its frames were written with.
constexpr std::uint8_t kSegmentMagic[4] = {'T', 'P', 'S', 'G'};
constexpr std::size_t kSegmentHeaderBytes = 4 + 2;

void put_segment_header(std::uint8_t (&header)[kSegmentHeaderBytes]) {
    std::memcpy(header, kSegmentMagic, 4);
    header[4] = static_cast<std::uint8_t>(wire::kVersion);
    header[5] = static_cast<std::uint8_t>(wire::kVersion >> 8);
}

bool check_segment_header(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < kSegmentHeaderBytes) return false;
    if (std::memcmp(bytes.data(), kSegmentMagic, 4) != 0) return false;
    const auto version = static_cast<std::uint16_t>(
        bytes[4] | static_cast<std::uint16_t>(bytes[5]) << 8);
    return version == wire::kVersion;
}

}  // namespace

// -- Segment ------------------------------------------------------------------

struct ResultStore::Segment {
    std::filesystem::path path;
    const std::uint8_t* base = nullptr;
    std::size_t size = 0;

    Segment(const Segment&) = delete;
    Segment& operator=(const Segment&) = delete;

    /// Map (or read) the file; a segment that cannot be opened at all gets
    /// base == nullptr / size == 0 and is rejected by the header check.
    explicit Segment(std::filesystem::path file) : path(std::move(file)) {
#if TEAMPLAY_STORE_HAS_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) return;
        struct stat status {};
        if (::fstat(fd, &status) == 0 && status.st_size > 0) {
            const auto length = static_cast<std::size_t>(status.st_size);
            void* mapped =
                ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
            if (mapped != MAP_FAILED) {
                base = static_cast<const std::uint8_t*>(mapped);
                size = length;
                mapped_ = true;
            }
        }
        ::close(fd);
        if (mapped_) return;
#endif
        // Streaming fallback (and the zero-length-file case, which mmap
        // rejects): pull the bytes onto the heap.
        std::FILE* file_handle = std::fopen(path.c_str(), "rb");
        if (file_handle == nullptr) return;
        std::fseek(file_handle, 0, SEEK_END);
        const long end = std::ftell(file_handle);
        if (end > 0) {
            heap_.resize(static_cast<std::size_t>(end));
            std::fseek(file_handle, 0, SEEK_SET);
            if (std::fread(heap_.data(), 1, heap_.size(), file_handle) ==
                heap_.size()) {
                base = heap_.data();
                size = heap_.size();
            } else {
                heap_.clear();
            }
        }
        std::fclose(file_handle);
    }

    ~Segment() {
#if TEAMPLAY_STORE_HAS_MMAP
        if (mapped_)
            ::munmap(const_cast<std::uint8_t*>(base), size);
#endif
    }

    [[nodiscard]] std::span<const std::uint8_t> bytes() const {
        return {base, size};
    }

private:
    bool mapped_ = false;
    std::vector<std::uint8_t> heap_;
};

// -- open / scan --------------------------------------------------------------

ResultStore::ResultStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    const std::lock_guard<std::mutex> lock(mutex_);
    scan_directory_locked();
}

ResultStore::~ResultStore() {
    if (write_file_ != nullptr) std::fclose(write_file_);
}

void ResultStore::scan_directory_locked() {
    // Deterministic order: later files override earlier ones on duplicate
    // keys, so sort by name (creation order for our zero-padded sequence
    // names) rather than directory enumeration order.
    std::vector<std::filesystem::path> files;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(directory_, ec))
        if (entry.is_regular_file(ec)) files.push_back(entry.path());
    std::sort(files.begin(), files.end());

    for (const auto& file : files) {
        segments_.push_back(std::make_unique<Segment>(file));
        if (!check_segment_header(segments_.back()->bytes())) {
            // Empty, foreign or stale-version file: not ours to read.  One
            // reject per file, and nothing from it enters the index.
            ++scan_rejects_;
            segments_.pop_back();
            continue;
        }
        scan_segment_locked(segments_.size() - 1);
    }
}

void ResultStore::scan_segment_locked(std::size_t segment_index) {
    const auto bytes = segments_[segment_index]->bytes();
    std::size_t offset = kSegmentHeaderBytes;
    while (true) {
        std::optional<std::span<const std::uint8_t>> key_frame;
        std::optional<std::span<const std::uint8_t>> result_frame;
        try {
            key_frame = wire::next_frame(bytes, offset);
            if (!key_frame.has_value()) return;  // clean end of segment
            result_frame = wire::next_frame(bytes, offset);
        } catch (const wire::WireError&) {
            // Torn framing (an interrupted append): nothing after this
            // point is trustworthy.  Count once and stop this segment.
            ++scan_rejects_;
            return;
        }
        if (!result_frame.has_value()) {
            ++scan_rejects_;  // key without its result: torn final record
            return;
        }
        // Index by strictly-decoded key; the result frame is *not* decoded
        // here (verify-on-load).  A corrupt key frame skips one record —
        // the framing already proved where the next record starts.
        try {
            const EvaluationKey key = wire::decode_key(*key_frame);
            index_[key] = Location{
                segment_index,
                static_cast<std::size_t>(result_frame->data() - bytes.data()),
                result_frame->size()};
        } catch (const wire::WireError&) {
            ++scan_rejects_;
        }
    }
}

// -- load ---------------------------------------------------------------------

ResultStore::Loaded ResultStore::load(const EvaluationKey& key) {
    Location location;
    int active_fd = -1;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(key);
        if (it == index_.end()) {
            ++load_misses_;
            return {};
        }
        location = it->second;
        active_fd = write_fd_;
    }

    // Read outside the lock: mapped segments are immutable, and the active
    // segment is append-only — bytes below an indexed offset never change.
    std::vector<std::uint8_t> scratch;
    std::span<const std::uint8_t> frame;
    bool readable = false;
    if (location.segment == kActiveSegment) {
#if TEAMPLAY_STORE_HAS_MMAP
        scratch.resize(location.length);
        const auto got =
            ::pread(active_fd, scratch.data(), location.length,
                    static_cast<off_t>(location.offset));
        if (got == static_cast<ssize_t>(location.length)) {
            frame = scratch;
            readable = true;
        }
#endif
    } else {
        frame = segments_[location.segment]->bytes().subspan(
            location.offset, location.length);
        readable = true;
    }

    if (readable) {
        try {
            EvaluationResult result = wire::decode_result(frame);
            const std::lock_guard<std::mutex> lock(mutex_);
            ++load_hits_;
            return {LoadStatus::kHit, std::move(result)};
        } catch (const wire::WireError&) {
            // Fall through to the reject path.
        }
    }

    // Corrupt or unreadable frame: drop it from the index so the
    // recomputed result can be re-appended, and count the reject.
    const std::lock_guard<std::mutex> lock(mutex_);
    ++load_rejects_;
    const auto it = index_.find(key);
    if (it != index_.end() && it->second.segment == location.segment &&
        it->second.offset == location.offset)
        index_.erase(it);
    return {LoadStatus::kReject, std::nullopt};
}

bool ResultStore::contains(const EvaluationKey& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return index_.contains(key);
}

// -- append -------------------------------------------------------------------

bool ResultStore::open_write_segment_locked() {
    // Exclusive creation with sequence-number retry: two stores (or two
    // processes) sharing a directory each get their own segment file.
    for (std::size_t attempt = 0; attempt < 1000; ++attempt) {
        char name[32];
        std::snprintf(name, sizeof name, "segment-%06zu.tpseg",
                      segments_.size() + attempt);
        const auto path = directory_ / name;
        // Read+write: loads of entries this instance appended pread the
        // same descriptor ("wbx" would leave the fd write-only).
        std::FILE* file = std::fopen(path.c_str(), "wb+x");
        if (file == nullptr) {
            if (errno == EEXIST) continue;
            break;
        }
        std::uint8_t header[kSegmentHeaderBytes];
        put_segment_header(header);
        if (std::fwrite(header, 1, sizeof header, file) != sizeof header ||
            std::fflush(file) != 0) {
            std::fclose(file);
            break;
        }
        write_file_ = file;
#if TEAMPLAY_STORE_HAS_MMAP
        write_fd_ = ::fileno(file);
#endif
        write_offset_ = sizeof header;
        return true;
    }
    std::fprintf(stderr,
                 "warning: result store %s is not writable; spills "
                 "disabled\n",
                 directory_.string().c_str());
    write_failed_ = true;
    return false;
}

bool ResultStore::store(const EvaluationKey& key,
                        const EvaluationResult& result) {
    // Encode outside the lock — a compiled front with its programs can be
    // hundreds of kilobytes.
    const wire::Buffer key_message = wire::encode(key);
    const wire::Buffer result_message = wire::encode(result);
    wire::Buffer record;
    record.reserve(8 + key_message.size() + result_message.size());
    wire::append_frame(record, key_message);
    wire::append_frame(record, result_message);

    const std::lock_guard<std::mutex> lock(mutex_);
    if (index_.contains(key)) return false;  // deterministic duplicate
    if (write_failed_) return false;
    if (write_file_ == nullptr && !open_write_segment_locked()) return false;

    if (std::fwrite(record.data(), 1, record.size(), write_file_) !=
            record.size() ||
        std::fflush(write_file_) != 0) {
        // A partial record at the segment tail is exactly the torn-frame
        // case the scanner tolerates; stop appending, keep serving reads.
        std::fprintf(stderr,
                     "warning: result store append failed; spills "
                     "disabled\n");
        write_failed_ = true;
        return false;
    }
#if TEAMPLAY_STORE_HAS_MMAP
    index_[key] =
        Location{kActiveSegment,
                 write_offset_ + 4 + key_message.size() + 4,
                 result_message.size()};
#endif
    // Without pread the active segment is write-only this process: entries
    // stay un-indexed and load() recomputes, which is still correct.
    write_offset_ += record.size();
    ++appended_;
    return true;
}

ResultStore::Stats ResultStore::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.segments = segments_.size() + (write_file_ != nullptr ? 1 : 0);
    stats.indexed = index_.size();
    stats.appended = appended_;
    stats.scan_rejects = scan_rejects_;
    stats.load_hits = load_hits_;
    stats.load_misses = load_misses_;
    stats.load_rejects = load_rejects_;
    return stats;
}

}  // namespace teamplay::core
