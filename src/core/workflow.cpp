#include "core/workflow.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "ir/validate.hpp"
#include "security/taint.hpp"
#include "support/units.hpp"

namespace teamplay::core {

namespace {

/// Representative core index per distinct core class of the platform.
std::map<std::string, std::size_t> class_representatives(
    const platform::Platform& platform) {
    std::map<std::string, std::size_t> reps;
    for (std::size_t i = 0; i < platform.cores.size(); ++i)
        reps.try_emplace(platform.cores[i].core_class, i);
    return reps;
}

/// Core classes a task may run on, honouring its CSL constraint.
std::vector<std::string> allowed_classes(
    const csl::TaskSpec& spec,
    const std::map<std::string, std::size_t>& reps) {
    std::vector<std::string> classes;
    for (const auto& [cls, idx] : reps)
        if (spec.core_class.empty() || spec.core_class == cls)
            classes.push_back(cls);
    return classes;
}

double effective_deadline(const csl::AppSpec& spec) {
    double deadline = spec.deadline_s;
    if (deadline <= 0.0)
        for (const auto& task : spec.tasks)
            deadline = std::max(deadline, task.deadline_s);
    return deadline;
}

coordination::GlueStyle default_glue_style(
    const platform::Platform& platform) {
    if (platform.name == "gr712rc") return coordination::GlueStyle::kRtems;
    if (platform.predictable() && platform.cores.size() == 1)
        return coordination::GlueStyle::kSequential;
    return coordination::GlueStyle::kPosix;
}

void attach_rta(ToolchainReport& report,
                const platform::Platform& platform) {
    // Rate-monotonic response-time analysis per core, when every task
    // scheduled there is periodic.
    for (std::size_t c = 0; c < platform.cores.size(); ++c) {
        std::vector<coordination::PeriodicTask> periodic;
        bool all_periodic = true;
        for (const auto& entry : report.schedule.entries) {
            if (entry.core != c) continue;
            const auto* spec = report.spec.find(entry.task);
            if (spec == nullptr || spec->period_s <= 0.0) {
                all_periodic = false;
                break;
            }
            coordination::PeriodicTask task;
            task.name = entry.task;
            task.wcet_s = entry.finish_s - entry.start_s;
            task.period_s = spec->period_s;
            task.deadline_s = spec->deadline_s;
            periodic.push_back(std::move(task));
        }
        if (all_periodic && periodic.size() > 1)
            report.rta[c] = coordination::response_time_analysis(periodic);
    }
}

}  // namespace

const compiler::TaskVersion* ToolchainReport::chosen_version(
    const std::string& task) const {
    const auto* entry = schedule.entry_for(task);
    if (entry == nullptr) return nullptr;
    for (const auto& front : fronts) {
        if (front.task != task || front.core_class != entry->core_class)
            continue;
        if (entry->version < front.versions.size())
            return &front.versions[entry->version];
    }
    return nullptr;
}

std::string ToolchainReport::summary() const {
    std::ostringstream os;
    os << "== TeamPlay toolchain report ==\n"
       << "application: " << spec.name << " on " << platform_name << "\n"
       << "tasks:       " << graph.tasks.size() << "\n"
       << schedule.to_string();
    for (const auto& entry : schedule.entries) {
        const auto* version = chosen_version(entry.task);
        if (version != nullptr)
            os << "  " << entry.task << " uses config "
               << version->config.label() << "\n";
    }
    for (const auto& [core, result] : rta) {
        os << "RM schedulability on core " << core << ": "
           << (result.schedulable ? "pass" : "FAIL") << "\n";
    }
    os << certificate.to_text();
    return os.str();
}

PredictableWorkflow::PredictableWorkflow(const ir::Program& program,
                                         const platform::Platform& platform)
    : program_(&program), platform_(&platform) {
    if (!platform.predictable())
        throw std::invalid_argument(
            "PredictableWorkflow requires a predictable platform; use "
            "ComplexWorkflow for " +
            platform.name);
    ir::validate_or_throw(program);
}

ToolchainReport PredictableWorkflow::run(const csl::AppSpec& spec,
                                         const WorkflowOptions& options) {
    ToolchainReport report;
    report.spec = spec;
    report.platform_name = platform_->name;
    report.graph = spec.skeleton();

    const auto reps = class_representatives(*platform_);

    // Stage 1: multi-criteria compilation per (task, core class).
    for (const auto& task_spec : spec.tasks) {
        coordination::Task* task = report.graph.find(task_spec.name);
        const auto classes = allowed_classes(task_spec, reps);
        if (classes.empty())
            throw std::runtime_error("task '" + task_spec.name +
                                     "' fits no core class of " +
                                     platform_->name);
        for (const auto& cls : classes) {
            const auto& core = platform_->cores[reps.at(cls)];
            compiler::MultiCriteriaCompiler mcc(*program_, core);
            auto compiler_options = options.compiler;
            compiler_options.explore_security =
                task_spec.security_hint == "auto";
            auto front = mcc.optimise(task_spec.entry, compiler_options);

            // A fixed security hint overrides the knob on every version.
            if (task_spec.security_hint == "balance" ||
                task_spec.security_hint == "ladder") {
                const auto forced =
                    task_spec.security_hint == "balance"
                        ? compiler::SecurityLevel::kBalance
                        : compiler::SecurityLevel::kLadder;
                for (auto& version : front) {
                    auto config = version.config;
                    config.security = forced;
                    version = mcc.compile(task_spec.entry, config);
                }
            }

            TaskFront task_front;
            task_front.task = task_spec.name;
            task_front.core_class = cls;
            task_front.versions = std::move(front);
            for (const auto& version : task_front.versions) {
                coordination::VersionChoice choice;
                choice.time_s = version.wcet_s;
                choice.energy_j = version.energy_dynamic_j;
                choice.leakage = version.leakage;
                choice.opp_index = version.config.opp_index;
                choice.note = version.config.label();
                task->versions[cls].push_back(choice);
            }
            report.fronts.push_back(std::move(task_front));
        }
    }

    // Stage 2: coordination.
    auto scheduler_options = options.scheduler;
    if (scheduler_options.deadline_s <= 0.0)
        scheduler_options.deadline_s = effective_deadline(spec);
    const coordination::Scheduler scheduler(*platform_);
    report.schedule = scheduler.schedule(report.graph, scheduler_options);
    attach_rta(report, *platform_);

    // Stage 3: glue code.
    const auto style =
        options.glue_style.value_or(default_glue_style(*platform_));
    report.glue_code = coordination::generate_glue(
        report.graph, report.schedule, *platform_, style);

    // Stage 4: contracts on the chosen versions.
    std::vector<contracts::ContractInput> inputs;
    for (const auto& entry : report.schedule.entries) {
        const auto* task_spec = spec.find(entry.task);
        const compiler::TaskVersion* chosen_v =
            report.chosen_version(entry.task);
        if (task_spec == nullptr || chosen_v == nullptr) continue;
        contracts::ContractInput input;
        input.poi = entry.task;
        input.function = task_spec->entry;
        input.program = chosen_v->program.get();
        input.core = &platform_->cores[entry.core];
        input.opp_index = chosen_v->config.opp_index;
        input.time_budget_s = task_spec->time_budget_s;
        input.energy_budget_j = task_spec->energy_budget_j;
        input.leakage_budget = task_spec->leakage_budget;
        input.leakage_proxy = chosen_v->leakage;
        inputs.push_back(std::move(input));
    }
    report.certificate =
        contracts::check_contracts(spec.name, platform_->name, inputs);
    return report;
}

ComplexWorkflow::ComplexWorkflow(const ir::Program& program,
                                 const platform::Platform& platform)
    : program_(&program), platform_(&platform) {
    if (platform.predictable())
        throw std::invalid_argument(
            "ComplexWorkflow is for complex platforms; " + platform.name +
            " supports full static analysis");
    ir::validate_or_throw(program);
}

ToolchainReport ComplexWorkflow::run(const csl::AppSpec& spec,
                                     const WorkflowOptions& options) {
    ToolchainReport report;
    report.spec = spec;
    report.platform_name = platform_->name;
    report.graph = spec.skeleton();

    // Pass 1 (solid path of Fig. 2): sequential glue + dynamic profiling of
    // every task on every admissible (core class, DVFS point).
    report.sequential_glue = coordination::generate_glue(
        report.graph, {}, *platform_, coordination::GlueStyle::kSequential);

    const auto reps = class_representatives(*platform_);
    for (const auto& task_spec : spec.tasks) {
        coordination::Task* task = report.graph.find(task_spec.name);
        const ir::Function* entry = program_->find(task_spec.entry);
        if (entry == nullptr)
            throw std::runtime_error("task '" + task_spec.name +
                                     "' entry function '" + task_spec.entry +
                                     "' not found");
        const auto taint = security::analyze_taint(*program_, *entry);
        for (const auto& cls : allowed_classes(task_spec, reps)) {
            const auto& core = platform_->cores[reps.at(cls)];
            for (std::size_t opp = 0; opp < core.opps.size(); ++opp) {
                profiler::PowProfiler prof(*program_, core, opp,
                                           /*seed=*/opp * 131 + 7);
                const auto profile = prof.profile(
                    task_spec.entry,
                    profiler::zero_inputs(entry->param_count),
                    options.profile_runs);
                coordination::VersionChoice choice;
                choice.time_s = profile.time_s.high_water_mark();
                choice.energy_j = profile.energy_j.mean;
                choice.leakage = taint.leakage_proxy();
                choice.opp_index = opp;
                choice.note = "profiled@opp" + std::to_string(opp);
                task->versions[cls].push_back(choice);
            }
        }
    }

    // Pass 2 (dashed path): energy-aware parallel schedule from estimates.
    auto scheduler_options = options.scheduler;
    if (scheduler_options.deadline_s <= 0.0)
        scheduler_options.deadline_s = effective_deadline(spec);
    const coordination::Scheduler scheduler(*platform_);
    report.schedule = scheduler.schedule(report.graph, scheduler_options);
    attach_rta(report, *platform_);

    const auto style =
        options.glue_style.value_or(default_glue_style(*platform_));
    report.glue_code = coordination::generate_glue(
        report.graph, report.schedule, *platform_, style);

    // Contracts: measured evidence only.
    std::vector<contracts::ContractInput> inputs;
    for (const auto& entry : report.schedule.entries) {
        const auto* task_spec = spec.find(entry.task);
        if (task_spec == nullptr) continue;
        const auto* task = report.graph.find(entry.task);
        const auto* versions = task->versions_for(
            platform_->cores[entry.core].core_class);
        if (versions == nullptr || entry.version >= versions->size())
            continue;
        const auto& choice = (*versions)[entry.version];
        contracts::ContractInput input;
        input.poi = entry.task;
        input.function = task_spec->entry;
        input.measured_only = true;
        input.measured_time_s = choice.time_s;
        input.measured_energy_j = choice.energy_j;
        input.time_budget_s = task_spec->time_budget_s;
        input.energy_budget_j = task_spec->energy_budget_j;
        input.leakage_budget = task_spec->leakage_budget;
        input.leakage_proxy = choice.leakage;
        inputs.push_back(std::move(input));
    }
    report.certificate =
        contracts::check_contracts(spec.name, platform_->name, inputs);
    return report;
}

ToolchainReport run_toolchain(const ir::Program& program,
                              const platform::Platform& platform,
                              const csl::AppSpec& spec,
                              const WorkflowOptions& options) {
    if (platform.predictable())
        return PredictableWorkflow(program, platform).run(spec, options);
    return ComplexWorkflow(program, platform).run(spec, options);
}

}  // namespace teamplay::core
