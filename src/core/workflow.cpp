#include "core/workflow.hpp"

#include <sstream>
#include <stdexcept>

#include "core/scenario_engine.hpp"
#include "ir/validate.hpp"

namespace teamplay::core {

const compiler::TaskVersion* ToolchainReport::chosen_version(
    const std::string& task) const {
    const auto* entry = schedule.entry_for(task);
    if (entry == nullptr) return nullptr;
    for (const auto& front : fronts) {
        if (front.task != task || front.core_class != entry->core_class)
            continue;
        if (entry->version < front.versions.size())
            return &front.versions[entry->version];
    }
    return nullptr;
}

std::string ToolchainReport::summary() const {
    std::ostringstream os;
    os << "== TeamPlay toolchain report ==\n"
       << "application: " << spec.name << " on " << platform_name << "\n"
       << "tasks:       " << graph.tasks.size() << "\n"
       << schedule.to_string();
    for (const auto& entry : schedule.entries) {
        const auto* version = chosen_version(entry.task);
        if (version != nullptr)
            os << "  " << entry.task << " uses config "
               << version->config.label() << "\n";
    }
    for (const auto& [core, result] : rta) {
        os << "RM schedulability on core " << core << ": "
           << (result.schedulable ? "pass" : "FAIL") << "\n";
    }
    os << certificate.to_text();
    return os.str();
}

namespace {

/// Shared body of the legacy single-scenario drivers: one caller-only
/// engine per call, so behaviour (and bytes) match the historical
/// sequential path exactly.
ToolchainReport run_single(const ir::Program& program,
                           const platform::Platform& platform,
                           const csl::AppSpec& spec,
                           const WorkflowOptions& options) {
    ScenarioEngine engine;
    ScenarioRequest request;
    request.program = &program;
    request.platform = &platform;
    request.spec = spec;
    request.options = options;
    return engine.run(request);
}

}  // namespace

PredictableWorkflow::PredictableWorkflow(const ir::Program& program,
                                         const platform::Platform& platform)
    : program_(&program), platform_(&platform) {
    if (!platform.predictable())
        throw std::invalid_argument(
            "PredictableWorkflow requires a predictable platform; use "
            "ComplexWorkflow for " +
            platform.name);
    ir::validate_or_throw(program);
}

ToolchainReport PredictableWorkflow::run(const csl::AppSpec& spec,
                                         const WorkflowOptions& options) {
    return run_single(*program_, *platform_, spec, options);
}

ComplexWorkflow::ComplexWorkflow(const ir::Program& program,
                                 const platform::Platform& platform)
    : program_(&program), platform_(&platform) {
    if (platform.predictable())
        throw std::invalid_argument(
            "ComplexWorkflow is for complex platforms; " + platform.name +
            " supports full static analysis");
    ir::validate_or_throw(program);
}

ToolchainReport ComplexWorkflow::run(const csl::AppSpec& spec,
                                     const WorkflowOptions& options) {
    return run_single(*program_, *platform_, spec, options);
}

ToolchainReport run_toolchain(const ir::Program& program,
                              const platform::Platform& platform,
                              const csl::AppSpec& spec,
                              const WorkflowOptions& options) {
    return run_single(program, platform, spec, options);
}

}  // namespace teamplay::core
