// ETS refactoring advisor — the paper's stated future-work direction
// ("program transformation techniques, such as refactoring tool support,
// would be very applicable here and thus form a natural extension to our
// methodology", Sec. V).
//
// Given a toolchain report, the advisor turns the raw Pareto fronts and
// contract results into human-readable guidance: which configuration change
// buys how much on which objective, which budgets are close to their limit,
// and where a security countermeasure is still missing.  This is the
// "clear, human-understandable feedback" the Transparency Challenge (Sec.
// III-A) calls for.
#pragma once

#include <string>
#include <vector>

#include "core/workflow.hpp"

namespace teamplay::core {

enum class AdviceKind : std::uint8_t {
    kFasterVariant,    ///< a front variant beats the deployed one on time
    kFrugalVariant,    ///< a front variant beats the deployed one on energy
    kTightBudget,      ///< contract holds with < 20% headroom
    kBrokenBudget,     ///< contract violated
    kSecurityGap,      ///< secret-dependent structure with no countermeasure
    kMeasuredEvidence, ///< bound rests on profiling, not proof
};

struct Advice {
    AdviceKind kind;
    std::string task;
    std::string message;  ///< complete human-readable sentence
    double impact = 0.0;  ///< relative improvement/headroom (0..1 scale)
};

/// Analyse a report and produce prioritised advice (largest impact first).
[[nodiscard]] std::vector<Advice> advise(const ToolchainReport& report);

/// Render the advice list as a text block for CLI/report output.
[[nodiscard]] std::string render_advice(const std::vector<Advice>& advice);

}  // namespace teamplay::core
