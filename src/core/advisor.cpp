#include "core/advisor.hpp"

#include <algorithm>
#include <sstream>

#include "support/units.hpp"

namespace teamplay::core {

namespace {

void advise_variants(const ToolchainReport& report,
                     std::vector<Advice>& advice) {
    for (const auto& entry : report.schedule.entries) {
        const auto* deployed = report.chosen_version(entry.task);
        if (deployed == nullptr) continue;
        const compiler::TaskVersion* faster = nullptr;
        const compiler::TaskVersion* frugal = nullptr;
        for (const auto& front : report.fronts) {
            if (front.task != entry.task) continue;
            for (const auto& version : front.versions) {
                if (version.time_s < deployed->time_s * 0.95 &&
                    (faster == nullptr || version.time_s < faster->time_s))
                    faster = &version;
                if (version.energy_j < deployed->energy_j * 0.95 &&
                    (frugal == nullptr ||
                     version.energy_j < frugal->energy_j))
                    frugal = &version;
            }
        }
        if (faster != nullptr) {
            const double gain = 1.0 - faster->time_s / deployed->time_s;
            std::ostringstream os;
            os << "task '" << entry.task << "': switching to "
               << faster->config.label() << " cuts WCET by "
               << support::format_percent(gain) << " (to "
               << support::format_time(faster->time_s)
               << ") at " << support::format_energy(faster->energy_j)
               << " energy";
            advice.push_back({AdviceKind::kFasterVariant, entry.task,
                              os.str(), gain});
        }
        if (frugal != nullptr) {
            const double gain = 1.0 - frugal->energy_j / deployed->energy_j;
            std::ostringstream os;
            os << "task '" << entry.task << "': switching to "
               << frugal->config.label() << " saves "
               << support::format_percent(gain) << " energy (to "
               << support::format_energy(frugal->energy_j) << ") at "
               << support::format_time(frugal->time_s) << " WCET";
            advice.push_back({AdviceKind::kFrugalVariant, entry.task,
                              os.str(), gain});
        }
    }
}

void advise_contracts(const ToolchainReport& report,
                      std::vector<Advice>& advice) {
    for (const auto& result : report.certificate.results) {
        const auto prop = contracts::property_name(result.property);
        if (!result.holds) {
            std::ostringstream os;
            os << "CONTRACT VIOLATED: " << result.poi << "." << prop
               << " analysed " << result.analysed << " exceeds budget "
               << result.budget
               << "; tighten the implementation or renegotiate the budget";
            advice.push_back(
                {AdviceKind::kBrokenBudget, result.poi, os.str(), 1.0});
            continue;
        }
        if (result.budget > 0.0) {
            const double headroom = 1.0 - result.analysed / result.budget;
            if (headroom < 0.2) {
                std::ostringstream os;
                os << "task '" << result.poi << "': " << prop
                   << " budget has only "
                   << support::format_percent(headroom)
                   << " headroom left; future code growth will break the "
                      "contract";
                advice.push_back({AdviceKind::kTightBudget, result.poi,
                                  os.str(), 1.0 - headroom});
            }
        }
        if (result.measured_only) {
            std::ostringstream os;
            os << "task '" << result.poi << "': " << prop
               << " bound rests on profiled evidence (complex core); "
                  "consider pinning the task to a predictable core for a "
                  "static proof";
            advice.push_back({AdviceKind::kMeasuredEvidence, result.poi,
                              os.str(), 0.3});
        }
    }
}

void advise_security(const ToolchainReport& report,
                     std::vector<Advice>& advice) {
    for (const auto& entry : report.schedule.entries) {
        const auto* deployed = report.chosen_version(entry.task);
        if (deployed == nullptr) continue;
        if (deployed->leakage > 0.0 &&
            deployed->config.security == compiler::SecurityLevel::kNone) {
            std::ostringstream os;
            os << "task '" << entry.task
               << "': secret-dependent structures remain (leakage proxy "
               << deployed->leakage
               << ") and no countermeasure is enabled; consider 'security "
                  "balance' or 'security ladder' in the CSL";
            advice.push_back({AdviceKind::kSecurityGap, entry.task, os.str(),
                              std::min(1.0, deployed->leakage / 8.0)});
        }
    }
}

}  // namespace

std::vector<Advice> advise(const ToolchainReport& report) {
    std::vector<Advice> advice;
    advise_contracts(report, advice);
    advise_security(report, advice);
    advise_variants(report, advice);
    std::stable_sort(advice.begin(), advice.end(),
                     [](const Advice& a, const Advice& b) {
                         return a.impact > b.impact;
                     });
    return advice;
}

std::string render_advice(const std::vector<Advice>& advice) {
    if (advice.empty())
        return "advisor: no findings — budgets comfortable, deployment on "
               "the Pareto front\n";
    std::ostringstream os;
    os << "advisor: " << advice.size() << " finding(s)\n";
    for (const auto& item : advice) os << "  * " << item.message << "\n";
    return os.str();
}

}  // namespace teamplay::core
