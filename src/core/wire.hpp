// Versioned, endian-stable binary wire codec for the service core.
//
// The distributed follow-on to in-process sharding (DESIGN.md §8) moves
// memoised evaluation results and merged telemetry between hosts; this
// codec defines the byte format those messages travel in.  Six message
// types are covered — `EvaluationKey`, `EvaluationResult` (including full
// IR programs inside compiled task versions), `StageTelemetry`,
// `BatchStats`, `ScenarioRequest` (program + platform + CSL + options,
// everything a remote shard needs to run the scenario) and
// `ToolchainReport` (the full reply, certificate included) — with strict
// round-trip guarantees:
//
//   decode(encode(x)) == x   field-for-field (doubles bit-exact),
//   encode(decode(b)) == b   byte-for-byte for any accepted buffer.
//
// One deliberate exception: a ScenarioRequest deadline travels as
// *remaining budget* (seconds until the deadline, sampled at encode
// time) rather than as an absolute clock value, so cross-host clock skew
// can never move a deadline.  The decoder re-anchors the budget on its
// own steady clock; for deadline-carrying frames the round trip is
// therefore semantic (budget preserved minus transit time), not
// byte-exact.  Frames without a deadline keep both guarantees in full.
//
// Layout (all integers little-endian regardless of host endianness;
// doubles are their IEEE-754 bit pattern as a little-endian u64):
//
//   u32  magic      0x5450_4C57 ("TPLW")
//   u16  version    kVersion — decoder rejects any other value
//   u8   kind       message discriminator (key/result/telemetry/batch)
//   ...  payload    message-specific, length-prefixed strings/sequences
//   u64  checksum   FNV-1a 64 of every preceding byte
//
// Strictness: the decoder bounds-checks every read, validates every enum
// and bool byte, rejects trailing garbage, and verifies the trailing
// checksum before interpreting the payload — a truncated or corrupted
// buffer raises WireFormatError, never a partially-filled value.  A valid
// buffer from a different codec generation raises WireVersionError (the
// version field is checked only after the checksum proves the buffer
// intact, so corruption is never misreported as a version skew).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario_engine.hpp"

namespace teamplay::core::wire {

/// Current wire format generation.  Bump on any layout change.
/// v2: EvaluationCache::Stats gained the result-store counters
/// (store_hits/store_misses/spills/store_rejects) inside BatchStats.
/// v3: shard-fabric frames — ScenarioRequest and ToolchainReport become
/// wire messages (program + platform + CSL + options travel whole), and
/// EvaluationCache::Stats gained the remote-fetch counters
/// (remote_hits/remote_misses) inside BatchStats.
/// v4: admission subsystem — kRequest frames carry the priority class and
/// the optional deadline (as remaining budget, see above); BatchStats
/// frames carry AdmissionStats (per-class admitted/rejected/shed/...
/// counters plus per-remote consecutive-failure gauges).
inline constexpr std::uint16_t kVersion = 4;

/// Base class of every codec error.
class WireError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Truncated buffer, checksum mismatch, bad magic, invalid enum/bool
/// byte, or trailing garbage.
class WireFormatError : public WireError {
public:
    using WireError::WireError;
};

/// Structurally intact message written by a different codec generation.
class WireVersionError : public WireError {
public:
    WireVersionError(std::uint16_t found, std::uint16_t expected)
        : WireError("wire version mismatch: found " + std::to_string(found) +
                    ", expected " + std::to_string(expected)),
          found_(found) {}
    [[nodiscard]] std::uint16_t found() const { return found_; }

private:
    std::uint16_t found_;
};

using Buffer = std::vector<std::uint8_t>;

/// A decoded ScenarioRequest with its own storage.  `ScenarioRequest`
/// borrows its program and platform by pointer, so a request coming off
/// the wire needs something to own them: the frame owns everything the
/// request references, and `request()` returns a view into it.  The frame
/// must outlive every use of that view (a server keeps the frame alive
/// until the scenario's ticket completes).
struct ScenarioRequestFrame {
    ir::Program program;
    platform::Platform platform;
    std::string csl_source;
    std::optional<csl::AppSpec> spec;
    WorkflowOptions options;
    std::string label;
    Priority priority = Priority::kBatch;
    /// Re-anchored on the decoder's steady clock from the wire's
    /// remaining-budget field (see the header comment).
    std::optional<std::chrono::steady_clock::time_point> deadline;

    [[nodiscard]] ScenarioRequest request() const;
};

[[nodiscard]] Buffer encode(const EvaluationKey& key);
[[nodiscard]] Buffer encode(const EvaluationResult& result);
[[nodiscard]] Buffer encode(const StageTelemetry& telemetry);
[[nodiscard]] Buffer encode(const BatchStats& stats);
/// Throws std::invalid_argument when the request has a null program or
/// platform — an unroutable request must fail at the sender, loudly.
[[nodiscard]] Buffer encode(const ScenarioRequest& request);
[[nodiscard]] Buffer encode(const ToolchainReport& report);

[[nodiscard]] EvaluationKey decode_key(std::span<const std::uint8_t> buffer);
[[nodiscard]] EvaluationResult decode_result(
    std::span<const std::uint8_t> buffer);
[[nodiscard]] StageTelemetry decode_telemetry(
    std::span<const std::uint8_t> buffer);
[[nodiscard]] BatchStats decode_batch_stats(
    std::span<const std::uint8_t> buffer);
[[nodiscard]] ScenarioRequestFrame decode_request(
    std::span<const std::uint8_t> buffer);
[[nodiscard]] ToolchainReport decode_report(
    std::span<const std::uint8_t> buffer);

// -- frame streams ------------------------------------------------------------
//
// Length-prefixed framing for byte streams of wire messages (an on-disk
// result-store segment, a future socket transport): u32 LE payload length
// followed by the payload.  The payload is itself a sealed wire message,
// so stream corruption is caught either by the framing bounds here or by
// the message checksum inside the frame.

/// Append `message` to `stream` as one length-prefixed frame.
void append_frame(Buffer& stream, std::span<const std::uint8_t> message);

/// Read the frame starting at `offset` and advance `offset` past it.
/// Returns the payload view (into `stream`), nullopt at the exact end of
/// the stream, and throws WireFormatError on a torn length or payload —
/// the three cases a segment scanner must distinguish.
[[nodiscard]] std::optional<std::span<const std::uint8_t>> next_frame(
    std::span<const std::uint8_t> stream, std::size_t& offset);

}  // namespace teamplay::core::wire
