// Sharded service core: N in-process ScenarioEngines behind a
// structural-fingerprint router.
//
// One engine means one cache and one pool; a service that wants cache
// locality *and* isolation between tenants of the evaluation cache runs N
// shards instead.  The router hashes the canonical structural fingerprint
// of a scenario's *primary kernel* — its first task's entry function
// (ir::structural_fingerprint, the same quantity the EvaluationCache keys
// on) — so every scenario that analyses the same kernels lands on the
// shard whose cache is already warm, whatever application, platform or
// options it arrives with; two applications sharing their pipeline front
// (UAV and rover) colocate even though their tails differ.  Routing is a
// pure function of the request's program + spec: it is stable across
// processes and restarts, which is exactly the property the cross-host RPC
// follow-on needs (DESIGN.md §8).
//
// The sharded engine keeps the single-engine service surface:
//
//   * `submit` returns the same ScenarioTicket (cancellation, completion
//     callbacks, caller help-drain) — a ticket is bound to its shard's pool
//     and never observes the router;
//   * `run` / `run_all` are thin wrappers over submission, with BatchStats
//     whose cache counters are the fold of per-shard deltas;
//   * per-shard cache budgets bound every shard's footprint independently;
//   * `cache_stats` / `stage_telemetry` are commutative folds over shard
//     snapshots (EvaluationCache::Stats::merge / StageTelemetry::merge).
//
// Determinism: every cache key folds in every byte that can influence
// engine output, so whichever shard (and whichever scenario within it)
// computes a key first, the observable report bytes are identical —
// certificates from any shard count and any cache budget are byte-identical
// to the single-engine output on the same batch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <string>

#include "core/scenario_engine.hpp"

namespace teamplay::net {
class RemoteShard;
}  // namespace teamplay::net

namespace teamplay::core {

class ShardedScenarioEngine {
public:
    struct Options {
        /// Number of shards; 0 is normalised to 1 (a sharded engine with
        /// one shard behaves exactly like a plain ScenarioEngine).
        std::size_t shards = 1;
        /// Total extra worker threads, distributed across shards (shard i
        /// gets floor(n/shards) plus one of the first n%shards remainders);
        /// 0 = every shard runs caller-only.
        std::size_t worker_threads = 0;
        /// Evaluation-cache retention budget *per shard*.
        EvaluationCache::Budget cache_budget;
        /// One persistent result store shared by *all* shards (unlike the
        /// per-shard caches): an entry computed by shard A warm-starts
        /// shard B — and, through the same directory, a restarted process
        /// or a sibling service.  Null = in-memory caches only.
        std::shared_ptr<ResultStore> result_store;
        /// Simulator tier shared by every shard.  With the trace backend
        /// and no explicit cache, one TraceCache is materialised here and
        /// shared across shards: unlike the evaluation caches (isolated per
        /// shard on purpose), compiled traces are immutable and
        /// model-keyed, so sharing them is pure win.
        sim::SimOptions sim;
        /// Cross-host shards, "host:port" each (a ShardServer per entry).
        /// They are appended *after* the local shards in the routing
        /// domain, so the fingerprint router treats local and remote
        /// uniformly and routing stays a pure function of the request.
        /// `shards == 0` with remote endpoints set is a pure front-end:
        /// every scenario crosses the wire.
        std::vector<std::string> remote_endpoints;
        /// Fabric peers whose caches are consulted (first hit wins) when a
        /// local shard misses both its memory tier and the result store —
        /// before recomputing.  A warm peer therefore turns a cold local
        /// miss into a remote hit with zero recomputes.  Peers are *not*
        /// routing targets; unreachable peers degrade to misses.
        std::vector<std::string> fetch_peers;
        /// Admission control applied *per shard* (each shard's controller
        /// bounds its own queues).  Remote shards enforce their server's
        /// configuration — deadlines travel with the request, queue depths
        /// do not.
        AdmissionController::Options admission;
    };

    using Completion = ScenarioEngine::Completion;

    ShardedScenarioEngine() : ShardedScenarioEngine(Options{}) {}
    /// Throws std::invalid_argument for a malformed remote endpoint (the
    /// required shape is "host:port"); remote connections themselves are
    /// lazy, so an unreachable endpoint surfaces per-ticket, not here.
    explicit ShardedScenarioEngine(Options options);
    ~ShardedScenarioEngine();

    ShardedScenarioEngine(const ShardedScenarioEngine&) = delete;
    ShardedScenarioEngine& operator=(const ShardedScenarioEngine&) = delete;

    /// Route one scenario to its shard and enqueue it there.  Same contract
    /// as ScenarioEngine::submit: the request is forwarded untouched (a
    /// CSL-only request is parsed transiently for routing, then parsed for
    /// real inside the shard's ParseStage, so stage telemetry and the
    /// error surface match the single engine; malformed CSL is accepted
    /// here and surfaces through the ticket).
    [[nodiscard]] ScenarioTicket submit(ScenarioRequest request,
                                        Completion on_complete = {});

    /// Execute one scenario synchronously (wrapper over `submit`).
    [[nodiscard]] ToolchainReport run(const ScenarioRequest& request);

    /// Execute a batch across all shards.  Reports come back in request
    /// order; the first scenario error is rethrown after the batch drains.
    /// `stats` aggregates the whole batch: cache counters are the fold of
    /// per-shard deltas, telemetry the fold of per-report laps.
    [[nodiscard]] std::vector<ToolchainReport> run_all(
        std::span<const ScenarioRequest> requests,
        BatchStats* stats = nullptr);

    /// Size of the routing domain: local shards plus remote shards.
    [[nodiscard]] std::size_t shard_count() const {
        return shards_.size() + remotes_.size();
    }
    [[nodiscard]] std::size_t local_shard_count() const {
        return shards_.size();
    }
    [[nodiscard]] std::size_t remote_shard_count() const {
        return remotes_.size();
    }

    /// The shard `request` routes to — a pure function of the request's
    /// program and task entries (exposed so benches and tests can attribute
    /// per-shard behaviour).  Indices `>= local_shard_count()` name remote
    /// shards in endpoint order.
    [[nodiscard]] std::size_t shard_of(const ScenarioRequest& request) const;

    /// Fold of every shard's admission counters.  Remote shards contribute
    /// their server-side counters via the stats RPC (an unreachable remote
    /// contributes nothing); `remote_failures[i]` carries this front-end's
    /// consecutive-transport-failure gauge for remote i, in endpoint order —
    /// groundwork for health-checked rerouting.
    [[nodiscard]] AdmissionStats admission_stats() const;

    /// Fold of every shard's cache snapshot.  Remote shards contribute
    /// their server-side counters via the stats RPC; an unreachable remote
    /// contributes nothing.
    [[nodiscard]] EvaluationCache::Stats cache_stats() const;
    /// Local shards only (remote engines own their per-shard breakdown).
    [[nodiscard]] EvaluationCache::Stats shard_cache_stats(
        std::size_t shard) const;

    /// Fold of every shard's cumulative per-stage telemetry.  For remote
    /// shards this folds the server-side stage laps (stats RPC) *and* the
    /// client-side transport laps (net/encode, net/rtt, net/decode) — the
    /// transport laps exist only on this side, so nothing double-counts.
    [[nodiscard]] StageTelemetry stage_telemetry() const;

    /// Spill every *local* shard's completed cache entries to the shared
    /// result store (no-op without one); the store deduplicates, so
    /// entries two shards both hold are written once.  Remote shards flush
    /// into their own stores on their side of the wire.
    void flush_result_store();

    /// Threads that can execute work across all shards: local workers plus
    /// each local shard's calling thread, plus every reachable remote's
    /// advertised worker count.
    [[nodiscard]] std::size_t concurrency() const;

    /// Local shards only; remote caches belong to their process.
    void clear_caches();

private:
    /// Consecutive transport failures per remote (reset by any completed
    /// exchange, including server-side sheds and error replies — those
    /// prove the remote alive).  Declared *before* `remotes_` so it
    /// outlives the remotes' reader threads, whose completion callbacks
    /// update it during teardown.
    std::unique_ptr<std::atomic<std::uint64_t>[]> remote_failures_;
    /// Remotes and fetch peers are declared before the local shards so the
    /// shards are destroyed *first*: a draining local scenario may still
    /// consult a fetch peer from its compute path.
    std::vector<std::unique_ptr<net::RemoteShard>> remotes_;
    std::vector<std::unique_ptr<net::RemoteShard>> fetch_peers_;
    std::vector<std::unique_ptr<ScenarioEngine>> shards_;
};

}  // namespace teamplay::core
