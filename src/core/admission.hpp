// Admission & deadline subsystem: the traffic-management layer between
// `ScenarioEngine::submit` and the thread pool (DESIGN.md §12).
//
// Every ScenarioRequest carries a Priority class and an optional absolute
// deadline.  The AdmissionController decides, *before* a request touches
// the pool, whether it may queue at all:
//
//   * bounded queue — each priority class has a configurable depth; a
//     submit that would exceed it is rejected immediately (fail fast, no
//     queueing), so an overloaded service degrades by shedding instead of
//     by growing an unbounded backlog;
//   * deadline feasibility — rolling per-stage lap means (EWMA over the
//     laps of completed scenarios) estimate the full-pipeline cost; a
//     request whose deadline cannot be met even if it started now is
//     rejected at admission rather than discovered dead after the work;
//   * mid-flight shedding — at every stage boundary the engine asks the
//     controller whether `now + estimated-cost-of-remaining-stages`
//     overruns the deadline, and sheds the scenario if so.  Work already
//     handed to the evaluation cache completes (single-flight slots are
//     never abandoned), so a shed request is exactly as retryable as a
//     cancelled one.
//
// Both rejection and shedding surface as `ShedError`, a subclass of the
// service's retryable `CancelledError` — existing retry loops (including
// the net/ transport-loss handling) cover shed requests unchanged.
//
// Accounting: AdmissionStats counts submitted / admitted / rejected /
// shed / completed / cancelled / failed plus the queue-depth high-water
// mark, per priority class.  The struct folds commutatively (`merge`) and
// diffs (`since`) exactly like EvaluationCache::Stats, rides in
// BatchStats, and crosses the fabric in wire-v4 stats frames.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/stage_telemetry.hpp"

namespace teamplay::core {

/// Thrown out of a scenario whose ticket was cancelled; surfaces through
/// `ScenarioTicket::get` and completion callbacks, never caches anything.
///
/// This is also the *retryable* error class of the service surface: the
/// scenario did not fail, the attempt did — resubmitting the identical
/// request is always safe and produces the same bytes.  Transport-level
/// failures (net/remote_shard.hpp) and admission decisions (ShedError
/// below) derive from it through the protected constructor so
/// `catch (const CancelledError&)` retry loops cover all of them.
class CancelledError : public std::runtime_error {
public:
    explicit CancelledError(const std::string& label)
        : std::runtime_error("scenario cancelled" +
                             (label.empty() ? "" : ": " + label)) {}

protected:
    /// Tag for subclasses that carry their own full message.
    struct RawMessage {};
    CancelledError(RawMessage, const std::string& message)
        : std::runtime_error(message) {}
};

/// Service priority class of one request.  Lower value = more urgent;
/// the numeric order is load-bearing (thread-pool lane, wire byte).
enum class Priority : std::uint8_t {
    kInteractive = 0,  ///< latency-sensitive: always dequeued first
    kBatch = 1,        ///< the default for everything submitted today
    kBackground = 2,   ///< best-effort: first to wait, first to shed
};

inline constexpr std::size_t kNumPriorityClasses = 3;

[[nodiscard]] constexpr std::string_view priority_name(Priority priority) {
    switch (priority) {
        case Priority::kInteractive: return "interactive";
        case Priority::kBatch: return "batch";
        case Priority::kBackground: return "background";
    }
    return "?";
}

/// Parse a CLI/user spelling; empty optional for anything unknown.
[[nodiscard]] std::optional<Priority> parse_priority(std::string_view name);

/// A request refused admission or shed mid-flight.  Retryable by
/// construction (see CancelledError): the attempt was refused, the
/// scenario itself is intact — resubmit (ideally after backoff, or to a
/// less loaded shard) and the bytes come out identical.
class ShedError : public CancelledError {
public:
    enum class Reason : std::uint8_t {
        kQueueFull,           ///< admission: class queue at configured depth
        kDeadlineUnmeetable,  ///< admission: estimate says it can't finish
        kBudgetExhausted,     ///< stage boundary: remaining budget gone
        kRemote,              ///< re-raised from a server-side shed reply
    };

    ShedError(Reason reason, const std::string& label,
              const std::string& detail)
        : CancelledError(RawMessage{}, compose(reason, label, detail)),
          reason_(reason) {}

    [[nodiscard]] Reason reason() const { return reason_; }

private:
    [[nodiscard]] static std::string compose(Reason reason,
                                             const std::string& label,
                                             const std::string& detail);
    Reason reason_;
};

/// Admission counters, per priority class.  Monotonic except
/// `queue_peak` (a high-water gauge) and `remote_failures` (per-remote
/// consecutive-failure gauges maintained by ShardedScenarioEngine).
struct AdmissionStats {
    struct PerClass {
        std::uint64_t submitted = 0;   ///< all submit() calls
        std::uint64_t admitted = 0;    ///< entered the queue
        std::uint64_t rejected = 0;    ///< refused at admission
        std::uint64_t shed = 0;        ///< admitted, shed at a boundary
        std::uint64_t completed = 0;
        std::uint64_t cancelled = 0;   ///< caller-requested cancellation
        std::uint64_t failed = 0;      ///< non-retryable scenario errors
        std::uint64_t queue_peak = 0;  ///< max simultaneously queued

        void merge(const PerClass& other);
        [[nodiscard]] PerClass since(const PerClass& before) const;
    };

    std::array<PerClass, kNumPriorityClasses> classes{};
    /// Consecutive failures per remote shard, in endpoint order; reset to
    /// zero by any success.  Groundwork for health-checked rerouting.
    std::vector<std::uint64_t> remote_failures;

    void merge(const AdmissionStats& other);
    [[nodiscard]] AdmissionStats since(const AdmissionStats& before) const;
    /// Sum over the classes (queue_peak folds by max).
    [[nodiscard]] PerClass totals() const;
    [[nodiscard]] std::string to_string() const;
};

/// The controller one engine routes every submission through.  Thread-safe;
/// all methods are cheap (one mutex, a few counters, a small map of stage
/// means) so it sits on the submit fast path.
class AdmissionController {
public:
    struct Options {
        /// Max queued (admitted, not yet started) requests per class;
        /// 0 = unbounded.  Defaults keep today's behaviour: everything
        /// admitted, nothing shed unless a deadline says otherwise.
        std::array<std::size_t, kNumPriorityClasses> queue_depths{};
    };

    AdmissionController() : AdmissionController(Options{}) {}
    explicit AdmissionController(Options options)
        : options_(options) {}

    /// Admission decision for one submit.  Returns nullptr and takes a
    /// queue slot on admit; otherwise returns the ShedError (as an
    /// exception_ptr, so the caller can fail the ticket without throwing
    /// across the submit path).
    [[nodiscard]] std::exception_ptr try_admit(
        Priority priority,
        const std::optional<std::chrono::steady_clock::time_point>& deadline,
        const std::string& label);

    /// The request left the queue and began executing.
    void on_start(Priority priority);

    /// Terminal outcomes.  `on_completed` also feeds the per-stage rolling
    /// means that every later feasibility estimate draws on.
    void on_completed(Priority priority, std::span<const StageLap> laps);
    void on_shed(Priority priority);
    void on_cancelled(Priority priority);
    void on_failed(Priority priority);

    /// Stage-boundary budget check: throws ShedError(kBudgetExhausted)
    /// when `now + estimated cost of remaining_stages` overruns the
    /// deadline.  With no recorded laps the estimate is zero, so a cold
    /// controller only sheds once the deadline has actually passed.
    void enforce_budget(Priority priority,
                        std::chrono::steady_clock::time_point deadline,
                        std::span<const std::string_view> remaining_stages,
                        const std::string& label) const;

    /// Rolling estimate of a full pipeline run (sum of per-stage means).
    [[nodiscard]] double estimated_total_s() const;

    [[nodiscard]] AdmissionStats stats() const;

private:
    /// EWMA lap mean of one stage name.  alpha = 0.2: heavy enough to
    /// track cache warm-up (costs drop steeply once keys repeat), light
    /// enough not to chase one outlier lap.
    struct StageMean {
        double mean_s = 0.0;
        bool seeded = false;
    };

    [[nodiscard]] double estimate_locked(
        std::span<const std::string_view> stages) const;

    Options options_;
    mutable std::mutex mutex_;
    AdmissionStats stats_;
    std::array<std::size_t, kNumPriorityClasses> queued_{};
    std::map<std::string, StageMean, std::less<>> stage_means_;
};

}  // namespace teamplay::core
