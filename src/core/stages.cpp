#include "core/stages.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "ir/fingerprint.hpp"
#include "ir/validate.hpp"
#include "security/taint.hpp"

namespace teamplay::core {

namespace {

/// Representative core index per distinct core class of the platform.
std::map<std::string, std::size_t> class_representatives(
    const platform::Platform& platform) {
    std::map<std::string, std::size_t> reps;
    for (std::size_t i = 0; i < platform.cores.size(); ++i)
        reps.try_emplace(platform.cores[i].core_class, i);
    return reps;
}

/// Core classes a task may run on, honouring its CSL constraint.
std::vector<std::string> allowed_classes(
    const csl::TaskSpec& spec,
    const std::map<std::string, std::size_t>& reps) {
    std::vector<std::string> classes;
    for (const auto& [cls, idx] : reps)
        if (spec.core_class.empty() || spec.core_class == cls)
            classes.push_back(cls);
    return classes;
}

double effective_deadline(const csl::AppSpec& spec) {
    double deadline = spec.deadline_s;
    if (deadline <= 0.0)
        for (const auto& task : spec.tasks)
            deadline = std::max(deadline, task.deadline_s);
    return deadline;
}

coordination::GlueStyle default_glue_style(
    const platform::Platform& platform) {
    if (platform.name == "gr712rc") return coordination::GlueStyle::kRtems;
    if (platform.predictable() && platform.cores.size() == 1)
        return coordination::GlueStyle::kSequential;
    return coordination::GlueStyle::kPosix;
}

void attach_rta(ToolchainReport& report,
                const platform::Platform& platform) {
    // Rate-monotonic response-time analysis per core, when every task
    // scheduled there is periodic.
    for (std::size_t c = 0; c < platform.cores.size(); ++c) {
        std::vector<coordination::PeriodicTask> periodic;
        bool all_periodic = true;
        for (const auto& entry : report.schedule.entries) {
            if (entry.core != c) continue;
            const auto* spec = report.spec.find(entry.task);
            if (spec == nullptr || spec->period_s <= 0.0) {
                all_periodic = false;
                break;
            }
            coordination::PeriodicTask task;
            task.name = entry.task;
            task.wcet_s = entry.finish_s - entry.start_s;
            task.period_s = spec->period_s;
            task.deadline_s = spec->deadline_s;
            periodic.push_back(std::move(task));
        }
        if (all_periodic && periodic.size() > 1)
            report.rta[c] = coordination::response_time_analysis(periodic);
    }
}

/// Mix the identity of a core (everything that influences analyser and
/// profiler output) into a fingerprint.  The key's core_class alone is not
/// enough: different boards reuse class names with different OPP tables,
/// and the full cost model must participate — two boards may share names
/// and OPPs yet differ in a cost table entry.
void mix_core(Fingerprint& fp, const platform::Core& core) {
    fp.mix(core.name).mix(core.core_class);
    const auto& model = core.model;
    fp.mix(model.name);
    fp.mix(static_cast<std::uint64_t>(model.predictable ? 1 : 0));
    for (const auto& entry : model.cost)
        fp.mix(entry.cycles).mix(entry.energy_pj);
    fp.mix(model.branch_cycles).mix(model.branch_energy_pj);
    fp.mix(model.loop_iter_cycles).mix(model.loop_iter_energy_pj);
    fp.mix(model.call_cycles).mix(model.call_energy_pj);
    fp.mix(model.nominal_voltage).mix(model.data_alpha_pj_per_bit);
    fp.mix(model.cache_miss_prob).mix(model.cache_miss_penalty);
    fp.mix(model.timing_jitter_sigma);
    for (const auto& opp : core.opps)
        fp.mix(opp.freq_hz).mix(opp.voltage).mix(opp.static_power_w);
}

std::uint64_t front_params(
    const compiler::MultiCriteriaCompiler::Options& options,
    const csl::TaskSpec& task_spec, const platform::Core& core) {
    Fingerprint fp;
    fp.mix(static_cast<std::uint64_t>(options.engine));
    fp.mix(static_cast<std::uint64_t>(options.population));
    fp.mix(static_cast<std::uint64_t>(options.iterations));
    fp.mix(options.seed);
    fp.mix(static_cast<std::uint64_t>(options.max_versions));
    fp.mix(task_spec.security_hint);
    mix_core(fp, core);
    return fp.value;
}

std::uint64_t profile_params(int profile_runs, const platform::Core& core) {
    Fingerprint fp;
    fp.mix(static_cast<std::uint64_t>(profile_runs));
    mix_core(fp, core);
    return fp.value;
}

/// The static per-(task, core class) unit of work: multi-criteria
/// compilation plus security-hint enforcement.  Pure function of its
/// arguments — exactly what the cache memoises.
std::vector<compiler::TaskVersion> compile_front(
    const ir::Program& program, const platform::Core& core,
    const csl::TaskSpec& task_spec,
    compiler::MultiCriteriaCompiler::Options compiler_options,
    const sim::SimOptions& sim) {
    compiler::MultiCriteriaCompiler mcc(program, core, sim);
    compiler_options.explore_security = task_spec.security_hint == "auto";
    auto front = mcc.optimise(task_spec.entry, compiler_options);

    // A fixed security hint overrides the knob on every version.
    if (task_spec.security_hint == "balance" ||
        task_spec.security_hint == "ladder") {
        const auto forced = task_spec.security_hint == "balance"
                                ? compiler::SecurityLevel::kBalance
                                : compiler::SecurityLevel::kLadder;
        for (auto& version : front) {
            auto config = version.config;
            config.security = forced;
            version = mcc.compile(task_spec.entry, config);
        }
    }
    return front;
}

}  // namespace

// -- ParseStage ---------------------------------------------------------------

void ParseStage::run(ScenarioContext& context) const {
    if (!context.program_validated) ir::validate_or_throw(*context.program);
    if (context.request->spec.has_value())
        context.report.spec = *context.request->spec;
    else
        context.report.spec = csl::parse(context.request->csl_source);
    context.report.platform_name = context.platform->name;
    context.report.graph = context.report.spec.skeleton();
    // Structural fingerprints of every task entry, computed once per
    // scenario: the program component of all downstream cache keys (and
    // the quantity the shard router hashes, so routing and keying agree).
    for (const auto& task_spec : context.report.spec.tasks)
        context.entry_fps.try_emplace(
            task_spec.entry,
            ir::structural_fingerprint(*context.program, task_spec.entry));
}

// -- AnalyseStage -------------------------------------------------------------

void AnalyseStage::run(ScenarioContext& context) const {
    if (mode_ == Mode::kStatic)
        run_static(context);
    else
        run_profiled(context);
}

void AnalyseStage::run_static(ScenarioContext& context) const {
    const auto reps = class_representatives(*context.platform);

    struct Tuple {
        const csl::TaskSpec* task;
        std::string cls;
        const platform::Core* core;
    };
    std::vector<Tuple> tuples;
    for (const auto& task_spec : context.report.spec.tasks) {
        const auto classes = allowed_classes(task_spec, reps);
        if (classes.empty())
            throw std::runtime_error("task '" + task_spec.name +
                                     "' fits no core class of " +
                                     context.platform->name);
        for (const auto& cls : classes)
            tuples.push_back({&task_spec, cls,
                              &context.platform->cores[reps.at(cls)]});
    }

    std::vector<std::shared_ptr<const EvaluationResult>> results(
        tuples.size());
    context.pool->parallel_for(tuples.size(), [&](std::size_t i) {
        const auto& tuple = tuples[i];
        EvaluationKey key;
        key.structural_fp = context.entry_fps.at(tuple.task->entry);
        key.entry = tuple.task->entry;
        key.core_class = tuple.cls;
        key.kind = AnalysisKind::kCompiledFront;
        key.params =
            front_params(context.options.compiler, *tuple.task, *tuple.core);
        results[i] = context.cache->lookup(key, [&] {
            EvaluationResult result;
            result.front =
                std::make_shared<const std::vector<compiler::TaskVersion>>(
                    compile_front(*context.program, *tuple.core, *tuple.task,
                                  context.options.compiler, context.sim));
            return result;
        });
    });

    // Merge in tuple order so the report is independent of worker count and
    // identical to the legacy driver's (spec order x sorted class order).
    for (std::size_t i = 0; i < tuples.size(); ++i) {
        const auto& tuple = tuples[i];
        coordination::Task* task =
            context.report.graph.find(tuple.task->name);
        TaskFront front;
        front.task = tuple.task->name;
        front.core_class = tuple.cls;
        front.versions = *results[i]->front;
        for (const auto& version : front.versions) {
            coordination::VersionChoice choice;
            choice.time_s = version.wcet_s;
            choice.energy_j = version.energy_dynamic_j;
            choice.leakage = version.leakage;
            choice.opp_index = version.config.opp_index;
            choice.note = version.config.label();
            task->versions[tuple.cls].push_back(choice);
        }
        context.report.fronts.push_back(std::move(front));
    }
}

void AnalyseStage::run_profiled(ScenarioContext& context) const {
    // Pass 1 (solid path of Fig. 2): sequential glue + dynamic profiling of
    // every task on every admissible (core class, DVFS point).
    context.report.sequential_glue = coordination::generate_glue(
        context.report.graph, {}, *context.platform,
        coordination::GlueStyle::kSequential);

    const auto reps = class_representatives(*context.platform);

    struct Tuple {
        const csl::TaskSpec* task;
        const ir::Function* entry;
        std::string cls;
        const platform::Core* core;
        std::size_t opp;
    };
    std::vector<Tuple> tuples;
    for (const auto& task_spec : context.report.spec.tasks) {
        const ir::Function* entry = context.program->find(task_spec.entry);
        if (entry == nullptr)
            throw std::runtime_error("task '" + task_spec.name +
                                     "' entry function '" + task_spec.entry +
                                     "' not found");
        for (const auto& cls : allowed_classes(task_spec, reps)) {
            const auto& core = context.platform->cores[reps.at(cls)];
            for (std::size_t opp = 0; opp < core.opps.size(); ++opp)
                tuples.push_back({&task_spec, entry, cls, &core, opp});
        }
    }

    std::vector<coordination::VersionChoice> choices(tuples.size());
    context.pool->parallel_for(tuples.size(), [&](std::size_t i) {
        const auto& tuple = tuples[i];

        EvaluationKey taint_key;
        taint_key.structural_fp = context.entry_fps.at(tuple.task->entry);
        taint_key.entry = tuple.task->entry;
        taint_key.kind = AnalysisKind::kTaint;
        const auto taint = context.cache->lookup(taint_key, [&] {
            EvaluationResult result;
            result.leakage =
                security::analyze_taint(*context.program, *tuple.entry)
                    .leakage_proxy();
            return result;
        });

        EvaluationKey key;
        key.structural_fp = context.entry_fps.at(tuple.task->entry);
        key.entry = tuple.task->entry;
        key.core_class = tuple.cls;
        key.opp_index = tuple.opp;
        key.kind = AnalysisKind::kProfile;
        key.params =
            profile_params(context.options.profile_runs, *tuple.core);
        const auto measured = context.cache->lookup(key, [&] {
            EvaluationResult result;
            // Each (core, OPP) campaign owns a fresh machine per run inside
            // the profiler, so concurrent tuples never share simulator
            // state; the seed is a pure function of the OPP (legacy
            // convention), keeping results thread-count-invariant.
            profiler::PowProfiler prof(*context.program, *tuple.core,
                                       tuple.opp,
                                       /*seed=*/tuple.opp * 131 + 7,
                                       context.sim);
            result.profile = prof.profile(
                tuple.task->entry,
                profiler::zero_inputs(tuple.entry->param_count),
                context.options.profile_runs);
            return result;
        });

        coordination::VersionChoice choice;
        choice.time_s = measured->profile.time_s.high_water_mark();
        choice.energy_j = measured->profile.energy_j.mean;
        choice.leakage = taint->leakage;
        choice.opp_index = tuple.opp;
        choice.note = "profiled@opp" + std::to_string(tuple.opp);
        choices[i] = std::move(choice);
    });

    for (std::size_t i = 0; i < tuples.size(); ++i) {
        coordination::Task* task =
            context.report.graph.find(tuples[i].task->name);
        task->versions[tuples[i].cls].push_back(std::move(choices[i]));
    }
}

// -- ScheduleStage ------------------------------------------------------------

void ScheduleStage::run(ScenarioContext& context) const {
    auto scheduler_options = context.options.scheduler;
    if (scheduler_options.deadline_s <= 0.0)
        scheduler_options.deadline_s = effective_deadline(context.report.spec);
    const coordination::Scheduler scheduler(*context.platform);
    context.report.schedule =
        scheduler.schedule(context.report.graph, scheduler_options);
    attach_rta(context.report, *context.platform);

    const auto style = context.options.glue_style.value_or(
        default_glue_style(*context.platform));
    context.report.glue_code = coordination::generate_glue(
        context.report.graph, context.report.schedule, *context.platform,
        style);
}

// -- ContractStage ------------------------------------------------------------

void ContractStage::run(ScenarioContext& context) const {
    auto& report = context.report;
    std::vector<contracts::ContractInput> inputs;
    for (const auto& entry : report.schedule.entries) {
        const auto* task_spec = context.report.spec.find(entry.task);
        if (task_spec == nullptr) continue;

        if (mode_ == Mode::kStatic) {
            const compiler::TaskVersion* chosen_v =
                report.chosen_version(entry.task);
            if (chosen_v == nullptr) continue;
            contracts::ContractInput input;
            input.poi = entry.task;
            input.function = task_spec->entry;
            input.program = chosen_v->program.get();
            input.core = &context.platform->cores[entry.core];
            input.opp_index = chosen_v->config.opp_index;
            input.time_budget_s = task_spec->time_budget_s;
            input.energy_budget_j = task_spec->energy_budget_j;
            input.leakage_budget = task_spec->leakage_budget;
            input.leakage_proxy = chosen_v->leakage;
            inputs.push_back(std::move(input));
        } else {
            const auto* task = report.graph.find(entry.task);
            const auto* versions = task->versions_for(
                context.platform->cores[entry.core].core_class);
            if (versions == nullptr || entry.version >= versions->size())
                continue;
            const auto& choice = (*versions)[entry.version];
            contracts::ContractInput input;
            input.poi = entry.task;
            input.function = task_spec->entry;
            input.measured_only = true;
            input.measured_time_s = choice.time_s;
            input.measured_energy_j = choice.energy_j;
            input.time_budget_s = task_spec->time_budget_s;
            input.energy_budget_j = task_spec->energy_budget_j;
            input.leakage_budget = task_spec->leakage_budget;
            input.leakage_proxy = choice.leakage;
            inputs.push_back(std::move(input));
        }
    }
    context.contract_inputs = std::move(inputs);
}

// -- CertifyStage -------------------------------------------------------------

void CertifyStage::run(ScenarioContext& context) const {
    context.report.certificate =
        contracts::check_contracts(context.report.spec.name,
                                   context.platform->name,
                                   context.contract_inputs);
}

// -- configurations -----------------------------------------------------------

std::vector<std::unique_ptr<const Stage>> predictable_stage_configuration() {
    std::vector<std::unique_ptr<const Stage>> stages;
    stages.push_back(std::make_unique<ParseStage>());
    stages.push_back(
        std::make_unique<AnalyseStage>(AnalyseStage::Mode::kStatic));
    stages.push_back(std::make_unique<ScheduleStage>());
    stages.push_back(
        std::make_unique<ContractStage>(ContractStage::Mode::kStatic));
    stages.push_back(std::make_unique<CertifyStage>());
    return stages;
}

std::vector<std::unique_ptr<const Stage>> complex_stage_configuration() {
    std::vector<std::unique_ptr<const Stage>> stages;
    stages.push_back(std::make_unique<ParseStage>());
    stages.push_back(
        std::make_unique<AnalyseStage>(AnalyseStage::Mode::kProfiled));
    stages.push_back(std::make_unique<ScheduleStage>());
    stages.push_back(
        std::make_unique<ContractStage>(ContractStage::Mode::kMeasured));
    stages.push_back(std::make_unique<CertifyStage>());
    return stages;
}

}  // namespace teamplay::core
