#include "core/wire.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

namespace teamplay::core::wire {

namespace {

constexpr std::uint32_t kMagic = 0x54504C57;  // "TPLW"

enum class MessageKind : std::uint8_t {
    kKey = 1,
    kResult = 2,
    kTelemetry = 3,
    kBatchStats = 4,
    kRequest = 5,
    kReport = 6,
};

/// Node trees are shallow in practice (builder nesting); the cap only
/// exists so a corrupted buffer cannot drive unbounded recursion.
constexpr int kMaxNodeDepth = 256;

constexpr std::size_t kHeaderBytes = 4 + 2 + 1;   // magic + version + kind
constexpr std::size_t kChecksumBytes = 8;

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
    std::uint64_t value = 14695981039346656037ULL;
    for (const std::uint8_t byte : bytes) {
        value ^= byte;
        value *= 1099511628211ULL;
    }
    return value;
}

// -- writer -------------------------------------------------------------------

struct Writer {
    Buffer out;

    void u8(std::uint8_t value) { out.push_back(value); }
    void u16(std::uint16_t value) {
        out.push_back(static_cast<std::uint8_t>(value));
        out.push_back(static_cast<std::uint8_t>(value >> 8));
    }
    void u32(std::uint32_t value) {
        for (int shift = 0; shift < 32; shift += 8)
            out.push_back(static_cast<std::uint8_t>(value >> shift));
    }
    void u64(std::uint64_t value) {
        for (int shift = 0; shift < 64; shift += 8)
            out.push_back(static_cast<std::uint8_t>(value >> shift));
    }
    void i64(std::int64_t value) {
        u64(static_cast<std::uint64_t>(value));
    }
    void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
    void boolean(bool value) { u8(value ? 1 : 0); }
    void reg(ir::Reg value) { u32(static_cast<std::uint32_t>(value)); }
    void str(std::string_view text) {
        u32(static_cast<std::uint32_t>(text.size()));
        out.insert(out.end(), text.begin(), text.end());
    }
};

// -- reader -------------------------------------------------------------------

struct Reader {
    std::span<const std::uint8_t> data;
    std::size_t pos = 0;

    void need(std::size_t bytes) const {
        if (bytes > data.size() - pos)
            throw WireFormatError("wire buffer truncated");
    }
    std::uint8_t u8() {
        need(1);
        return data[pos++];
    }
    std::uint16_t u16() {
        need(2);
        std::uint16_t value = 0;
        for (int shift = 0; shift < 16; shift += 8)
            value = static_cast<std::uint16_t>(
                value | static_cast<std::uint16_t>(data[pos++]) << shift);
        return value;
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t value = 0;
        for (int shift = 0; shift < 32; shift += 8)
            value |= static_cast<std::uint32_t>(data[pos++]) << shift;
        return value;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t value = 0;
        for (int shift = 0; shift < 64; shift += 8)
            value |= static_cast<std::uint64_t>(data[pos++]) << shift;
        return value;
    }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }
    bool boolean() {
        const std::uint8_t byte = u8();
        if (byte > 1) throw WireFormatError("wire bool byte not 0/1");
        return byte == 1;
    }
    ir::Reg reg() { return static_cast<ir::Reg>(u32()); }
    std::string str() {
        const std::uint32_t length = u32();
        need(length);
        std::string text(reinterpret_cast<const char*>(data.data() + pos),
                         length);
        pos += length;
        return text;
    }
    /// Sequence-count guard: each element occupies >= `min_element_bytes`,
    /// so a forged count larger than the remaining buffer is rejected
    /// before any allocation.
    std::uint32_t count(std::size_t min_element_bytes) {
        const std::uint32_t n = u32();
        if (min_element_bytes > 0 &&
            n > (data.size() - pos) / min_element_bytes)
            throw WireFormatError("wire sequence count exceeds buffer");
        return n;
    }
};

// -- framing ------------------------------------------------------------------

Writer begin_message(MessageKind kind) {
    Writer writer;
    writer.u32(kMagic);
    writer.u16(kVersion);
    writer.u8(static_cast<std::uint8_t>(kind));
    return writer;
}

Buffer seal_message(Writer writer) {
    writer.u64(fnv1a(writer.out));
    return std::move(writer.out);
}

/// Validate framing (length, magic, checksum, version, kind) and return a
/// reader positioned at the payload, spanning exactly the payload bytes.
Reader open_message(std::span<const std::uint8_t> buffer, MessageKind kind) {
    if (buffer.size() < kHeaderBytes + kChecksumBytes)
        throw WireFormatError("wire buffer shorter than frame");
    const auto body = buffer.first(buffer.size() - kChecksumBytes);
    Reader frame{buffer};
    if (frame.u32() != kMagic) throw WireFormatError("wire magic mismatch");
    // Checksum before version: corruption must never masquerade as a
    // version skew.
    Reader trailer{buffer, buffer.size() - kChecksumBytes};
    if (trailer.u64() != fnv1a(body))
        throw WireFormatError("wire checksum mismatch");
    const std::uint16_t version = frame.u16();
    if (version != kVersion) throw WireVersionError(version, kVersion);
    if (frame.u8() != static_cast<std::uint8_t>(kind))
        throw WireFormatError("wire message kind mismatch");
    return Reader{body, kHeaderBytes};
}

void expect_fully_consumed(const Reader& reader) {
    if (reader.pos != reader.data.size())
        throw WireFormatError("wire payload has trailing bytes");
}

// -- IR program ---------------------------------------------------------------

void put_node(Writer& writer, const ir::Node& node) {
    writer.u8(static_cast<std::uint8_t>(node.kind));
    switch (node.kind) {
        case ir::NodeKind::kBlock:
            writer.u32(static_cast<std::uint32_t>(node.instrs.size()));
            for (const auto& instr : node.instrs) {
                writer.u8(static_cast<std::uint8_t>(instr.op));
                writer.reg(instr.dst);
                writer.reg(instr.a);
                writer.reg(instr.b);
                writer.reg(instr.c);
                writer.u64(static_cast<std::uint64_t>(instr.imm));
                writer.boolean(instr.secret);
            }
            break;
        case ir::NodeKind::kSeq:
            writer.u32(static_cast<std::uint32_t>(node.children.size()));
            for (const auto& child : node.children) put_node(writer, *child);
            break;
        case ir::NodeKind::kIf:
            writer.reg(node.cond);
            writer.boolean(node.then_branch != nullptr);
            writer.boolean(node.else_branch != nullptr);
            if (node.then_branch) put_node(writer, *node.then_branch);
            if (node.else_branch) put_node(writer, *node.else_branch);
            break;
        case ir::NodeKind::kLoop:
            writer.i64(node.trip);
            writer.i64(node.bound);
            writer.reg(node.trip_reg);
            writer.reg(node.index_reg);
            writer.i64(node.stride);
            writer.boolean(node.body != nullptr);
            if (node.body) put_node(writer, *node.body);
            break;
        case ir::NodeKind::kCall:
            writer.str(node.callee);
            writer.u32(static_cast<std::uint32_t>(node.args.size()));
            for (const ir::Reg arg : node.args) writer.reg(arg);
            writer.reg(node.ret);
            break;
    }
}

ir::NodePtr get_node(Reader& reader, int depth) {
    if (depth > kMaxNodeDepth)
        throw WireFormatError("wire node tree nested too deeply");
    const std::uint8_t kind_byte = reader.u8();
    if (kind_byte > static_cast<std::uint8_t>(ir::NodeKind::kCall))
        throw WireFormatError("wire node kind invalid");
    auto node = std::make_unique<ir::Node>();
    node->kind = static_cast<ir::NodeKind>(kind_byte);
    switch (node->kind) {
        case ir::NodeKind::kBlock: {
            const std::uint32_t n = reader.count(22);  // bytes per instr
            node->instrs.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) {
                ir::Instr instr;
                const std::uint8_t op = reader.u8();
                if (op >= ir::kNumOpcodes)
                    throw WireFormatError("wire opcode invalid");
                instr.op = static_cast<ir::Opcode>(op);
                instr.dst = reader.reg();
                instr.a = reader.reg();
                instr.b = reader.reg();
                instr.c = reader.reg();
                instr.imm = reader.i64();
                instr.secret = reader.boolean();
                node->instrs.push_back(instr);
            }
            break;
        }
        case ir::NodeKind::kSeq: {
            const std::uint32_t n = reader.count(1);
            node->children.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i)
                node->children.push_back(get_node(reader, depth + 1));
            break;
        }
        case ir::NodeKind::kIf: {
            node->cond = reader.reg();
            const bool has_then = reader.boolean();
            const bool has_else = reader.boolean();
            if (has_then) node->then_branch = get_node(reader, depth + 1);
            if (has_else) node->else_branch = get_node(reader, depth + 1);
            break;
        }
        case ir::NodeKind::kLoop: {
            node->trip = reader.i64();
            node->bound = reader.i64();
            node->trip_reg = reader.reg();
            node->index_reg = reader.reg();
            node->stride = reader.i64();
            if (reader.boolean()) node->body = get_node(reader, depth + 1);
            break;
        }
        case ir::NodeKind::kCall: {
            node->callee = reader.str();
            const std::uint32_t n = reader.count(4);
            node->args.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i)
                node->args.push_back(reader.reg());
            node->ret = reader.reg();
            break;
        }
    }
    return node;
}

void put_program(Writer& writer, const ir::Program& program) {
    writer.u64(program.memory_words);
    writer.u32(static_cast<std::uint32_t>(program.functions.size()));
    // std::map iteration: name order, canonical on both sides.
    for (const auto& [name, fn] : program.functions) {
        writer.str(name);
        writer.i64(fn.param_count);
        writer.i64(fn.reg_count);
        writer.reg(fn.ret_reg);
        writer.boolean(fn.body != nullptr);
        if (fn.body) put_node(writer, *fn.body);
    }
}

ir::Program get_program(Reader& reader) {
    ir::Program program;
    program.memory_words = reader.u64();
    const std::uint32_t n = reader.count(4);
    std::string previous_name;
    for (std::uint32_t i = 0; i < n; ++i) {
        ir::Function fn;
        fn.name = reader.str();
        // The encoder emits functions in strict map order; accepting
        // duplicates or unsorted names would break the byte-exact
        // encode(decode(b)) == b guarantee.
        if (i > 0 && fn.name <= previous_name)
            throw WireFormatError(
                "wire program functions not in canonical order");
        previous_name = fn.name;
        fn.param_count = static_cast<int>(reader.i64());
        fn.reg_count = static_cast<int>(reader.i64());
        fn.ret_reg = reader.reg();
        if (reader.boolean()) fn.body = get_node(reader, 0);
        program.functions[fn.name] = std::move(fn);
    }
    return program;
}

// -- compiler / profiler payloads --------------------------------------------

void put_task_version(Writer& writer, const compiler::TaskVersion& version) {
    const auto& config = version.config;
    writer.boolean(config.fold);
    writer.boolean(config.cse_pass);
    writer.boolean(config.strength);
    writer.boolean(config.dce_pass);
    writer.boolean(config.inline_calls_pass);
    writer.boolean(config.licm);
    writer.i64(config.unroll_factor);
    writer.u8(static_cast<std::uint8_t>(config.security));
    writer.u64(config.opp_index);
    writer.boolean(version.analysable);
    writer.f64(version.wcet_s);
    writer.f64(version.wcec_j);
    writer.f64(version.time_s);
    writer.f64(version.energy_j);
    writer.f64(version.energy_dynamic_j);
    writer.f64(version.leakage);
    writer.i64(version.static_instrs);
    writer.boolean(version.program != nullptr);
    if (version.program) put_program(writer, *version.program);
}

compiler::TaskVersion get_task_version(Reader& reader) {
    compiler::TaskVersion version;
    auto& config = version.config;
    config.fold = reader.boolean();
    config.cse_pass = reader.boolean();
    config.strength = reader.boolean();
    config.dce_pass = reader.boolean();
    config.inline_calls_pass = reader.boolean();
    config.licm = reader.boolean();
    config.unroll_factor = static_cast<int>(reader.i64());
    const std::uint8_t security = reader.u8();
    if (security > static_cast<std::uint8_t>(compiler::SecurityLevel::kLadder))
        throw WireFormatError("wire security level invalid");
    config.security = static_cast<compiler::SecurityLevel>(security);
    config.opp_index = reader.u64();
    version.analysable = reader.boolean();
    version.wcet_s = reader.f64();
    version.wcec_j = reader.f64();
    version.time_s = reader.f64();
    version.energy_j = reader.f64();
    version.energy_dynamic_j = reader.f64();
    version.leakage = reader.f64();
    version.static_instrs = static_cast<int>(reader.i64());
    if (reader.boolean())
        version.program =
            std::make_shared<const ir::Program>(get_program(reader));
    return version;
}

void put_estimate(Writer& writer, const profiler::Estimate& estimate) {
    writer.f64(estimate.mean);
    writer.f64(estimate.stddev);
    writer.f64(estimate.p95);
    writer.f64(estimate.max);
}

profiler::Estimate get_estimate(Reader& reader) {
    profiler::Estimate estimate;
    estimate.mean = reader.f64();
    estimate.stddev = reader.f64();
    estimate.p95 = reader.f64();
    estimate.max = reader.f64();
    return estimate;
}

void put_profile(Writer& writer, const profiler::TaskProfile& profile) {
    writer.str(profile.function);
    writer.i64(profile.runs);
    put_estimate(writer, profile.time_s);
    put_estimate(writer, profile.energy_j);
    put_estimate(writer, profile.cycles);
}

profiler::TaskProfile get_profile(Reader& reader) {
    profiler::TaskProfile profile;
    profile.function = reader.str();
    profile.runs = static_cast<int>(reader.i64());
    profile.time_s = get_estimate(reader);
    profile.energy_j = get_estimate(reader);
    profile.cycles = get_estimate(reader);
    return profile;
}

void put_cache_stats(Writer& writer, const EvaluationCache::Stats& stats) {
    writer.u64(stats.hits);
    writer.u64(stats.misses);
    writer.u64(stats.evictions);
    writer.u64(stats.store_hits);
    writer.u64(stats.store_misses);
    writer.u64(stats.spills);
    writer.u64(stats.store_rejects);
    writer.u64(stats.remote_hits);
    writer.u64(stats.remote_misses);
    writer.u64(stats.entries);
    writer.f64(stats.resident_cost);
}

EvaluationCache::Stats get_cache_stats(Reader& reader) {
    EvaluationCache::Stats stats;
    stats.hits = reader.u64();
    stats.misses = reader.u64();
    stats.evictions = reader.u64();
    stats.store_hits = reader.u64();
    stats.store_misses = reader.u64();
    stats.spills = reader.u64();
    stats.store_rejects = reader.u64();
    stats.remote_hits = reader.u64();
    stats.remote_misses = reader.u64();
    stats.entries = reader.u64();
    stats.resident_cost = reader.f64();
    return stats;
}

void put_admission(Writer& writer, const AdmissionStats& stats) {
    for (const auto& per_class : stats.classes) {
        writer.u64(per_class.submitted);
        writer.u64(per_class.admitted);
        writer.u64(per_class.rejected);
        writer.u64(per_class.shed);
        writer.u64(per_class.completed);
        writer.u64(per_class.cancelled);
        writer.u64(per_class.failed);
        writer.u64(per_class.queue_peak);
    }
    writer.u32(static_cast<std::uint32_t>(stats.remote_failures.size()));
    for (const std::uint64_t failures : stats.remote_failures)
        writer.u64(failures);
}

AdmissionStats get_admission(Reader& reader) {
    AdmissionStats stats;
    for (auto& per_class : stats.classes) {
        per_class.submitted = reader.u64();
        per_class.admitted = reader.u64();
        per_class.rejected = reader.u64();
        per_class.shed = reader.u64();
        per_class.completed = reader.u64();
        per_class.cancelled = reader.u64();
        per_class.failed = reader.u64();
        per_class.queue_peak = reader.u64();
    }
    const std::uint32_t remotes = reader.count(8);
    stats.remote_failures.reserve(remotes);
    for (std::uint32_t i = 0; i < remotes; ++i)
        stats.remote_failures.push_back(reader.u64());
    return stats;
}

void put_telemetry(Writer& writer, const StageTelemetry& telemetry) {
    writer.u32(static_cast<std::uint32_t>(telemetry.stages().size()));
    for (const auto& [name, stage] : telemetry.stages()) {
        writer.str(name);
        writer.u64(stage.count);
        writer.f64(stage.total_s);
        writer.f64(stage.max_s);
    }
}

StageTelemetry get_telemetry(Reader& reader) {
    StageTelemetry telemetry;
    const std::uint32_t n = reader.count(28);  // name len + 3 scalars
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::string name = reader.str();
        StageTelemetry::PerStage stage;
        stage.count = reader.u64();
        stage.total_s = reader.f64();
        stage.max_s = reader.f64();
        telemetry.merge(name, stage);
    }
    return telemetry;
}

// -- platform -----------------------------------------------------------------

void put_target_model(Writer& writer, const isa::TargetModel& model) {
    writer.str(model.name);
    writer.boolean(model.predictable);
    writer.u32(static_cast<std::uint32_t>(model.cost.size()));
    for (const auto& entry : model.cost) {
        writer.f64(entry.cycles);
        writer.f64(entry.energy_pj);
    }
    writer.f64(model.branch_cycles);
    writer.f64(model.branch_energy_pj);
    writer.f64(model.loop_iter_cycles);
    writer.f64(model.loop_iter_energy_pj);
    writer.f64(model.call_cycles);
    writer.f64(model.call_energy_pj);
    writer.f64(model.nominal_voltage);
    writer.f64(model.data_alpha_pj_per_bit);
    writer.f64(model.cache_miss_prob);
    writer.f64(model.cache_miss_penalty);
    writer.f64(model.timing_jitter_sigma);
}

isa::TargetModel get_target_model(Reader& reader) {
    isa::TargetModel model;
    model.name = reader.str();
    model.predictable = reader.boolean();
    // The cost table is fixed-size per codec generation; a different class
    // count is a layout change, which is what the version field is for —
    // here it can only mean corruption that survived the checksum window.
    if (reader.u32() != model.cost.size())
        throw WireFormatError("wire cost table size invalid");
    for (auto& entry : model.cost) {
        entry.cycles = reader.f64();
        entry.energy_pj = reader.f64();
    }
    model.branch_cycles = reader.f64();
    model.branch_energy_pj = reader.f64();
    model.loop_iter_cycles = reader.f64();
    model.loop_iter_energy_pj = reader.f64();
    model.call_cycles = reader.f64();
    model.call_energy_pj = reader.f64();
    model.nominal_voltage = reader.f64();
    model.data_alpha_pj_per_bit = reader.f64();
    model.cache_miss_prob = reader.f64();
    model.cache_miss_penalty = reader.f64();
    model.timing_jitter_sigma = reader.f64();
    return model;
}

void put_platform(Writer& writer, const platform::Platform& platform) {
    writer.str(platform.name);
    writer.f64(platform.base_power_w);
    writer.u32(static_cast<std::uint32_t>(platform.cores.size()));
    for (const auto& core : platform.cores) {
        writer.str(core.name);
        put_target_model(writer, core.model);
        writer.u32(static_cast<std::uint32_t>(core.opps.size()));
        for (const auto& opp : core.opps) {
            writer.f64(opp.freq_hz);
            writer.f64(opp.voltage);
            writer.f64(opp.static_power_w);
        }
        writer.str(core.core_class);
    }
}

platform::Platform get_platform(Reader& reader) {
    platform::Platform platform;
    platform.name = reader.str();
    platform.base_power_w = reader.f64();
    const std::uint32_t cores = reader.count(24);
    platform.cores.reserve(cores);
    for (std::uint32_t i = 0; i < cores; ++i) {
        platform::Core core;
        core.name = reader.str();
        core.model = get_target_model(reader);
        const std::uint32_t opps = reader.count(24);
        core.opps.reserve(opps);
        for (std::uint32_t j = 0; j < opps; ++j) {
            platform::OperatingPoint opp;
            opp.freq_hz = reader.f64();
            opp.voltage = reader.f64();
            opp.static_power_w = reader.f64();
            core.opps.push_back(opp);
        }
        core.core_class = reader.str();
        platform.cores.push_back(std::move(core));
    }
    return platform;
}

// -- CSL spec -----------------------------------------------------------------

void put_app_spec(Writer& writer, const csl::AppSpec& spec) {
    writer.str(spec.name);
    writer.str(spec.platform);
    writer.f64(spec.deadline_s);
    writer.u32(static_cast<std::uint32_t>(spec.tasks.size()));
    for (const auto& task : spec.tasks) {
        writer.str(task.name);
        writer.str(task.entry);
        writer.f64(task.period_s);
        writer.f64(task.deadline_s);
        writer.f64(task.time_budget_s);
        writer.f64(task.energy_budget_j);
        writer.f64(task.leakage_budget);
        writer.str(task.security_hint);
        writer.str(task.core_class);
        writer.u32(static_cast<std::uint32_t>(task.deps.size()));
        for (const auto& dep : task.deps) writer.str(dep);
    }
}

csl::AppSpec get_app_spec(Reader& reader) {
    csl::AppSpec spec;
    spec.name = reader.str();
    spec.platform = reader.str();
    spec.deadline_s = reader.f64();
    const std::uint32_t tasks = reader.count(60);
    spec.tasks.reserve(tasks);
    for (std::uint32_t i = 0; i < tasks; ++i) {
        csl::TaskSpec task;
        task.name = reader.str();
        task.entry = reader.str();
        task.period_s = reader.f64();
        task.deadline_s = reader.f64();
        task.time_budget_s = reader.f64();
        task.energy_budget_j = reader.f64();
        task.leakage_budget = reader.f64();
        task.security_hint = reader.str();
        task.core_class = reader.str();
        const std::uint32_t deps = reader.count(4);
        task.deps.reserve(deps);
        for (std::uint32_t j = 0; j < deps; ++j)
            task.deps.push_back(reader.str());
        spec.tasks.push_back(std::move(task));
    }
    return spec;
}

// -- workflow options ---------------------------------------------------------

void put_options(Writer& writer, const WorkflowOptions& options) {
    writer.u8(static_cast<std::uint8_t>(options.compiler.engine));
    writer.i64(options.compiler.population);
    writer.i64(options.compiler.iterations);
    writer.u64(options.compiler.seed);
    writer.boolean(options.compiler.explore_security);
    writer.u64(options.compiler.max_versions);
    writer.u8(static_cast<std::uint8_t>(options.scheduler.objective));
    writer.f64(options.scheduler.deadline_s);
    writer.boolean(options.scheduler.anneal);
    writer.i64(options.scheduler.anneal_iterations);
    writer.u64(options.scheduler.seed);
    writer.i64(options.profile_runs);
    writer.boolean(options.glue_style.has_value());
    if (options.glue_style)
        writer.u8(static_cast<std::uint8_t>(*options.glue_style));
}

WorkflowOptions get_options(Reader& reader) {
    WorkflowOptions options;
    const std::uint8_t engine = reader.u8();
    if (engine > static_cast<std::uint8_t>(
                     compiler::MultiCriteriaCompiler::Engine::kWeightedSum))
        throw WireFormatError("wire compiler engine invalid");
    options.compiler.engine =
        static_cast<compiler::MultiCriteriaCompiler::Engine>(engine);
    options.compiler.population = static_cast<int>(reader.i64());
    options.compiler.iterations = static_cast<int>(reader.i64());
    options.compiler.seed = reader.u64();
    options.compiler.explore_security = reader.boolean();
    options.compiler.max_versions = reader.u64();
    const std::uint8_t objective = reader.u8();
    if (objective > static_cast<std::uint8_t>(
                        coordination::Scheduler::Objective::kEnergy))
        throw WireFormatError("wire scheduler objective invalid");
    options.scheduler.objective =
        static_cast<coordination::Scheduler::Objective>(objective);
    options.scheduler.deadline_s = reader.f64();
    options.scheduler.anneal = reader.boolean();
    options.scheduler.anneal_iterations = static_cast<int>(reader.i64());
    options.scheduler.seed = reader.u64();
    options.profile_runs = static_cast<int>(reader.i64());
    if (reader.boolean()) {
        const std::uint8_t style = reader.u8();
        if (style > static_cast<std::uint8_t>(coordination::GlueStyle::kPosix))
            throw WireFormatError("wire glue style invalid");
        options.glue_style = static_cast<coordination::GlueStyle>(style);
    }
    return options;
}

// -- report payloads ----------------------------------------------------------

void put_task_graph(Writer& writer, const coordination::TaskGraph& graph) {
    writer.str(graph.app_name);
    writer.u32(static_cast<std::uint32_t>(graph.tasks.size()));
    for (const auto& task : graph.tasks) {
        writer.str(task.name);
        writer.str(task.entry_fn);
        writer.u32(static_cast<std::uint32_t>(task.deps.size()));
        for (const auto& dep : task.deps) writer.str(dep);
        writer.f64(task.period_s);
        writer.f64(task.deadline_s);
        // std::map iteration: core-class order, canonical on both sides.
        writer.u32(static_cast<std::uint32_t>(task.versions.size()));
        for (const auto& [core_class, versions] : task.versions) {
            writer.str(core_class);
            writer.u32(static_cast<std::uint32_t>(versions.size()));
            for (const auto& choice : versions) {
                writer.f64(choice.time_s);
                writer.f64(choice.energy_j);
                writer.f64(choice.leakage);
                writer.u64(choice.opp_index);
                writer.str(choice.note);
            }
        }
    }
}

coordination::TaskGraph get_task_graph(Reader& reader) {
    coordination::TaskGraph graph;
    graph.app_name = reader.str();
    const std::uint32_t tasks = reader.count(32);
    graph.tasks.reserve(tasks);
    for (std::uint32_t i = 0; i < tasks; ++i) {
        coordination::Task task;
        task.name = reader.str();
        task.entry_fn = reader.str();
        const std::uint32_t deps = reader.count(4);
        task.deps.reserve(deps);
        for (std::uint32_t j = 0; j < deps; ++j)
            task.deps.push_back(reader.str());
        task.period_s = reader.f64();
        task.deadline_s = reader.f64();
        const std::uint32_t classes = reader.count(8);
        std::string previous_class;
        for (std::uint32_t j = 0; j < classes; ++j) {
            std::string core_class = reader.str();
            if (j > 0 && core_class <= previous_class)
                throw WireFormatError(
                    "wire version map not in canonical order");
            previous_class = core_class;
            const std::uint32_t versions = reader.count(36);
            std::vector<coordination::VersionChoice> choices;
            choices.reserve(versions);
            for (std::uint32_t k = 0; k < versions; ++k) {
                coordination::VersionChoice choice;
                choice.time_s = reader.f64();
                choice.energy_j = reader.f64();
                choice.leakage = reader.f64();
                choice.opp_index = reader.u64();
                choice.note = reader.str();
                choices.push_back(std::move(choice));
            }
            task.versions[std::move(core_class)] = std::move(choices);
        }
        graph.tasks.push_back(std::move(task));
    }
    return graph;
}

void put_schedule(Writer& writer, const coordination::Schedule& schedule) {
    writer.u32(static_cast<std::uint32_t>(schedule.entries.size()));
    for (const auto& entry : schedule.entries) {
        writer.str(entry.task);
        writer.u64(entry.core);
        writer.u64(entry.version);
        writer.str(entry.core_class);
        writer.f64(entry.start_s);
        writer.f64(entry.finish_s);
        writer.f64(entry.dynamic_energy_j);
        writer.u64(entry.opp_index);
    }
    writer.f64(schedule.makespan_s);
    writer.boolean(schedule.feasible);
}

coordination::Schedule get_schedule(Reader& reader) {
    coordination::Schedule schedule;
    const std::uint32_t entries = reader.count(64);
    schedule.entries.reserve(entries);
    for (std::uint32_t i = 0; i < entries; ++i) {
        coordination::ScheduleEntry entry;
        entry.task = reader.str();
        entry.core = reader.u64();
        entry.version = reader.u64();
        entry.core_class = reader.str();
        entry.start_s = reader.f64();
        entry.finish_s = reader.f64();
        entry.dynamic_energy_j = reader.f64();
        entry.opp_index = reader.u64();
        schedule.entries.push_back(std::move(entry));
    }
    schedule.makespan_s = reader.f64();
    schedule.feasible = reader.boolean();
    return schedule;
}

void put_proof_node(Writer& writer, const contracts::ProofNode& node) {
    writer.u8(static_cast<std::uint8_t>(node.rule));
    writer.f64(node.value);
    writer.f64(node.param);
    writer.str(node.note);
    writer.u32(static_cast<std::uint32_t>(node.children.size()));
    for (const auto& child : node.children) put_proof_node(writer, child);
}

contracts::ProofNode get_proof_node(Reader& reader, int depth) {
    if (depth > kMaxNodeDepth)
        throw WireFormatError("wire proof tree nested too deeply");
    contracts::ProofNode node;
    const std::uint8_t rule = reader.u8();
    if (rule > static_cast<std::uint8_t>(contracts::ProofRule::kStaticLeak))
        throw WireFormatError("wire proof rule invalid");
    node.rule = static_cast<contracts::ProofRule>(rule);
    node.value = reader.f64();
    node.param = reader.f64();
    node.note = reader.str();
    const std::uint32_t children = reader.count(25);
    node.children.reserve(children);
    for (std::uint32_t i = 0; i < children; ++i)
        node.children.push_back(get_proof_node(reader, depth + 1));
    return node;
}

void put_certificate(Writer& writer,
                     const contracts::Certificate& certificate) {
    writer.str(certificate.app);
    writer.str(certificate.platform);
    writer.u32(static_cast<std::uint32_t>(certificate.results.size()));
    for (const auto& result : certificate.results) {
        writer.str(result.poi);
        writer.u8(static_cast<std::uint8_t>(result.property));
        writer.f64(result.budget);
        writer.f64(result.analysed);
        writer.boolean(result.holds);
        writer.boolean(result.measured_only);
        put_proof_node(writer, result.proof);
    }
}

contracts::Certificate get_certificate(Reader& reader) {
    contracts::Certificate certificate;
    certificate.app = reader.str();
    certificate.platform = reader.str();
    const std::uint32_t results = reader.count(48);
    certificate.results.reserve(results);
    for (std::uint32_t i = 0; i < results; ++i) {
        contracts::ContractResult result;
        result.poi = reader.str();
        const std::uint8_t property = reader.u8();
        if (property >
            static_cast<std::uint8_t>(contracts::Property::kSecurity))
            throw WireFormatError("wire contract property invalid");
        result.property = static_cast<contracts::Property>(property);
        result.budget = reader.f64();
        result.analysed = reader.f64();
        result.holds = reader.boolean();
        result.measured_only = reader.boolean();
        result.proof = get_proof_node(reader, 0);
        certificate.results.push_back(std::move(result));
    }
    return certificate;
}

void put_report(Writer& writer, const ToolchainReport& report) {
    put_app_spec(writer, report.spec);
    writer.str(report.platform_name);
    put_task_graph(writer, report.graph);
    put_schedule(writer, report.schedule);
    put_certificate(writer, report.certificate);
    writer.str(report.glue_code);
    writer.str(report.sequential_glue);
    writer.u32(static_cast<std::uint32_t>(report.fronts.size()));
    for (const auto& front : report.fronts) {
        writer.str(front.task);
        writer.str(front.core_class);
        writer.u32(static_cast<std::uint32_t>(front.versions.size()));
        for (const auto& version : front.versions)
            put_task_version(writer, version);
    }
    // std::map iteration: ascending core index, canonical on both sides.
    writer.u32(static_cast<std::uint32_t>(report.rta.size()));
    for (const auto& [core, rta] : report.rta) {
        writer.u64(core);
        writer.boolean(rta.schedulable);
        writer.u32(static_cast<std::uint32_t>(rta.response_times.size()));
        for (const double response : rta.response_times)
            writer.f64(response);
    }
    writer.u32(static_cast<std::uint32_t>(report.stage_laps.size()));
    for (const auto& lap : report.stage_laps) {
        writer.str(lap.stage);
        writer.f64(lap.seconds);
    }
}

ToolchainReport get_report(Reader& reader) {
    ToolchainReport report;
    report.spec = get_app_spec(reader);
    report.platform_name = reader.str();
    report.graph = get_task_graph(reader);
    report.schedule = get_schedule(reader);
    report.certificate = get_certificate(reader);
    report.glue_code = reader.str();
    report.sequential_glue = reader.str();
    const std::uint32_t fronts = reader.count(12);
    report.fronts.reserve(fronts);
    for (std::uint32_t i = 0; i < fronts; ++i) {
        TaskFront front;
        front.task = reader.str();
        front.core_class = reader.str();
        const std::uint32_t versions = reader.count(16);
        front.versions.reserve(versions);
        for (std::uint32_t j = 0; j < versions; ++j)
            front.versions.push_back(get_task_version(reader));
        report.fronts.push_back(std::move(front));
    }
    const std::uint32_t rta_entries = reader.count(13);
    bool have_previous_core = false;
    std::size_t previous_core = 0;
    for (std::uint32_t i = 0; i < rta_entries; ++i) {
        const std::size_t core = reader.u64();
        if (have_previous_core && core <= previous_core)
            throw WireFormatError("wire rta map not in canonical order");
        have_previous_core = true;
        previous_core = core;
        coordination::RtaResult rta;
        rta.schedulable = reader.boolean();
        const std::uint32_t responses = reader.count(8);
        rta.response_times.reserve(responses);
        for (std::uint32_t j = 0; j < responses; ++j)
            rta.response_times.push_back(reader.f64());
        report.rta[core] = std::move(rta);
    }
    const std::uint32_t laps = reader.count(12);
    report.stage_laps.reserve(laps);
    for (std::uint32_t i = 0; i < laps; ++i) {
        StageLap lap;
        lap.stage = reader.str();
        lap.seconds = reader.f64();
        report.stage_laps.push_back(std::move(lap));
    }
    return report;
}

}  // namespace

// -- public surface -----------------------------------------------------------

Buffer encode(const EvaluationKey& key) {
    Writer writer = begin_message(MessageKind::kKey);
    writer.u64(key.structural_fp);
    writer.str(key.entry);
    writer.str(key.core_class);
    writer.u64(key.opp_index);
    writer.u8(static_cast<std::uint8_t>(key.kind));
    writer.u64(key.params);
    return seal_message(std::move(writer));
}

EvaluationKey decode_key(std::span<const std::uint8_t> buffer) {
    Reader reader = open_message(buffer, MessageKind::kKey);
    EvaluationKey key;
    key.structural_fp = reader.u64();
    key.entry = reader.str();
    key.core_class = reader.str();
    key.opp_index = reader.u64();
    const std::uint8_t kind = reader.u8();
    if (kind > static_cast<std::uint8_t>(AnalysisKind::kTaint))
        throw WireFormatError("wire analysis kind invalid");
    key.kind = static_cast<AnalysisKind>(kind);
    key.params = reader.u64();
    expect_fully_consumed(reader);
    return key;
}

Buffer encode(const EvaluationResult& result) {
    Writer writer = begin_message(MessageKind::kResult);
    writer.boolean(result.front != nullptr);
    if (result.front) {
        writer.u32(static_cast<std::uint32_t>(result.front->size()));
        for (const auto& version : *result.front)
            put_task_version(writer, version);
    }
    put_profile(writer, result.profile);
    writer.f64(result.leakage);
    return seal_message(std::move(writer));
}

EvaluationResult decode_result(std::span<const std::uint8_t> buffer) {
    Reader reader = open_message(buffer, MessageKind::kResult);
    EvaluationResult result;
    if (reader.boolean()) {
        const std::uint32_t n = reader.count(16);
        std::vector<compiler::TaskVersion> versions;
        versions.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            versions.push_back(get_task_version(reader));
        result.front =
            std::make_shared<const std::vector<compiler::TaskVersion>>(
                std::move(versions));
    }
    result.profile = get_profile(reader);
    result.leakage = reader.f64();
    expect_fully_consumed(reader);
    return result;
}

Buffer encode(const StageTelemetry& telemetry) {
    Writer writer = begin_message(MessageKind::kTelemetry);
    put_telemetry(writer, telemetry);
    return seal_message(std::move(writer));
}

StageTelemetry decode_telemetry(std::span<const std::uint8_t> buffer) {
    Reader reader = open_message(buffer, MessageKind::kTelemetry);
    StageTelemetry telemetry = get_telemetry(reader);
    expect_fully_consumed(reader);
    return telemetry;
}

Buffer encode(const BatchStats& stats) {
    Writer writer = begin_message(MessageKind::kBatchStats);
    writer.u64(stats.scenarios);
    writer.u64(stats.workers);
    writer.f64(stats.wall_s);
    writer.f64(stats.scenarios_per_s);
    put_cache_stats(writer, stats.cache);
    put_telemetry(writer, stats.stage_telemetry);
    put_admission(writer, stats.admission);
    return seal_message(std::move(writer));
}

BatchStats decode_batch_stats(std::span<const std::uint8_t> buffer) {
    Reader reader = open_message(buffer, MessageKind::kBatchStats);
    BatchStats stats;
    stats.scenarios = reader.u64();
    stats.workers = reader.u64();
    stats.wall_s = reader.f64();
    stats.scenarios_per_s = reader.f64();
    stats.cache = get_cache_stats(reader);
    stats.stage_telemetry = get_telemetry(reader);
    stats.admission = get_admission(reader);
    expect_fully_consumed(reader);
    return stats;
}

ScenarioRequest ScenarioRequestFrame::request() const {
    ScenarioRequest request;
    request.program = &program;
    request.platform = &platform;
    request.csl_source = csl_source;
    request.spec = spec;
    request.options = options;
    request.label = label;
    request.priority = priority;
    request.deadline = deadline;
    return request;
}

Buffer encode(const ScenarioRequest& request) {
    if (request.program == nullptr || request.platform == nullptr)
        throw std::invalid_argument(
            "wire: cannot encode a ScenarioRequest without a program and "
            "platform");
    Writer writer = begin_message(MessageKind::kRequest);
    put_program(writer, *request.program);
    put_platform(writer, *request.platform);
    writer.str(request.csl_source);
    writer.boolean(request.spec.has_value());
    if (request.spec) put_app_spec(writer, *request.spec);
    put_options(writer, request.options);
    writer.str(request.label);
    writer.u8(static_cast<std::uint8_t>(request.priority));
    // The deadline crosses as remaining budget, sampled now: an absolute
    // steady-clock value is meaningless on another host's clock.
    writer.boolean(request.deadline.has_value());
    if (request.deadline.has_value())
        writer.f64(std::chrono::duration<double>(
                       *request.deadline - std::chrono::steady_clock::now())
                       .count());
    return seal_message(std::move(writer));
}

ScenarioRequestFrame decode_request(std::span<const std::uint8_t> buffer) {
    Reader reader = open_message(buffer, MessageKind::kRequest);
    ScenarioRequestFrame frame;
    frame.program = get_program(reader);
    frame.platform = get_platform(reader);
    frame.csl_source = reader.str();
    if (reader.boolean()) frame.spec = get_app_spec(reader);
    frame.options = get_options(reader);
    frame.label = reader.str();
    const std::uint8_t priority = reader.u8();
    if (priority >= kNumPriorityClasses)
        throw WireFormatError("wire priority byte invalid");
    frame.priority = static_cast<Priority>(priority);
    if (reader.boolean()) {
        const double budget_s = reader.f64();
        if (std::isnan(budget_s))
            throw WireFormatError("wire deadline budget is NaN");
        // Re-anchor on this host's steady clock.  A negative budget is
        // legal: it means the deadline passed in transit and admission
        // should refuse the request immediately.
        frame.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(budget_s));
    }
    expect_fully_consumed(reader);
    return frame;
}

Buffer encode(const ToolchainReport& report) {
    Writer writer = begin_message(MessageKind::kReport);
    put_report(writer, report);
    return seal_message(std::move(writer));
}

ToolchainReport decode_report(std::span<const std::uint8_t> buffer) {
    Reader reader = open_message(buffer, MessageKind::kReport);
    ToolchainReport report = get_report(reader);
    expect_fully_consumed(reader);
    return report;
}

// -- frame streams ------------------------------------------------------------

void append_frame(Buffer& stream, std::span<const std::uint8_t> message) {
    const auto length = static_cast<std::uint32_t>(message.size());
    for (int shift = 0; shift < 32; shift += 8)
        stream.push_back(static_cast<std::uint8_t>(length >> shift));
    stream.insert(stream.end(), message.begin(), message.end());
}

std::optional<std::span<const std::uint8_t>> next_frame(
    std::span<const std::uint8_t> stream, std::size_t& offset) {
    if (offset == stream.size()) return std::nullopt;
    if (stream.size() - offset < 4)
        throw WireFormatError("frame length prefix truncated");
    std::uint32_t length = 0;
    for (int shift = 0; shift < 32; shift += 8)
        length |= static_cast<std::uint32_t>(stream[offset++]) << shift;
    if (length > stream.size() - offset)
        throw WireFormatError("frame payload truncated");
    const auto payload = stream.subspan(offset, length);
    offset += length;
    return payload;
}

}  // namespace teamplay::core::wire
