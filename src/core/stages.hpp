// Composable pipeline stages of the ScenarioEngine.
//
// Stage graph (linear; DESIGN.md §3):
//
//   ParseStage     validate the IR, parse/adopt the CSL spec, build the
//                  task-graph skeleton
//   AnalyseStage   fill per-(task, core class[, OPP]) version candidates —
//                  kStatic: multi-criteria compiled Pareto fronts (Fig. 1);
//                  kProfiled: sequential glue + PowProfiler campaigns
//                  (Fig. 2, pass 1)
//   ScheduleStage  energy-aware multi-version schedule, RM response-time
//                  analysis, final glue code
//   ContractStage  assemble per-POI contract inputs from the chosen
//                  versions — kStatic: analysable programs for proof
//                  construction; kMeasured: profiled estimates
//   CertifyStage   check contracts and emit the certificate
//
// Stages are stateless const objects; all scenario state lives in the
// ScenarioContext, so one stage instance serves concurrent scenarios.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "contracts/system.hpp"
#include "core/scenario_engine.hpp"

namespace teamplay::core {

/// Mutable state threaded through the pipeline for one scenario.
struct ScenarioContext {
    const ScenarioRequest* request = nullptr;
    const ir::Program* program = nullptr;
    std::uint64_t program_fp = 0;   ///< content hash, filled by the engine
    /// Set by the engine when this program content was already validated
    /// in this engine's lifetime (ParseStage then skips re-validation).
    bool program_validated = false;
    const platform::Platform* platform = nullptr;
    WorkflowOptions options;
    /// Canonical structural fingerprint per task entry function (filled by
    /// ParseStage once the spec is known); the program component of every
    /// EvaluationKey, shared across programs that embed the same kernel.
    std::map<std::string, std::uint64_t> entry_fps;
    EvaluationCache* cache = nullptr;
    support::ThreadPool* pool = nullptr;
    /// Simulator tier (and shared trace cache) for machines built by the
    /// analyse stages; copied from the engine's Options.
    sim::SimOptions sim;
    /// Cooperative cancellation token of the owning ticket (may be null).
    /// The engine checks it at every stage boundary; a long-running stage
    /// may additionally poll it at its own safe points.
    const std::atomic<bool>* cancelled = nullptr;
    std::vector<contracts::ContractInput> contract_inputs;  ///< ContractStage
    /// The pipeline's product; `report.spec` (filled by ParseStage) is the
    /// single authoritative copy of the parsed CSL spec.
    ToolchainReport report;
};

class Stage {
public:
    virtual ~Stage() = default;
    [[nodiscard]] virtual std::string_view name() const = 0;
    virtual void run(ScenarioContext& context) const = 0;
};

class ParseStage final : public Stage {
public:
    [[nodiscard]] std::string_view name() const override { return "parse"; }
    void run(ScenarioContext& context) const override;
};

class AnalyseStage final : public Stage {
public:
    enum class Mode : std::uint8_t {
        kStatic,    ///< Fig. 1: static WCET/energy/security analysers
        kProfiled,  ///< Fig. 2: dynamic PowProfiler measurements
    };

    explicit AnalyseStage(Mode mode) : mode_(mode) {}
    [[nodiscard]] std::string_view name() const override { return "analyse"; }
    void run(ScenarioContext& context) const override;

private:
    void run_static(ScenarioContext& context) const;
    void run_profiled(ScenarioContext& context) const;

    Mode mode_;
};

class ScheduleStage final : public Stage {
public:
    [[nodiscard]] std::string_view name() const override {
        return "schedule";
    }
    void run(ScenarioContext& context) const override;
};

class ContractStage final : public Stage {
public:
    enum class Mode : std::uint8_t {
        kStatic,    ///< proofs built from the chosen compiled versions
        kMeasured,  ///< measured estimates admitted as evidence
    };

    explicit ContractStage(Mode mode) : mode_(mode) {}
    [[nodiscard]] std::string_view name() const override {
        return "contract";
    }
    void run(ScenarioContext& context) const override;

private:
    Mode mode_;
};

class CertifyStage final : public Stage {
public:
    [[nodiscard]] std::string_view name() const override { return "certify"; }
    void run(ScenarioContext& context) const override;
};

/// The Fig. 1 configuration: static analysis end to end.
[[nodiscard]] std::vector<std::unique_ptr<const Stage>>
predictable_stage_configuration();

/// The Fig. 2 configuration: profile, then schedule from measurements.
[[nodiscard]] std::vector<std::unique_ptr<const Stage>>
complex_stage_configuration();

}  // namespace teamplay::core
