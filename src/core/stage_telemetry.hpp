// Per-stage latency attribution for the scenario pipeline.
//
// The engine wraps every Stage::run with a monotonic lap timer and records
// one StageLap per (scenario, stage) into the scenario's report.  Laps are
// aggregated into a StageTelemetry — per-stage invocation count, total and
// maximum wall time — so a regression in one pipeline stage is visible in
// the batch trajectory instead of being smeared into a single wall number
// (X-Lap-style cross-layer attribution).
//
// Determinism: aggregation is keyed by stage name in a sorted map and built
// from commutative reductions (sum, max), so a merged telemetry is
// independent of scenario completion order — streaming and batch runs over
// the same laps produce the same table shape and counts (times naturally
// vary run to run).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>

namespace teamplay::core {

/// Wall time of one stage execution within one scenario.
struct StageLap {
    std::string stage;
    double seconds = 0.0;
};

class StageTelemetry {
public:
    struct PerStage {
        std::uint64_t count = 0;
        double total_s = 0.0;
        double max_s = 0.0;

        [[nodiscard]] double mean_s() const {
            return count > 0 ? total_s / static_cast<double>(count) : 0.0;
        }
    };

    void record(std::string_view stage, double seconds);
    void merge(std::span<const StageLap> laps);
    void merge(const StageTelemetry& other);
    /// Fold one pre-aggregated per-stage summary in (used by cross-shard
    /// aggregation and the wire codec's decoder).
    void merge(std::string_view stage, const PerStage& aggregate);

    [[nodiscard]] bool empty() const { return stages_.empty(); }
    [[nodiscard]] const std::map<std::string, PerStage, std::less<>>& stages()
        const {
        return stages_;
    }

    /// Aligned per-stage table (count, total, mean, max), one line per
    /// stage in name order; "" when no laps were recorded.
    [[nodiscard]] std::string to_string() const;

private:
    std::map<std::string, PerStage, std::less<>> stages_;
};

}  // namespace teamplay::core
