// End-to-end toolchain drivers: the two workflows of the paper.
//
// PredictableWorkflow (Fig. 1): CSL -> multi-criteria compiler with static
// WCET/energy/security analysers -> coordination (multi-version energy-aware
// scheduling + glue code) -> contract system -> certificate.
//
// ComplexWorkflow (Fig. 2): CSL -> pass 1 (sequential glue + PowProfiler
// dynamic profiling across cores and DVFS points) -> pass 2 (energy-aware
// parallel schedule from the measured estimates) -> contracts admitted as
// measured evidence -> certificate flagged "contains measured evidence".
//
// Both drivers are thin wrappers over core::ScenarioEngine
// (scenario_engine.hpp): the two figures are two stage configurations of
// one pipeline.  Use the engine directly for batches, caching and
// multi-threaded runs; these classes remain for single-scenario callers.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "compiler/multi_criteria.hpp"
#include "contracts/system.hpp"
#include "coordination/glue.hpp"
#include "coordination/runtime.hpp"
#include "coordination/scheduler.hpp"
#include "core/stage_telemetry.hpp"
#include "csl/csl.hpp"
#include "platform/platform.hpp"
#include "profiler/pow_profiler.hpp"

namespace teamplay::core {

/// Pareto front computed for one task on one core class.
struct TaskFront {
    std::string task;
    std::string core_class;
    std::vector<compiler::TaskVersion> versions;
};

struct ToolchainReport {
    csl::AppSpec spec;
    std::string platform_name;
    coordination::TaskGraph graph;  ///< with versions attached
    coordination::Schedule schedule;
    contracts::Certificate certificate;
    std::string glue_code;           ///< final (parallel) glue
    std::string sequential_glue;     ///< pass-1 glue (complex flow only)
    std::vector<TaskFront> fronts;
    /// Per-core rate-monotonic analysis when the app is periodic.
    std::map<std::size_t, coordination::RtaResult> rta;
    /// Wall time of each pipeline stage for this scenario, in execution
    /// order (engine lap timer; not part of the deterministic report body).
    std::vector<StageLap> stage_laps;

    /// Chosen compiled version for a scheduled task (predictable flow);
    /// nullptr when versions came from profiling.
    [[nodiscard]] const compiler::TaskVersion* chosen_version(
        const std::string& task) const;

    [[nodiscard]] std::string summary() const;
};

struct WorkflowOptions {
    compiler::MultiCriteriaCompiler::Options compiler;
    coordination::Scheduler::Options scheduler;
    int profile_runs = 25;  ///< complex flow: measurements per (task, opp)
    std::optional<coordination::GlueStyle> glue_style;  ///< default by board
};

class PredictableWorkflow {
public:
    /// The program must outlive the workflow.  Throws when the platform has
    /// complex cores (use ComplexWorkflow) or the program is malformed.
    PredictableWorkflow(const ir::Program& program,
                        const platform::Platform& platform);

    [[nodiscard]] ToolchainReport run(const csl::AppSpec& spec,
                                      const WorkflowOptions& options = {});

private:
    const ir::Program* program_;
    const platform::Platform* platform_;
};

class ComplexWorkflow {
public:
    ComplexWorkflow(const ir::Program& program,
                    const platform::Platform& platform);

    [[nodiscard]] ToolchainReport run(const csl::AppSpec& spec,
                                      const WorkflowOptions& options = {});

private:
    const ir::Program* program_;
    const platform::Platform* platform_;
};

/// Select the workflow matching the platform's architecture class.
[[nodiscard]] ToolchainReport run_toolchain(
    const ir::Program& program, const platform::Platform& platform,
    const csl::AppSpec& spec, const WorkflowOptions& options = {});

}  // namespace teamplay::core
