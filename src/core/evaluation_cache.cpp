#include "core/evaluation_cache.hpp"

#include <bit>

#include "ir/printer.hpp"

namespace teamplay::core {

std::uint64_t fingerprint_program(const ir::Program& program) {
    Fingerprint fp;
    fp.mix(ir::to_string(program));
    return fp.value;
}

std::string_view analysis_kind_name(AnalysisKind kind) {
    switch (kind) {
        case AnalysisKind::kCompiledFront: return "front";
        case AnalysisKind::kProfile: return "profile";
        case AnalysisKind::kTaint: return "taint";
    }
    return "?";
}

Fingerprint& Fingerprint::mix(std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
        value ^= (word >> (8 * byte)) & 0xFFU;
        value *= 1099511628211ULL;
    }
    return *this;
}

Fingerprint& Fingerprint::mix(double number) {
    return mix(std::bit_cast<std::uint64_t>(number));
}

Fingerprint& Fingerprint::mix(std::string_view text) {
    for (const char c : text) {
        value ^= static_cast<unsigned char>(c);
        value *= 1099511628211ULL;
    }
    return mix(static_cast<std::uint64_t>(text.size()));
}

std::shared_ptr<const EvaluationResult> EvaluationCache::lookup(
    const EvaluationKey& key, const Compute& compute) {
    std::promise<std::shared_ptr<const EvaluationResult>> promise;
    Slot slot;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            slot = it->second;
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            slot = promise.get_future().share();
            entries_.emplace(key, slot);
            owner = true;
        }
    }
    if (owner) {
        try {
            promise.set_value(
                std::make_shared<const EvaluationResult>(compute()));
        } catch (...) {
            // Propagate to every waiter but drop the key so a later call
            // can retry (e.g. after the caller fixes its inputs).
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                entries_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return slot.get();
}

EvaluationCache::Stats EvaluationCache::stats() const {
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(mutex_);
    stats.entries = entries_.size();
    return stats;
}

void EvaluationCache::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

}  // namespace teamplay::core
