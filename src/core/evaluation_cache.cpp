#include "core/evaluation_cache.hpp"

#include <bit>

#include "core/result_store.hpp"
#include "ir/printer.hpp"

namespace teamplay::core {

std::uint64_t fingerprint_program(const ir::Program& program) {
    Fingerprint fp;
    fp.mix(ir::to_string(program));
    return fp.value;
}

std::string_view analysis_kind_name(AnalysisKind kind) {
    switch (kind) {
        case AnalysisKind::kCompiledFront: return "front";
        case AnalysisKind::kProfile: return "profile";
        case AnalysisKind::kTaint: return "taint";
    }
    return "?";
}

Fingerprint& Fingerprint::mix(std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
        value ^= (word >> (8 * byte)) & 0xFFU;
        value *= 1099511628211ULL;
    }
    return *this;
}

Fingerprint& Fingerprint::mix(double number) {
    return mix(std::bit_cast<std::uint64_t>(number));
}

Fingerprint& Fingerprint::mix(std::string_view text) {
    for (const char c : text) {
        value ^= static_cast<unsigned char>(c);
        value *= 1099511628211ULL;
    }
    return mix(static_cast<std::uint64_t>(text.size()));
}

void EvaluationCache::Stats::merge(const Stats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    store_hits += other.store_hits;
    store_misses += other.store_misses;
    spills += other.spills;
    store_rejects += other.store_rejects;
    remote_hits += other.remote_hits;
    remote_misses += other.remote_misses;
    entries += other.entries;
    resident_cost += other.resident_cost;
}

EvaluationCache::Stats EvaluationCache::Stats::since(
    const Stats& before) const {
    Stats delta = *this;
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    delta.evictions -= before.evictions;
    delta.store_hits -= before.store_hits;
    delta.store_misses -= before.store_misses;
    delta.spills -= before.spills;
    delta.store_rejects -= before.store_rejects;
    delta.remote_hits -= before.remote_hits;
    delta.remote_misses -= before.remote_misses;
    return delta;
}

double evaluation_result_cost(const EvaluationResult& result) {
    double cost = 1.0;
    if (result.front) cost += static_cast<double>(result.front->size());
    return cost;
}

std::shared_ptr<const EvaluationResult> EvaluationCache::lookup(
    const EvaluationKey& key, const Compute& compute) {
    std::promise<std::shared_ptr<const EvaluationResult>> promise;
    Slot slot;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            // Refresh recency; an in-flight entry is not on the LRU list
            // yet (it joins the hot end when its compute completes).
            if (it->second.ready)
                lru_.splice(lru_.begin(), lru_, it->second.lru);
            slot = it->second.slot;
        } else {
            ++misses_;
            slot = promise.get_future().share();
            Entry entry;
            entry.slot = slot;
            entries_.emplace(key, std::move(entry));
            owner = true;
        }
    }
    if (owner) {
        try {
            // A miss consults the attached store before computing: a store
            // hit was checksum-verified and strictly decoded, and enters
            // the cache exactly as a computed value would — waiters, LRU
            // admission and eviction cannot tell the difference.
            std::shared_ptr<const EvaluationResult> value;
            if (store_ != nullptr) {
                auto loaded = store_->load(key);
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    switch (loaded.status) {
                        case ResultStore::LoadStatus::kHit:
                            ++store_hits_;
                            break;
                        case ResultStore::LoadStatus::kMiss:
                            ++store_misses_;
                            break;
                        case ResultStore::LoadStatus::kReject:
                            ++store_rejects_;
                            break;
                    }
                }
                if (loaded.result.has_value())
                    value = std::make_shared<const EvaluationResult>(
                        std::move(*loaded.result));
            }
            // Neither tier of local storage had it: ask the fabric before
            // doing the work.  A fetched result was checksum-verified and
            // strictly decoded by the peer's wire codec, so — like a store
            // hit — it is admitted exactly as if computed.
            if (value == nullptr) {
                RemoteFetch fetch;
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    fetch = remote_fetch_;
                }
                if (fetch) {
                    std::optional<EvaluationResult> fetched;
                    try {
                        fetched = fetch(key);
                    } catch (...) {
                        // A fetch hook must swallow transport failures; if
                        // one leaks anyway, degrade to a miss — the fabric
                        // is an optimisation, never a dependency.
                        fetched.reset();
                    }
                    {
                        const std::lock_guard<std::mutex> lock(mutex_);
                        if (fetched.has_value())
                            ++remote_hits_;
                        else
                            ++remote_misses_;
                    }
                    if (fetched.has_value())
                        value = std::make_shared<const EvaluationResult>(
                            std::move(*fetched));
                }
            }
            if (value == nullptr)
                value = std::make_shared<const EvaluationResult>(compute());
            const double cost = evaluation_result_cost(*value);
            promise.set_value(std::move(value));
            admit(key, cost);
        } catch (...) {
            // Propagate to every waiter but drop the key so a later call
            // can retry (e.g. after the caller fixes its inputs).
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                entries_.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return slot.get();
}

void EvaluationCache::admit(const EvaluationKey& key, double cost) {
    Spillage spillage;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        // Unreachable today — only the owner erases its own key (exception
        // path), clear() preserves in-flight entries, and eviction only
        // touches completed ones — kept as a guard so a future policy that
        // does drop in-flight slots degrades to "uncached", not to a
        // double-published LRU entry.
        if (it == entries_.end()) return;
        it->second.ready = true;
        it->second.cost = cost;
        lru_.push_front(key);
        it->second.lru = lru_.begin();
        resident_cost_ += cost;
        evict_over_budget_locked(store_ != nullptr ? &spillage : nullptr);
    }
    // Spill outside the cache lock: encoding a compiled front is far too
    // expensive to serialise every concurrent lookup behind.
    spill(spillage);
}

void EvaluationCache::evict_over_budget_locked(Spillage* spillage) {
    while (!lru_.empty() &&
           ((budget_.max_entries > 0 && lru_.size() > budget_.max_entries) ||
            (budget_.max_cost > 0.0 && resident_cost_ > budget_.max_cost))) {
        const auto victim = entries_.find(lru_.back());
        // Spill-on-evict: the value future is ready (eviction only touches
        // completed entries), so get() is a lock-free read here.
        if (spillage != nullptr)
            spillage->emplace_back(victim->first, victim->second.slot.get());
        resident_cost_ -= victim->second.cost;
        entries_.erase(victim);
        lru_.pop_back();
        ++evictions_;
    }
}

void EvaluationCache::spill(const Spillage& spillage) {
    if (store_ == nullptr || spillage.empty()) return;
    std::uint64_t appended = 0;
    for (const auto& [key, value] : spillage)
        if (store_->store(key, *value)) ++appended;
    if (appended > 0) {
        const std::lock_guard<std::mutex> lock(mutex_);
        spills_ += appended;
    }
}

void EvaluationCache::flush_to_store() {
    if (store_ == nullptr) return;
    Spillage resident;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [key, entry] : entries_)
            if (entry.ready) resident.emplace_back(key, entry.slot.get());
    }
    spill(resident);
}

EvaluationCache::~EvaluationCache() { flush_to_store(); }

void EvaluationCache::set_remote_fetch(RemoteFetch fetch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    remote_fetch_ = std::move(fetch);
}

std::shared_ptr<const EvaluationResult> EvaluationCache::peek(
    const EvaluationKey& key) const {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end() && it->second.ready)
            return it->second.slot.get();
    }
    // Not resident (or still computing): the store may hold it from an
    // earlier lifetime or a sibling's spill.  Loaded directly — the probe
    // serves a *peer's* cache, so nothing is admitted here.
    if (store_ != nullptr) {
        auto loaded = store_->load(key);
        if (loaded.result.has_value())
            return std::make_shared<const EvaluationResult>(
                std::move(*loaded.result));
    }
    return nullptr;
}

EvaluationCache::Stats EvaluationCache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    Stats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.store_hits = store_hits_;
    stats.store_misses = store_misses_;
    stats.spills = spills_;
    stats.store_rejects = store_rejects_;
    stats.remote_hits = remote_hits_;
    stats.remote_misses = remote_misses_;
    stats.entries = entries_.size();
    stats.resident_cost = resident_cost_;
    return stats;
}

void EvaluationCache::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.ready)
            it = entries_.erase(it);
        else
            ++it;  // in-flight: owner still computing, waiters still queued
    }
    lru_.clear();
    resident_cost_ = 0.0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    store_hits_ = 0;
    store_misses_ = 0;
    spills_ = 0;
    store_rejects_ = 0;
    remote_hits_ = 0;
    remote_misses_ = 0;
}

}  // namespace teamplay::core
