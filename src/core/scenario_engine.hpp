// Staged, parallel scenario engine: the single driver behind both toolchain
// flows of the paper, structured as an async streaming service core.
//
// A scenario is one (application program, platform, CSL spec, options)
// tuple.  The engine runs it through a fixed pipeline of composable stages
// (ParseStage -> AnalyseStage -> ScheduleStage -> ContractStage ->
// CertifyStage, see stages.hpp); the predictable flow of Fig. 1 and the
// complex flow of Fig. 2 are two *configurations* of that pipeline — a
// static-analysis AnalyseStage/ContractStage versus a profiling one — not
// two code paths.
//
// Submission model (DESIGN.md §7): `submit(request)` enqueues one scenario
// and returns a ScenarioTicket immediately — a per-scenario future with
// cooperative cancellation (checked at every stage boundary) and an
// optional completion callback, so a service consumes results as they
// finish instead of waiting for a whole batch to drain.  `run` and
// `run_all` are thin wrappers over submission; the legacy workflow
// drivers, the CLI and the benches all ride the same path.
//
// Scale machinery:
//   * an EvaluationCache memoises every per-(task entry, core class, OPP)
//     analyser/profiler result, shared across stages and scenarios, with
//     an optional LRU budget for long-lived service use;
//   * a support::ThreadPool evaluates independent tuples concurrently and
//     runs whole scenarios in parallel (streamed or batched);
//   * every Stage::run is wrapped in a monotonic lap timer; laps aggregate
//     into StageTelemetry (per-stage count/total/max) in BatchStats and
//     per report, so a regression in one stage is attributable.
//
// Determinism: every parallel unit is seeded from its own key and writes to
// its own slot, and every cache key (ir::structural_fingerprint + options)
// covers all bytes that can influence output, so reports — including
// certificate bytes — are identical for any worker count, any cache
// budget, streamed or batched, and identical to the legacy
// single-scenario workflow drivers (which are now thin wrappers over this
// engine).  For a multi-cache service front, see ShardedScenarioEngine
// (sharded_engine.hpp), which routes submissions across N engines by
// kernel fingerprint.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/admission.hpp"
#include "core/evaluation_cache.hpp"
#include "core/stage_telemetry.hpp"
#include "core/workflow.hpp"
#include "sim/backend.hpp"
#include "support/thread_pool.hpp"

namespace teamplay::core {

class Stage;
class ScenarioEngine;

// CancelledError / ShedError / Priority live in core/admission.hpp (the
// admission layer owns the service's retryable-error and priority model);
// they remain visible through this header for every existing include site.

/// One toolchain invocation to execute.
struct ScenarioRequest {
    const ir::Program* program = nullptr;      ///< must outlive the engine run
    const platform::Platform* platform = nullptr;
    std::string csl_source;                    ///< parsed when `spec` is empty
    std::optional<csl::AppSpec> spec;          ///< pre-parsed spec wins
    WorkflowOptions options;
    std::string label;                         ///< free-form tag for reports
    /// Service class: picks the pool lane and the admission queue.  Does
    /// not influence any computed byte — certificates are priority-blind.
    Priority priority = Priority::kBatch;
    /// Absolute completion deadline (steady clock).  Admission rejects a
    /// request whose deadline is already unmeetable; stage boundaries shed
    /// it once the remaining budget is gone.  Crosses the fabric as
    /// *remaining budget*, so cross-host clock skew never bites.
    std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Aggregate throughput statistics of one `run_all` batch.
struct BatchStats {
    std::size_t scenarios = 0;
    std::size_t workers = 0;          ///< pool concurrency during the batch
    double wall_s = 0.0;
    double scenarios_per_s = 0.0;
    EvaluationCache::Stats cache;     ///< hits/misses/evictions of this batch
    StageTelemetry stage_telemetry;   ///< per-stage count/total/max
    AdmissionStats admission;         ///< admitted/rejected/shed per class

    /// Fold another batch's statistics in (commutative): scenario and
    /// cache counters sum, telemetry merges, and `wall_s` takes the max —
    /// the wall-clock view of batches that ran concurrently (per-shard
    /// batches of one service-wide submission).  Throughput is re-derived
    /// from the folded totals.
    void merge(const BatchStats& other);

    [[nodiscard]] std::string to_string() const;
};

class ScenarioTicket;

namespace detail {
struct TicketState;
/// Wrap an external ticket state (make_external_ticket below) in the
/// public handle type.  Lives in detail because only transport adaptors
/// (net/remote_shard.hpp) mint tickets the engine did not issue.
[[nodiscard]] ScenarioTicket wrap_external_ticket(
    std::shared_ptr<TicketState> state);
}  // namespace detail

/// What a completion callback observes for one finished scenario.
struct ScenarioOutcome {
    std::size_t id = 0;               ///< submission id (monotonic)
    std::string label;                ///< request label
    const ToolchainReport* report = nullptr;  ///< null on error/cancellation
    std::exception_ptr error;         ///< set on failure (incl. cancellation)
    bool cancelled = false;
    /// Refused at admission or shed at a stage boundary (`error` holds the
    /// ShedError).  Disjoint from `cancelled`: sheds are the service's
    /// decision, cancels the caller's.
    bool shed = false;
};

/// Per-scenario future handle returned by `ScenarioEngine::submit`.
///
/// Tickets are cheap shared handles (copyable); they must not outlive the
/// engine that issued them.  `wait`/`get` let the calling thread help drain
/// the pool queue, so a caller-only engine still executes everything on the
/// waiting thread — and waiting on the first submitted ticket never blocks
/// behind later submissions.
class ScenarioTicket {
public:
    ScenarioTicket() = default;

    [[nodiscard]] bool valid() const { return state_ != nullptr; }
    [[nodiscard]] std::size_t id() const;

    /// Non-blocking: has the scenario finished (successfully or not)?
    [[nodiscard]] bool done() const;

    /// Block until the scenario finished, helping to drain the pool.
    void wait() const;

    /// Wait, then move the report out; rethrows the scenario's error
    /// (CancelledError for a cancelled ticket).  Single-shot.
    [[nodiscard]] ToolchainReport get();

    /// Request cooperative cancellation: the scenario stops at the next
    /// stage boundary (or never starts).  In-flight cache computes finish
    /// normally, so the cache stays consistent and the request retryable.
    void cancel();
    [[nodiscard]] bool cancel_requested() const;

private:
    friend class ScenarioEngine;
    friend ScenarioTicket detail::wrap_external_ticket(
        std::shared_ptr<detail::TicketState> state);
    explicit ScenarioTicket(std::shared_ptr<detail::TicketState> state)
        : state_(std::move(state)) {}

    std::shared_ptr<detail::TicketState> state_;
};

class ScenarioEngine {
public:
    struct Options {
        /// Extra worker threads; 0 = run everything on the calling thread.
        std::size_t worker_threads = 0;
        /// Evaluation-cache retention budget; default unbounded (batch
        /// mode).  A long-lived service should set one.
        EvaluationCache::Budget cache_budget;
        /// Optional persistent result store (result_store.hpp), shared
        /// with sibling engines and future processes: cache misses consult
        /// it before computing, evicted and shutdown-resident entries
        /// spill back.  Null = in-memory cache only.
        std::shared_ptr<ResultStore> result_store;
        /// Simulator tier for every machine this engine constructs
        /// (profiling campaigns, complex-core evaluation).  Defaults to the
        /// process-wide backend; results are backend-invariant, so this is
        /// never part of an EvaluationKey.
        sim::SimOptions sim;
        /// Admission control (queue depths per priority class).  The
        /// default admits everything — identical to the pre-admission
        /// engine unless requests carry deadlines.
        AdmissionController::Options admission;
    };

    /// Invoked on the executing thread right after a scenario finishes,
    /// before its ticket unblocks.  Must be fast and thread-safe; a throw
    /// is recorded as the scenario's error.
    using Completion = std::function<void(const ScenarioOutcome&)>;

    // Not a default argument: GCC rejects `Options{}` defaults for nested
    // aggregates with member initializers inside the enclosing class.
    ScenarioEngine() : ScenarioEngine(Options{}) {}
    explicit ScenarioEngine(Options options);
    ~ScenarioEngine();

    ScenarioEngine(const ScenarioEngine&) = delete;
    ScenarioEngine& operator=(const ScenarioEngine&) = delete;

    /// Enqueue one scenario and return immediately.  The request is copied;
    /// the program and platform it points to must stay alive until the
    /// ticket completes.  Results become available per scenario — before
    /// any other submission drains.
    [[nodiscard]] ScenarioTicket submit(ScenarioRequest request,
                                        Completion on_complete = {});

    /// Execute one scenario synchronously (wrapper over `submit`).
    [[nodiscard]] ToolchainReport run(const ScenarioRequest& request);

    /// Execute a batch of scenarios in parallel (wrapper over `submit`:
    /// scenario-level parallelism on top of per-stage tuple parallelism;
    /// both draw on the same pool).  Reports come back in request order.
    /// The first scenario error is rethrown after the batch drains.
    [[nodiscard]] std::vector<ToolchainReport> run_all(
        std::span<const ScenarioRequest> requests,
        BatchStats* stats = nullptr);

    [[nodiscard]] EvaluationCache::Stats cache_stats() const {
        return cache_.stats();
    }
    void clear_cache() { cache_.clear(); }

    /// Probe for a completed cache entry (falling back to the attached
    /// result store) without computing, blocking or perturbing statistics.
    /// This is what a ShardServer answers a fabric peer's fetch with.
    [[nodiscard]] std::shared_ptr<const EvaluationResult> peek_cached(
        const EvaluationKey& key) const {
        return cache_.peek(key);
    }

    /// Install the remote cache tier: cache misses the store cannot serve
    /// ask this hook (a fabric peer) before computing.
    void set_remote_fetch(EvaluationCache::RemoteFetch fetch) {
        cache_.set_remote_fetch(std::move(fetch));
    }

    /// Spill every completed cache entry to the attached result store
    /// (no-op without one).  Runs automatically at destruction; call it
    /// explicitly before sampling store statistics mid-lifetime.
    void flush_result_store() { cache_.flush_to_store(); }

    /// Simulator configuration in force (with the trace cache materialised
    /// when the trace backend is active); null cache under kInterp.
    [[nodiscard]] const sim::SimOptions& sim_options() const { return sim_; }

    /// Cumulative per-stage telemetry across every scenario this engine
    /// completed (streamed and batched).
    [[nodiscard]] StageTelemetry stage_telemetry() const;

    /// Cumulative admission accounting (submitted/admitted/rejected/shed
    /// per priority class) since construction.
    [[nodiscard]] AdmissionStats admission_stats() const {
        return admission_.stats();
    }

    /// Threads that execute work (workers + caller).
    [[nodiscard]] std::size_t concurrency() const {
        return pool_.concurrency();
    }

private:
    [[nodiscard]] ToolchainReport run_scenario(
        const ScenarioRequest& request, const std::atomic<bool>* cancelled);
    void execute(detail::TicketState& state);

    EvaluationCache cache_;
    sim::SimOptions sim_;
    /// Content fingerprints of programs already validated by this engine
    /// (validation is idempotent per program content; skip repeats).
    std::mutex validated_mutex_;
    std::set<std::uint64_t> validated_programs_;
    mutable std::mutex telemetry_mutex_;
    StageTelemetry telemetry_;
    AdmissionController admission_;
    std::atomic<std::size_t> next_ticket_id_{0};
    std::vector<std::unique_ptr<const Stage>> predictable_stages_;
    std::vector<std::unique_ptr<const Stage>> complex_stages_;
    /// Declared last on purpose: the pool is destroyed *first*, which joins
    /// the workers (and lets them drain still-queued submissions) while the
    /// stages, cache and telemetry those tasks dereference are still alive.
    support::ThreadPool pool_;
};

namespace detail {

// External tickets: the transport client (net/remote_shard.hpp) hands out
// ScenarioTickets for scenarios that execute in *another process*.  The
// state is created with `started` pre-set and no pool, so waiters block on
// the rendezvous directly instead of trying to help-drain a pool that is
// not there; the reader thread that receives the reply completes it.

/// Mint the state for an external ticket.  `on_cancel` fires exactly once,
/// on the first `ScenarioTicket::cancel()` call (a transport client sends
/// the cancel RPC from it).
[[nodiscard]] std::shared_ptr<TicketState> make_external_ticket(
    std::size_t id, ScenarioRequest request,
    ScenarioEngine::Completion on_complete,
    std::function<void()> on_cancel);

/// Publish the outcome of an external ticket: runs the completion
/// callback, stores the report/error, and releases every waiter.  Must be
/// called exactly once per ticket.  `shed` marks a server-side admission
/// refusal / budget shed (mirrors ScenarioOutcome::shed).
void complete_external_ticket(TicketState& state, ToolchainReport report,
                              std::exception_ptr error, bool cancelled,
                              bool shed = false);

[[nodiscard]] const ScenarioRequest& ticket_request(const TicketState& state);
[[nodiscard]] std::size_t ticket_id(const TicketState& state);

}  // namespace detail

}  // namespace teamplay::core
