// Staged, parallel scenario engine: the single driver behind both toolchain
// flows of the paper.
//
// A scenario is one (application program, platform, CSL spec, options)
// tuple.  The engine runs it through a fixed pipeline of composable stages
// (ParseStage -> AnalyseStage -> ScheduleStage -> ContractStage ->
// CertifyStage, see stages.hpp); the predictable flow of Fig. 1 and the
// complex flow of Fig. 2 are two *configurations* of that pipeline — a
// static-analysis AnalyseStage/ContractStage versus a profiling one — not
// two code paths.
//
// Scale machinery:
//   * an EvaluationCache memoises every per-(task entry, core class, OPP)
//     analyser/profiler result, shared across stages and scenarios;
//   * a support::ThreadPool evaluates independent tuples concurrently and
//     runs whole scenarios of a batch in parallel (`run_all`).
//
// Determinism: every parallel unit is seeded from its own key and writes to
// its own slot, so reports — including certificate bytes — are identical
// for any worker count, and identical to the legacy single-scenario
// workflow drivers (which are now thin wrappers over this engine).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/evaluation_cache.hpp"
#include "core/workflow.hpp"
#include "support/thread_pool.hpp"

namespace teamplay::core {

class Stage;

/// One toolchain invocation to execute.
struct ScenarioRequest {
    const ir::Program* program = nullptr;      ///< must outlive the engine run
    const platform::Platform* platform = nullptr;
    std::string csl_source;                    ///< parsed when `spec` is empty
    std::optional<csl::AppSpec> spec;          ///< pre-parsed spec wins
    WorkflowOptions options;
    std::string label;                         ///< free-form tag for reports
};

/// Aggregate throughput statistics of one `run_all` batch.
struct BatchStats {
    std::size_t scenarios = 0;
    std::size_t workers = 0;          ///< pool concurrency during the batch
    double wall_s = 0.0;
    double scenarios_per_s = 0.0;
    EvaluationCache::Stats cache;     ///< hits/misses incurred by this batch

    [[nodiscard]] std::string to_string() const;
};

class ScenarioEngine {
public:
    struct Options {
        /// Extra worker threads; 0 = run everything on the calling thread.
        std::size_t worker_threads = 0;
    };

    // Not a default argument: GCC rejects `Options{}` defaults for nested
    // aggregates with member initializers inside the enclosing class.
    ScenarioEngine() : ScenarioEngine(Options{}) {}
    explicit ScenarioEngine(Options options);
    ~ScenarioEngine();

    ScenarioEngine(const ScenarioEngine&) = delete;
    ScenarioEngine& operator=(const ScenarioEngine&) = delete;

    /// Execute one scenario through the stage configuration matching the
    /// platform's architecture class.
    [[nodiscard]] ToolchainReport run(const ScenarioRequest& request);

    /// Execute a batch of scenarios in parallel (scenario-level parallelism
    /// on top of per-stage tuple parallelism; both draw on the same pool).
    /// Reports come back in request order.  The first scenario error is
    /// rethrown after the batch drains.
    [[nodiscard]] std::vector<ToolchainReport> run_all(
        std::span<const ScenarioRequest> requests,
        BatchStats* stats = nullptr);

    [[nodiscard]] EvaluationCache::Stats cache_stats() const {
        return cache_.stats();
    }
    void clear_cache() { cache_.clear(); }

    /// Threads that execute work (workers + caller).
    [[nodiscard]] std::size_t concurrency() const {
        return pool_.concurrency();
    }

private:
    [[nodiscard]] ToolchainReport run_scenario(
        const ScenarioRequest& request);

    EvaluationCache cache_;
    support::ThreadPool pool_;
    /// Content fingerprints of programs already validated by this engine
    /// (validation is idempotent per program content; skip repeats).
    std::mutex validated_mutex_;
    std::set<std::uint64_t> validated_programs_;
    std::vector<std::unique_ptr<const Stage>> predictable_stages_;
    std::vector<std::unique_ptr<const Stage>> complex_stages_;
};

}  // namespace teamplay::core
