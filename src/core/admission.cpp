#include "core/admission.hpp"

#include <algorithm>
#include <sstream>

namespace teamplay::core {

namespace {

constexpr double kEwmaAlpha = 0.2;

[[nodiscard]] std::string_view reason_word(ShedError::Reason reason) {
    switch (reason) {
        case ShedError::Reason::kQueueFull: return "queue full";
        case ShedError::Reason::kDeadlineUnmeetable:
            return "deadline unmeetable";
        case ShedError::Reason::kBudgetExhausted: return "budget exhausted";
        case ShedError::Reason::kRemote: return "remote";
    }
    return "?";
}

}  // namespace

std::optional<Priority> parse_priority(std::string_view name) {
    if (name == "interactive") return Priority::kInteractive;
    if (name == "batch") return Priority::kBatch;
    if (name == "background") return Priority::kBackground;
    return std::nullopt;
}

std::string ShedError::compose(Reason reason, const std::string& label,
                               const std::string& detail) {
    std::string message = "scenario shed";
    if (!label.empty()) message += ": " + label;
    message += " (";
    message += reason_word(reason);
    if (!detail.empty()) message += "; " + detail;
    message += ")";
    return message;
}

// -- AdmissionStats -----------------------------------------------------------

void AdmissionStats::PerClass::merge(const PerClass& other) {
    submitted += other.submitted;
    admitted += other.admitted;
    rejected += other.rejected;
    shed += other.shed;
    completed += other.completed;
    cancelled += other.cancelled;
    failed += other.failed;
    // High-water marks don't sum across shards: the service-wide figure is
    // the worst depth any one queue reached.
    queue_peak = std::max(queue_peak, other.queue_peak);
}

AdmissionStats::PerClass AdmissionStats::PerClass::since(
    const PerClass& before) const {
    PerClass delta;
    delta.submitted = submitted - before.submitted;
    delta.admitted = admitted - before.admitted;
    delta.rejected = rejected - before.rejected;
    delta.shed = shed - before.shed;
    delta.completed = completed - before.completed;
    delta.cancelled = cancelled - before.cancelled;
    delta.failed = failed - before.failed;
    delta.queue_peak = queue_peak;  // gauge: report the current high water
    return delta;
}

void AdmissionStats::merge(const AdmissionStats& other) {
    for (std::size_t i = 0; i < classes.size(); ++i)
        classes[i].merge(other.classes[i]);
    if (remote_failures.size() < other.remote_failures.size())
        remote_failures.resize(other.remote_failures.size(), 0);
    for (std::size_t i = 0; i < other.remote_failures.size(); ++i)
        remote_failures[i] += other.remote_failures[i];
}

AdmissionStats AdmissionStats::since(const AdmissionStats& before) const {
    AdmissionStats delta;
    for (std::size_t i = 0; i < classes.size(); ++i)
        delta.classes[i] = classes[i].since(before.classes[i]);
    delta.remote_failures = remote_failures;  // gauges
    return delta;
}

AdmissionStats::PerClass AdmissionStats::totals() const {
    PerClass sum;
    for (const auto& per_class : classes) sum.merge(per_class);
    return sum;
}

std::string AdmissionStats::to_string() const {
    const PerClass sum = totals();
    std::ostringstream os;
    os << "submitted " << sum.submitted << ", admitted " << sum.admitted
       << ", rejected " << sum.rejected << ", shed " << sum.shed
       << ", completed " << sum.completed << ", cancelled " << sum.cancelled
       << ", failed " << sum.failed << " (queue peak " << sum.queue_peak
       << ")";
    for (std::size_t i = 0; i < classes.size(); ++i) {
        const auto& c = classes[i];
        if (c.submitted == 0) continue;
        os << "; " << priority_name(static_cast<Priority>(i)) << ": "
           << c.submitted << " in, " << c.rejected << " rejected, " << c.shed
           << " shed";
    }
    return os.str();
}

// -- AdmissionController ------------------------------------------------------

std::exception_ptr AdmissionController::try_admit(
    Priority priority,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    const std::string& label) {
    const auto index = static_cast<std::size_t>(priority);
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& per_class = stats_.classes[index];
    ++per_class.submitted;

    const std::size_t depth = options_.queue_depths[index];
    if (depth != 0 && queued_[index] >= depth) {
        ++per_class.rejected;
        std::ostringstream detail;
        detail << queued_[index] << "/" << depth << " "
               << priority_name(priority) << " requests queued";
        return std::make_exception_ptr(
            ShedError(ShedError::Reason::kQueueFull, label, detail.str()));
    }

    if (deadline.has_value()) {
        double estimate_s = 0.0;
        for (const auto& [name, mean] : stage_means_)
            estimate_s += mean.mean_s;
        const auto finish_estimate =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(estimate_s));
        if (finish_estimate > *deadline) {
            ++per_class.rejected;
            std::ostringstream detail;
            detail << "pipeline estimate " << estimate_s << " s overruns the "
                   << "deadline";
            return std::make_exception_ptr(ShedError(
                ShedError::Reason::kDeadlineUnmeetable, label, detail.str()));
        }
    }

    ++per_class.admitted;
    ++queued_[index];
    per_class.queue_peak = std::max<std::uint64_t>(per_class.queue_peak,
                                                   queued_[index]);
    return nullptr;
}

void AdmissionController::on_start(Priority priority) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& queued = queued_[static_cast<std::size_t>(priority)];
    if (queued > 0) --queued;
}

void AdmissionController::on_completed(Priority priority,
                                       std::span<const StageLap> laps) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.classes[static_cast<std::size_t>(priority)].completed;
    for (const auto& lap : laps) {
        auto it = stage_means_.find(lap.stage);
        if (it == stage_means_.end())
            it = stage_means_.emplace(lap.stage, StageMean{}).first;
        auto& mean = it->second;
        if (!mean.seeded) {
            mean.mean_s = lap.seconds;
            mean.seeded = true;
        } else {
            mean.mean_s += kEwmaAlpha * (lap.seconds - mean.mean_s);
        }
    }
}

void AdmissionController::on_shed(Priority priority) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.classes[static_cast<std::size_t>(priority)].shed;
}

void AdmissionController::on_cancelled(Priority priority) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.classes[static_cast<std::size_t>(priority)].cancelled;
}

void AdmissionController::on_failed(Priority priority) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.classes[static_cast<std::size_t>(priority)].failed;
}

double AdmissionController::estimate_locked(
    std::span<const std::string_view> stages) const {
    double estimate_s = 0.0;
    for (const auto stage : stages) {
        const auto it = stage_means_.find(stage);
        if (it != stage_means_.end()) estimate_s += it->second.mean_s;
    }
    return estimate_s;
}

void AdmissionController::enforce_budget(
    Priority priority, std::chrono::steady_clock::time_point deadline,
    std::span<const std::string_view> remaining_stages,
    const std::string& label) const {
    double estimate_s = 0.0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        estimate_s = estimate_locked(remaining_stages);
    }
    const auto now = std::chrono::steady_clock::now();
    const auto finish_estimate =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(estimate_s));
    if (finish_estimate <= deadline) return;

    std::ostringstream detail;
    detail << remaining_stages.size() << " stages (est. " << estimate_s
           << " s) left, "
           << std::chrono::duration<double>(deadline - now).count()
           << " s of budget";
    (void)priority;  // the catch site attributes the shed to the class
    throw ShedError(ShedError::Reason::kBudgetExhausted, label, detail.str());
}

double AdmissionController::estimated_total_s() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    double estimate_s = 0.0;
    for (const auto& [name, mean] : stage_means_) estimate_s += mean.mean_s;
    return estimate_s;
}

AdmissionStats AdmissionController::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace teamplay::core
