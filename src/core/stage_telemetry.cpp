#include "core/stage_telemetry.hpp"

#include <algorithm>
#include <cstdio>

namespace teamplay::core {

void StageTelemetry::record(std::string_view stage, double seconds) {
    const auto it = stages_.find(stage);
    auto& entry =
        it != stages_.end()
            ? it->second
            : stages_.emplace(std::string(stage), PerStage{}).first->second;
    entry.count += 1;
    entry.total_s += seconds;
    entry.max_s = std::max(entry.max_s, seconds);
}

void StageTelemetry::merge(std::span<const StageLap> laps) {
    for (const auto& lap : laps) record(lap.stage, lap.seconds);
}

void StageTelemetry::merge(const StageTelemetry& other) {
    for (const auto& [name, stage] : other.stages_) merge(name, stage);
}

void StageTelemetry::merge(std::string_view stage,
                           const PerStage& aggregate) {
    const auto it = stages_.find(stage);
    auto& entry =
        it != stages_.end()
            ? it->second
            : stages_.emplace(std::string(stage), PerStage{}).first->second;
    entry.count += aggregate.count;
    entry.total_s += aggregate.total_s;
    entry.max_s = std::max(entry.max_s, aggregate.max_s);
}

std::string StageTelemetry::to_string() const {
    if (stages_.empty()) return {};
    std::string out;
    char line[128];
    std::snprintf(line, sizeof line, "%-10s %8s %10s %10s %10s\n", "stage",
                  "count", "total_s", "mean_ms", "max_ms");
    out += line;
    for (const auto& [name, stage] : stages_) {
        std::snprintf(line, sizeof line, "%-10s %8llu %10.4f %10.3f %10.3f\n",
                      name.c_str(),
                      static_cast<unsigned long long>(stage.count),
                      stage.total_s, 1e3 * stage.mean_s(), 1e3 * stage.max_s);
        out += line;
    }
    return out;
}

}  // namespace teamplay::core
