// Persistent, content-addressed store of memoised evaluation results.
//
// The EvaluationCache dies with the process: a restarting service re-pays
// every Pareto-front compilation, PowProfiler campaign and taint analysis
// it had already done.  This store gives completed entries a durable home
// — an append-only, segment-based directory of `wire`-encoded
// (EvaluationKey, EvaluationResult) frames, keyed by the same
// content-addressed EvaluationKey the cache uses (ir::structural_fingerprint
// plus options fingerprint), so an entry written by one engine, one shard
// or one *process* warm-starts any other that derives the same key.
//
// Segment layout (one file per writing store instance, never rewritten):
//
//   4 bytes  magic "TPSG"
//   u16      wire::kVersion (little-endian) — whole segment is skipped on
//            mismatch; frames additionally carry their own version
//   records, each:
//     frame  u32 LE length + wire-encoded EvaluationKey
//     frame  u32 LE length + wire-encoded EvaluationResult
//
// Startup mmaps every regular file in the directory (streaming fallback
// when mmap is unavailable) and indexes result-frame offsets by decoded
// key *without* decoding any result — warm start touches a few hundred
// bytes per entry, not the megabytes of compiled programs behind them.
// Result frames are verified lazily: a `load` hit strictly decodes the
// frame through the wire codec (checksum, bounds, enum validation), and a
// torn, byte-flipped or version-skewed frame is dropped from the index and
// counted, never fatal — the store is a cache, so the only correct failure
// mode is recompute.  Duplicate keys (later segments, later records) win,
// matching append-only semantics.
//
// Concurrency: all index and append operations are mutex-protected; loads
// read immutable mapped bytes (or pread the active segment below its
// flushed offset) outside the lock, so N engine shards can spill and load
// against one shared store concurrently (exercised under TSan).  Writing
// is single-process per segment: each writing instance creates its own
// exclusively-opened segment file, so two processes sharing a directory
// never interleave bytes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/evaluation_cache.hpp"

namespace teamplay::core {

class ResultStore {
public:
    /// What a `load` observed (kept distinct so the cache can attribute
    /// recomputes to absence versus corruption).
    enum class LoadStatus : std::uint8_t {
        kHit,     ///< frame present, checksum-verified, strictly decoded
        kMiss,    ///< key not in the index
        kReject,  ///< frame present but corrupt — dropped from the index
    };

    struct Loaded {
        LoadStatus status = LoadStatus::kMiss;
        std::optional<EvaluationResult> result;  ///< set iff status == kHit
    };

    /// One consistent snapshot (every field read under the same lock).
    struct Stats {
        std::size_t segments = 0;      ///< files this store reads or writes
        std::size_t indexed = 0;       ///< live index entries
        std::uint64_t appended = 0;    ///< records written by this instance
        std::uint64_t scan_rejects = 0;  ///< files/records skipped at open
        std::uint64_t load_hits = 0;
        std::uint64_t load_misses = 0;
        std::uint64_t load_rejects = 0;  ///< corrupt frames found at load
    };

    /// Open (creating if needed) the store directory and index every
    /// segment found there.  Corrupt, truncated, foreign or stale-version
    /// files never throw — their frames are skipped and counted in
    /// `Stats::scan_rejects`.
    explicit ResultStore(std::filesystem::path directory);
    ~ResultStore();

    ResultStore(const ResultStore&) = delete;
    ResultStore& operator=(const ResultStore&) = delete;

    /// Decode and verify the stored result for `key`.  A corrupt frame
    /// (kReject) is removed from the index so a subsequent `store` of the
    /// recomputed result can replace it.
    [[nodiscard]] Loaded load(const EvaluationKey& key);

    /// Append one record; returns false (and writes nothing) when the key
    /// is already indexed — results are content-addressed and
    /// deterministic, so the resident frame is byte-equivalent — or when
    /// the segment file cannot be written (the store degrades to
    /// read-only, never throws).
    bool store(const EvaluationKey& key, const EvaluationResult& result);

    [[nodiscard]] bool contains(const EvaluationKey& key) const;
    [[nodiscard]] Stats stats() const;
    [[nodiscard]] const std::filesystem::path& directory() const {
        return directory_;
    }

private:
    /// One read-only segment, mmap'd when possible (heap-backed fallback);
    /// bytes are immutable for the store's lifetime either way.
    struct Segment;

    /// Where an indexed result frame lives.  `segment == kActiveSegment`
    /// means the segment this instance is appending to (read via pread
    /// below the flushed offset).
    struct Location {
        std::size_t segment = 0;
        std::size_t offset = 0;  ///< of the result-frame payload
        std::size_t length = 0;
    };
    static constexpr std::size_t kActiveSegment = SIZE_MAX;

    void scan_directory_locked();
    void scan_segment_locked(std::size_t segment_index);
    bool open_write_segment_locked();

    std::filesystem::path directory_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Segment>> segments_;
    std::map<EvaluationKey, Location> index_;

    std::FILE* write_file_ = nullptr;
    int write_fd_ = -1;
    std::size_t write_offset_ = 0;  ///< flushed bytes in the active segment
    bool write_failed_ = false;

    std::uint64_t appended_ = 0;
    std::uint64_t scan_rejects_ = 0;
    std::uint64_t load_hits_ = 0;
    std::uint64_t load_misses_ = 0;
    std::uint64_t load_rejects_ = 0;
};

}  // namespace teamplay::core
