#include "csl/csl.hpp"

#include <cctype>
#include <set>

#include "support/units.hpp"

namespace teamplay::csl {

namespace {

struct Token {
    std::string text;
    int line = 0;
};

std::vector<Token> tokenize(std::string_view source) {
    std::vector<Token> tokens;
    int line = 1;
    std::size_t i = 0;
    const auto is_word = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
               c == '-' || c == '.' || c == '+';
    };
    while (i < source.size()) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
        } else if (c == '#') {
            while (i < source.size() && source[i] != '\n') ++i;
        } else if (c == '{' || c == '}' || c == ';' || c == ',') {
            tokens.push_back({std::string(1, c), line});
            ++i;
        } else if (c == '-' && i + 1 < source.size() &&
                   source[i + 1] == '>') {
            tokens.push_back({"->", line});
            i += 2;
        } else if (is_word(c)) {
            std::size_t start = i;
            // Words may contain '-' (platform names) but "->" ends a word.
            while (i < source.size() && is_word(source[i])) {
                if (source[i] == '-' && i + 1 < source.size() &&
                    source[i + 1] == '>')
                    break;
                ++i;
            }
            tokens.push_back({std::string(source.substr(start, i - start)),
                              line});
        } else {
            throw CslError(std::string("unexpected character '") + c + "'",
                           line);
        }
    }
    return tokens;
}

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    AppSpec parse_app() {
        AppSpec app;
        expect_keyword("app");
        app.name = take_word("application name");
        expect_keyword("on");
        app.platform = take_word("platform name");
        if (peek_is("deadline")) {
            advance();
            app.deadline_s = take_time("application deadline");
        }
        expect("{");
        while (!peek_is("}")) {
            if (peek_is("task")) {
                app.tasks.push_back(parse_task());
            } else if (peek_is("flow")) {
                parse_flow(app);
            } else {
                throw CslError("expected 'task' or 'flow', got '" +
                                   current().text + "'",
                               current().line);
            }
        }
        expect("}");
        if (pos_ != tokens_.size())
            throw CslError("trailing input after application block",
                           current().line);
        finalize(app);
        return app;
    }

private:
    const Token& current() const {
        if (pos_ >= tokens_.size())
            throw CslError("unexpected end of input",
                           tokens_.empty() ? 1 : tokens_.back().line);
        return tokens_[pos_];
    }
    bool peek_is(std::string_view text) const {
        return pos_ < tokens_.size() && tokens_[pos_].text == text;
    }
    void advance() { ++pos_; }
    void expect(std::string_view text) {
        if (!peek_is(text))
            throw CslError("expected '" + std::string(text) + "', got '" +
                               (pos_ < tokens_.size() ? current().text
                                                      : "<eof>") +
                               "'",
                           pos_ < tokens_.size() ? current().line
                                                 : last_line());
        advance();
    }
    void expect_keyword(std::string_view kw) { expect(kw); }
    int last_line() const {
        return tokens_.empty() ? 1 : tokens_.back().line;
    }
    std::string take_word(const std::string& what) {
        if (pos_ >= tokens_.size())
            throw CslError("expected " + what + ", got end of input",
                           last_line());
        const Token token = current();
        if (token.text == "{" || token.text == "}" || token.text == ";" ||
            token.text == "->" || token.text == ",")
            throw CslError("expected " + what + ", got '" + token.text + "'",
                           token.line);
        advance();
        return token.text;
    }
    double take_time(const std::string& what) {
        const Token token = current();
        const std::string word = take_word(what);
        double seconds = 0.0;
        if (!support::parse_time(word, seconds))
            throw CslError("malformed time literal '" + word + "' for " +
                               what,
                           token.line);
        return seconds;
    }
    double take_energy(const std::string& what) {
        const Token token = current();
        const std::string word = take_word(what);
        double joules = 0.0;
        if (!support::parse_energy(word, joules))
            throw CslError("malformed energy literal '" + word + "' for " +
                               what,
                           token.line);
        return joules;
    }
    double take_number(const std::string& what) {
        const Token token = current();
        const std::string word = take_word(what);
        try {
            std::size_t consumed = 0;
            const double value = std::stod(word, &consumed);
            if (consumed != word.size()) throw std::invalid_argument(word);
            return value;
        } catch (const std::exception&) {
            throw CslError("malformed number '" + word + "' for " + what,
                           token.line);
        }
    }

    TaskSpec parse_task() {
        expect_keyword("task");
        TaskSpec task;
        task.name = take_word("task name");
        expect("{");
        while (!peek_is("}")) {
            const Token key_token = current();
            const std::string key = take_word("task attribute");
            if (key == "entry") {
                task.entry = take_word("entry function");
            } else if (key == "period") {
                task.period_s = take_time("period");
            } else if (key == "deadline") {
                task.deadline_s = take_time("deadline");
            } else if (key == "budget") {
                const std::string which = take_word("budget kind");
                if (which == "time") {
                    task.time_budget_s = take_time("time budget");
                } else if (which == "energy") {
                    task.energy_budget_j = take_energy("energy budget");
                } else if (which == "leakage") {
                    task.leakage_budget = take_number("leakage budget");
                } else {
                    throw CslError("unknown budget kind '" + which + "'",
                                   key_token.line);
                }
            } else if (key == "security") {
                task.security_hint = take_word("security level");
                static const std::set<std::string> levels = {
                    "none", "balance", "ladder", "auto"};
                if (!levels.contains(task.security_hint))
                    throw CslError("unknown security level '" +
                                       task.security_hint + "'",
                                   key_token.line);
            } else if (key == "core_class") {
                task.core_class = take_word("core class");
            } else if (key == "after") {
                task.deps.push_back(take_word("dependency"));
                while (peek_is(",")) {
                    advance();
                    task.deps.push_back(take_word("dependency"));
                }
            } else {
                throw CslError("unknown task attribute '" + key + "'",
                               key_token.line);
            }
            expect(";");
        }
        expect("}");
        if (task.entry.empty())
            throw CslError("task '" + task.name + "' lacks an entry function",
                           last_line());
        return task;
    }

    void parse_flow(AppSpec& app) {
        expect_keyword("flow");
        std::string previous = take_word("task name");
        bool any = false;
        while (peek_is("->")) {
            advance();
            const Token token = current();
            const std::string next = take_word("task name");
            TaskSpec* spec = nullptr;
            for (auto& task : app.tasks)
                if (task.name == next) spec = &task;
            if (spec == nullptr)
                throw CslError("flow references unknown task '" + next + "'",
                               token.line);
            bool exists = false;
            for (const auto& dep : spec->deps) exists |= dep == previous;
            if (!exists) spec->deps.push_back(previous);
            previous = next;
            any = true;
        }
        if (!any)
            throw CslError("flow must contain at least one '->'",
                           current().line);
        expect(";");
    }

    void finalize(AppSpec& app) const {
        std::set<std::string> names;
        for (const auto& task : app.tasks) {
            if (!names.insert(task.name).second)
                throw CslError("duplicate task '" + task.name + "'",
                               last_line());
        }
        for (const auto& task : app.tasks)
            for (const auto& dep : task.deps)
                if (!names.contains(dep))
                    throw CslError("task '" + task.name +
                                       "' depends on unknown task '" + dep +
                                       "'",
                                   last_line());
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

const TaskSpec* AppSpec::find(const std::string& task_name) const {
    for (const auto& task : tasks)
        if (task.name == task_name) return &task;
    return nullptr;
}

coordination::TaskGraph AppSpec::skeleton() const {
    coordination::TaskGraph graph;
    graph.app_name = name;
    for (const auto& spec : tasks) {
        coordination::Task task;
        task.name = spec.name;
        task.entry_fn = spec.entry;
        task.deps = spec.deps;
        task.period_s = spec.period_s;
        task.deadline_s = spec.deadline_s;
        graph.tasks.push_back(std::move(task));
    }
    return graph;
}

AppSpec parse(std::string_view source) {
    Parser parser(tokenize(source));
    return parser.parse_app();
}

}  // namespace teamplay::csl
