// Contract Specification Language (CSL) front-end [1].
//
// CSL is how TeamPlay turns ETS properties into first-class citizens at the
// source level: the developer annotates the application's task structure
// with periods, deadlines, time/energy/security budgets and dependencies.
// The layer extracts the points of interest (POIs) and the task graph that
// the compiler, coordination layer and contract system consume.
//
// Concrete syntax (line comments start with '#'):
//
//   app camera_pill on camera-pill deadline 500ms {
//     task capture {
//       entry pill_capture;
//       period 500ms;
//       deadline 120ms;
//       budget time 8ms;
//       budget energy 2mJ;
//       budget leakage 0;
//       security ladder;        # none | balance | ladder | auto
//       core_class mcu;
//       after boot;             # explicit dependencies
//     }
//     flow capture -> compress -> encrypt -> transmit;
//   }
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "coordination/task_graph.hpp"

namespace teamplay::csl {

/// Parse error with source line information.
class CslError : public std::runtime_error {
public:
    CslError(const std::string& message, int line)
        : std::runtime_error("CSL:" + std::to_string(line) + ": " + message),
          line_(line) {}
    [[nodiscard]] int line() const { return line_; }

private:
    int line_;
};

struct TaskSpec {
    std::string name;
    std::string entry;
    double period_s = 0.0;
    double deadline_s = 0.0;
    double time_budget_s = -1.0;    ///< negative = no contract
    double energy_budget_j = -1.0;
    double leakage_budget = -1.0;
    std::string security_hint = "auto";  ///< none|balance|ladder|auto
    std::string core_class;              ///< "" = any core
    std::vector<std::string> deps;
};

struct AppSpec {
    std::string name;
    std::string platform;
    double deadline_s = 0.0;
    std::vector<TaskSpec> tasks;

    [[nodiscard]] const TaskSpec* find(const std::string& task_name) const;

    /// Task-graph skeleton (names, deps, periods, deadlines); versions are
    /// filled in later by the compiler or profiler.
    [[nodiscard]] coordination::TaskGraph skeleton() const;
};

/// Parse a CSL document; throws CslError on malformed input.
[[nodiscard]] AppSpec parse(std::string_view source);

}  // namespace teamplay::csl
