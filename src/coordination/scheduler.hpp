// Energy/time/security-aware scheduling and mapping on heterogeneous
// multi-cores (the coordination layer of Figs. 1-2; Roeder et al. [13][20]).
//
// Two objectives are supported:
//   * kMakespan — classic HEFT-style list scheduling (the baseline the
//     ablation bench A2 compares against): always pick the (core, version)
//     pair finishing earliest.
//   * kEnergy — the TeamPlay policy: among candidates that keep the
//     remaining critical path within the deadline, pick the lowest-energy
//     (core, version, DVFS) choice; fall back to earliest-finish when the
//     deadline would otherwise be at risk.  An optional simulated-annealing
//     refinement then perturbs assignments while feasibility holds.
//
// Platform energy accounting separates dynamic energy (the version's own
// cost), per-core static energy while busy, idle leakage, and the board's
// base power over the schedule horizon — the split that makes "race to idle
// vs sweet spot" a real trade-off, as the paper's energy challenge (Sec.
// III-C) describes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coordination/task_graph.hpp"
#include "platform/platform.hpp"

namespace teamplay::coordination {

struct ScheduleEntry {
    std::string task;
    std::size_t core = 0;
    std::size_t version = 0;   ///< index into the chosen class version list
    std::string core_class;    ///< class key the version list came from
    double start_s = 0.0;
    double finish_s = 0.0;
    double dynamic_energy_j = 0.0;
    std::size_t opp_index = 0;
};

struct Schedule {
    std::vector<ScheduleEntry> entries;
    double makespan_s = 0.0;
    bool feasible = false;  ///< all deadlines met at schedule-build time

    [[nodiscard]] const ScheduleEntry* entry_for(
        const std::string& task) const;

    /// Total energy over `horizon_s` (>= makespan): dynamic + per-core
    /// static while busy + idle leakage + board base power.
    ///
    /// `power_managed` selects the idle model: true = TeamPlay-generated
    /// glue parks idle cores in a sleep state (a fraction of the lowest-OPP
    /// leakage); false = the traditional runtime busy-waits at the core's
    /// maximum operating point — the distinction behind the space use case's
    /// energy result.
    [[nodiscard]] double platform_energy_j(
        const platform::Platform& platform, double horizon_s,
        bool power_managed = true) const;

    /// Dynamic-only energy (what the version choices control directly).
    [[nodiscard]] double dynamic_energy_j() const;

    /// Human-readable table.
    [[nodiscard]] std::string to_string() const;

    /// ASCII Gantt chart, one row per core of the platform, `width`
    /// character columns across the makespan.
    [[nodiscard]] std::string gantt(const platform::Platform& platform,
                                    int width = 64) const;
};

class Scheduler {
public:
    enum class Objective : std::uint8_t { kMakespan, kEnergy };

    struct Options {
        Objective objective = Objective::kEnergy;
        double deadline_s = 0.0;  ///< end-to-end deadline (0 = unconstrained)
        bool anneal = true;       ///< simulated-annealing refinement
        int anneal_iterations = 400;
        std::uint64_t seed = 1;
    };

    explicit Scheduler(const platform::Platform& platform)
        : platform_(&platform) {}

    /// Build a static schedule; throws std::runtime_error when the graph is
    /// malformed or a task fits no core.
    [[nodiscard]] Schedule schedule(const TaskGraph& graph,
                                    const Options& options) const;

private:
    struct Assignment {
        std::size_t core = 0;
        std::size_t version = 0;
        std::string core_class;
    };

    [[nodiscard]] Schedule build(const TaskGraph& graph,
                                 const std::vector<Assignment>& fixed,
                                 const Options& options) const;

    const platform::Platform* platform_;
};

/// Response-time analysis for a periodic task set on one core under
/// rate-monotonic priorities (used by the camera-pill flow, where the
/// coordination layer validates schedulability rather than building a static
/// DAG schedule).
struct PeriodicTask {
    std::string name;
    double wcet_s = 0.0;
    double period_s = 0.0;
    double deadline_s = 0.0;  ///< <= period
};

struct RtaResult {
    bool schedulable = false;
    std::vector<double> response_times;  ///< per task, same order as input
};

[[nodiscard]] RtaResult response_time_analysis(
    const std::vector<PeriodicTask>& tasks);

}  // namespace teamplay::coordination
