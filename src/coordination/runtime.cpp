#include "coordination/runtime.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "support/rng.hpp"

namespace teamplay::coordination {

RuntimeResult execute_schedule(const TaskGraph& graph,
                               const Schedule& schedule,
                               const RuntimeOptions& options) {
    RuntimeResult result;
    support::Rng rng(options.seed);

    // Replay in schedule order per core, respecting dependencies: actual
    // start = max(core free, deps actually finished).
    std::map<std::string, double> actual_finish;
    std::map<std::size_t, double> core_free;

    // Process entries by planned start so dependency producers come first
    // (the static schedule guarantees this order is dependency-consistent).
    std::vector<const ScheduleEntry*> ordered;
    ordered.reserve(schedule.entries.size());
    for (const auto& entry : schedule.entries) ordered.push_back(&entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const ScheduleEntry* a, const ScheduleEntry* b) {
                  return a->start_s < b->start_s;
              });

    for (const ScheduleEntry* entry : ordered) {
        const Task* task = graph.find(entry->task);
        if (task == nullptr)
            throw std::runtime_error("schedule references unknown task '" +
                                     entry->task + "'");
        double ready = core_free[entry->core];
        for (const auto& dep : task->deps) {
            const auto it = actual_finish.find(dep);
            if (it == actual_finish.end())
                throw std::runtime_error(
                    "schedule order violates dependency: '" + dep +
                    "' not finished before '" + entry->task + "'");
            ready = std::max(ready, it->second);
        }

        const double planned = entry->finish_s - entry->start_s;
        double duration = planned;
        if (options.jitter_sigma > 0.0) {
            const double factor =
                std::max(0.2, 1.0 + rng.gaussian(0.0, options.jitter_sigma));
            duration = planned * factor;
        }
        const double finish = ready + duration;
        actual_finish[entry->task] = finish;
        core_free[entry->core] = finish;

        RuntimeTaskOutcome outcome;
        outcome.task = entry->task;
        outcome.start_s = ready;
        outcome.finish_s = finish;
        outcome.deadline_met =
            task->deadline_s <= 0.0 || finish <= task->deadline_s;
        if (!outcome.deadline_met) ++result.deadline_misses;
        result.outcomes.push_back(std::move(outcome));
        result.makespan_s = std::max(result.makespan_s, finish);
    }
    result.end_to_end_met = options.deadline_s <= 0.0 ||
                            result.makespan_s <= options.deadline_s;
    if (!result.end_to_end_met) ++result.deadline_misses;
    return result;
}

double deadline_success_ratio(const TaskGraph& graph,
                              const Schedule& schedule,
                              const RuntimeOptions& options, int frames) {
    if (frames <= 0) return 0.0;
    int good = 0;
    RuntimeOptions frame_options = options;
    for (int f = 0; f < frames; ++f) {
        frame_options.seed = options.seed + static_cast<std::uint64_t>(f);
        const auto run = execute_schedule(graph, schedule, frame_options);
        if (run.deadline_misses == 0 && run.end_to_end_met) ++good;
    }
    return static_cast<double>(good) / static_cast<double>(frames);
}

}  // namespace teamplay::coordination
