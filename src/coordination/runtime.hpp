// Runtime execution model of a coordinated application (the YASMIN
// middleware's runtime half [14]).
//
// Replays a static schedule as a discrete-event simulation in which task
// durations deviate from their budgeted times (none on predictable cores,
// configurable jitter on complex ones), enforcing dependency and core
// exclusivity constraints.  Reports per-task actual times and any deadline
// misses — the toolchain's last validation step before signing the
// certificate, and the mechanism behind the "soft deadline miss" statistics
// of the UAV use case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coordination/scheduler.hpp"
#include "coordination/task_graph.hpp"

namespace teamplay::coordination {

struct RuntimeTaskOutcome {
    std::string task;
    double start_s = 0.0;
    double finish_s = 0.0;
    bool deadline_met = true;
};

struct RuntimeResult {
    std::vector<RuntimeTaskOutcome> outcomes;
    double makespan_s = 0.0;
    int deadline_misses = 0;
    bool end_to_end_met = true;
};

struct RuntimeOptions {
    /// Multiplicative execution-time noise sigma (0 = deterministic replay).
    double jitter_sigma = 0.0;
    /// End-to-end deadline to check (0 = none).
    double deadline_s = 0.0;
    std::uint64_t seed = 1;
};

/// Execute one frame/iteration of the schedule.
[[nodiscard]] RuntimeResult execute_schedule(const TaskGraph& graph,
                                             const Schedule& schedule,
                                             const RuntimeOptions& options);

/// Execute `frames` iterations and return the fraction of frames in which
/// every deadline held (the soft-real-time success ratio of the UAV flow).
[[nodiscard]] double deadline_success_ratio(const TaskGraph& graph,
                                            const Schedule& schedule,
                                            const RuntimeOptions& options,
                                            int frames);

}  // namespace teamplay::coordination
