// Glue-code generation (the "Coordination Decisions, Code Generator" box of
// Figs. 1-2; the YASMIN middleware of Rouxel et al. [14]).
//
// From a task graph and a schedule, emits the initialisation, configuration
// and runtime-management code the paper's toolchain generates: an
// RTEMS-flavoured variant for the space use case, a POSIX/Linux variant for
// the complex boards, and the plain sequential driver used as pass 1 of the
// complex-architecture workflow (the instrumented profiling binary).
//
// The output is C-style source text; tests validate its structure (task
// tables, affinities, priorities, semaphore wiring for dependencies).
#pragma once

#include <string>

#include "coordination/scheduler.hpp"
#include "coordination/task_graph.hpp"
#include "platform/platform.hpp"

namespace teamplay::coordination {

enum class GlueStyle : std::uint8_t {
    kSequential,  ///< pass-1 profiling driver: run tasks in topological order
    kRtems,       ///< RTEMS task/ratemon configuration (GR712RC flow)
    kPosix,       ///< pthreads + affinity + DVFS hints (TK1/TX2/Nano flow)
};

/// Render the glue code for an application.  For kSequential the schedule
/// may be empty (only the graph's topological order is used).
[[nodiscard]] std::string generate_glue(const TaskGraph& graph,
                                        const Schedule& schedule,
                                        const platform::Platform& platform,
                                        GlueStyle style);

}  // namespace teamplay::coordination
