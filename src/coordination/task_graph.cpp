#include "coordination/task_graph.hpp"

#include <stdexcept>

namespace teamplay::coordination {

const Task* TaskGraph::find(const std::string& name) const {
    for (const auto& task : tasks)
        if (task.name == name) return &task;
    return nullptr;
}

Task* TaskGraph::find(const std::string& name) {
    for (auto& task : tasks)
        if (task.name == name) return &task;
    return nullptr;
}

std::vector<std::string> TaskGraph::validate() const {
    std::vector<std::string> errors;
    for (const auto& task : tasks) {
        if (task.name.empty()) errors.emplace_back("task with empty name");
        if (task.versions.empty())
            errors.push_back("task '" + task.name + "' has no versions");
        for (const auto& dep : task.deps) {
            if (find(dep) == nullptr)
                errors.push_back("task '" + task.name +
                                 "' depends on unknown task '" + dep + "'");
            if (dep == task.name)
                errors.push_back("task '" + task.name +
                                 "' depends on itself");
        }
        for (const auto& [cls, versions] : task.versions) {
            for (const auto& version : versions) {
                if (version.time_s <= 0.0)
                    errors.push_back("task '" + task.name +
                                     "' has a version with non-positive "
                                     "time");
                if (version.energy_j < 0.0)
                    errors.push_back("task '" + task.name +
                                     "' has a version with negative energy");
            }
        }
    }
    try {
        (void)topological_order();
    } catch (const std::runtime_error&) {
        errors.emplace_back("dependency cycle detected");
    }
    return errors;
}

std::vector<std::size_t> TaskGraph::topological_order() const {
    std::vector<int> indegree(tasks.size(), 0);
    std::map<std::string, std::size_t> index_of;
    for (std::size_t i = 0; i < tasks.size(); ++i)
        index_of[tasks[i].name] = i;
    for (const auto& task : tasks) {
        for (const auto& dep : task.deps) {
            const auto it = index_of.find(dep);
            if (it == index_of.end())
                throw std::runtime_error("unknown dependency: " + dep);
        }
    }
    for (std::size_t i = 0; i < tasks.size(); ++i)
        indegree[i] = static_cast<int>(tasks[i].deps.size());

    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < tasks.size(); ++i)
        if (indegree[i] == 0) ready.push_back(i);

    const auto succ = successors();
    std::vector<std::size_t> order;
    order.reserve(tasks.size());
    while (!ready.empty()) {
        const std::size_t current = ready.back();
        ready.pop_back();
        order.push_back(current);
        for (const std::size_t next : succ[current])
            if (--indegree[next] == 0) ready.push_back(next);
    }
    if (order.size() != tasks.size())
        throw std::runtime_error("task graph has a cycle");
    return order;
}

std::vector<std::vector<std::size_t>> TaskGraph::successors() const {
    std::map<std::string, std::size_t> index_of;
    for (std::size_t i = 0; i < tasks.size(); ++i)
        index_of[tasks[i].name] = i;
    std::vector<std::vector<std::size_t>> succ(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i)
        for (const auto& dep : tasks[i].deps) {
            const auto it = index_of.find(dep);
            if (it != index_of.end()) succ[it->second].push_back(i);
        }
    return succ;
}

}  // namespace teamplay::coordination
