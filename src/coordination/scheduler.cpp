#include "coordination/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

#include "support/rng.hpp"
#include "support/units.hpp"

namespace teamplay::coordination {

namespace {

/// Idle (sleep-state) power of a core as a fraction of its lowest-OPP
/// leakage: modern embedded cores gate most of the rail when parked.
constexpr double kIdleFraction = 0.1;

double idle_power_w(const platform::Core& core) {
    double lowest = core.opps.front().static_power_w;
    for (const auto& opp : core.opps)
        lowest = std::min(lowest, opp.static_power_w);
    return lowest * kIdleFraction;
}

}  // namespace

const ScheduleEntry* Schedule::entry_for(const std::string& task) const {
    for (const auto& entry : entries)
        if (entry.task == task) return &entry;
    return nullptr;
}

double Schedule::dynamic_energy_j() const {
    double total = 0.0;
    for (const auto& entry : entries) total += entry.dynamic_energy_j;
    return total;
}

double Schedule::platform_energy_j(const platform::Platform& platform,
                                   double horizon_s,
                                   bool power_managed) const {
    const double horizon = std::max(horizon_s, makespan_s);
    double total = platform.base_power_w * horizon;
    for (std::size_t c = 0; c < platform.cores.size(); ++c) {
        const auto& core = platform.cores[c];
        double busy = 0.0;
        double static_busy_j = 0.0;
        for (const auto& entry : entries) {
            if (entry.core != c) continue;
            const double duration = entry.finish_s - entry.start_s;
            busy += duration;
            static_busy_j +=
                core.opp(entry.opp_index).static_power_w * duration;
            total += entry.dynamic_energy_j;
        }
        total += static_busy_j;
        const double idle_w =
            power_managed ? idle_power_w(core)
                          : core.opps.back().static_power_w;
        total += idle_w * std::max(0.0, horizon - busy);
    }
    return total;
}

std::string Schedule::to_string() const {
    std::ostringstream os;
    os << "schedule makespan=" << support::format_time(makespan_s)
       << " feasible=" << (feasible ? "yes" : "no") << "\n";
    for (const auto& entry : entries) {
        os << "  " << entry.task << ": core=" << entry.core << " version="
           << entry.version << " opp=" << entry.opp_index << " ["
           << support::format_time(entry.start_s) << ", "
           << support::format_time(entry.finish_s) << "] energy="
           << support::format_energy(entry.dynamic_energy_j) << "\n";
    }
    return os.str();
}

std::string Schedule::gantt(const platform::Platform& platform,
                            int width) const {
    std::ostringstream os;
    if (makespan_s <= 0.0 || width < 8) return "(empty schedule)\n";
    for (std::size_t c = 0; c < platform.cores.size(); ++c) {
        std::string row(static_cast<std::size_t>(width), '.');
        for (const auto& entry : entries) {
            if (entry.core != c) continue;
            auto lo = static_cast<std::size_t>(entry.start_s / makespan_s *
                                               width);
            auto hi = static_cast<std::size_t>(entry.finish_s / makespan_s *
                                               width);
            lo = std::min(lo, static_cast<std::size_t>(width - 1));
            hi = std::min(std::max(hi, lo + 1),
                          static_cast<std::size_t>(width));
            const char mark =
                entry.task.empty() ? '#' : entry.task.front();
            for (std::size_t x = lo; x < hi; ++x) row[x] = mark;
        }
        os << "  " << platform.cores[c].name;
        os << std::string(
            platform.cores[c].name.size() < 10
                ? 10 - platform.cores[c].name.size()
                : 1,
            ' ');
        os << "|" << row << "|\n";
    }
    os << "  " << std::string(10, ' ') << "0"
       << std::string(static_cast<std::size_t>(width) - 1, ' ')
       << support::format_time(makespan_s) << "\n";
    return os.str();
}

Schedule Scheduler::build(const TaskGraph& graph,
                          const std::vector<Assignment>& fixed,
                          const Options& options) const {
    const auto order = graph.topological_order();
    const auto succ = graph.successors();
    const std::size_t n = graph.tasks.size();

    // Mean and best-case execution estimates per task (across every core
    // class and version the task can use).
    std::vector<double> mean_exec(n, 0.0);
    std::vector<double> min_exec(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        int count = 0;
        double best = 0.0;
        bool first = true;
        for (const auto& core : platform_->cores) {
            const auto* versions =
                graph.tasks[i].versions_for(core.core_class);
            if (versions == nullptr) continue;
            for (const auto& version : *versions) {
                acc += version.time_s;
                ++count;
                if (first || version.time_s < best) {
                    best = version.time_s;
                    first = false;
                }
            }
        }
        if (count == 0)
            throw std::runtime_error("task '" + graph.tasks[i].name +
                                     "' fits no core of platform " +
                                     platform_->name);
        mean_exec[i] = acc / count;
        min_exec[i] = best;
    }

    // Upward rank (critical-path priority) over mean estimates; and the
    // optimistic remaining path (over best cases) used for the deadline
    // guard of the energy policy.
    std::vector<double> rank(n, 0.0);
    std::vector<double> remaining_min(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const std::size_t i = *it;
        double best_succ = 0.0;
        double best_succ_min = 0.0;
        for (const std::size_t s : succ[i]) {
            best_succ = std::max(best_succ, rank[s]);
            best_succ_min = std::max(best_succ_min, remaining_min[s]);
        }
        rank[i] = mean_exec[i] + best_succ;
        remaining_min[i] = min_exec[i] + best_succ_min;
    }

    // Priority list: descending rank, dependency-consistent because ranks
    // strictly decrease along edges.
    std::vector<std::size_t> priority(order);
    std::sort(priority.begin(), priority.end(),
              [&rank](std::size_t a, std::size_t b) {
                  return rank[a] > rank[b];
              });

    std::vector<double> core_available(platform_->cores.size(), 0.0);
    std::map<std::string, double> finish_of;
    Schedule schedule;
    schedule.feasible = true;

    for (const std::size_t i : priority) {
        const Task& task = graph.tasks[i];
        double deps_ready = 0.0;
        for (const auto& dep : task.deps)
            deps_ready = std::max(deps_ready, finish_of[dep]);

        struct Candidate {
            std::size_t core = 0;
            std::size_t version = 0;
            std::string core_class;
            double start = 0.0;
            double finish = 0.0;
            double energy = 0.0;
            std::size_t opp = 0;
        };
        std::vector<Candidate> candidates;
        for (std::size_t c = 0; c < platform_->cores.size(); ++c) {
            const auto& core = platform_->cores[c];
            const auto* versions = task.versions_for(core.core_class);
            if (versions == nullptr) continue;
            if (!fixed.empty() && fixed[i].core != c) continue;
            for (std::size_t v = 0; v < versions->size(); ++v) {
                if (!fixed.empty() && fixed[i].version != v) continue;
                const auto& version = (*versions)[v];
                Candidate cand;
                cand.core = c;
                cand.version = v;
                cand.core_class = task.versions.contains(core.core_class)
                                      ? core.core_class
                                      : "";
                cand.start = std::max(core_available[c], deps_ready);
                cand.finish = cand.start + version.time_s;
                cand.energy = version.energy_j;
                cand.opp = version.opp_index;
                candidates.push_back(cand);
            }
        }
        if (candidates.empty())
            throw std::runtime_error("no feasible placement for task '" +
                                     task.name + "'");

        const auto by_finish = [](const Candidate& a, const Candidate& b) {
            if (a.finish != b.finish) return a.finish < b.finish;
            return a.energy < b.energy;
        };
        const Candidate* chosen = nullptr;
        if (options.objective == Objective::kMakespan ||
            options.deadline_s <= 0.0) {
            if (options.objective == Objective::kEnergy &&
                options.deadline_s <= 0.0) {
                // Unconstrained energy minimisation.
                chosen = &*std::min_element(
                    candidates.begin(), candidates.end(),
                    [](const Candidate& a, const Candidate& b) {
                        if (a.energy != b.energy) return a.energy < b.energy;
                        return a.finish < b.finish;
                    });
            } else {
                chosen = &*std::min_element(candidates.begin(),
                                            candidates.end(), by_finish);
            }
        } else {
            // Energy policy with a deadline: the cheapest candidate whose
            // finish leaves room for the optimistic remaining critical path.
            const double slack_limit =
                options.deadline_s -
                (remaining_min[i] - min_exec[i]);
            const Candidate* best_energy = nullptr;
            for (const auto& cand : candidates) {
                if (cand.finish > slack_limit) continue;
                if (best_energy == nullptr ||
                    cand.energy < best_energy->energy ||
                    (cand.energy == best_energy->energy &&
                     cand.finish < best_energy->finish))
                    best_energy = &cand;
            }
            chosen = best_energy != nullptr
                         ? best_energy
                         : &*std::min_element(candidates.begin(),
                                              candidates.end(), by_finish);
        }

        ScheduleEntry entry;
        entry.task = task.name;
        entry.core = chosen->core;
        entry.version = chosen->version;
        entry.core_class = chosen->core_class;
        entry.start_s = chosen->start;
        entry.finish_s = chosen->finish;
        entry.dynamic_energy_j = chosen->energy;
        entry.opp_index = chosen->opp;
        schedule.entries.push_back(entry);

        core_available[chosen->core] = chosen->finish;
        finish_of[task.name] = chosen->finish;
        schedule.makespan_s = std::max(schedule.makespan_s, chosen->finish);

        if (task.deadline_s > 0.0 && chosen->finish > task.deadline_s)
            schedule.feasible = false;
    }
    if (options.deadline_s > 0.0 &&
        schedule.makespan_s > options.deadline_s)
        schedule.feasible = false;
    return schedule;
}

Schedule Scheduler::schedule(const TaskGraph& graph,
                             const Options& options) const {
    const auto errors = graph.validate();
    if (!errors.empty())
        throw std::runtime_error("invalid task graph: " + errors.front());

    Schedule best = build(graph, {}, options);
    if (!options.anneal || options.objective != Objective::kEnergy)
        return best;

    // Simulated-annealing refinement over (core, version) assignments.
    const double horizon = std::max(options.deadline_s, best.makespan_s);
    support::Rng rng(options.seed);
    const std::size_t n = graph.tasks.size();

    // Current assignment extracted from the greedy schedule.
    std::vector<Assignment> current(n);
    std::map<std::string, std::size_t> index_of;
    for (std::size_t i = 0; i < n; ++i) index_of[graph.tasks[i].name] = i;
    for (const auto& entry : best.entries) {
        auto& slot = current[index_of[entry.task]];
        slot.core = entry.core;
        slot.version = entry.version;
        slot.core_class = entry.core_class;
    }

    double best_energy = best.platform_energy_j(*platform_, horizon);
    std::vector<Assignment> accepted = current;
    double accepted_energy = best_energy;

    for (int iter = 0; iter < options.anneal_iterations; ++iter) {
        const double temperature =
            1.0 - static_cast<double>(iter) /
                      static_cast<double>(options.anneal_iterations);
        // Perturb one task: random core it fits, random version.
        std::vector<Assignment> trial = accepted;
        const std::size_t i = rng.below(n);
        std::vector<std::pair<std::size_t, std::size_t>> moves;
        for (std::size_t c = 0; c < platform_->cores.size(); ++c) {
            const auto* versions = graph.tasks[i].versions_for(
                platform_->cores[c].core_class);
            if (versions == nullptr) continue;
            for (std::size_t v = 0; v < versions->size(); ++v)
                moves.emplace_back(c, v);
        }
        if (moves.empty()) continue;
        const auto [core, version] = moves[rng.below(moves.size())];
        trial[i].core = core;
        trial[i].version = version;

        Schedule candidate;
        try {
            candidate = build(graph, trial, options);
        } catch (const std::runtime_error&) {
            continue;
        }
        if (!candidate.feasible) continue;
        const double energy = candidate.platform_energy_j(*platform_, horizon);
        const bool accept =
            energy < accepted_energy ||
            rng.chance(0.1 * temperature);
        if (accept) {
            accepted = trial;
            accepted_energy = energy;
        }
        if (energy < best_energy && candidate.feasible) {
            best = candidate;
            best_energy = energy;
        }
    }
    return best;
}

RtaResult response_time_analysis(const std::vector<PeriodicTask>& tasks) {
    RtaResult result;
    result.response_times.assign(tasks.size(), 0.0);
    result.schedulable = true;

    // Rate-monotonic priority: shorter period = higher priority.
    std::vector<std::size_t> by_priority(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) by_priority[i] = i;
    std::sort(by_priority.begin(), by_priority.end(),
              [&tasks](std::size_t a, std::size_t b) {
                  return tasks[a].period_s < tasks[b].period_s;
              });

    for (std::size_t p = 0; p < by_priority.size(); ++p) {
        const std::size_t i = by_priority[p];
        const double deadline = tasks[i].deadline_s > 0.0
                                    ? tasks[i].deadline_s
                                    : tasks[i].period_s;
        double response = tasks[i].wcet_s;
        for (int iter = 0; iter < 100; ++iter) {
            double interference = 0.0;
            for (std::size_t q = 0; q < p; ++q) {
                const std::size_t j = by_priority[q];
                interference += std::ceil(response / tasks[j].period_s) *
                                tasks[j].wcet_s;
            }
            const double next = tasks[i].wcet_s + interference;
            if (std::abs(next - response) < 1e-12) break;
            response = next;
            if (response > deadline) break;
        }
        result.response_times[i] = response;
        if (response > deadline) result.schedulable = false;
    }
    return result;
}

}  // namespace teamplay::coordination
