// Application model consumed by the coordination layer [13]: a DAG of tasks
// with per-core-class candidate versions (the multi-version task model of
// Roeder et al. [20][21]).
//
// The versions of a task come from the multi-criteria compiler (predictable
// flow) or from the dynamic profiler (complex flow); the scheduler picks one
// version, one core and implicitly one DVFS point per task.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace teamplay::coordination {

/// One candidate implementation of a task on a class of cores.
struct VersionChoice {
    double time_s = 0.0;      ///< budgeted execution time (bound or HWM)
    double energy_j = 0.0;    ///< dynamic energy per execution
    double leakage = 0.0;     ///< security proxy carried for contract checks
    std::size_t opp_index = 0;  ///< DVFS point this version was costed at
    std::string note;         ///< provenance (pass config label, "profiled")
};

struct Task {
    std::string name;
    std::string entry_fn;              ///< IR function implementing the task
    std::vector<std::string> deps;     ///< predecessor task names
    double period_s = 0.0;             ///< 0 = aperiodic / single-shot
    double deadline_s = 0.0;           ///< 0 = inherit the app deadline
    /// Candidate versions per core class ("" key = any core).
    std::map<std::string, std::vector<VersionChoice>> versions;

    [[nodiscard]] bool runs_on(const std::string& core_class) const {
        return versions.contains(core_class) || versions.contains("");
    }
    [[nodiscard]] const std::vector<VersionChoice>* versions_for(
        const std::string& core_class) const {
        auto it = versions.find(core_class);
        if (it != versions.end()) return &it->second;
        it = versions.find("");
        return it != versions.end() ? &it->second : nullptr;
    }
};

struct TaskGraph {
    std::string app_name;
    std::vector<Task> tasks;

    [[nodiscard]] const Task* find(const std::string& name) const;
    [[nodiscard]] Task* find(const std::string& name);

    /// Structural problems (unknown dependencies, cycles, tasks without
    /// versions); empty = well-formed.
    [[nodiscard]] std::vector<std::string> validate() const;

    /// Topological order of task indices; throws std::runtime_error on
    /// cycles.
    [[nodiscard]] std::vector<std::size_t> topological_order() const;

    /// Successor adjacency (index -> indices of dependents).
    [[nodiscard]] std::vector<std::vector<std::size_t>> successors() const;
};

}  // namespace teamplay::coordination
