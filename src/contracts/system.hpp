// Contract checking front-end: turns per-task budgets plus analysed/measured
// evidence into a certificate with verified proof objects.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "contracts/certificate.hpp"
#include "ir/program.hpp"
#include "platform/platform.hpp"

namespace teamplay::contracts {

/// Evidence and budgets for one point of interest (one task).
struct ContractInput {
    std::string poi;       ///< task / POI name
    std::string function;  ///< entry function in `program`
    const ir::Program* program = nullptr;  ///< compiled version to analyse
    const platform::Core* core = nullptr;
    std::size_t opp_index = 0;

    // Budgets; negative = no contract for that property.
    double time_budget_s = -1.0;
    double energy_budget_j = -1.0;
    double leakage_budget = -1.0;

    /// Complex flow: static proofs are impossible, supply measured
    /// estimates instead (admitted via the kMeasured rule and flagged).
    bool measured_only = false;
    double measured_time_s = 0.0;
    double measured_energy_j = 0.0;

    /// Static leakage proxy from the taint analysis (filled by the caller).
    double leakage_proxy = 0.0;
};

/// Check all contracts and assemble the certificate.  Every returned
/// certificate satisfies verify_certificate() by construction.
[[nodiscard]] Certificate check_contracts(
    const std::string& app, const std::string& platform_name,
    const std::vector<ContractInput>& inputs);

}  // namespace teamplay::contracts
