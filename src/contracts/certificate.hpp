// Non-functional Properties Contract System (Brown et al. [15], Barwell &
// Brown [16]).
//
// The paper's contract system proves, with dependent types, that each point
// of interest respects its ETS budgets, and emits a certificate usable as
// certification evidence.  We reproduce the essential structure: every
// contract check carries a *proof object* — a tree of inference-rule
// applications (instruction cost, sequence, alternative, loop, call, unit
// scaling) whose leaves are cost-table facts and whose root is the claimed
// bound.  An independent checker (`verify_certificate`) re-derives every
// node arithmetically, so a certificate cannot claim a bound its own proof
// does not support.  Measured estimates (complex flow) are admitted through
// an explicit kMeasured rule and flagged, mirroring the weaker guarantee the
// paper's dynamic workflow provides.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "platform/platform.hpp"

namespace teamplay::contracts {

enum class Property : std::uint8_t { kTime, kEnergy, kSecurity };

[[nodiscard]] std::string_view property_name(Property property);

enum class ProofRule : std::uint8_t {
    kInstrCost,  ///< leaf: summed cost-table entries of one basic block
    kOverhead,   ///< leaf: structural overhead (branch/loop/call)
    kSeq,        ///< value = sum(children)
    kAlt,        ///< value = max(children)
    kLoop,       ///< value = param * child (param = static loop bound)
    kCall,       ///< value = sum(children): overhead + callee bound
    kScale,      ///< value = param * child (unit/frequency/power scaling)
    kMeasured,   ///< leaf: profiled estimate (weaker guarantee, flagged)
    kStaticLeak, ///< leaf: taint-analysis leakage proxy
};

[[nodiscard]] std::string_view rule_name(ProofRule rule);

struct ProofNode {
    ProofRule rule = ProofRule::kInstrCost;
    double value = 0.0;   ///< bound established by this node
    double param = 1.0;   ///< multiplier for kLoop / kScale
    std::string note;
    std::vector<ProofNode> children;
};

/// Re-derive a proof tree bottom-up; true when every internal node's value
/// follows from its children under its rule (relative tolerance 1e-9).
[[nodiscard]] bool verify_proof(const ProofNode& node);

struct ContractResult {
    std::string poi;       ///< point of interest (task name)
    Property property = Property::kTime;
    double budget = 0.0;
    double analysed = 0.0;
    bool holds = false;
    bool measured_only = false;  ///< bound rests on kMeasured evidence
    ProofNode proof;
};

struct Certificate {
    std::string app;
    std::string platform;
    std::vector<ContractResult> results;

    [[nodiscard]] bool all_hold() const {
        for (const auto& result : results)
            if (!result.holds) return false;
        return true;
    }
    /// True when every holding bound is statically proven (no kMeasured).
    [[nodiscard]] bool fully_static() const {
        for (const auto& result : results)
            if (result.measured_only) return false;
        return true;
    }
    [[nodiscard]] std::string to_text() const;
};

/// Full arithmetic re-check: every proof tree verifies, every result's
/// `analysed` equals its proof root, and `holds` is consistent with the
/// budget comparison.
[[nodiscard]] bool verify_certificate(const Certificate& certificate);

// -- proof construction -------------------------------------------------------

/// Build the WCET proof (in cycles) for a function on a predictable core,
/// mirroring the wcet::Analyser traversal rule by rule.
[[nodiscard]] ProofNode build_time_proof_cycles(const ir::Program& program,
                                                const std::string& function,
                                                const isa::TargetModel& model);

/// Wrap a cycles proof into seconds at an operating point.
[[nodiscard]] ProofNode scale_to_seconds(ProofNode cycles_proof,
                                         double freq_hz);

/// Build the WCEC proof (in joules): dynamic pJ tree scaled by V^2 and 1e-12
/// plus static power times the embedded time proof.
[[nodiscard]] ProofNode build_energy_proof_joules(
    const ir::Program& program, const std::string& function,
    const platform::Core& core, std::size_t opp_index);

/// Leaf proof for a measured estimate.
[[nodiscard]] ProofNode measured_leaf(double value, const std::string& note);

/// Leaf proof for the static leakage proxy.
[[nodiscard]] ProofNode leakage_leaf(double proxy, const std::string& note);

}  // namespace teamplay::contracts
