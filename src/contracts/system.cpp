#include "contracts/system.hpp"

#include <stdexcept>

namespace teamplay::contracts {

Certificate check_contracts(const std::string& app,
                            const std::string& platform_name,
                            const std::vector<ContractInput>& inputs) {
    Certificate certificate;
    certificate.app = app;
    certificate.platform = platform_name;

    for (const auto& input : inputs) {
        if (input.time_budget_s >= 0.0) {
            ContractResult result;
            result.poi = input.poi;
            result.property = Property::kTime;
            result.budget = input.time_budget_s;
            if (input.measured_only) {
                result.proof = measured_leaf(
                    input.measured_time_s,
                    "profiled high-water mark for " + input.function);
                result.measured_only = true;
            } else {
                if (input.program == nullptr || input.core == nullptr)
                    throw std::invalid_argument(
                        "contract input for '" + input.poi +
                        "' lacks program/core for static proof");
                result.proof = scale_to_seconds(
                    build_time_proof_cycles(*input.program, input.function,
                                            input.core->model),
                    input.core->opp(input.opp_index).freq_hz);
            }
            result.analysed = result.proof.value;
            result.holds = result.analysed <= result.budget;
            certificate.results.push_back(std::move(result));
        }

        if (input.energy_budget_j >= 0.0) {
            ContractResult result;
            result.poi = input.poi;
            result.property = Property::kEnergy;
            result.budget = input.energy_budget_j;
            if (input.measured_only) {
                result.proof = measured_leaf(
                    input.measured_energy_j,
                    "profiled high-water mark for " + input.function);
                result.measured_only = true;
            } else {
                result.proof = build_energy_proof_joules(
                    *input.program, input.function, *input.core,
                    input.opp_index);
            }
            result.analysed = result.proof.value;
            result.holds = result.analysed <= result.budget;
            certificate.results.push_back(std::move(result));
        }

        if (input.leakage_budget >= 0.0) {
            ContractResult result;
            result.poi = input.poi;
            result.property = Property::kSecurity;
            result.budget = input.leakage_budget;
            result.proof = leakage_leaf(
                input.leakage_proxy,
                "taint-analysis leakage proxy for " + input.function);
            result.analysed = result.proof.value;
            result.holds = result.analysed <= result.budget;
            certificate.results.push_back(std::move(result));
        }
    }
    return certificate;
}

}  // namespace teamplay::contracts
