#include "contracts/certificate.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "energy/analyser.hpp"
#include "support/units.hpp"

namespace teamplay::contracts {

std::string_view property_name(Property property) {
    switch (property) {
        case Property::kTime: return "time";
        case Property::kEnergy: return "energy";
        case Property::kSecurity: return "security";
    }
    return "?";
}

std::string_view rule_name(ProofRule rule) {
    switch (rule) {
        case ProofRule::kInstrCost: return "instr-cost";
        case ProofRule::kOverhead: return "overhead";
        case ProofRule::kSeq: return "seq";
        case ProofRule::kAlt: return "alt";
        case ProofRule::kLoop: return "loop";
        case ProofRule::kCall: return "call";
        case ProofRule::kScale: return "scale";
        case ProofRule::kMeasured: return "measured";
        case ProofRule::kStaticLeak: return "static-leak";
    }
    return "?";
}

namespace {

bool close(double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a),
                                               std::abs(b)});
}

}  // namespace

bool verify_proof(const ProofNode& node) {
    for (const auto& child : node.children)
        if (!verify_proof(child)) return false;
    switch (node.rule) {
        case ProofRule::kInstrCost:
        case ProofRule::kOverhead:
        case ProofRule::kMeasured:
        case ProofRule::kStaticLeak:
            return node.children.empty() && node.value >= 0.0;
        case ProofRule::kSeq:
        case ProofRule::kCall: {
            double sum = 0.0;
            for (const auto& child : node.children) sum += child.value;
            return close(node.value, sum);
        }
        case ProofRule::kAlt: {
            double best = 0.0;
            for (const auto& child : node.children)
                best = std::max(best, child.value);
            return close(node.value, best);
        }
        case ProofRule::kLoop:
        case ProofRule::kScale: {
            if (node.children.size() != 1) return false;
            return close(node.value, node.param * node.children[0].value);
        }
    }
    return false;
}

std::string Certificate::to_text() const {
    std::ostringstream os;
    os << "=== TeamPlay ETS Certificate ===\n"
       << "application: " << app << "\nplatform:    " << platform << "\n"
       << "verdict:     " << (all_hold() ? "ALL CONTRACTS HOLD" : "VIOLATION")
       << (fully_static() ? " (statically proven)"
                          : " (contains measured evidence)")
       << "\n";
    for (const auto& result : results) {
        const bool time_like = result.property != Property::kSecurity;
        const auto fmt = [&](double v) -> std::string {
            if (result.property == Property::kTime)
                return support::format_time(v);
            if (result.property == Property::kEnergy)
                return support::format_energy(v);
            std::ostringstream tmp;
            tmp << v;
            return tmp.str();
        };
        os << "  [" << (result.holds ? "ok" : "FAIL") << "] " << result.poi
           << "." << property_name(result.property) << ": analysed "
           << fmt(result.analysed) << " vs budget " << fmt(result.budget)
           << (result.measured_only ? " (measured)" : " (proven)") << "\n";
        (void)time_like;
    }
    return os.str();
}

bool verify_certificate(const Certificate& certificate) {
    for (const auto& result : certificate.results) {
        if (!verify_proof(result.proof)) return false;
        if (!(std::abs(result.analysed - result.proof.value) <=
              1e-9 * std::max(1.0, std::abs(result.analysed))))
            return false;
        const bool should_hold = result.analysed <= result.budget;
        if (result.holds != should_hold) return false;
    }
    return true;
}

namespace {

/// Shared traversal for the time proof: value in cycles.
ProofNode time_proof_node(const ir::Program& program, const ir::Node& node,
                          const isa::TargetModel& model) {
    using ir::NodeKind;
    switch (node.kind) {
        case NodeKind::kBlock: {
            ProofNode leaf;
            leaf.rule = ProofRule::kInstrCost;
            for (const auto& instr : node.instrs)
                leaf.value += model.cycles_of(isa::instr_class(instr.op));
            leaf.note = std::to_string(node.instrs.size()) + " instrs";
            return leaf;
        }
        case NodeKind::kSeq: {
            ProofNode seq;
            seq.rule = ProofRule::kSeq;
            for (const auto& child : node.children) {
                seq.children.push_back(
                    time_proof_node(program, *child, model));
                seq.value += seq.children.back().value;
            }
            return seq;
        }
        case NodeKind::kIf: {
            ProofNode overhead;
            overhead.rule = ProofRule::kOverhead;
            overhead.value = model.branch_cycles;
            overhead.note = "branch";

            ProofNode alt;
            alt.rule = ProofRule::kAlt;
            alt.children.push_back(
                time_proof_node(program, *node.then_branch, model));
            if (node.else_branch) {
                alt.children.push_back(
                    time_proof_node(program, *node.else_branch, model));
            } else {
                ProofNode empty;
                empty.rule = ProofRule::kInstrCost;
                empty.note = "empty else";
                alt.children.push_back(empty);
            }
            for (const auto& child : alt.children)
                alt.value = std::max(alt.value, child.value);

            ProofNode seq;
            seq.rule = ProofRule::kSeq;
            seq.value = overhead.value + alt.value;
            seq.children.push_back(std::move(overhead));
            seq.children.push_back(std::move(alt));
            return seq;
        }
        case NodeKind::kLoop: {
            ProofNode overhead;
            overhead.rule = ProofRule::kOverhead;
            overhead.value = model.loop_iter_cycles;
            overhead.note = "loop iteration";

            ProofNode body = time_proof_node(program, *node.body, model);
            ProofNode iteration;
            iteration.rule = ProofRule::kSeq;
            iteration.value = overhead.value + body.value;
            iteration.children.push_back(std::move(overhead));
            iteration.children.push_back(std::move(body));

            ProofNode loop;
            loop.rule = ProofRule::kLoop;
            loop.param = static_cast<double>(node.bound);
            loop.value = loop.param * iteration.value;
            loop.note = "bound=" + std::to_string(node.bound);
            loop.children.push_back(std::move(iteration));
            return loop;
        }
        case NodeKind::kCall: {
            const ir::Function* callee = program.find(node.callee);
            if (callee == nullptr)
                throw std::runtime_error("proof: undefined callee '" +
                                         node.callee + "'");
            ProofNode overhead;
            overhead.rule = ProofRule::kOverhead;
            overhead.value = model.call_cycles;
            overhead.note = "call " + node.callee;
            ProofNode body = time_proof_node(program, *callee->body, model);
            ProofNode call;
            call.rule = ProofRule::kCall;
            call.value = overhead.value + body.value;
            call.note = node.callee;
            call.children.push_back(std::move(overhead));
            call.children.push_back(std::move(body));
            return call;
        }
    }
    return {};
}

/// Shared traversal for the worst-case dynamic energy proof: value in pJ at
/// nominal voltage, matching energy::Analyser's worst case.
ProofNode energy_proof_node(const ir::Program& program, const ir::Node& node,
                            const isa::TargetModel& model) {
    using ir::NodeKind;
    switch (node.kind) {
        case NodeKind::kBlock: {
            ProofNode leaf;
            leaf.rule = ProofRule::kInstrCost;
            for (const auto& instr : node.instrs)
                leaf.value += model.energy_of(isa::instr_class(instr.op)) +
                              model.data_alpha_pj_per_bit *
                                  energy::kWorstHammingBits;
            leaf.note = std::to_string(node.instrs.size()) +
                        " instrs (worst-case operands)";
            return leaf;
        }
        case NodeKind::kSeq: {
            ProofNode seq;
            seq.rule = ProofRule::kSeq;
            for (const auto& child : node.children) {
                seq.children.push_back(
                    energy_proof_node(program, *child, model));
                seq.value += seq.children.back().value;
            }
            return seq;
        }
        case NodeKind::kIf: {
            ProofNode overhead;
            overhead.rule = ProofRule::kOverhead;
            overhead.value = model.branch_energy_pj;
            overhead.note = "branch";
            ProofNode alt;
            alt.rule = ProofRule::kAlt;
            alt.children.push_back(
                energy_proof_node(program, *node.then_branch, model));
            if (node.else_branch) {
                alt.children.push_back(
                    energy_proof_node(program, *node.else_branch, model));
            } else {
                ProofNode empty;
                empty.rule = ProofRule::kInstrCost;
                empty.note = "empty else";
                alt.children.push_back(empty);
            }
            for (const auto& child : alt.children)
                alt.value = std::max(alt.value, child.value);
            ProofNode seq;
            seq.rule = ProofRule::kSeq;
            seq.value = overhead.value + alt.value;
            seq.children.push_back(std::move(overhead));
            seq.children.push_back(std::move(alt));
            return seq;
        }
        case NodeKind::kLoop: {
            ProofNode overhead;
            overhead.rule = ProofRule::kOverhead;
            overhead.value = model.loop_iter_energy_pj;
            overhead.note = "loop iteration";
            ProofNode body = energy_proof_node(program, *node.body, model);
            ProofNode iteration;
            iteration.rule = ProofRule::kSeq;
            iteration.value = overhead.value + body.value;
            iteration.children.push_back(std::move(overhead));
            iteration.children.push_back(std::move(body));
            ProofNode loop;
            loop.rule = ProofRule::kLoop;
            loop.param = static_cast<double>(node.bound);
            loop.value = loop.param * iteration.value;
            loop.note = "bound=" + std::to_string(node.bound);
            loop.children.push_back(std::move(iteration));
            return loop;
        }
        case NodeKind::kCall: {
            const ir::Function* callee = program.find(node.callee);
            if (callee == nullptr)
                throw std::runtime_error("proof: undefined callee '" +
                                         node.callee + "'");
            ProofNode overhead;
            overhead.rule = ProofRule::kOverhead;
            overhead.value = model.call_energy_pj;
            overhead.note = "call " + node.callee;
            ProofNode body = energy_proof_node(program, *callee->body, model);
            ProofNode call;
            call.rule = ProofRule::kCall;
            call.value = overhead.value + body.value;
            call.note = node.callee;
            call.children.push_back(std::move(overhead));
            call.children.push_back(std::move(body));
            return call;
        }
    }
    return {};
}

}  // namespace

ProofNode build_time_proof_cycles(const ir::Program& program,
                                  const std::string& function,
                                  const isa::TargetModel& model) {
    const ir::Function* fn = program.find(function);
    if (fn == nullptr)
        throw std::invalid_argument("proof: undefined function '" + function +
                                    "'");
    if (!model.predictable)
        throw std::invalid_argument(
            "proof: static time proof requires a predictable core");
    return time_proof_node(program, *fn->body, model);
}

ProofNode scale_to_seconds(ProofNode cycles_proof, double freq_hz) {
    ProofNode root;
    root.rule = ProofRule::kScale;
    root.param = 1.0 / freq_hz;
    root.value = root.param * cycles_proof.value;
    root.note = "cycles -> seconds at " + support::format_frequency(freq_hz);
    root.children.push_back(std::move(cycles_proof));
    return root;
}

ProofNode build_energy_proof_joules(const ir::Program& program,
                                    const std::string& function,
                                    const platform::Core& core,
                                    std::size_t opp_index) {
    const auto& point = core.opp(opp_index);

    ProofNode dynamic_pj =
        energy_proof_node(program, *program.find(function)->body, core.model);
    ProofNode dynamic_j;
    dynamic_j.rule = ProofRule::kScale;
    dynamic_j.param = core.energy_scale(point) * 1e-12;
    dynamic_j.value = dynamic_j.param * dynamic_pj.value;
    dynamic_j.note = "pJ -> J with V^2 scaling at " +
                     std::to_string(point.voltage) + " V";
    dynamic_j.children.push_back(std::move(dynamic_pj));

    ProofNode time_s = scale_to_seconds(
        build_time_proof_cycles(program, function, core.model),
        point.freq_hz);
    ProofNode static_j;
    static_j.rule = ProofRule::kScale;
    static_j.param = point.static_power_w;
    static_j.value = static_j.param * time_s.value;
    static_j.note = "static power x WCET";
    static_j.children.push_back(std::move(time_s));

    ProofNode total;
    total.rule = ProofRule::kSeq;
    total.value = dynamic_j.value + static_j.value;
    total.note = "dynamic + static";
    total.children.push_back(std::move(dynamic_j));
    total.children.push_back(std::move(static_j));
    return total;
}

ProofNode measured_leaf(double value, const std::string& note) {
    ProofNode leaf;
    leaf.rule = ProofRule::kMeasured;
    leaf.value = value;
    leaf.note = note;
    return leaf;
}

ProofNode leakage_leaf(double proxy, const std::string& note) {
    ProofNode leaf;
    leaf.rule = ProofRule::kStaticLeak;
    leaf.value = proxy;
    leaf.note = note;
    return leaf;
}

}  // namespace teamplay::contracts
