// COTS platform descriptions (cores, DVFS operating points, power budget).
//
// These stand in for the boards the paper evaluates on: the Nucleo
// STM32F091RC, the camera-pill M0+FPGA, the GR712RC LEON3FT, the Apalis TK1,
// and the Jetson TX2 / Nano.  A platform is "predictable" exactly when all
// its cores have statically exact instruction timing (Sec. II-A), which
// selects between the paper's two workflows.
#pragma once

#include <string>
#include <vector>

#include "isa/target_model.hpp"

namespace teamplay::platform {

/// One DVFS operating point of a core.
struct OperatingPoint {
    double freq_hz = 0.0;
    double voltage = 0.0;
    /// Core-level static (leakage) power drawn while the core is powered at
    /// this point, busy or idle.
    double static_power_w = 0.0;
};

/// One processing element.
struct Core {
    std::string name;
    isa::TargetModel model;
    std::vector<OperatingPoint> opps;  ///< sorted ascending by frequency
    /// Identifier shared by identical cores; tasks may be constrained to a
    /// core class ("gpu", "big", "little", "fpga", ...).
    std::string core_class;

    [[nodiscard]] const OperatingPoint& opp(std::size_t index) const {
        return opps.at(index);
    }
    [[nodiscard]] std::size_t max_opp() const { return opps.size() - 1; }

    /// Dynamic-energy scale factor at an operating point relative to the
    /// model's nominal voltage: E_dyn ~ V^2 (classic CMOS scaling).
    [[nodiscard]] double energy_scale(const OperatingPoint& point) const {
        const double ratio = point.voltage / model.nominal_voltage;
        return ratio * ratio;
    }
};

/// A whole board.
struct Platform {
    std::string name;
    std::vector<Core> cores;
    /// Always-on board power (regulators, memories, radios) independent of
    /// core activity; what the schedule cannot optimise away.
    double base_power_w = 0.0;

    /// Predictable iff every core's timing is statically exact.
    [[nodiscard]] bool predictable() const {
        for (const auto& core : cores)
            if (!core.model.predictable) return false;
        return !cores.empty();
    }

    [[nodiscard]] const Core* find_core(const std::string& core_name) const {
        for (const auto& core : cores)
            if (core.name == core_name) return &core;
        return nullptr;
    }

    /// Indices of cores matching a class; all cores when `cls` is empty.
    [[nodiscard]] std::vector<std::size_t> cores_of_class(
        const std::string& cls) const;
};

// -- factories for the paper's boards ---------------------------------------

/// Nucleo STM32F091RC: single Cortex-M0, three DVFS points (8/24/48 MHz).
[[nodiscard]] Platform nucleo_f091();

/// Camera pill: single Cortex-M0 plus low-power FPGA image co-processor.
[[nodiscard]] Platform camera_pill_board();

/// GR712RC: dual LEON3FT at 50/80/100 MHz, rad-hard power profile.
[[nodiscard]] Platform gr712rc();

/// Apalis TK1: 4x Cortex-A15 + Kepler GPU aggregate.
[[nodiscard]] Platform apalis_tk1();

/// Jetson TX2: 2x Denver2 + 4x Cortex-A57 + Pascal GPU aggregate.
[[nodiscard]] Platform jetson_tx2();

/// Jetson Nano: 4x Cortex-A57 + Maxwell GPU aggregate.
[[nodiscard]] Platform jetson_nano();

/// Look up a platform factory by name ("nucleo-f091", "camera-pill",
/// "gr712rc", "apalis-tk1", "jetson-tx2", "jetson-nano").  Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] Platform by_name(const std::string& name);

}  // namespace teamplay::platform
