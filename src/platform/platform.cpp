#include "platform/platform.hpp"

#include <stdexcept>

namespace teamplay::platform {

std::vector<std::size_t> Platform::cores_of_class(
    const std::string& cls) const {
    std::vector<std::size_t> result;
    for (std::size_t i = 0; i < cores.size(); ++i)
        if (cls.empty() || cores[i].core_class == cls) result.push_back(i);
    return result;
}

namespace {

Core make_core(std::string name, isa::TargetModel model,
               std::vector<OperatingPoint> opps, std::string core_class) {
    Core core;
    core.name = std::move(name);
    core.model = std::move(model);
    core.opps = std::move(opps);
    core.core_class = std::move(core_class);
    return core;
}

}  // namespace

Platform nucleo_f091() {
    Platform p;
    p.name = "nucleo-f091";
    p.base_power_w = 0.012;
    p.cores.push_back(make_core(
        "m0", isa::cortex_m0_model(),
        {{8e6, 1.5, 0.0009}, {24e6, 1.72, 0.0032}, {48e6, 1.8, 0.0055}},
        "mcu"));
    return p;
}

Platform camera_pill_board() {
    Platform p;
    p.name = "camera-pill";
    // A swallowable capsule: tiny base draw (radio idle + sensor), one M0,
    // one fixed-function FPGA co-processor for the image kernels.
    p.base_power_w = 0.004;
    p.cores.push_back(make_core(
        "m0", isa::cortex_m0_model(),
        {{8e6, 1.5, 0.0009}, {24e6, 1.72, 0.0032}, {48e6, 1.8, 0.0055}},
        "mcu"));
    p.cores.push_back(make_core("fpga", isa::pill_fpga_model(),
                                {{24e6, 1.2, 0.0009}}, "fpga"));
    return p;
}

Platform gr712rc() {
    Platform p;
    p.name = "gr712rc";
    // Rad-hard board: the always-on draw dominates, which is exactly why
    // race-to-idle at 100 MHz loses to running at the energy sweet spot.
    p.base_power_w = 0.9;
    const std::vector<OperatingPoint> opps = {
        {50e6, 1.5, 0.16}, {80e6, 1.65, 0.22}, {100e6, 1.8, 0.3}};
    p.cores.push_back(
        make_core("leon3-0", isa::leon3_model(), opps, "leon3"));
    p.cores.push_back(
        make_core("leon3-1", isa::leon3_model(), opps, "leon3"));
    return p;
}

Platform apalis_tk1() {
    Platform p;
    p.name = "apalis-tk1";
    p.base_power_w = 1.6;
    const std::vector<OperatingPoint> a15_opps = {{564e6, 0.82, 0.14},
                                                  {1092e6, 0.92, 0.26},
                                                  {1836e6, 1.1, 0.55},
                                                  {2218e6, 1.22, 0.85}};
    for (int i = 0; i < 4; ++i)
        p.cores.push_back(make_core("a15-" + std::to_string(i),
                                    isa::cortex_a15_model(), a15_opps,
                                    "big"));
    p.cores.push_back(make_core(
        "gk20a", isa::gpu_sm_model(),
        {{396e6, 0.85, 0.35}, {648e6, 0.95, 0.6}, {852e6, 1.05, 0.95}},
        "gpu"));
    return p;
}

Platform jetson_tx2() {
    Platform p;
    p.name = "jetson-tx2";
    p.base_power_w = 1.9;
    const std::vector<OperatingPoint> a57_opps = {{499e6, 0.8, 0.1},
                                                  {1113e6, 0.9, 0.22},
                                                  {1574e6, 1.0, 0.38},
                                                  {2035e6, 1.12, 0.62}};
    const std::vector<OperatingPoint> denver_opps = {{499e6, 0.8, 0.12},
                                                     {1113e6, 0.9, 0.26},
                                                     {1574e6, 1.0, 0.44},
                                                     {2035e6, 1.12, 0.7}};
    for (int i = 0; i < 2; ++i)
        p.cores.push_back(make_core("denver-" + std::to_string(i),
                                    isa::denver2_model(), denver_opps,
                                    "big"));
    for (int i = 0; i < 4; ++i)
        p.cores.push_back(make_core("a57-" + std::to_string(i),
                                    isa::cortex_a57_model(), a57_opps,
                                    "little"));
    p.cores.push_back(make_core(
        "gp10b", isa::gpu_sm_model(),
        {{510e6, 0.85, 0.4}, {1122e6, 1.0, 0.9}, {1300e6, 1.08, 1.25}},
        "gpu"));
    return p;
}

Platform jetson_nano() {
    Platform p;
    p.name = "jetson-nano";
    p.base_power_w = 1.2;
    const std::vector<OperatingPoint> a57_opps = {{403e6, 0.8, 0.08},
                                                  {825e6, 0.9, 0.16},
                                                  {1224e6, 1.0, 0.28},
                                                  {1479e6, 1.08, 0.4}};
    for (int i = 0; i < 4; ++i)
        p.cores.push_back(make_core("a57-" + std::to_string(i),
                                    isa::cortex_a57_model(), a57_opps,
                                    "big"));
    p.cores.push_back(make_core(
        "gm20b", isa::gpu_sm_model(),
        {{307e6, 0.82, 0.25}, {614e6, 0.92, 0.5}, {921e6, 1.02, 0.8}},
        "gpu"));
    return p;
}

Platform by_name(const std::string& name) {
    if (name == "nucleo-f091") return nucleo_f091();
    if (name == "camera-pill") return camera_pill_board();
    if (name == "gr712rc") return gr712rc();
    if (name == "apalis-tk1") return apalis_tk1();
    if (name == "jetson-tx2") return jetson_tx2();
    if (name == "jetson-nano") return jetson_nano();
    throw std::invalid_argument("unknown platform: " + name);
}

}  // namespace teamplay::platform
