#include "ir/printer.hpp"

#include <sstream>

namespace teamplay::ir {

namespace {

void print_reg(std::ostream& os, Reg r) {
    if (r == kNoReg)
        os << "_";
    else
        os << "r" << r;
}

void print_node(std::ostream& os, const Node& node, int depth) {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (node.kind) {
        case NodeKind::kBlock:
            for (const auto& instr : node.instrs)
                os << pad << to_string(instr) << "\n";
            break;
        case NodeKind::kSeq:
            for (const auto& child : node.children)
                print_node(os, *child, depth);
            break;
        case NodeKind::kIf:
            os << pad << "if ";
            print_reg(os, node.cond);
            os << " {\n";
            print_node(os, *node.then_branch, depth + 1);
            if (node.else_branch) {
                os << pad << "} else {\n";
                print_node(os, *node.else_branch, depth + 1);
            }
            os << pad << "}\n";
            break;
        case NodeKind::kLoop:
            os << pad << "loop ";
            print_reg(os, node.index_reg);
            if (node.trip_reg != kNoReg) {
                os << " trip=";
                print_reg(os, node.trip_reg);
            } else {
                os << " trip=" << node.trip;
            }
            os << " bound=" << node.bound << " {\n";
            print_node(os, *node.body, depth + 1);
            os << pad << "}\n";
            break;
        case NodeKind::kCall:
            os << pad;
            print_reg(os, node.ret);
            os << " = call " << node.callee << "(";
            for (std::size_t i = 0; i < node.args.size(); ++i) {
                if (i != 0) os << ", ";
                print_reg(os, node.args[i]);
            }
            os << ")\n";
            break;
    }
}

}  // namespace

std::string to_string(const Instr& instr) {
    std::ostringstream os;
    switch (instr.op) {
        case Opcode::kNop:
            os << "nop";
            break;
        case Opcode::kMovImm:
            print_reg(os, instr.dst);
            os << " = " << instr.imm;
            break;
        case Opcode::kStore:
            os << "mem[";
            print_reg(os, instr.a);
            os << "+" << instr.imm << "] = ";
            print_reg(os, instr.b);
            break;
        case Opcode::kLoad:
            print_reg(os, instr.dst);
            os << " = mem[";
            print_reg(os, instr.a);
            os << "+" << instr.imm << "]";
            break;
        case Opcode::kSelect:
            print_reg(os, instr.dst);
            os << " = select ";
            print_reg(os, instr.c);
            os << " ? ";
            print_reg(os, instr.a);
            os << " : ";
            print_reg(os, instr.b);
            break;
        default:
            print_reg(os, instr.dst);
            os << " = " << opcode_name(instr.op) << " ";
            print_reg(os, instr.a);
            if (reads_b(instr.op)) {
                os << ", ";
                print_reg(os, instr.b);
            }
            break;
    }
    if (instr.secret) os << "  ; secret";
    return os.str();
}

std::string to_string(const Function& fn) {
    std::ostringstream os;
    os << "func " << fn.name << "(params=" << fn.param_count
       << ") regs=" << fn.reg_count << " ret=";
    print_reg(os, fn.ret_reg);
    os << " {\n";
    if (fn.body) print_node(os, *fn.body, 1);
    os << "}\n";
    return os.str();
}

std::string to_string(const Program& program) {
    std::ostringstream os;
    os << "program memory_words=" << program.memory_words << "\n";
    for (const auto& [name, fn] : program.functions) os << to_string(fn);
    return os.str();
}

}  // namespace teamplay::ir
