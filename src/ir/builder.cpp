#include "ir/builder.hpp"

#include <stdexcept>
#include <utility>

namespace teamplay::ir {

FunctionBuilder::FunctionBuilder(std::string name, int param_count)
    : name_(std::move(name)), param_count_(param_count),
      next_reg_(param_count) {
    frames_.push_back(Frame{});
}

Reg FunctionBuilder::param(int i) const {
    if (i < 0 || i >= param_count_)
        throw std::out_of_range("FunctionBuilder::param: index out of range");
    return i;
}

Reg FunctionBuilder::fresh() { return next_reg_++; }

void FunctionBuilder::emit(Instr instr) {
    frames_.back().pending.push_back(instr);
}

void FunctionBuilder::flush() {
    Frame& frame = frames_.back();
    if (!frame.pending.empty()) {
        frame.nodes.push_back(Node::block(std::move(frame.pending)));
        frame.pending.clear();
    }
}

NodePtr FunctionBuilder::wrap(std::vector<NodePtr> nodes) {
    return Node::seq(std::move(nodes));
}

Reg FunctionBuilder::emit_binop(Opcode op, Reg a, Reg b) {
    const Reg dst = fresh();
    emit(Instr{.op = op, .dst = dst, .a = a, .b = b});
    return dst;
}

Reg FunctionBuilder::emit_unop(Opcode op, Reg a) {
    const Reg dst = fresh();
    emit(Instr{.op = op, .dst = dst, .a = a});
    return dst;
}

Reg FunctionBuilder::imm(Word value) {
    const Reg dst = fresh();
    emit(Instr{.op = Opcode::kMovImm, .dst = dst, .imm = value});
    return dst;
}

Reg FunctionBuilder::mov(Reg src) { return emit_unop(Opcode::kMov, src); }

void FunctionBuilder::assign(Reg dst, Reg src) {
    emit(Instr{.op = Opcode::kMov, .dst = dst, .a = src});
}

Reg FunctionBuilder::secret(Reg src) {
    const Reg dst = fresh();
    emit(Instr{.op = Opcode::kMov, .dst = dst, .a = src, .secret = true});
    return dst;
}

Reg FunctionBuilder::secret_imm(Word value) {
    const Reg dst = fresh();
    emit(Instr{.op = Opcode::kMovImm, .dst = dst, .imm = value,
               .secret = true});
    return dst;
}

Reg FunctionBuilder::add(Reg a, Reg b) { return emit_binop(Opcode::kAdd, a, b); }
Reg FunctionBuilder::sub(Reg a, Reg b) { return emit_binop(Opcode::kSub, a, b); }
Reg FunctionBuilder::mul(Reg a, Reg b) { return emit_binop(Opcode::kMul, a, b); }
Reg FunctionBuilder::div(Reg a, Reg b) { return emit_binop(Opcode::kDiv, a, b); }
Reg FunctionBuilder::rem(Reg a, Reg b) { return emit_binop(Opcode::kRem, a, b); }
Reg FunctionBuilder::band(Reg a, Reg b) { return emit_binop(Opcode::kAnd, a, b); }
Reg FunctionBuilder::bor(Reg a, Reg b) { return emit_binop(Opcode::kOr, a, b); }
Reg FunctionBuilder::bxor(Reg a, Reg b) { return emit_binop(Opcode::kXor, a, b); }
Reg FunctionBuilder::shl(Reg a, Reg b) { return emit_binop(Opcode::kShl, a, b); }
Reg FunctionBuilder::shr(Reg a, Reg b) { return emit_binop(Opcode::kShr, a, b); }
Reg FunctionBuilder::bnot(Reg a) { return emit_unop(Opcode::kNot, a); }
Reg FunctionBuilder::neg(Reg a) { return emit_unop(Opcode::kNeg, a); }
Reg FunctionBuilder::cmp_eq(Reg a, Reg b) { return emit_binop(Opcode::kCmpEq, a, b); }
Reg FunctionBuilder::cmp_ne(Reg a, Reg b) { return emit_binop(Opcode::kCmpNe, a, b); }
Reg FunctionBuilder::cmp_lt(Reg a, Reg b) { return emit_binop(Opcode::kCmpLt, a, b); }
Reg FunctionBuilder::cmp_le(Reg a, Reg b) { return emit_binop(Opcode::kCmpLe, a, b); }
Reg FunctionBuilder::cmp_gt(Reg a, Reg b) { return emit_binop(Opcode::kCmpGt, a, b); }
Reg FunctionBuilder::cmp_ge(Reg a, Reg b) { return emit_binop(Opcode::kCmpGe, a, b); }
Reg FunctionBuilder::smin(Reg a, Reg b) { return emit_binop(Opcode::kMin, a, b); }
Reg FunctionBuilder::smax(Reg a, Reg b) { return emit_binop(Opcode::kMax, a, b); }
Reg FunctionBuilder::sabs(Reg a) { return emit_unop(Opcode::kAbs, a); }
Reg FunctionBuilder::popcnt(Reg a) { return emit_unop(Opcode::kPopcnt, a); }

Reg FunctionBuilder::add_imm(Reg a, Word v) { return add(a, imm(v)); }
Reg FunctionBuilder::sub_imm(Reg a, Word v) { return sub(a, imm(v)); }
Reg FunctionBuilder::mul_imm(Reg a, Word v) { return mul(a, imm(v)); }
Reg FunctionBuilder::and_imm(Reg a, Word v) { return band(a, imm(v)); }
Reg FunctionBuilder::xor_imm(Reg a, Word v) { return bxor(a, imm(v)); }
Reg FunctionBuilder::shl_imm(Reg a, Word v) { return shl(a, imm(v)); }
Reg FunctionBuilder::shr_imm(Reg a, Word v) { return shr(a, imm(v)); }

Reg FunctionBuilder::load(Reg addr, Word offset) {
    const Reg dst = fresh();
    emit(Instr{.op = Opcode::kLoad, .dst = dst, .a = addr, .imm = offset});
    return dst;
}

void FunctionBuilder::store(Reg addr, Reg value, Word offset) {
    emit(Instr{.op = Opcode::kStore, .a = addr, .b = value, .imm = offset});
}

Reg FunctionBuilder::select(Reg cond, Reg a, Reg b) {
    const Reg dst = fresh();
    emit(Instr{.op = Opcode::kSelect, .dst = dst, .a = a, .b = b, .c = cond});
    return dst;
}

void FunctionBuilder::nop() { emit(Instr{.op = Opcode::kNop}); }

Reg FunctionBuilder::loop_begin(std::int64_t trip, std::int64_t bound) {
    if (trip < 0) throw std::invalid_argument("loop trip must be >= 0");
    if (bound < 0) bound = trip;
    if (bound < trip)
        throw std::invalid_argument("loop bound must be >= trip count");
    flush();
    Frame frame;
    frame.kind = FrameKind::kLoop;
    frame.trip = trip;
    frame.bound = bound;
    frame.index_reg = fresh();
    frames_.push_back(std::move(frame));
    return frames_.back().index_reg;
}

Reg FunctionBuilder::dynamic_loop_begin(Reg trip_reg, std::int64_t bound) {
    if (bound <= 0)
        throw std::invalid_argument("dynamic loop needs a positive bound");
    flush();
    Frame frame;
    frame.kind = FrameKind::kLoop;
    frame.trip_reg = trip_reg;
    frame.bound = bound;
    frame.index_reg = fresh();
    frames_.push_back(std::move(frame));
    return frames_.back().index_reg;
}

void FunctionBuilder::loop_end() {
    flush();
    if (frames_.size() < 2 || frames_.back().kind != FrameKind::kLoop)
        throw std::logic_error("loop_end without matching loop_begin");
    Frame frame = std::move(frames_.back());
    frames_.pop_back();
    NodePtr body = wrap(std::move(frame.nodes));
    NodePtr node =
        frame.trip_reg != kNoReg
            ? Node::dynamic_loop(frame.trip_reg, frame.bound, frame.index_reg,
                                 std::move(body))
            : Node::loop(frame.trip, frame.bound, frame.index_reg,
                         std::move(body));
    frames_.back().nodes.push_back(std::move(node));
}

void FunctionBuilder::if_begin(Reg cond) {
    flush();
    Frame frame;
    frame.kind = FrameKind::kThen;
    frame.cond = cond;
    frames_.push_back(std::move(frame));
}

void FunctionBuilder::if_else() {
    flush();
    if (frames_.size() < 2 || frames_.back().kind != FrameKind::kThen)
        throw std::logic_error("if_else without matching if_begin");
    Frame& frame = frames_.back();
    frame.kind = FrameKind::kElse;
    frame.then_nodes = std::move(frame.nodes);
    frame.nodes.clear();
}

void FunctionBuilder::if_end() {
    flush();
    if (frames_.size() < 2 || (frames_.back().kind != FrameKind::kThen &&
                               frames_.back().kind != FrameKind::kElse))
        throw std::logic_error("if_end without matching if_begin");
    Frame frame = std::move(frames_.back());
    frames_.pop_back();
    NodePtr then_branch;
    NodePtr else_branch;
    if (frame.kind == FrameKind::kThen) {
        then_branch = wrap(std::move(frame.nodes));
    } else {
        then_branch = wrap(std::move(frame.then_nodes));
        else_branch = wrap(std::move(frame.nodes));
    }
    frames_.back().nodes.push_back(Node::make_if(
        frame.cond, std::move(then_branch), std::move(else_branch)));
}

Reg FunctionBuilder::call(const std::string& callee, std::vector<Reg> args) {
    flush();
    const Reg dst = fresh();
    frames_.back().nodes.push_back(Node::call(callee, std::move(args), dst));
    return dst;
}

void FunctionBuilder::ret(Reg value) { ret_reg_ = value; }

Function FunctionBuilder::build() {
    if (built_) throw std::logic_error("FunctionBuilder::build called twice");
    if (frames_.size() != 1)
        throw std::logic_error("build with open control structures");
    built_ = true;
    flush();
    Function fn;
    fn.name = name_;
    fn.param_count = param_count_;
    fn.reg_count = next_reg_;
    fn.ret_reg = ret_reg_;
    fn.body = wrap(std::move(frames_.back().nodes));
    frames_.clear();
    return fn;
}

}  // namespace teamplay::ir
