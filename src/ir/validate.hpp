// Structural validation of IR programs.
//
// Catches authoring and transformation bugs early: malformed trees, undefined
// callees, recursion (disallowed so that WCET composition terminates),
// loop bounds below trip counts, register ids out of range.
#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace teamplay::ir {

/// All problems found; empty means the program is well-formed.
[[nodiscard]] std::vector<std::string> validate(const Program& program);

/// Validate a single function against a program (for callee resolution).
[[nodiscard]] std::vector<std::string> validate_function(
    const Program& program, const Function& fn);

/// Throwing convenience used by the workflow drivers.
void validate_or_throw(const Program& program);

}  // namespace teamplay::ir
