#include "ir/fingerprint.hpp"

#include <deque>
#include <map>
#include <set>
#include <string_view>

namespace teamplay::ir {

namespace {

/// FNV-1a accumulator (same construction as core::Fingerprint; duplicated
/// here because the IR layer sits below core in the dependency order).
struct Hasher {
    std::uint64_t value = 14695981039346656037ULL;

    void mix(std::uint64_t word) {
        for (int byte = 0; byte < 8; ++byte) {
            value ^= (word >> (8 * byte)) & 0xFFU;
            value *= 1099511628211ULL;
        }
    }
    void mix(std::string_view text) {
        for (const char c : text) {
            value ^= static_cast<unsigned char>(c);
            value *= 1099511628211ULL;
        }
        mix(static_cast<std::uint64_t>(text.size()));
    }
};

/// Sentinel mixed for kNoReg so "no operand" never collides with a real
/// canonical register id.
constexpr std::uint64_t kNoRegCanon = 0xFFFFFFFFFFFFFFFFULL;

/// Canonical register numbering for one function: parameters are pinned to
/// their positional ids (renaming them changes meaning), every other
/// register is renumbered by first encounter along the fixed traversal
/// order below, which erases alpha-renaming of temporaries.
class RegCanon {
public:
    explicit RegCanon(int param_count)
        : param_count_(param_count), next_(param_count) {}

    [[nodiscard]] std::uint64_t canon(Reg reg) {
        if (reg == kNoReg) return kNoRegCanon;
        if (reg < param_count_)
            return static_cast<std::uint64_t>(reg);
        const auto [it, inserted] = map_.try_emplace(reg, next_);
        if (inserted) ++next_;
        return static_cast<std::uint64_t>(it->second);
    }

private:
    int param_count_;
    Reg next_;
    std::map<Reg, Reg> map_;
};

/// Discovery state: callees are queued in first-encounter order, which is
/// itself canonical because it follows the fixed traversal.
struct Discovery {
    std::deque<std::string> pending;
    std::set<std::string> seen;
};

void hash_node(const Node& node, Hasher& hash, RegCanon& regs,
               Discovery& discovery) {
    hash.mix(static_cast<std::uint64_t>(node.kind));
    switch (node.kind) {
        case NodeKind::kBlock:
            hash.mix(node.instrs.size());
            for (const auto& instr : node.instrs) {
                hash.mix(static_cast<std::uint64_t>(instr.op));
                hash.mix(regs.canon(instr.dst));
                hash.mix(regs.canon(instr.a));
                hash.mix(regs.canon(instr.b));
                hash.mix(regs.canon(instr.c));
                hash.mix(static_cast<std::uint64_t>(instr.imm));
                hash.mix(static_cast<std::uint64_t>(instr.secret ? 1 : 0));
            }
            break;
        case NodeKind::kSeq:
            hash.mix(node.children.size());
            for (const auto& child : node.children)
                hash_node(*child, hash, regs, discovery);
            break;
        case NodeKind::kIf:
            hash.mix(regs.canon(node.cond));
            hash.mix(static_cast<std::uint64_t>(
                (node.then_branch ? 1 : 0) | (node.else_branch ? 2 : 0)));
            if (node.then_branch)
                hash_node(*node.then_branch, hash, regs, discovery);
            if (node.else_branch)
                hash_node(*node.else_branch, hash, regs, discovery);
            break;
        case NodeKind::kLoop:
            hash.mix(static_cast<std::uint64_t>(node.trip));
            hash.mix(static_cast<std::uint64_t>(node.bound));
            hash.mix(regs.canon(node.trip_reg));
            hash.mix(regs.canon(node.index_reg));
            hash.mix(static_cast<std::uint64_t>(node.stride));
            hash.mix(static_cast<std::uint64_t>(node.body ? 1 : 0));
            if (node.body) hash_node(*node.body, hash, regs, discovery);
            break;
        case NodeKind::kCall:
            // Callee names are load-bearing (certificate proofs print
            // "call <name>"), so they are hashed literally, not by
            // canonical id: kernels that differ only in a helper's name
            // must not share cached analysis results.
            hash.mix(node.callee);
            hash.mix(node.args.size());
            for (const Reg arg : node.args) hash.mix(regs.canon(arg));
            hash.mix(regs.canon(node.ret));
            if (discovery.seen.insert(node.callee).second)
                discovery.pending.push_back(node.callee);
            break;
    }
}

void hash_function(const Function& fn, Hasher& hash, Discovery& discovery) {
    hash.mix(0xF17D0001ULL);  // function boundary tag
    hash.mix(static_cast<std::uint64_t>(fn.param_count));
    RegCanon regs(fn.param_count);
    hash.mix(static_cast<std::uint64_t>(fn.body ? 1 : 0));
    if (fn.body) hash_node(*fn.body, hash, regs, discovery);
    hash.mix(regs.canon(fn.ret_reg));
}

}  // namespace

std::uint64_t structural_fingerprint(const Program& program,
                                     const std::string& entry) {
    Hasher hash;
    hash.mix(0x53464701ULL);  // domain tag: "SFG" v1
    hash.mix(program.memory_words);

    const Function* entry_fn = program.find(entry);
    if (entry_fn == nullptr) {
        // Distinct "unresolved" domain: callers may build cache keys before
        // existence is checked; the analysis itself reports the error.
        hash.mix(0xBADE27F1ULL);
        hash.mix(entry);
        return hash.value;
    }

    // The entry's own name is *not* hashed (relabelled clones collide);
    // callees are hashed by name at their call sites and their bodies
    // follow in first-encounter order, which the fixed traversal makes
    // canonical.
    Discovery discovery;
    discovery.seen.insert(entry);
    hash_function(*entry_fn, hash, discovery);
    while (!discovery.pending.empty()) {
        const std::string name = std::move(discovery.pending.front());
        discovery.pending.pop_front();
        const Function* fn = program.find(name);
        // A call to a function the program does not define: the name was
        // already mixed at the call site; validation rejects the program
        // downstream.
        if (fn == nullptr) continue;
        hash_function(*fn, hash, discovery);
    }
    return hash.value;
}

}  // namespace teamplay::ir
