#include "ir/program.hpp"

namespace teamplay::ir {

NodePtr Node::block(std::vector<Instr> instrs) {
    auto node = std::make_unique<Node>();
    node->kind = NodeKind::kBlock;
    node->instrs = std::move(instrs);
    return node;
}

NodePtr Node::seq(std::vector<NodePtr> children) {
    auto node = std::make_unique<Node>();
    node->kind = NodeKind::kSeq;
    node->children = std::move(children);
    return node;
}

NodePtr Node::make_if(Reg cond, NodePtr then_branch, NodePtr else_branch) {
    auto node = std::make_unique<Node>();
    node->kind = NodeKind::kIf;
    node->cond = cond;
    node->then_branch = std::move(then_branch);
    node->else_branch = std::move(else_branch);
    return node;
}

NodePtr Node::loop(std::int64_t trip, std::int64_t bound, Reg index_reg,
                   NodePtr body) {
    auto node = std::make_unique<Node>();
    node->kind = NodeKind::kLoop;
    node->trip = trip;
    node->bound = bound;
    node->index_reg = index_reg;
    node->body = std::move(body);
    return node;
}

NodePtr Node::dynamic_loop(Reg trip_reg, std::int64_t bound, Reg index_reg,
                           NodePtr body) {
    auto node = std::make_unique<Node>();
    node->kind = NodeKind::kLoop;
    node->trip_reg = trip_reg;
    node->bound = bound;
    node->index_reg = index_reg;
    node->body = std::move(body);
    return node;
}

NodePtr Node::call(std::string callee, std::vector<Reg> args, Reg ret) {
    auto node = std::make_unique<Node>();
    node->kind = NodeKind::kCall;
    node->callee = std::move(callee);
    node->args = std::move(args);
    node->ret = ret;
    return node;
}

NodePtr Node::clone() const {
    auto copy = std::make_unique<Node>();
    copy->kind = kind;
    copy->instrs = instrs;
    copy->children.reserve(children.size());
    for (const auto& child : children) copy->children.push_back(child->clone());
    copy->cond = cond;
    if (then_branch) copy->then_branch = then_branch->clone();
    if (else_branch) copy->else_branch = else_branch->clone();
    if (body) copy->body = body->clone();
    copy->trip = trip;
    copy->bound = bound;
    copy->trip_reg = trip_reg;
    copy->index_reg = index_reg;
    copy->stride = stride;
    copy->callee = callee;
    copy->args = args;
    copy->ret = ret;
    return copy;
}

}  // namespace teamplay::ir
