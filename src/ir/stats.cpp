#include "ir/stats.hpp"

#include <algorithm>

namespace teamplay::ir {

namespace {

void walk(const Program* program, const Node& node, std::int64_t weight,
          int depth, TreeStats& stats) {
    switch (node.kind) {
        case NodeKind::kBlock:
            for (const auto& instr : node.instrs) {
                ++stats.static_instrs;
                stats.weighted_instrs += weight;
                ++stats.per_opcode[static_cast<std::size_t>(instr.op)];
                if (instr.secret) ++stats.secret_sources;
            }
            break;
        case NodeKind::kSeq:
            for (const auto& child : node.children)
                walk(program, *child, weight, depth, stats);
            break;
        case NodeKind::kIf:
            ++stats.branches;
            walk(program, *node.then_branch, weight, depth, stats);
            if (node.else_branch)
                walk(program, *node.else_branch, weight, depth, stats);
            break;
        case NodeKind::kLoop: {
            ++stats.loops;
            stats.max_loop_depth = std::max(stats.max_loop_depth, depth + 1);
            const std::int64_t trips =
                node.trip_reg != kNoReg ? node.bound : node.trip;
            walk(program, *node.body, weight * std::max<std::int64_t>(trips, 0),
                 depth + 1, stats);
            break;
        }
        case NodeKind::kCall: {
            ++stats.calls;
            if (program != nullptr) {
                const Function* callee = program->find(node.callee);
                if (callee != nullptr && callee->body)
                    walk(program, *callee->body, weight, depth, stats);
            }
            break;
        }
    }
}

}  // namespace

TreeStats analyze(const Function& fn) {
    TreeStats stats;
    if (fn.body) walk(nullptr, *fn.body, 1, 0, stats);
    return stats;
}

TreeStats analyze_expanded(const Program& program, const Function& fn) {
    TreeStats stats;
    if (fn.body) walk(&program, *fn.body, 1, 0, stats);
    return stats;
}

}  // namespace teamplay::ir
