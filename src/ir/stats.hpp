// Static shape statistics over IR trees (used by reports and tests).
#pragma once

#include <array>
#include <cstdint>

#include "ir/program.hpp"

namespace teamplay::ir {

struct TreeStats {
    std::int64_t static_instrs = 0;     ///< instructions in the tree text
    std::int64_t weighted_instrs = 0;   ///< instructions weighted by loop trips
    std::array<std::int64_t, kNumOpcodes> per_opcode{};
    int max_loop_depth = 0;
    int loops = 0;
    int branches = 0;
    int calls = 0;
    int secret_sources = 0;  ///< instructions flagged as taint roots
};

/// Statistics for one function body (calls are counted, not expanded).
[[nodiscard]] TreeStats analyze(const Function& fn);

/// Statistics for a function with callees expanded (recursion-free programs
/// only; call weights multiply by the surrounding loop trip counts).
[[nodiscard]] TreeStats analyze_expanded(const Program& program,
                                         const Function& fn);

}  // namespace teamplay::ir
