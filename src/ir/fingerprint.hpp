// Canonical structural fingerprint of a task entry function.
//
// `structural_fingerprint` hashes the sub-program *reachable from one entry
// function* — the instruction DAG the analysers, the profiler and the taint
// pass actually consume — in a canonical form, so that two applications
// embedding the same kernel produce the same fingerprint even when the rest
// of their programs differ.  This is what lets the evaluation cache memoise
// compiled fronts and profiles *across* programs (ΔELTA-style reuse: one
// front compiled, every app that ships the kernel hits).
//
// What is canonicalised (rename-insensitive):
//   * virtual register names: non-parameter registers are renumbered by
//     first encounter along a fixed pre-order traversal, so an alpha-renamed
//     clone of a kernel collides with the original.  Parameter registers are
//     pinned (r0..r(n-1) is positional ABI, renaming them changes meaning).
//   * the entry function's own name: only its body is hashed, so a
//     relabelled clone (same body, different name) collides.  (A
//     *recursive* entry would see its own name at the self-call site and
//     not collide, but the validator rejects cyclic call graphs, so no
//     valid program hits that case.)
//   * `Function::reg_count`: register-file size does not change the value
//     semantics of a valid function.
//
// What is deliberately load-bearing (two kernels differing here must NOT
// collide, because the difference is observable in engine output bytes):
//   * callee names: certificate proof trees print "call <name>" notes, so a
//     cached compiled front is only reusable when call labels match;
//   * `Program::memory_words`: the simulator faults on out-of-range access,
//     so the memory size is part of a kernel's dynamic semantics;
//   * every opcode, immediate, loop trip/bound/stride and `secret` tag.
//
// Determinism contract: any two (program, entry) pairs with equal
// fingerprints produce byte-identical analyser/profiler/contract output,
// which is what makes it safe to key the engine's EvaluationCache on the
// fingerprint — whichever scenario computes a key first, every other
// scenario observes the same bytes.
#pragma once

#include <cstdint>
#include <string>

#include "ir/program.hpp"

namespace teamplay::ir {

/// Canonical structural hash of `entry` and everything it transitively
/// calls inside `program`.  Never throws: a missing entry function hashes
/// to a distinct "unresolved" fingerprint of the name alone, so callers can
/// build cache keys eagerly and let the analysis itself report the error.
[[nodiscard]] std::uint64_t structural_fingerprint(const Program& program,
                                                   const std::string& entry);

}  // namespace teamplay::ir
