// Structured program representation: a region tree instead of a raw CFG.
//
// Every function body is a tree of Seq / Block / If / Loop / Call regions.
// The choice is deliberate (DESIGN.md §5.1): the WCET and energy analyses and
// the contract proof rules all become compositional over this tree (seq, alt,
// loop, call), mirroring the dependent-type structure of the paper's
// Non-functional Properties Contract System.  Compiler passes transform the
// tree; the simulator interprets it directly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/instr.hpp"

namespace teamplay::ir {

enum class NodeKind : std::uint8_t {
    kBlock,  ///< straight-line instruction sequence
    kSeq,    ///< ordered children
    kIf,     ///< two-way branch on a register
    kLoop,   ///< counted loop with a static analysis bound
    kCall,   ///< call to another function of the program
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// One region of a function body.  Fields not used by a kind stay empty; the
/// factory functions below are the only intended way to construct nodes.
struct Node {
    NodeKind kind = NodeKind::kBlock;

    // kBlock
    std::vector<Instr> instrs;

    // kSeq
    std::vector<NodePtr> children;

    // kIf
    Reg cond = kNoReg;
    NodePtr then_branch;
    NodePtr else_branch;  ///< may be null (no else)

    // kLoop
    NodePtr body;
    std::int64_t trip = 0;    ///< executed iterations when trip_reg unset
    std::int64_t bound = 0;   ///< static analysis bound, >= any dynamic trip
    Reg trip_reg = kNoReg;    ///< dynamic trip count read at loop entry
    Reg index_reg = kNoReg;   ///< holds the iteration index inside the body
    /// Iteration i publishes i*stride in index_reg.  1 for source loops; the
    /// unrolling pass multiplies it so replicated bodies keep their original
    /// index arithmetic.
    std::int64_t stride = 1;

    // kCall
    std::string callee;
    std::vector<Reg> args;  ///< caller registers copied to callee r0..rn-1
    Reg ret = kNoReg;       ///< caller register receiving callee result

    [[nodiscard]] static NodePtr block(std::vector<Instr> instrs);
    [[nodiscard]] static NodePtr seq(std::vector<NodePtr> children);
    [[nodiscard]] static NodePtr make_if(Reg cond, NodePtr then_branch,
                                         NodePtr else_branch);
    [[nodiscard]] static NodePtr loop(std::int64_t trip, std::int64_t bound,
                                      Reg index_reg, NodePtr body);
    [[nodiscard]] static NodePtr dynamic_loop(Reg trip_reg, std::int64_t bound,
                                              Reg index_reg, NodePtr body);
    [[nodiscard]] static NodePtr call(std::string callee,
                                      std::vector<Reg> args, Reg ret);

    /// Deep copy.
    [[nodiscard]] NodePtr clone() const;
};

/// A function: parameters arrive in r0..r(param_count-1); the return value,
/// if any, is read from `ret_reg` after the body finishes.
struct Function {
    std::string name;
    int param_count = 0;
    int reg_count = 0;  ///< registers used; register file size for execution
    Reg ret_reg = kNoReg;
    NodePtr body;  ///< always a kSeq node

    Function() = default;
    Function(Function&&) = default;
    Function& operator=(Function&&) = default;
    Function(const Function& other) { *this = other; }
    Function& operator=(const Function& other) {
        if (this != &other) {
            name = other.name;
            param_count = other.param_count;
            reg_count = other.reg_count;
            ret_reg = other.ret_reg;
            body = other.body ? other.body->clone() : nullptr;
        }
        return *this;
    }
};

/// A whole program: functions by name plus the flat shared memory size the
/// program needs (in 64-bit words).
struct Program {
    std::map<std::string, Function> functions;
    std::size_t memory_words = 4096;

    [[nodiscard]] const Function* find(const std::string& name) const {
        const auto it = functions.find(name);
        return it == functions.end() ? nullptr : &it->second;
    }
    [[nodiscard]] Function* find(const std::string& name) {
        const auto it = functions.find(name);
        return it == functions.end() ? nullptr : &it->second;
    }
    void add(Function fn) { functions[fn.name] = std::move(fn); }
};

/// Pre-order traversal over every node of a tree.  NodeT is Node or
/// const Node; Fn receives NodeT&.
template <typename NodeT, typename Fn>
void visit(NodeT& node, Fn&& fn) {
    fn(node);
    for (auto& child : node.children) visit(*child, fn);
    if (node.then_branch) visit(*node.then_branch, fn);
    if (node.else_branch) visit(*node.else_branch, fn);
    if (node.body) visit(*node.body, fn);
}

/// Visit every instruction of a tree (blocks only), in pre-order.
template <typename NodeT, typename Fn>
void for_each_instr(NodeT& node, Fn&& fn) {
    visit(node, [&fn](auto& n) {
        if (n.kind == NodeKind::kBlock)
            for (auto& instr : n.instrs) fn(instr);
    });
}

}  // namespace teamplay::ir
