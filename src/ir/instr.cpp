#include "ir/instr.hpp"

namespace teamplay::ir {

std::string_view opcode_name(Opcode op) {
    switch (op) {
        case Opcode::kNop: return "nop";
        case Opcode::kMovImm: return "movi";
        case Opcode::kMov: return "mov";
        case Opcode::kAdd: return "add";
        case Opcode::kSub: return "sub";
        case Opcode::kMul: return "mul";
        case Opcode::kDiv: return "div";
        case Opcode::kRem: return "rem";
        case Opcode::kAnd: return "and";
        case Opcode::kOr: return "or";
        case Opcode::kXor: return "xor";
        case Opcode::kShl: return "shl";
        case Opcode::kShr: return "shr";
        case Opcode::kNot: return "not";
        case Opcode::kNeg: return "neg";
        case Opcode::kCmpEq: return "cmpeq";
        case Opcode::kCmpNe: return "cmpne";
        case Opcode::kCmpLt: return "cmplt";
        case Opcode::kCmpLe: return "cmple";
        case Opcode::kCmpGt: return "cmpgt";
        case Opcode::kCmpGe: return "cmpge";
        case Opcode::kMin: return "min";
        case Opcode::kMax: return "max";
        case Opcode::kAbs: return "abs";
        case Opcode::kPopcnt: return "popcnt";
        case Opcode::kLoad: return "load";
        case Opcode::kStore: return "store";
        case Opcode::kSelect: return "select";
    }
    return "?";
}

}  // namespace teamplay::ir
