// Textual dump of IR functions and programs, for diagnostics and tests.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace teamplay::ir {

/// Render one function as indented structured text.
[[nodiscard]] std::string to_string(const Function& fn);

/// Render a whole program (functions in name order).
[[nodiscard]] std::string to_string(const Program& program);

/// Render one instruction, e.g. "r5 = add r3, r4".
[[nodiscard]] std::string to_string(const Instr& instr);

}  // namespace teamplay::ir
