#include "ir/validate.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace teamplay::ir {

namespace {

void check_reg(const Function& fn, Reg r, bool allow_none, const char* what,
               std::vector<std::string>& errors) {
    if (r == kNoReg) {
        if (!allow_none) {
            std::ostringstream os;
            os << fn.name << ": missing register for " << what;
            errors.push_back(os.str());
        }
        return;
    }
    if (r < 0 || r >= fn.reg_count) {
        std::ostringstream os;
        os << fn.name << ": register r" << r << " out of range for " << what
           << " (reg_count=" << fn.reg_count << ")";
        errors.push_back(os.str());
    }
}

void check_node(const Program& program, const Function& fn, const Node& node,
                std::vector<std::string>& errors) {
    switch (node.kind) {
        case NodeKind::kBlock:
            for (const auto& instr : node.instrs) {
                if (writes_dst(instr.op))
                    check_reg(fn, instr.dst, false, "dst", errors);
                if (reads_a(instr.op))
                    check_reg(fn, instr.a, false, "operand a", errors);
                if (reads_b(instr.op))
                    check_reg(fn, instr.b, false, "operand b", errors);
                if (reads_c(instr.op))
                    check_reg(fn, instr.c, false, "operand c", errors);
                // Static necessary condition for memory safety: the
                // immediate displacement must be smaller than the flat
                // memory itself — no base register holding a valid
                // address can bring such an access back in bounds.  The
                // runtime bounds check still owns base+offset overflow.
                if ((instr.op == Opcode::kLoad ||
                     instr.op == Opcode::kStore) &&
                    (instr.imm <= -static_cast<Word>(program.memory_words) ||
                     instr.imm >=
                         static_cast<Word>(program.memory_words))) {
                    std::ostringstream os;
                    os << fn.name << ": memory offset " << instr.imm
                       << " outside (-" << program.memory_words << ", "
                       << program.memory_words << ") for "
                       << opcode_name(instr.op);
                    errors.push_back(os.str());
                }
            }
            break;
        case NodeKind::kSeq:
            for (const auto& child : node.children)
                check_node(program, fn, *child, errors);
            break;
        case NodeKind::kIf:
            check_reg(fn, node.cond, false, "if condition", errors);
            if (!node.then_branch) {
                errors.push_back(fn.name + ": if node without then branch");
            } else {
                check_node(program, fn, *node.then_branch, errors);
            }
            if (node.else_branch)
                check_node(program, fn, *node.else_branch, errors);
            break;
        case NodeKind::kLoop: {
            if (!node.body) {
                errors.push_back(fn.name + ": loop node without body");
                break;
            }
            if (node.trip_reg != kNoReg) {
                check_reg(fn, node.trip_reg, false, "loop trip reg", errors);
                if (node.bound <= 0)
                    errors.push_back(fn.name +
                                     ": dynamic loop requires bound > 0");
            } else if (node.bound < node.trip) {
                std::ostringstream os;
                os << fn.name << ": loop bound " << node.bound
                   << " below trip count " << node.trip;
                errors.push_back(os.str());
            }
            check_reg(fn, node.index_reg, true, "loop index reg", errors);
            check_node(program, fn, *node.body, errors);
            break;
        }
        case NodeKind::kCall: {
            const Function* callee = program.find(node.callee);
            if (callee == nullptr) {
                errors.push_back(fn.name + ": call to undefined function '" +
                                 node.callee + "'");
                break;
            }
            if (static_cast<int>(node.args.size()) != callee->param_count) {
                std::ostringstream os;
                os << fn.name << ": call to " << node.callee << " passes "
                   << node.args.size() << " args, expected "
                   << callee->param_count;
                errors.push_back(os.str());
            }
            for (const Reg arg : node.args)
                check_reg(fn, arg, false, "call argument", errors);
            check_reg(fn, node.ret, true, "call result", errors);
            break;
        }
    }
}

/// Depth-first recursion check over the static call graph.
bool find_cycle(const Program& program, const std::string& name,
                std::set<std::string>& on_stack,
                std::set<std::string>& done) {
    if (done.contains(name)) return false;
    if (!on_stack.insert(name).second) return true;
    const Function* fn = program.find(name);
    bool cyclic = false;
    if (fn != nullptr && fn->body) {
        visit(*fn->body, [&](const Node& node) {
            if (node.kind == NodeKind::kCall && !cyclic)
                cyclic = find_cycle(program, node.callee, on_stack, done);
        });
    }
    on_stack.erase(name);
    done.insert(name);
    return cyclic;
}

}  // namespace

std::vector<std::string> validate_function(const Program& program,
                                           const Function& fn) {
    std::vector<std::string> errors;
    if (fn.name.empty()) errors.emplace_back("function with empty name");
    if (fn.param_count > fn.reg_count) {
        errors.push_back(fn.name + ": param_count exceeds reg_count");
    }
    if (!fn.body) {
        errors.push_back(fn.name + ": missing body");
        return errors;
    }
    check_reg(fn, fn.ret_reg, true, "return value", errors);
    check_node(program, fn, *fn.body, errors);
    return errors;
}

std::vector<std::string> validate(const Program& program) {
    std::vector<std::string> errors;
    for (const auto& [name, fn] : program.functions) {
        if (name != fn.name)
            errors.push_back("program key '" + name +
                             "' does not match function name '" + fn.name +
                             "'");
        auto fn_errors = validate_function(program, fn);
        errors.insert(errors.end(), fn_errors.begin(), fn_errors.end());
    }
    for (const auto& [name, fn] : program.functions) {
        std::set<std::string> on_stack;
        std::set<std::string> done;
        if (find_cycle(program, name, on_stack, done)) {
            errors.push_back("recursion detected reachable from '" + name +
                             "' (recursion is not supported: WCET "
                             "composition would not terminate)");
            break;
        }
    }
    return errors;
}

void validate_or_throw(const Program& program) {
    const auto errors = validate(program);
    if (errors.empty()) return;
    std::string message = "IR validation failed:";
    for (const auto& error : errors) message += "\n  " + error;
    throw std::runtime_error(message);
}

}  // namespace teamplay::ir
