// Three-address instructions of the TeamPlay intermediate representation.
//
// The IR models the "extracted C" level of the paper's workflows (Fig. 1/2):
// concrete enough that a cycle-approximate simulator can execute it and an
// ISA-level cost model can price it, abstract enough that compiler passes
// stay simple.  Registers are virtual and function-local; memory is a flat
// word-addressed array shared by all functions of a program.
#pragma once

#include <cstdint>
#include <string_view>

namespace teamplay::ir {

/// Virtual register id.  Parameters of a function occupy r0..r(n-1).
using Reg = std::int32_t;

/// Sentinel for "no register".
inline constexpr Reg kNoReg = -1;

/// Machine word. All IR arithmetic is 64-bit two's complement; narrower
/// target behaviour (e.g. 32-bit Cortex-M0 registers) is modelled by the
/// cost tables, not by the value semantics.
using Word = std::int64_t;

enum class Opcode : std::uint8_t {
    kNop,
    kMovImm,  ///< dst = imm
    kMov,     ///< dst = a
    kAdd,     ///< dst = a + b
    kSub,     ///< dst = a - b
    kMul,     ///< dst = a * b
    kDiv,     ///< dst = a / b   (b == 0 yields 0, as a trap-free model)
    kRem,     ///< dst = a % b   (b == 0 yields 0)
    kAnd,     ///< dst = a & b
    kOr,      ///< dst = a | b
    kXor,     ///< dst = a ^ b
    kShl,     ///< dst = a << (b & 63)
    kShr,     ///< dst = (unsigned)a >> (b & 63)
    kNot,     ///< dst = ~a
    kNeg,     ///< dst = -a
    kCmpEq,   ///< dst = (a == b)
    kCmpNe,   ///< dst = (a != b)
    kCmpLt,   ///< dst = (a < b)  signed
    kCmpLe,   ///< dst = (a <= b) signed
    kCmpGt,   ///< dst = (a > b)  signed
    kCmpGe,   ///< dst = (a >= b) signed
    kMin,     ///< dst = min(a, b) signed
    kMax,     ///< dst = max(a, b) signed
    kAbs,     ///< dst = |a|
    kPopcnt,  ///< dst = popcount(a)
    kLoad,    ///< dst = mem[a + imm]
    kStore,   ///< mem[a + imm] = b
    kSelect,  ///< dst = c ? a : b   (branch-free conditional move)
};

/// Number of opcodes; used to size per-opcode tables.
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kSelect) + 1;

/// One IR instruction.  Fields that an opcode does not use hold kNoReg/0.
struct Instr {
    Opcode op = Opcode::kNop;
    Reg dst = kNoReg;
    Reg a = kNoReg;
    Reg b = kNoReg;
    Reg c = kNoReg;   ///< third source, only kSelect (the condition)
    Word imm = 0;     ///< immediate for kMovImm and the Load/Store offset
    bool secret = false;  ///< taint source: dst carries secret data from here
};

/// Mnemonic for diagnostics and the IR printer.
[[nodiscard]] std::string_view opcode_name(Opcode op);

/// True for opcodes that write `dst`.
[[nodiscard]] constexpr bool writes_dst(Opcode op) {
    return op != Opcode::kNop && op != Opcode::kStore;
}

/// True for opcodes that read operand `a` / `b` / `c`.
[[nodiscard]] constexpr bool reads_a(Opcode op) {
    return op != Opcode::kNop && op != Opcode::kMovImm;
}
[[nodiscard]] constexpr bool reads_b(Opcode op) {
    switch (op) {
        case Opcode::kNop:
        case Opcode::kMovImm:
        case Opcode::kMov:
        case Opcode::kNot:
        case Opcode::kNeg:
        case Opcode::kAbs:
        case Opcode::kPopcnt:
        case Opcode::kLoad:
            return false;
        default:
            return true;
    }
}
[[nodiscard]] constexpr bool reads_c(Opcode op) {
    return op == Opcode::kSelect;
}

/// True for the pure register-to-register computations (no memory access),
/// the set the security optimiser may freely duplicate when ladderising.
[[nodiscard]] constexpr bool is_pure(Opcode op) {
    return op != Opcode::kLoad && op != Opcode::kStore;
}

}  // namespace teamplay::ir
