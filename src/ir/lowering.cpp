#include "ir/lowering.hpp"

#include <map>
#include <set>

namespace teamplay::ir {

namespace {

/// Saturation ceiling for charge estimates: far above any executable run
/// (the machine's default instruction budget is 5e8) yet small enough that
/// products of nested bounds cannot overflow int64.
constexpr std::int64_t kEstimateCap = 1LL << 42;

std::int64_t sat_add(std::int64_t a, std::int64_t b) {
    const std::int64_t sum = a + b;
    return sum > kEstimateCap ? kEstimateCap : sum;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) {
    if (a <= 0 || b <= 0) return 0;
    if (a > kEstimateCap / b) return kEstimateCap;
    return a * b;
}

void collect(const Program& program, const Function& fn,
             std::set<std::string>& visited,
             std::vector<const Function*>& out, bool& complete) {
    visit(*fn.body, [&](const Node& node) {
        if (node.kind != NodeKind::kCall) return;
        if (!visited.insert(node.callee).second) return;
        const Function* callee = program.find(node.callee);
        if (callee == nullptr) {
            complete = false;
            return;
        }
        out.push_back(callee);
        collect(program, *callee, visited, out, complete);
    });
}

struct Estimator {
    const Program& program;
    std::map<std::string, std::int64_t> memo;

    std::int64_t function(const Function& fn, int depth) {
        const auto it = memo.find(fn.name);
        if (it != memo.end()) return it->second;
        // Depth guard for (invalid) cyclic call graphs; matches the
        // interpreter's own call-depth ceiling in spirit.
        if (depth > 64) return kEstimateCap;
        const std::int64_t estimate = node(*fn.body, depth);
        memo.emplace(fn.name, estimate);
        return estimate;
    }

    std::int64_t node(const Node& n, int depth) {
        switch (n.kind) {
            case NodeKind::kBlock:
                return static_cast<std::int64_t>(n.instrs.size());
            case NodeKind::kSeq: {
                std::int64_t total = 0;
                for (const auto& child : n.children)
                    total = sat_add(total, node(*child, depth));
                return total;
            }
            case NodeKind::kIf: {
                const std::int64_t then_cost = node(*n.then_branch, depth);
                const std::int64_t else_cost =
                    n.else_branch ? node(*n.else_branch, depth) : 0;
                return sat_add(1, std::max(then_cost, else_cost));
            }
            case NodeKind::kLoop: {
                std::int64_t trips =
                    n.trip_reg != kNoReg ? n.bound : n.trip;
                if (trips < 0) trips = 0;
                return sat_mul(trips, sat_add(1, node(*n.body, depth)));
            }
            case NodeKind::kCall: {
                const Function* callee = program.find(n.callee);
                if (callee == nullptr) return 1;
                return sat_add(1, function(*callee, depth + 1));
            }
        }
        return 0;
    }
};

}  // namespace

bool reachable_functions(const Program& program, const std::string& entry,
                         std::vector<const Function*>& out) {
    const Function* fn = program.find(entry);
    if (fn == nullptr) return false;
    out.push_back(fn);
    std::set<std::string> visited;
    visited.insert(entry);
    bool complete = true;
    collect(program, *fn, visited, out, complete);
    return complete;
}

std::int64_t estimate_charges(const Program& program, const Function& fn) {
    Estimator estimator{program, {}};
    return estimator.function(fn, 0);
}

}  // namespace teamplay::ir
