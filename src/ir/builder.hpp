// Fluent construction of structured IR functions.
//
// The builder is how the use-case applications (camera pill, SpaceWire link,
// UAV pipeline, parking CNN) are written: it plays the role of the C
// front-end in the paper's workflows.  It allocates virtual registers,
// collects straight-line instructions into blocks, and nests If/Loop regions
// with a frame stack so the resulting tree is well-formed by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace teamplay::ir {

class FunctionBuilder {
public:
    /// Begin a function whose parameters occupy r0..r(param_count-1).
    FunctionBuilder(std::string name, int param_count);

    // -- values ------------------------------------------------------------

    /// Register holding parameter `i`.
    [[nodiscard]] Reg param(int i) const;

    /// Materialise a constant.
    Reg imm(Word value);

    /// Copy a register (also the taint-source marker: see `secret`).
    Reg mov(Reg src);

    /// Overwrite an existing register in place (emits Mov dst, src).  This
    /// is the only way to express loop-carried *register* state; the unroll
    /// pass detects such loops and refuses them by design, so kernels that
    /// want to stay unrollable should carry state through memory instead.
    void assign(Reg dst, Reg src);

    /// Copy a register and tag the result as secret data.  Downstream taint
    /// analysis treats this as the root of secret flow (e.g. a key load).
    Reg secret(Reg src);

    /// Load a constant and tag it secret (convenience for key material).
    Reg secret_imm(Word value);

    Reg add(Reg a, Reg b);
    Reg sub(Reg a, Reg b);
    Reg mul(Reg a, Reg b);
    Reg div(Reg a, Reg b);
    Reg rem(Reg a, Reg b);
    Reg band(Reg a, Reg b);
    Reg bor(Reg a, Reg b);
    Reg bxor(Reg a, Reg b);
    Reg shl(Reg a, Reg b);
    Reg shr(Reg a, Reg b);
    Reg bnot(Reg a);
    Reg neg(Reg a);
    Reg cmp_eq(Reg a, Reg b);
    Reg cmp_ne(Reg a, Reg b);
    Reg cmp_lt(Reg a, Reg b);
    Reg cmp_le(Reg a, Reg b);
    Reg cmp_gt(Reg a, Reg b);
    Reg cmp_ge(Reg a, Reg b);
    Reg smin(Reg a, Reg b);
    Reg smax(Reg a, Reg b);
    Reg sabs(Reg a);
    Reg popcnt(Reg a);

    // Immediate-operand conveniences (materialise the constant first).
    Reg add_imm(Reg a, Word v);
    Reg sub_imm(Reg a, Word v);
    Reg mul_imm(Reg a, Word v);
    Reg and_imm(Reg a, Word v);
    Reg xor_imm(Reg a, Word v);
    Reg shl_imm(Reg a, Word v);
    Reg shr_imm(Reg a, Word v);

    /// dst = mem[addr + offset]
    Reg load(Reg addr, Word offset = 0);
    /// mem[addr + offset] = value
    void store(Reg addr, Reg value, Word offset = 0);

    /// Branch-free conditional move: cond ? a : b.
    Reg select(Reg cond, Reg a, Reg b);

    void nop();

    // -- control structure ---------------------------------------------------

    /// Open a counted loop executing `trip` times with static bound `bound`
    /// (defaults to `trip`).  Returns the register holding the iteration
    /// index (0-based) inside the body.
    Reg loop_begin(std::int64_t trip, std::int64_t bound = -1);

    /// Open a loop whose trip count is read from `trip_reg` at entry, with
    /// static analysis bound `bound`.  Returns the index register.
    Reg dynamic_loop_begin(Reg trip_reg, std::int64_t bound);

    void loop_end();

    void if_begin(Reg cond);
    void if_else();
    void if_end();

    /// Call `callee` with the given argument registers; returns the register
    /// receiving the callee's return value.
    Reg call(const std::string& callee, std::vector<Reg> args);

    /// Designate the return value.
    void ret(Reg value);

    /// Finish; the builder must have no open control structures.
    [[nodiscard]] Function build();

private:
    enum class FrameKind : std::uint8_t { kSeq, kThen, kElse, kLoop };

    struct Frame {
        FrameKind kind = FrameKind::kSeq;
        std::vector<NodePtr> nodes;
        std::vector<Instr> pending;
        // kThen/kElse
        Reg cond = kNoReg;
        std::vector<NodePtr> then_nodes;  ///< filled when switching to kElse
        // kLoop
        std::int64_t trip = 0;
        std::int64_t bound = 0;
        Reg trip_reg = kNoReg;
        Reg index_reg = kNoReg;
    };

    Reg fresh();
    void emit(Instr instr);
    void flush();  ///< move pending instrs into a Block node
    Reg emit_binop(Opcode op, Reg a, Reg b);
    Reg emit_unop(Opcode op, Reg a);
    [[nodiscard]] static NodePtr wrap(std::vector<NodePtr> nodes);

    std::string name_;
    int param_count_ = 0;
    Reg next_reg_ = 0;
    Reg ret_reg_ = kNoReg;
    std::vector<Frame> frames_;
    bool built_ = false;
};

}  // namespace teamplay::ir
