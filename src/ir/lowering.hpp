// Helpers for lowering region trees into flat execution traces.
//
// The simulator's trace tier (sim::TraceCompiler) flattens a function and
// everything it calls into one pre-decoded instruction stream.  The two
// queries it needs — which functions are reachable, and how many charge
// events one execution produces — are properties of the IR alone, so they
// live here where other flatteners (a future native translator, the power
// trace pre-reservation in sim::Machine) can share them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"

namespace teamplay::ir {

/// Fills `out` with the entry function followed by every transitively
/// called function, in deterministic first-encounter pre-order (the same
/// traversal `structural_fingerprint` canonicalises over).  Each function
/// appears once even when the call graph revisits it, so the walk
/// terminates on any program — including invalid cyclic ones.  Returns
/// false (leaving `out` with the functions found so far) when the entry or
/// any reachable callee is undefined; callers that need the interpreter's
/// runtime error surface fall back instead of lowering.
[[nodiscard]] bool reachable_functions(const Program& program,
                                       const std::string& entry,
                                       std::vector<const Function*>& out);

/// Upper-bound estimate of the charge events (power-trace samples) one
/// execution of `fn` produces: every instruction, branch, loop iteration
/// and call charges exactly once, so the estimate walks the tree taking
/// the static trip (or the bound, for dynamic loops) and the wider side of
/// every If.  Saturates instead of overflowing; a missing callee counts
/// only its call overhead.  Used to reserve RunResult::power_trace up
/// front so the tracing hot path never reallocates mid-run.
[[nodiscard]] std::int64_t estimate_charges(const Program& program,
                                            const Function& fn);

}  // namespace teamplay::ir
