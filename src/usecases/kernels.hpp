// Shared IR kernel library for the industrial use cases (Sec. IV).
//
// Every kernel is a genuine implementation — XTEA really encrypts, RLE
// really round-trips, the CNN really classifies — executing on the simulated
// boards through the IR interpreter.  All kernels operate on word-granular
// buffers in the program's shared memory (one pixel/byte per 64-bit word)
// and communicate through fixed addresses supplied by the use-case memory
// maps, so task entry functions take no parameters (which is also what the
// generated glue code expects).
#pragma once

#include <cstdint>

#include "ir/builder.hpp"
#include "ir/program.hpp"

namespace teamplay::usecases {

/// 32-bit mask used by the cipher kernels to emulate uint32 arithmetic.
inline constexpr ir::Word kMask32 = 0xFFFFFFFF;

// -- imaging -----------------------------------------------------------------

/// Deterministic synthetic frame generator: writes `w*h` pixels (0..255) at
/// `dst`, evolving the LCG state kept at `state_addr` so consecutive frames
/// differ but stay correlated (smooth rows), like a real sensor.
[[nodiscard]] ir::Function make_capture(const std::string& name,
                                        std::int64_t dst, std::int64_t w,
                                        std::int64_t h,
                                        std::int64_t state_addr);

/// dst[i] = (src[i] - prev[i]) mod 256, then prev[i] = src[i].
[[nodiscard]] ir::Function make_delta_encode(const std::string& name,
                                             std::int64_t src,
                                             std::int64_t prev,
                                             std::int64_t dst,
                                             std::int64_t count);

/// 2x2 mean binning: (w x h) at src -> (w/2 x h/2) at dst.
[[nodiscard]] ir::Function make_bin2x2(const std::string& name,
                                       std::int64_t src, std::int64_t dst,
                                       std::int64_t w, std::int64_t h);

/// Sobel gradient magnitude + threshold over the interior of a (w x h)
/// image: writes a 0/1 detection map at `dst` and the number of hits at
/// `hits_addr`; returns the hit count.
[[nodiscard]] ir::Function make_sobel_detect(const std::string& name,
                                             std::int64_t src,
                                             std::int64_t dst, std::int64_t w,
                                             std::int64_t h,
                                             std::int64_t hits_addr,
                                             std::int64_t threshold);

/// Centroid of the set bits of a (w x h) 0/1 map: writes x*256/w and
/// y*256/h (fixed point) to out and out+1.
[[nodiscard]] ir::Function make_centroid(const std::string& name,
                                         std::int64_t map, std::int64_t w,
                                         std::int64_t h, std::int64_t out);

// -- compression ---------------------------------------------------------------

/// Run-length encode `count` words at `src` into (run,value) pairs at `dst`;
/// stores the emitted pair-list length (in words) at `len_addr` and returns
/// it.  Runs are capped at 255.
[[nodiscard]] ir::Function make_rle_compress(const std::string& name,
                                             std::int64_t src,
                                             std::int64_t dst,
                                             std::int64_t count,
                                             std::int64_t len_addr);

/// Inverse of make_rle_compress: reads the length from `len_addr`,
/// reconstructs at `dst`, returns the number of words written.
/// `max_pairs` bounds the outer loop; 255 bounds each run.
[[nodiscard]] ir::Function make_rle_decompress(const std::string& name,
                                               std::int64_t src,
                                               std::int64_t dst,
                                               std::int64_t len_addr,
                                               std::int64_t max_pairs);

// -- integrity / crypto -----------------------------------------------------------

/// Bitwise CRC-32 (poly 0xEDB88320) over `len_addr`-many words at `src`
/// (bounded by `max_words`); each word contributes its low 8 bits.  Stores
/// and returns the final CRC.
[[nodiscard]] ir::Function make_crc32(const std::string& name,
                                      std::int64_t src,
                                      std::int64_t len_addr,
                                      std::int64_t max_words,
                                      std::int64_t crc_addr);

/// XTEA block encryption of one 64-bit block held as two 32-bit words:
/// params (v0, v1) with the 4-word key at `key_addr` (loaded as secret
/// data); 32 rounds; returns v0' and stores v1' at `spill_addr`.
[[nodiscard]] ir::Function make_xtea_encrypt_block(const std::string& name,
                                                   std::int64_t key_addr,
                                                   std::int64_t spill_addr);

/// XTEA decryption of one block (inverse of the above).
[[nodiscard]] ir::Function make_xtea_decrypt_block(const std::string& name,
                                                   std::int64_t key_addr,
                                                   std::int64_t spill_addr);

/// Encrypt a buffer: processes `len_addr` words (rounded up to pairs,
/// bounded by `max_words`) from `src` to `dst` by calling `block_fn`.
[[nodiscard]] ir::Function make_xtea_buffer(const std::string& name,
                                            const std::string& block_fn,
                                            std::int64_t src,
                                            std::int64_t dst,
                                            std::int64_t len_addr,
                                            std::int64_t max_words,
                                            std::int64_t spill_addr);

// -- neural network (fixed point, Q8) ---------------------------------------------

/// 3x3 valid convolution + ReLU: input (w x h) at src, `channels` kernels of
/// 9 signed Q8 weights at weights, output channel c at dst + c*(w-2)*(h-2).
[[nodiscard]] ir::Function make_conv3x3_relu(const std::string& name,
                                             std::int64_t src,
                                             std::int64_t weights,
                                             std::int64_t dst, std::int64_t w,
                                             std::int64_t h,
                                             std::int64_t channels);

/// 2x2 max pooling per channel: (w x h) -> (w/2 x h/2), `channels` planes.
[[nodiscard]] ir::Function make_maxpool2x2(const std::string& name,
                                           std::int64_t src, std::int64_t dst,
                                           std::int64_t w, std::int64_t h,
                                           std::int64_t channels);

/// Fully connected layer with optional ReLU: out[j] = relu(sum_i in[i] *
/// W[j*in_n+i] + B[j]), weights Q8 (product shifted right by 8).
[[nodiscard]] ir::Function make_fc(const std::string& name, std::int64_t src,
                                   std::int64_t weights, std::int64_t bias,
                                   std::int64_t dst, std::int64_t in_n,
                                   std::int64_t out_n, bool relu);

/// Argmax over `n` words at `src`; stores the winning index at `out` and
/// returns it.
[[nodiscard]] ir::Function make_argmax(const std::string& name,
                                       std::int64_t src, std::int64_t n,
                                       std::int64_t out);

// -- telemetry ---------------------------------------------------------------------

/// Radio/SpaceWire transmission cost model: CRC-accumulates and "sends"
/// `len_addr` words (bounded) from `src`, spending a fixed per-word cost;
/// stores the checksum at `out`.
[[nodiscard]] ir::Function make_transmit(const std::string& name,
                                         std::int64_t src,
                                         std::int64_t len_addr,
                                         std::int64_t max_words,
                                         std::int64_t out);

/// SpaceWire packetisation: splits `len_addr` payload words (bounded by
/// `max_words`) from `src` into packets of `payload_words`, each prefixed
/// with a 2-word header (destination logical address + sequence number) and
/// suffixed with an additive checksum; writes the packet stream to `dst` and
/// its total length to `out_len_addr`.
[[nodiscard]] ir::Function make_packetize(const std::string& name,
                                          std::int64_t src,
                                          std::int64_t len_addr,
                                          std::int64_t max_words,
                                          std::int64_t dst,
                                          std::int64_t payload_words,
                                          std::int64_t out_len_addr);

}  // namespace teamplay::usecases
