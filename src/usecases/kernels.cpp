#include "usecases/kernels.hpp"

namespace teamplay::usecases {

using ir::FunctionBuilder;
using ir::Reg;

ir::Function make_capture(const std::string& name, std::int64_t dst,
                          std::int64_t w, std::int64_t h,
                          std::int64_t state_addr) {
    FunctionBuilder b(name, 0);
    const Reg state_ptr = b.imm(state_addr);
    const Reg dst_base = b.imm(dst);
    const Reg y = b.loop_begin(h);
    const Reg row_base = b.add(dst_base, b.mul_imm(y, w));
    const Reg x = b.loop_begin(w);
    // LCG state lives in memory so the loop stays unrollable.
    const Reg state = b.load(state_ptr);
    const Reg next = b.and_imm(
        b.add_imm(b.mul_imm(state, 1103515245), 12345), 0x7FFFFFFF);
    b.store(state_ptr, next);
    const Reg noise = b.and_imm(b.shr_imm(next, 16), 63);
    // Smooth spatial ramp + sensor noise, clipped to a byte.
    const Reg ramp = b.add(b.shl_imm(x, 1), b.mul_imm(y, 3));
    const Reg pixel = b.and_imm(b.add(ramp, noise), 255);
    b.store(b.add(row_base, x), pixel);
    b.loop_end();
    b.loop_end();
    b.ret(b.imm(0));
    return b.build();
}

ir::Function make_delta_encode(const std::string& name, std::int64_t src,
                               std::int64_t prev, std::int64_t dst,
                               std::int64_t count) {
    FunctionBuilder b(name, 0);
    const Reg i = b.loop_begin(count);
    const Reg s = b.load(b.add_imm(i, src));
    const Reg p = b.load(b.add_imm(i, prev));
    const Reg d = b.and_imm(b.sub(s, p), 255);
    b.store(b.add_imm(i, dst), d);
    b.store(b.add_imm(i, prev), s);
    b.loop_end();
    b.ret(b.imm(0));
    return b.build();
}

ir::Function make_bin2x2(const std::string& name, std::int64_t src,
                         std::int64_t dst, std::int64_t w, std::int64_t h) {
    FunctionBuilder b(name, 0);
    const Reg y = b.loop_begin(h / 2);
    const Reg x = b.loop_begin(w / 2);
    const Reg in_base =
        b.add_imm(b.add(b.mul_imm(y, 2 * w), b.shl_imm(x, 1)), src);
    const Reg a = b.load(in_base, 0);
    const Reg c = b.load(in_base, 1);
    const Reg d = b.load(in_base, w);
    const Reg e = b.load(in_base, w + 1);
    const Reg sum = b.add(b.add(a, c), b.add(d, e));
    const Reg out_addr =
        b.add_imm(b.add(b.mul_imm(y, w / 2), x), dst);
    b.store(out_addr, b.shr_imm(sum, 2));
    b.loop_end();
    b.loop_end();
    b.ret(b.imm(0));
    return b.build();
}

ir::Function make_sobel_detect(const std::string& name, std::int64_t src,
                               std::int64_t dst, std::int64_t w,
                               std::int64_t h, std::int64_t hits_addr,
                               std::int64_t threshold) {
    FunctionBuilder b(name, 0);
    const Reg hits_ptr = b.imm(hits_addr);
    b.store(hits_ptr, b.imm(0));
    const Reg thr = b.imm(threshold);
    const Reg yi = b.loop_begin(h - 2);
    const Reg y = b.add_imm(yi, 1);
    const Reg xi = b.loop_begin(w - 2);
    const Reg x = b.add_imm(xi, 1);
    const Reg base = b.add_imm(b.add(b.mul_imm(y, w), x), src);
    // Sobel gx/gy over the 8-neighbourhood (offsets resolved at build time).
    const Reg nw = b.load(base, -w - 1);
    const Reg nn = b.load(base, -w);
    const Reg ne = b.load(base, -w + 1);
    const Reg ww = b.load(base, -1);
    const Reg ee = b.load(base, 1);
    const Reg sw = b.load(base, w - 1);
    const Reg ss = b.load(base, w);
    const Reg se = b.load(base, w + 1);
    const Reg gx = b.sub(b.add(b.add(ne, se), b.shl_imm(ee, 1)),
                         b.add(b.add(nw, sw), b.shl_imm(ww, 1)));
    const Reg gy = b.sub(b.add(b.add(sw, se), b.shl_imm(ss, 1)),
                         b.add(b.add(nw, ne), b.shl_imm(nn, 1)));
    const Reg mag = b.add(b.sabs(gx), b.sabs(gy));
    const Reg det = b.cmp_gt(mag, thr);
    b.store(b.add_imm(b.add(b.mul_imm(y, w), x), dst), det);
    b.store(hits_ptr, b.add(b.load(hits_ptr), det));
    b.loop_end();
    b.loop_end();
    b.ret(b.load(hits_ptr));
    return b.build();
}

ir::Function make_centroid(const std::string& name, std::int64_t map,
                           std::int64_t w, std::int64_t h, std::int64_t out) {
    FunctionBuilder b(name, 0);
    const Reg sx = b.imm(out + 2);  // scratch cells behind the output
    const Reg sy = b.imm(out + 3);
    const Reg n = b.imm(out + 4);
    b.store(sx, b.imm(0));
    b.store(sy, b.imm(0));
    b.store(n, b.imm(0));
    const Reg y = b.loop_begin(h);
    const Reg x = b.loop_begin(w);
    const Reg v = b.load(b.add_imm(b.add(b.mul_imm(y, w), x), map));
    b.store(sx, b.add(b.load(sx), b.mul(x, v)));
    b.store(sy, b.add(b.load(sy), b.mul(y, v)));
    b.store(n, b.add(b.load(n), v));
    b.loop_end();
    b.loop_end();
    const Reg count = b.smax(b.load(n), b.imm(1));
    const Reg cx = b.div(b.mul_imm(b.load(sx), 256), b.mul_imm(count, w));
    const Reg cy = b.div(b.mul_imm(b.load(sy), 256), b.mul_imm(count, h));
    b.store(b.imm(out), cx);
    b.store(b.imm(out + 1), cy);
    b.ret(b.load(n));
    return b.build();
}

ir::Function make_rle_compress(const std::string& name, std::int64_t src,
                               std::int64_t dst, std::int64_t count,
                               std::int64_t len_addr) {
    FunctionBuilder b(name, 0);
    const Reg out_cell = b.imm(len_addr + 1);   // output cursor
    const Reg cnt_cell = b.imm(len_addr + 2);   // current run length
    const Reg prev_cell = b.imm(len_addr + 3);  // current run value
    b.store(out_cell, b.imm(0));
    b.store(cnt_cell, b.imm(0));
    b.store(prev_cell, b.imm(0));

    const Reg i = b.loop_begin(count);
    const Reg v = b.load(b.add_imm(i, src));
    const Reg run = b.load(cnt_cell);
    const Reg prev = b.load(prev_cell);
    const Reg same =
        b.band(b.cmp_eq(v, prev), b.cmp_lt(run, b.imm(255)));
    b.if_begin(same);
    {
        b.store(cnt_cell, b.add_imm(run, 1));
    }
    b.if_else();
    {
        const Reg had_run = b.cmp_gt(run, b.imm(0));
        b.if_begin(had_run);
        {
            const Reg o = b.load(out_cell);
            b.store(b.add_imm(o, dst), run);
            b.store(b.add_imm(o, dst + 1), prev);
            b.store(out_cell, b.add_imm(o, 2));
        }
        b.if_end();
        b.store(cnt_cell, b.imm(1));
        b.store(prev_cell, v);
    }
    b.if_end();
    b.loop_end();

    // Flush the trailing run.
    const Reg run_end = b.load(cnt_cell);
    const Reg tail = b.cmp_gt(run_end, b.imm(0));
    b.if_begin(tail);
    {
        const Reg o = b.load(out_cell);
        b.store(b.add_imm(o, dst), run_end);
        b.store(b.add_imm(o, dst + 1), b.load(prev_cell));
        b.store(out_cell, b.add_imm(o, 2));
    }
    b.if_end();
    const Reg total = b.load(out_cell);
    b.store(b.imm(len_addr), total);
    b.ret(total);
    return b.build();
}

ir::Function make_rle_decompress(const std::string& name, std::int64_t src,
                                 std::int64_t dst, std::int64_t len_addr,
                                 std::int64_t max_pairs) {
    FunctionBuilder b(name, 0);
    const Reg out_cell = b.imm(len_addr + 4);
    b.store(out_cell, b.imm(0));
    const Reg pairs = b.shr_imm(b.load(b.imm(len_addr)), 1);
    const Reg k = b.dynamic_loop_begin(pairs, max_pairs);
    const Reg pair_base = b.add_imm(b.shl_imm(k, 1), src);
    const Reg run = b.load(pair_base, 0);
    const Reg value = b.load(pair_base, 1);
    const Reg o = b.load(out_cell);
    const Reg j = b.dynamic_loop_begin(run, 255);
    b.store(b.add(b.add_imm(o, dst), j), value);
    b.loop_end();
    b.store(out_cell, b.add(o, run));
    b.loop_end();
    const Reg total = b.load(out_cell);
    b.ret(total);
    return b.build();
}

ir::Function make_crc32(const std::string& name, std::int64_t src,
                        std::int64_t len_addr, std::int64_t max_words,
                        std::int64_t crc_addr) {
    FunctionBuilder b(name, 0);
    const Reg crc_cell = b.imm(crc_addr + 1);  // scratch behind the result
    b.store(crc_cell, b.imm(kMask32));
    const Reg poly = b.imm(0xEDB88320);
    const Reg zero = b.imm(0);
    const Reg len = b.load(b.imm(len_addr));
    const Reg i = b.dynamic_loop_begin(len, max_words);
    const Reg byte = b.and_imm(b.load(b.add_imm(i, src)), 255);
    Reg crc = b.bxor(b.load(crc_cell), byte);
    for (int bit = 0; bit < 8; ++bit) {
        const Reg lsb = b.band(crc, b.imm(1));
        const Reg mask = b.select(lsb, poly, zero);
        crc = b.bxor(b.shr_imm(crc, 1), mask);
    }
    b.store(crc_cell, crc);
    b.loop_end();
    const Reg final_crc =
        b.and_imm(b.bxor(b.load(crc_cell), b.imm(kMask32)), kMask32);
    b.store(b.imm(crc_addr), final_crc);
    b.ret(final_crc);
    return b.build();
}

namespace {

/// Common XTEA round helpers; all arithmetic emulates uint32.
Reg mask32(FunctionBuilder& b, Reg v) { return b.and_imm(v, kMask32); }

Reg xtea_mix(FunctionBuilder& b, Reg v) {
    // ((v << 4) ^ (v >> 5)) + v, masked to 32 bits.
    const Reg left = b.and_imm(b.shl_imm(v, 4), kMask32);
    const Reg right = b.shr_imm(v, 5);
    return mask32(b, b.add(b.bxor(left, right), v));
}

Reg xtea_key_lookup(FunctionBuilder& b, Reg index, std::int64_t key_addr) {
    // Secret key material: the load is the taint source.
    const Reg addr = b.add_imm(index, key_addr);
    const Reg key = b.load(addr);
    return b.secret(key);
}

}  // namespace

ir::Function make_xtea_encrypt_block(const std::string& name,
                                     std::int64_t key_addr,
                                     std::int64_t spill_addr) {
    FunctionBuilder b(name, 2);
    const Reg v0 = b.mov(b.param(0));
    const Reg v1 = b.mov(b.param(1));
    const Reg sum = b.imm(0);
    const Reg delta = b.imm(0x9E3779B9);
    (void)b.loop_begin(32);
    {
        const Reg k0 = xtea_key_lookup(b, b.and_imm(sum, 3), key_addr);
        const Reg t0 = b.bxor(xtea_mix(b, v1), mask32(b, b.add(sum, k0)));
        b.assign(v0, mask32(b, b.add(v0, t0)));
        b.assign(sum, mask32(b, b.add(sum, delta)));
        const Reg k1 = xtea_key_lookup(
            b, b.and_imm(b.shr_imm(sum, 11), 3), key_addr);
        const Reg t1 = b.bxor(xtea_mix(b, v0), mask32(b, b.add(sum, k1)));
        b.assign(v1, mask32(b, b.add(v1, t1)));
    }
    b.loop_end();
    b.store(b.imm(spill_addr), v1);
    b.ret(v0);
    return b.build();
}

ir::Function make_xtea_decrypt_block(const std::string& name,
                                     std::int64_t key_addr,
                                     std::int64_t spill_addr) {
    FunctionBuilder b(name, 2);
    const Reg v0 = b.mov(b.param(0));
    const Reg v1 = b.mov(b.param(1));
    const Reg delta = b.imm(0x9E3779B9);
    // sum starts at delta * 32 (mod 2^32).
    const Reg sum = b.mov(b.imm(0xC6EF3720));
    (void)b.loop_begin(32);
    {
        const Reg k1 = xtea_key_lookup(
            b, b.and_imm(b.shr_imm(sum, 11), 3), key_addr);
        const Reg t1 = b.bxor(xtea_mix(b, v0), mask32(b, b.add(sum, k1)));
        b.assign(v1, mask32(b, b.sub(v1, t1)));
        b.assign(sum, mask32(b, b.sub(sum, delta)));
        const Reg k0 = xtea_key_lookup(b, b.and_imm(sum, 3), key_addr);
        const Reg t0 = b.bxor(xtea_mix(b, v1), mask32(b, b.add(sum, k0)));
        b.assign(v0, mask32(b, b.sub(v0, t0)));
    }
    b.loop_end();
    b.store(b.imm(spill_addr), v1);
    b.ret(v0);
    return b.build();
}

ir::Function make_xtea_buffer(const std::string& name,
                              const std::string& block_fn, std::int64_t src,
                              std::int64_t dst, std::int64_t len_addr,
                              std::int64_t max_words,
                              std::int64_t spill_addr) {
    FunctionBuilder b(name, 0);
    const Reg len = b.load(b.imm(len_addr));
    const Reg blocks = b.shr_imm(b.add_imm(len, 1), 1);  // ceil(len/2)
    const Reg k = b.dynamic_loop_begin(blocks, (max_words + 1) / 2);
    const Reg base = b.shl_imm(k, 1);
    const Reg v0 = b.load(b.add_imm(base, src));
    const Reg v1 = b.load(b.add_imm(base, src + 1));
    const Reg e0 = b.call(block_fn, {v0, v1});
    const Reg e1 = b.load(b.imm(spill_addr));
    b.store(b.add_imm(base, dst), e0);
    b.store(b.add_imm(base, dst + 1), e1);
    b.loop_end();
    b.ret(len);
    return b.build();
}

ir::Function make_conv3x3_relu(const std::string& name, std::int64_t src,
                               std::int64_t weights, std::int64_t dst,
                               std::int64_t w, std::int64_t h,
                               std::int64_t channels) {
    FunctionBuilder b(name, 0);
    const std::int64_t ow = w - 2;
    const std::int64_t oh = h - 2;
    const Reg zero = b.imm(0);
    const Reg c = b.loop_begin(channels);
    const Reg wbase = b.add_imm(b.mul_imm(c, 9), weights);
    const Reg obase = b.add_imm(b.mul_imm(c, ow * oh), dst);
    const Reg y = b.loop_begin(oh);
    const Reg x = b.loop_begin(ow);
    const Reg in_base = b.add_imm(b.add(b.mul_imm(y, w), x), src);
    Reg acc = zero;
    for (std::int64_t ky = 0; ky < 3; ++ky) {
        for (std::int64_t kx = 0; kx < 3; ++kx) {
            const Reg pixel = b.load(in_base, ky * w + kx);
            const Reg weight = b.load(wbase, ky * 3 + kx);
            acc = b.add(acc, b.mul(pixel, weight));
        }
    }
    // Q8 weights: scale the accumulator back, then ReLU.
    const Reg scaled = b.shr_imm(acc, 8);
    const Reg activated = b.smax(scaled, zero);
    b.store(b.add(b.add(obase, b.mul_imm(y, ow)), x), activated);
    b.loop_end();
    b.loop_end();
    b.loop_end();
    b.ret(b.imm(0));
    return b.build();
}

ir::Function make_maxpool2x2(const std::string& name, std::int64_t src,
                             std::int64_t dst, std::int64_t w,
                             std::int64_t h, std::int64_t channels) {
    FunctionBuilder b(name, 0);
    const std::int64_t ow = w / 2;
    const std::int64_t oh = h / 2;
    const Reg c = b.loop_begin(channels);
    const Reg in_plane = b.add_imm(b.mul_imm(c, w * h), src);
    const Reg out_plane = b.add_imm(b.mul_imm(c, ow * oh), dst);
    const Reg y = b.loop_begin(oh);
    const Reg x = b.loop_begin(ow);
    const Reg base =
        b.add(b.add(in_plane, b.mul_imm(y, 2 * w)), b.shl_imm(x, 1));
    const Reg m = b.smax(b.smax(b.load(base, 0), b.load(base, 1)),
                         b.smax(b.load(base, w), b.load(base, w + 1)));
    b.store(b.add(b.add(out_plane, b.mul_imm(y, ow)), x), m);
    b.loop_end();
    b.loop_end();
    b.loop_end();
    b.ret(b.imm(0));
    return b.build();
}

ir::Function make_fc(const std::string& name, std::int64_t src,
                     std::int64_t weights, std::int64_t bias,
                     std::int64_t dst, std::int64_t in_n, std::int64_t out_n,
                     bool relu) {
    FunctionBuilder b(name, 0);
    const Reg zero = b.imm(0);
    const Reg j = b.loop_begin(out_n);
    const Reg wrow = b.add_imm(b.mul_imm(j, in_n), weights);
    const Reg acc = b.mov(zero);
    const Reg i = b.loop_begin(in_n);
    const Reg input = b.load(b.add_imm(i, src));
    const Reg weight = b.load(b.add(wrow, i));
    b.assign(acc, b.add(acc, b.mul(input, weight)));
    b.loop_end();
    Reg out = b.add(b.shr_imm(acc, 8), b.load(b.add_imm(j, bias)));
    if (relu) out = b.smax(out, zero);
    b.store(b.add_imm(j, dst), out);
    b.loop_end();
    b.ret(b.imm(0));
    return b.build();
}

ir::Function make_argmax(const std::string& name, std::int64_t src,
                         std::int64_t n, std::int64_t out) {
    FunctionBuilder b(name, 0);
    const Reg best = b.mov(b.imm(-(1LL << 62)));
    const Reg best_index = b.mov(b.imm(0));
    const Reg i = b.loop_begin(n);
    const Reg v = b.load(b.add_imm(i, src));
    const Reg better = b.cmp_gt(v, best);
    b.assign(best, b.select(better, v, best));
    b.assign(best_index, b.select(better, i, best_index));
    b.loop_end();
    b.store(b.imm(out), best_index);
    b.ret(best_index);
    return b.build();
}

ir::Function make_transmit(const std::string& name, std::int64_t src,
                           std::int64_t len_addr, std::int64_t max_words,
                           std::int64_t out) {
    FunctionBuilder b(name, 0);
    const Reg len = b.load(b.imm(len_addr));
    const Reg sum = b.mov(b.imm(0));
    const Reg i = b.dynamic_loop_begin(len, max_words);
    const Reg v = b.load(b.add_imm(i, src));
    // Per-word serialisation cost: checksum + 4 scrambler steps modelling
    // the radio/SpaceWire symbol pipeline.
    Reg scrambled = b.bxor(v, b.shl_imm(v, 3));
    scrambled = b.bxor(scrambled, b.shr_imm(scrambled, 2));
    scrambled = b.bxor(scrambled, b.shl_imm(scrambled, 1));
    scrambled = b.and_imm(scrambled, kMask32);
    b.assign(sum, b.and_imm(b.add(b.mul_imm(sum, 31), scrambled), kMask32));
    b.loop_end();
    b.store(b.imm(out), sum);
    b.ret(sum);
    return b.build();
}

ir::Function make_packetize(const std::string& name, std::int64_t src,
                            std::int64_t len_addr, std::int64_t max_words,
                            std::int64_t dst, std::int64_t payload_words,
                            std::int64_t out_len_addr) {
    FunctionBuilder b(name, 0);
    const Reg len = b.load(b.imm(len_addr));
    const Reg packets = b.div(b.add_imm(len, payload_words - 1),
                              b.imm(payload_words));
    const std::int64_t max_packets =
        (max_words + payload_words - 1) / payload_words;
    const Reg out_cell = b.imm(out_len_addr + 1);
    b.store(out_cell, b.imm(0));

    const Reg k = b.dynamic_loop_begin(packets, max_packets);
    const Reg o = b.load(out_cell);
    const Reg pkt_base = b.add_imm(o, dst);
    b.store(pkt_base, b.imm(0xFE), 0);  // destination logical address
    b.store(pkt_base, k, 1);            // sequence number
    const Reg sum = b.mov(b.imm(0));
    const Reg in_base = b.mul_imm(k, payload_words);
    const Reg j = b.loop_begin(payload_words);
    const Reg idx = b.add(in_base, j);
    const Reg in_range = b.cmp_lt(idx, len);
    const Reg raw = b.load(b.add_imm(idx, src));
    const Reg v = b.select(in_range, raw, b.imm(0));
    b.store(b.add(b.add_imm(pkt_base, 2), j), v);
    b.assign(sum, b.and_imm(b.add(sum, v), kMask32));
    b.loop_end();
    b.store(b.add_imm(pkt_base, 2 + payload_words), sum);
    b.store(out_cell, b.add_imm(o, payload_words + 3));
    b.loop_end();

    const Reg total = b.load(out_cell);
    b.store(b.imm(out_len_addr), total);
    b.ret(total);
    return b.build();
}

}  // namespace teamplay::usecases
