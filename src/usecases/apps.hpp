// The four industrial use cases of Sec. IV, assembled from the kernel
// library: complete IR programs, their CSL annotation sources, and the
// target platforms.  Memory maps are public so tests, examples and benches
// can stage inputs and inspect outputs.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ir/program.hpp"
#include "platform/platform.hpp"
#include "sim/machine.hpp"

namespace teamplay::usecases {

struct UseCaseApp {
    std::string name;
    ir::Program program;
    std::string csl_source;
    platform::Platform platform;
};

// -- Camera pill (Sec. IV-A): Cortex-M0 + FPGA, 2 fps imaging pipeline -------
namespace pill {
inline constexpr std::int64_t kWidth = 32;
inline constexpr std::int64_t kHeight = 24;
inline constexpr std::int64_t kPixels = kWidth * kHeight;
inline constexpr std::int64_t kState = 8;    ///< sensor LCG state
inline constexpr std::int64_t kLen = 16;     ///< compressed length (+scratch)
inline constexpr std::int64_t kCrc = 24;     ///< transmit checksum
inline constexpr std::int64_t kSpill = 32;   ///< XTEA v1 spill word
inline constexpr std::int64_t kKey = 40;     ///< 4-word XTEA key
inline constexpr std::int64_t kFrame = 1024;
inline constexpr std::int64_t kPrev = 2048;
inline constexpr std::int64_t kDelta = 3072;
inline constexpr std::int64_t kComp = 4096;  ///< worst case 2*kPixels words
inline constexpr std::int64_t kEnc = 6144;
inline constexpr std::int64_t kCompCap = 2 * kPixels;
}  // namespace pill

[[nodiscard]] UseCaseApp make_camera_pill_app();

/// Write an XTEA key into pill/space memory.
void stage_xtea_key(sim::Machine& machine,
                    const std::array<ir::Word, 4>& key,
                    std::int64_t key_addr = pill::kKey);

// -- Space / SpaceWire downlink (Sec. IV-B): dual LEON3 GR712RC ---------------
namespace space {
inline constexpr std::int64_t kWidth = 32;
inline constexpr std::int64_t kHeight = 32;
inline constexpr std::int64_t kState = 8;
inline constexpr std::int64_t kLen = 16;
inline constexpr std::int64_t kCrc = 24;
inline constexpr std::int64_t kPktLen = 28;
inline constexpr std::int64_t kTeleLen = 34;   ///< telemetry block length
inline constexpr std::int64_t kTeleCrc = 44;
inline constexpr std::int64_t kImg = 1024;     ///< 1024 px
inline constexpr std::int64_t kBin = 2048;     ///< 16x16 binned
inline constexpr std::int64_t kComp = 3072;    ///< RLE, cap 514
inline constexpr std::int64_t kPkt = 4096;     ///< packet stream
inline constexpr std::int64_t kTele = 5500;    ///< telemetry samples
inline constexpr std::int64_t kCompCap = 2 * 16 * 16 + 2;
inline constexpr std::int64_t kPayloadWords = 16;
inline constexpr std::int64_t kTeleWords = 64;
}  // namespace space

[[nodiscard]] UseCaseApp make_space_app();

// -- UAV search-and-rescue / precision agriculture (Sec. IV-C) ----------------
namespace uav {
inline constexpr std::int64_t kWidth = 64;
inline constexpr std::int64_t kHeight = 48;
inline constexpr std::int64_t kSmallW = kWidth / 2;
inline constexpr std::int64_t kSmallH = kHeight / 2;
inline constexpr std::int64_t kState = 8;
inline constexpr std::int64_t kHits = 16;
inline constexpr std::int64_t kTrack = 20;  ///< cx, cy (+3 scratch)
inline constexpr std::int64_t kDlLen = 30;
inline constexpr std::int64_t kDlCrc = 36;
inline constexpr std::int64_t kImg = 1024;
inline constexpr std::int64_t kSmall = 8192;
inline constexpr std::int64_t kDet = 16384;
inline constexpr std::int64_t kDl = 20480;  ///< downlink buffer
inline constexpr std::int64_t kThreshold = 220;
}  // namespace uav

/// `platform_name`: "apalis-tk1", "jetson-tx2" or "jetson-nano".
[[nodiscard]] UseCaseApp make_uav_app(
    const std::string& platform_name = "apalis-tk1");

// -- Ground rover crop inspection (service-trace companion to the UAV) --------
//
// The rover deploys the *same* perception stack as the UAV use case —
// capture, 2x2 binning, Sobel detection, identical memory map — followed by
// a rover-specific mapping tail (RLE field map + logging checksum).  Two
// different programs therefore embed structurally identical kernels, which
// is exactly the cross-program memoisation case: one compiled front /
// profile per shared kernel serves both apps.
namespace rover {
inline constexpr std::int64_t kMapPixels = uav::kSmallW * uav::kSmallH;
inline constexpr std::int64_t kMap = uav::kDl;       ///< RLE field map
inline constexpr std::int64_t kMapCap = 2 * kMapPixels + 2;
inline constexpr std::int64_t kMapLen = uav::kDlLen;
inline constexpr std::int64_t kLogCrc = uav::kDlCrc;
}  // namespace rover

/// `platform_name`: same boards as the UAV (the shared perception kernels
/// only share cache entries when both apps target the same core models).
[[nodiscard]] UseCaseApp make_rover_app(
    const std::string& platform_name = "apalis-tk1");

// -- Deep-learning parking detection (Sec. IV-D) -------------------------------
namespace parking {
inline constexpr std::int64_t kInW = 16;
inline constexpr std::int64_t kInH = 16;
inline constexpr std::int64_t kChannels = 4;
inline constexpr std::int64_t kConvW = kInW - 2;   // 14
inline constexpr std::int64_t kConvH = kInH - 2;   // 14
inline constexpr std::int64_t kPoolW = kConvW / 2; // 7
inline constexpr std::int64_t kPoolH = kConvH / 2; // 7
inline constexpr std::int64_t kFlat = kChannels * kPoolW * kPoolH;  // 196
inline constexpr std::int64_t kHidden = 8;
inline constexpr std::int64_t kClasses = 5;  ///< 0..4 free spots
inline constexpr std::int64_t kState = 8;
inline constexpr std::int64_t kResult = 40;
inline constexpr std::int64_t kW1 = 512;      ///< 4*9 conv weights (Q8)
inline constexpr std::int64_t kIn = 1024;     ///< 256 px
inline constexpr std::int64_t kF1 = 2048;     ///< 4*14*14
inline constexpr std::int64_t kP1 = 4096;     ///< 4*7*7
inline constexpr std::int64_t kWfc1 = 4608;   ///< 8*196
inline constexpr std::int64_t kBfc1 = 6208;   ///< 8
inline constexpr std::int64_t kFc1 = 6272;    ///< 8
inline constexpr std::int64_t kWfc2 = 6656;   ///< 5*8
inline constexpr std::int64_t kBfc2 = 6700;   ///< 5
inline constexpr std::int64_t kFc2 = 6720;    ///< 5
}  // namespace parking

/// `on_m0`: true = Nucleo-F091 (compiler variant study), false = Apalis TK1
/// (coordination-only study), matching the two halves of Sec. IV-D.
[[nodiscard]] UseCaseApp make_parking_app(bool on_m0);

/// Deterministically initialise the CNN weights (Q8 fixed point: edge
/// detectors for the conv stage, seeded pseudo-random for the FC stages).
void stage_parking_weights(sim::Machine& machine, std::uint64_t seed = 2024);

}  // namespace teamplay::usecases
