#include "usecases/apps.hpp"

#include "support/rng.hpp"
#include "usecases/kernels.hpp"

namespace teamplay::usecases {

UseCaseApp make_camera_pill_app() {
    using namespace pill;
    UseCaseApp app;
    app.name = "camera_pill";
    app.platform = platform::camera_pill_board();

    ir::Program program;
    program.memory_words = 8192;
    program.add(make_capture("pill_capture", kFrame, kWidth, kHeight,
                             kState));
    program.add(make_delta_encode("pill_delta", kFrame, kPrev, kDelta,
                                  kPixels));
    program.add(make_rle_compress("pill_compress", kDelta, kComp, kPixels,
                                  kLen));
    program.add(make_xtea_encrypt_block("pill_xtea_block", kKey, kSpill));
    program.add(make_xtea_buffer("pill_encrypt", "pill_xtea_block", kComp,
                                 kEnc, kLen, kCompCap, kSpill));
    program.add(make_xtea_decrypt_block("pill_xtea_unblock", kKey, kSpill));
    program.add(make_transmit("pill_transmit", kEnc, kLen, kCompCap, kCrc));
    app.program = std::move(program);

    // Budgets: generous static envelopes the certificate must prove; the
    // interesting comparison (traditional vs TeamPlay) is in the bench.
    app.csl_source = R"(# Camera pill: 2 fps GI imaging with encryption (Sec. IV-A)
app camera_pill on camera-pill deadline 100ms {
  task capture  { entry pill_capture;  period 500ms; deadline 25ms;
                  budget time 30ms; budget energy 30mJ; core_class mcu; }
  task delta    { entry pill_delta;    period 500ms; deadline 45ms;
                  budget time 30ms; budget energy 30mJ; core_class mcu; }
  task compress { entry pill_compress; period 500ms; deadline 65ms;
                  budget time 40ms; budget energy 40mJ; core_class mcu; }
  task encrypt  { entry pill_encrypt;  period 500ms; deadline 95ms;
                  budget time 120ms; budget energy 80mJ; budget leakage 4;
                  security auto; core_class mcu; }
  task transmit { entry pill_transmit; period 500ms; deadline 100ms;
                  budget time 30ms; budget energy 30mJ; core_class mcu; }
  flow capture -> delta -> compress -> encrypt -> transmit;
}
)";
    return app;
}

void stage_xtea_key(sim::Machine& machine, const std::array<ir::Word, 4>& key,
                    std::int64_t key_addr) {
    for (std::size_t i = 0; i < key.size(); ++i)
        machine.poke(static_cast<std::size_t>(key_addr) + i,
                     key[i] & kMask32);
}

UseCaseApp make_space_app() {
    using namespace space;
    UseCaseApp app;
    app.name = "spacewire_downlink";
    app.platform = platform::gr712rc();

    ir::Program program;
    program.memory_words = 8192;
    program.add(make_capture("sw_acquire", kImg, kWidth, kHeight, kState));
    program.add(make_bin2x2("sw_bin", kImg, kBin, kWidth, kHeight));
    program.add(make_rle_compress("sw_compress", kBin, kComp,
                                  (kWidth / 2) * (kHeight / 2), kLen));
    program.add(make_crc32("sw_crc", kComp, kLen, kCompCap, kCrc));
    program.add(make_packetize("sw_packetize", kComp, kLen, kCompCap, kPkt,
                               kPayloadWords, kPktLen));
    program.add(make_transmit("sw_transmit", kPkt, kPktLen,
                              kCompCap + 8 * (kPayloadWords + 3), kCrc + 1));
    // Independent telemetry chain keeps the second LEON3 busy.
    program.add(make_capture("sw_sensor", kTele, 8, 8, kState + 1));
    {
        // Telemetry length is fixed; publish it for the transmit kernel.
        ir::FunctionBuilder b("sw_tele_len", 0);
        b.store(b.imm(kTeleLen), b.imm(kTeleWords));
        b.ret(b.imm(0));
        program.add(b.build());
    }
    program.add(make_transmit("sw_telemetry", kTele, kTeleLen, kTeleWords,
                              kTeleCrc));
    app.program = std::move(program);

    app.csl_source = R"(# SpaceWire image downlink on GR712RC (Sec. IV-B)
app spacewire_downlink on gr712rc deadline 800ms {
  task acquire   { entry sw_acquire;   period 1000ms; deadline 200ms;
                   budget time 120ms; budget energy 700mJ; }
  task bin       { entry sw_bin;       period 1000ms; deadline 300ms;
                   budget time 80ms; budget energy 500mJ; after acquire; }
  task compress  { entry sw_compress;  period 1000ms; deadline 450ms;
                   budget time 80ms; budget energy 500mJ; after bin; }
  task crc       { entry sw_crc;       period 1000ms; deadline 600ms;
                   budget time 120ms; budget energy 700mJ; after compress; }
  task packetize { entry sw_packetize; period 1000ms; deadline 700ms;
                   budget time 120ms; budget energy 700mJ; after crc; }
  task downlink  { entry sw_transmit;  period 1000ms; deadline 800ms;
                   budget time 120ms; budget energy 700mJ; after packetize; }
  task sensor    { entry sw_sensor;    period 1000ms; deadline 400ms;
                   budget time 80ms; budget energy 500mJ; }
  task telelen   { entry sw_tele_len;  period 1000ms; deadline 450ms;
                   budget time 10ms; budget energy 100mJ; after sensor; }
  task telemetry { entry sw_telemetry; period 1000ms; deadline 800ms;
                   budget time 60ms; budget energy 400mJ; after telelen; }
}
)";
    return app;
}

UseCaseApp make_uav_app(const std::string& platform_name) {
    using namespace uav;
    UseCaseApp app;
    app.name = "uav_detection";
    app.platform = platform::by_name(platform_name);

    ir::Program program;
    program.memory_words = 32768;
    program.add(make_capture("uav_capture", kImg, kWidth, kHeight, kState));
    program.add(make_bin2x2("uav_resize", kImg, kSmall, kWidth, kHeight));
    program.add(make_sobel_detect("uav_detect", kSmall, kDet, kSmallW,
                                  kSmallH, kHits, kThreshold));
    program.add(make_centroid("uav_track", kDet, kSmallW, kSmallH, kTrack));
    {
        // Encode the detection summary (hits, centroid, frame tag) into the
        // downlink buffer and publish its length.
        ir::FunctionBuilder b("uav_encode", 0);
        const auto buf = b.imm(kDl);
        b.store(buf, b.load(b.imm(kHits)), 0);
        b.store(buf, b.load(b.imm(kTrack)), 1);
        b.store(buf, b.load(b.imm(kTrack + 1)), 2);
        b.store(buf, b.load(b.imm(kState)), 3);
        b.store(b.imm(kDlLen), b.imm(4));
        b.ret(b.imm(0));
        program.add(b.build());
    }
    program.add(make_transmit("uav_downlink", kDl, kDlLen, 16, kDlCrc));
    app.program = std::move(program);

    app.csl_source = "# UAV detection pipeline (Sec. IV-C)\n"
                     "app uav_detection on " +
                     platform_name + R"( deadline 200ms {
  task capture  { entry uav_capture;  period 200ms; deadline 60ms;
                  budget time 50ms; budget energy 200mJ; core_class big; }
  task resize   { entry uav_resize;   period 200ms; deadline 90ms;
                  budget time 40ms; budget energy 150mJ; core_class big;
                  after capture; }
  task detect   { entry uav_detect;   period 200ms; deadline 140ms;
                  budget time 60ms; budget energy 250mJ; after resize; }
  task track    { entry uav_track;    period 200ms; deadline 170ms;
                  budget time 40ms; budget energy 150mJ; core_class big;
                  after detect; }
  task encode   { entry uav_encode;   period 200ms; deadline 185ms;
                  budget time 20ms; budget energy 80mJ; core_class big;
                  after track; }
  task downlink { entry uav_downlink; period 200ms; deadline 200ms;
                  budget time 20ms; budget energy 80mJ; core_class big;
                  after encode; }
}
)";
    return app;
}

UseCaseApp make_rover_app(const std::string& platform_name) {
    using namespace uav;  // the perception stack shares the UAV memory map
    UseCaseApp app;
    app.name = "rover_inspect";
    app.platform = platform::by_name(platform_name);

    ir::Program program;
    program.memory_words = 32768;  // must match the UAV map for kernel reuse
    // Shared perception kernels: byte-for-byte the same builder calls as
    // make_uav_app, so their entry DAGs are structurally identical and the
    // evaluation cache serves one compiled front / profile to both apps.
    program.add(make_capture("uav_capture", kImg, kWidth, kHeight, kState));
    program.add(make_bin2x2("uav_resize", kImg, kSmall, kWidth, kHeight));
    program.add(make_sobel_detect("uav_detect", kSmall, kDet, kSmallW,
                                  kSmallH, kHits, kThreshold));
    // Rover-specific tail: RLE-compress the detection map into a field map
    // and checksum-log it (slow ground platform: mapping, not downlink).
    program.add(make_rle_compress("rover_map", kDet, rover::kMap, kSmallW *
                                  kSmallH, rover::kMapLen));
    program.add(make_transmit("rover_log", rover::kMap, rover::kMapLen,
                              rover::kMapCap, rover::kLogCrc));
    app.program = std::move(program);

    app.csl_source = "# Ground rover crop inspection (UAV perception stack "
                     "re-deployed)\n"
                     "app rover_inspect on " +
                     platform_name + R"( deadline 500ms {
  task capture { entry uav_capture; period 500ms; deadline 120ms;
                 budget time 80ms; budget energy 400mJ; core_class big; }
  task resize  { entry uav_resize;  period 500ms; deadline 200ms;
                 budget time 80ms; budget energy 400mJ; core_class big;
                 after capture; }
  task detect  { entry uav_detect;  period 500ms; deadline 320ms;
                 budget time 120ms; budget energy 500mJ; after resize; }
  task map     { entry rover_map;   period 500ms; deadline 430ms;
                 budget time 100ms; budget energy 450mJ; core_class big;
                 after detect; }
  task log     { entry rover_log;   period 500ms; deadline 500ms;
                 budget time 80ms; budget energy 400mJ; core_class big;
                 after map; }
}
)";
    return app;
}

UseCaseApp make_parking_app(bool on_m0) {
    using namespace parking;
    UseCaseApp app;
    app.name = "parking_cnn";
    app.platform =
        on_m0 ? platform::nucleo_f091() : platform::apalis_tk1();

    ir::Program program;
    program.memory_words = 8192;
    program.add(make_capture("park_capture", kIn, kInW, kInH, kState));
    program.add(make_conv3x3_relu("park_conv", kIn, kW1, kF1, kInW, kInH,
                                  kChannels));
    program.add(make_maxpool2x2("park_pool", kF1, kP1, kConvW, kConvH,
                                kChannels));
    program.add(make_fc("park_fc1", kP1, kWfc1, kBfc1, kFc1, kFlat, kHidden,
                        /*relu=*/true));
    program.add(make_fc("park_fc2", kFc1, kWfc2, kBfc2, kFc2, kHidden,
                        kClasses, /*relu=*/false));
    program.add(make_argmax("park_decide", kFc2, kClasses, kResult));
    app.program = std::move(program);

    const std::string platform_name = app.platform.name;
    const std::string core_constraint =
        on_m0 ? "core_class mcu;" : "core_class big;";
    app.csl_source = "# Free-parking-spot CNN (Sec. IV-D)\n"
                     "app parking_cnn on " +
                     platform_name + R"( deadline 1000ms {
  task capture { entry park_capture; period 1000ms; deadline 200ms;
                 budget time 100ms; budget energy 100mJ; )" +
                     core_constraint + R"( }
  task conv    { entry park_conv;    period 1000ms; deadline 600ms;
                 budget time 400ms; budget energy 300mJ; after capture; }
  task pool    { entry park_pool;    period 1000ms; deadline 700ms;
                 budget time 100ms; budget energy 100mJ; after conv; }
  task fc1     { entry park_fc1;     period 1000ms; deadline 850ms;
                 budget time 200ms; budget energy 200mJ; after pool; }
  task fc2     { entry park_fc2;     period 1000ms; deadline 900ms;
                 budget time 50ms; budget energy 50mJ; after fc1; }
  task decide  { entry park_decide;  period 1000ms; deadline 1000ms;
                 budget time 20ms; budget energy 20mJ; after fc2; }
}
)";
    return app;
}

void stage_parking_weights(sim::Machine& machine, std::uint64_t seed) {
    using namespace parking;
    support::Rng rng(seed);

    // Conv stage: four Q8 edge/blob detectors.
    const std::array<std::array<ir::Word, 9>, 4> conv_kernels = {{
        {-256, 0, 256, -512, 0, 512, -256, 0, 256},     // vertical edges
        {-256, -512, -256, 0, 0, 0, 256, 512, 256},     // horizontal edges
        {-256, -256, -256, -256, 2048, -256, -256, -256, -256},  // blob
        {0, 256, 0, 256, -1024, 256, 0, 256, 0},        // laplacian
    }};
    for (std::size_t c = 0; c < conv_kernels.size(); ++c)
        for (std::size_t k = 0; k < 9; ++k)
            machine.poke(static_cast<std::size_t>(kW1) + c * 9 + k,
                         conv_kernels[c][k]);

    // FC stages: small signed Q8 weights, deterministic from the seed.
    for (std::int64_t i = 0; i < kHidden * kFlat; ++i)
        machine.poke(static_cast<std::size_t>(kWfc1 + i),
                     rng.range(-48, 48));
    for (std::int64_t i = 0; i < kHidden; ++i)
        machine.poke(static_cast<std::size_t>(kBfc1 + i), rng.range(-8, 8));
    for (std::int64_t i = 0; i < kClasses * kHidden; ++i)
        machine.poke(static_cast<std::size_t>(kWfc2 + i),
                     rng.range(-96, 96));
    for (std::int64_t i = 0; i < kClasses; ++i)
        machine.poke(static_cast<std::size_t>(kBfc2 + i), rng.range(-16, 16));
}

}  // namespace teamplay::usecases
