#include "fuzz/oracle.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "core/sharded_engine.hpp"
#include "core/wire.hpp"
#include "net/remote_shard.hpp"
#include "net/shard_server.hpp"
#include "sim/trace.hpp"

namespace teamplay::fuzz {

core::ScenarioRequest scenario_request(const GeneratedScenario& scenario,
                                       const ir::Program& program,
                                       const core::WorkflowOptions& options) {
    core::ScenarioRequest request;
    request.program = &program;
    request.platform = &scenario.platform;
    request.csl_source = scenario.csl_source;
    request.options = options;
    request.label = scenario.name;
    return request;
}

namespace {

std::size_t first_mismatch(const std::vector<std::uint8_t>& a,
                           const std::vector<std::uint8_t>& b) {
    const std::size_t n = std::min(a.size(), b.size());
    std::size_t offset = 0;
    while (offset < n && a[offset] == b[offset]) ++offset;
    return offset;
}

}  // namespace

core::WorkflowOptions fuzz_workflow_options() {
    core::WorkflowOptions options;
    // Small search budgets: still multi-version, still annealed, but one
    // scenario crosses all tiers in milliseconds.  These feed every cache
    // key, so every tier runs the exact same configuration.
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 2;
    options.scheduler.anneal_iterations = 40;
    return options;
}

OracleConfig::OracleConfig() : options(fuzz_workflow_options()) {}

std::string Divergence::to_string() const {
    std::ostringstream out;
    out << "tier=" << tier << " first-diff-byte=" << byte_offset
        << " reference-bytes=" << reference_size
        << " tier-bytes=" << tier_size;
    return out.str();
}

std::vector<std::uint8_t> canonical_bytes(core::ToolchainReport report) {
    report.stage_laps.clear();
    return core::wire::encode(report);
}

DifferentialOracle::DifferentialOracle(OracleConfig config)
    : config_(std::move(config)) {}

core::ToolchainReport DifferentialOracle::reference(
    const GeneratedScenario& scenario) const {
    return reference(scenario.program, scenario);
}

core::ToolchainReport DifferentialOracle::reference(
    const ir::Program& program, const GeneratedScenario& scenario) const {
    core::ScenarioEngine engine;  // caller-only, interpreter sim
    return engine.run(scenario_request(scenario, program, config_.options));
}

OracleResult DifferentialOracle::check(
    const GeneratedScenario& scenario) const {
    OracleResult result;
    const auto request =
        scenario_request(scenario, scenario.program, config_.options);

    result.tiers.push_back("engine/single");
    const auto reference_bytes = canonical_bytes([&] {
        core::ScenarioEngine engine;
        return engine.run(request);
    }());

    // Run one tier and compare its bytes against the reference; stop the
    // sweep at the first divergence so the recorded tier pair is minimal.
    const auto run_tier = [&](const std::string& tier, auto&& produce) {
        if (result.divergence.has_value()) return;
        result.tiers.push_back(tier);
        const std::vector<std::uint8_t> bytes = produce();
        if (bytes == reference_bytes) return;
        result.divergence =
            Divergence{tier, first_mismatch(reference_bytes, bytes),
                       reference_bytes.size(), bytes.size()};
    };

    run_tier("engine/threads", [&] {
        core::ScenarioEngine::Options options;
        options.worker_threads = config_.threads;
        core::ScenarioEngine engine(options);
        return canonical_bytes(engine.run(request));
    });

    run_tier("engine/sharded", [&] {
        core::ShardedScenarioEngine::Options options;
        options.shards = config_.shards;
        options.worker_threads = config_.threads;
        core::ShardedScenarioEngine engine(options);
        return canonical_bytes(engine.run(request));
    });

    run_tier("sim/trace", [&] {
        core::ScenarioEngine::Options options;
        options.sim.backend = sim::SimBackend::kTrace;
        options.sim.trace_cache = std::make_shared<sim::TraceCache>();
        core::ScenarioEngine engine(options);
        return canonical_bytes(engine.run(request));
    });

    // Request round-trip: the decoded request must re-encode to the same
    // bytes *and* produce the same report when executed.
    run_tier("wire/request", [&]() -> std::vector<std::uint8_t> {
        const auto encoded = core::wire::encode(request);
        const auto frame = core::wire::decode_request(encoded);
        const auto re_encoded = core::wire::encode(frame.request());
        if (re_encoded != encoded) {
            // encode∘decode identity broke on the *request* bytes; record
            // against those, not the report encoding.
            result.divergence = Divergence{
                "wire/request", first_mismatch(encoded, re_encoded),
                encoded.size(), re_encoded.size()};
            return reference_bytes;
        }
        core::ScenarioEngine engine;
        return canonical_bytes(engine.run(frame.request()));
    });

    run_tier("wire/report", [&] {
        return core::wire::encode(core::wire::decode_report(reference_bytes));
    });

    if (config_.loopback) {
        run_tier("net/loopback", [&] {
            net::ShardServer::Options server_options;
            server_options.engine.worker_threads = 1;
            net::ShardServer server(server_options);
            net::RemoteShard::Options remote_options;
            remote_options.port = server.port();
            net::RemoteShard remote(remote_options);
            return canonical_bytes(remote.submit(request).get());
        });
    }

    return result;
}

}  // namespace teamplay::fuzz
