#include "fuzz/generator.hpp"

#include <algorithm>
#include <sstream>

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace teamplay::fuzz {

namespace {

/// Boards the generator draws from.  Predictable boards are listed twice
/// as often as complex ones would be drawn: the static flow is the cheap
/// tier, and profiling cost scales with the board's OPP tables.
const char* const kPredictableBoards[] = {"nucleo-f091", "camera-pill",
                                          "gr712rc"};
const char* const kComplexBoards[] = {"apalis-tk1", "jetson-tx2",
                                      "jetson-nano"};

/// Headroom kept between an address base and the fault bound: offsets are
/// drawn below this, so base + offset < memory_words always holds.
constexpr std::int64_t kAddrHeadroom = 64;

std::string hex_seed(std::uint64_t seed) {
    std::ostringstream os;
    os << std::hex << seed;
    return os.str();
}

/// Per-function generation state.  The register discipline lives here:
/// `values` may appear as any operand, `addrs` are the *only* registers a
/// load/store may dereference (each remembers its immediate base, proving
/// base + offset stays under the fault bound), and the two sets never mix
/// — in particular `assign` only ever overwrites a value register, so an
/// address register provably holds its base for the whole function.
struct FnState {
    ir::FunctionBuilder builder;
    std::vector<ir::Reg> values;
    struct Addr {
        ir::Reg reg;
        std::int64_t base;
    };
    std::vector<Addr> addrs;

    FnState(std::string name, int param_count)
        : builder(std::move(name), param_count) {}
};

/// Name + arity of an already-generated function (a legal callee).
struct Callable {
    std::string name;
    int param_count;
};

class Generation {
public:
    Generation(std::uint64_t seed, const GeneratorConfig& config)
        : rng_(seed), config_(config) {}

    GeneratedScenario run(std::uint64_t seed) {
        GeneratedScenario scenario;
        scenario.seed = seed;
        scenario.name = "fuzz_" + hex_seed(seed);
        scenario.platform = pick_platform();
        scenario.program.memory_words = config_.memory_words;

        const auto function_count = static_cast<std::size_t>(rng_.range(
            static_cast<std::int64_t>(config_.min_functions),
            static_cast<std::int64_t>(config_.max_functions)));
        for (std::size_t i = 0; i < function_count; ++i) {
            const std::string name = "fz_f" + std::to_string(i);
            const int params = static_cast<int>(rng_.range(0, 3));
            scenario.program.add(make_function(name, params));
            callables_.push_back({name, params});
        }

        emit_csl(scenario);
        return scenario;
    }

private:
    platform::Platform pick_platform() {
        const bool complex_board =
            config_.allow_complex_platforms && rng_.chance(1.0 / 3.0);
        if (complex_board)
            return platform::by_name(
                kComplexBoards[rng_.below(std::size(kComplexBoards))]);
        return platform::by_name(
            kPredictableBoards[rng_.below(std::size(kPredictableBoards))]);
    }

    ir::Function make_function(const std::string& name, int params) {
        FnState fn(name, params);
        for (int p = 0; p < params; ++p)
            fn.values.push_back(fn.builder.param(p));
        // Seed the value pool so operand draws never come up empty.
        fn.values.push_back(fn.builder.imm(rng_.range(-64, 64)));
        fn.values.push_back(fn.builder.imm(rng_.range(0, 255)));

        emit_regions(fn, /*depth=*/0);

        // Always return a freshly *computed* value: DCE may sweep every
        // other pure def, but the returned one survives, so no entry can
        // collapse to a zero-WCET empty body (the task graph rejects
        // versions with non-positive time).
        const auto lhs = value(fn);
        const auto rhs = value(fn);
        fn.builder.ret(fn.builder.add(lhs, rhs));
        return fn.builder.build();
    }

    ir::Reg value(FnState& fn) {
        return fn.values[rng_.below(fn.values.size())];
    }

    /// An address register whose base immediate leaves `kAddrHeadroom`
    /// words below the fault bound.
    const FnState::Addr& addr(FnState& fn) {
        if (fn.addrs.empty() || (fn.addrs.size() < 3 && rng_.chance(0.4))) {
            const std::int64_t base = rng_.range(
                0, static_cast<std::int64_t>(config_.memory_words) -
                       kAddrHeadroom - 1);
            fn.addrs.push_back({fn.builder.imm(base), base});
        }
        return fn.addrs[rng_.below(fn.addrs.size())];
    }

    void emit_instr(FnState& fn) {
        auto& b = fn.builder;
        switch (rng_.below(12)) {
            case 0:
                fn.values.push_back(b.imm(rng_.range(-4096, 4096)));
                break;
            case 1: {  // commutative-ish arithmetic
                const ir::Reg a = value(fn);
                const ir::Reg c = value(fn);
                switch (rng_.below(5)) {
                    case 0: fn.values.push_back(b.add(a, c)); break;
                    case 1: fn.values.push_back(b.sub(a, c)); break;
                    case 2: fn.values.push_back(b.mul(a, c)); break;
                    case 3: fn.values.push_back(b.div(a, c)); break;
                    default: fn.values.push_back(b.rem(a, c)); break;
                }
                break;
            }
            case 2: {  // bitwise
                const ir::Reg a = value(fn);
                const ir::Reg c = value(fn);
                switch (rng_.below(5)) {
                    case 0: fn.values.push_back(b.band(a, c)); break;
                    case 1: fn.values.push_back(b.bor(a, c)); break;
                    case 2: fn.values.push_back(b.bxor(a, c)); break;
                    case 3: fn.values.push_back(b.shl(a, c)); break;
                    default: fn.values.push_back(b.shr(a, c)); break;
                }
                break;
            }
            case 3: {  // comparisons
                const ir::Reg a = value(fn);
                const ir::Reg c = value(fn);
                switch (rng_.below(4)) {
                    case 0: fn.values.push_back(b.cmp_eq(a, c)); break;
                    case 1: fn.values.push_back(b.cmp_lt(a, c)); break;
                    case 2: fn.values.push_back(b.cmp_ge(a, c)); break;
                    default: fn.values.push_back(b.cmp_ne(a, c)); break;
                }
                break;
            }
            case 4: {  // unary
                const ir::Reg a = value(fn);
                switch (rng_.below(4)) {
                    case 0: fn.values.push_back(b.bnot(a)); break;
                    case 1: fn.values.push_back(b.neg(a)); break;
                    case 2: fn.values.push_back(b.sabs(a)); break;
                    default: fn.values.push_back(b.popcnt(a)); break;
                }
                break;
            }
            case 5: {  // min/max
                const ir::Reg a = value(fn);
                const ir::Reg c = value(fn);
                fn.values.push_back(rng_.chance(0.5) ? b.smin(a, c)
                                                     : b.smax(a, c));
                break;
            }
            case 6: {
                // Hoisted operands: rng draws inside one call expression
                // would be unsequenced, breaking cross-compiler replay.
                const ir::Reg cond = value(fn);
                const ir::Reg then_v = value(fn);
                const ir::Reg else_v = value(fn);
                fn.values.push_back(b.select(cond, then_v, else_v));
                break;
            }
            case 7: {  // load: only through the safe address pool
                const auto address = addr(fn);
                const auto offset =
                    static_cast<ir::Word>(rng_.range(0, kAddrHeadroom - 1));
                fn.values.push_back(b.load(address.reg, offset));
                break;
            }
            case 8: {  // store
                const auto address = addr(fn);
                const ir::Reg stored = value(fn);
                const auto offset =
                    static_cast<ir::Word>(rng_.range(0, kAddrHeadroom - 1));
                b.store(address.reg, stored, offset);
                break;
            }
            case 9:
                if (config_.allow_security_hints) {
                    fn.values.push_back(b.secret(value(fn)));
                } else {
                    fn.values.push_back(b.mov(value(fn)));
                }
                break;
            case 10: {
                const ir::Reg a = value(fn);
                const ir::Word delta = rng_.range(-16, 16);
                fn.values.push_back(b.add_imm(a, delta));
                break;
            }
            default:
                b.nop();
                break;
        }
    }

    void emit_block(FnState& fn) {
        const auto count = 1 + rng_.below(config_.max_block_instrs);
        for (std::size_t i = 0; i < count; ++i) emit_instr(fn);
    }

    void emit_regions(FnState& fn, std::size_t depth) {
        auto& b = fn.builder;
        const auto regions = 1 + rng_.below(config_.max_regions_per_seq);
        for (std::size_t r = 0; r < regions; ++r) {
            const bool may_nest = depth < config_.max_region_depth;
            switch (rng_.below(6)) {
                case 0:
                case 1:
                    emit_block(fn);
                    break;
                case 2:  // if / if-else
                    if (!may_nest) {
                        emit_block(fn);
                        break;
                    }
                    b.if_begin(value(fn));
                    emit_regions(fn, depth + 1);
                    if (rng_.chance(0.5)) {
                        b.if_else();
                        emit_regions(fn, depth + 1);
                    }
                    b.if_end();
                    break;
                case 3: {  // counted or dynamic loop
                    if (!may_nest) {
                        emit_block(fn);
                        break;
                    }
                    const std::int64_t trip =
                        rng_.range(0, config_.max_loop_trip);
                    const std::int64_t bound = trip + rng_.range(0, 2);
                    ir::Reg index = ir::kNoReg;
                    if (rng_.chance(0.3)) {
                        // Dynamic trip: the trip register is a fresh
                        // immediate in [0, bound], so the machine's
                        // trip-exceeds-bound fault can never fire.
                        const std::int64_t dyn_bound = std::max<std::int64_t>(
                            bound, 1);
                        index = b.dynamic_loop_begin(
                            b.imm(rng_.range(0, dyn_bound)), dyn_bound);
                    } else {
                        index = b.loop_begin(trip, bound);
                    }
                    fn.values.push_back(index);
                    emit_regions(fn, depth + 1);
                    // Loop-carried register state (the unroll pass must
                    // detect and refuse these loops — diversity for the
                    // compiler's legality analysis).
                    if (rng_.chance(0.3)) {
                        const ir::Reg dst = value(fn);
                        b.assign(dst, value(fn));
                    }
                    b.loop_end();
                    break;
                }
                case 4:  // call an earlier function (acyclic by index)
                    if (callables_.empty()) {
                        emit_block(fn);
                        break;
                    } else {
                        const auto& callee =
                            callables_[rng_.below(callables_.size())];
                        std::vector<ir::Reg> args;
                        args.reserve(
                            static_cast<std::size_t>(callee.param_count));
                        for (int a = 0; a < callee.param_count; ++a)
                            args.push_back(value(fn));
                        fn.values.push_back(
                            b.call(callee.name, std::move(args)));
                    }
                    break;
                default:
                    emit_block(fn);
                    break;
            }
        }
    }

    void emit_csl(GeneratedScenario& scenario) {
        const auto task_count =
            1 + rng_.below(std::max<std::size_t>(config_.max_tasks, 1));
        std::ostringstream os;
        os << "# generated scenario seed=0x" << std::hex << scenario.seed
           << std::dec << "\n";
        os << "app " << scenario.name << " on " << scenario.platform.name
           << " deadline 2000ms {\n";
        for (std::size_t k = 0; k < task_count; ++k) {
            const auto& entry = callables_[rng_.below(callables_.size())];
            scenario.entries.push_back(entry.name);
            os << "  task t" << k << " { entry " << entry.name
               << "; period 500ms; deadline " << (200 + 100 * k) << "ms;"
               << " budget time 5000ms; budget energy 100000mJ;";
            if (config_.allow_security_hints && rng_.chance(0.3)) {
                static const char* const kHints[] = {"none", "balance",
                                                     "ladder", "auto"};
                os << " security " << kHints[rng_.below(4)] << ";";
            }
            if (k > 0 && rng_.chance(0.5))
                os << " after t" << rng_.below(k) << ";";
            os << " }\n";
        }
        os << "}\n";
        scenario.csl_source = os.str();
    }

    support::Rng rng_;
    const GeneratorConfig& config_;
    std::vector<Callable> callables_;
};

}  // namespace

GeneratorConfig GeneratorConfig::normalised() const {
    GeneratorConfig c = *this;
    c.min_functions = std::max<std::size_t>(c.min_functions, 1);
    c.max_functions = std::max(c.max_functions, c.min_functions);
    c.max_tasks = std::max<std::size_t>(c.max_tasks, 1);
    c.max_region_depth = std::max<std::size_t>(c.max_region_depth, 1);
    c.max_block_instrs = std::max<std::size_t>(c.max_block_instrs, 1);
    c.max_regions_per_seq = std::max<std::size_t>(c.max_regions_per_seq, 1);
    c.max_loop_trip = std::max<std::int64_t>(c.max_loop_trip, 0);
    c.memory_words = std::max<std::size_t>(
        c.memory_words, static_cast<std::size_t>(2 * kAddrHeadroom));
    return c;
}

ProgramGenerator::ProgramGenerator(GeneratorConfig config)
    : config_(config.normalised()) {}

GeneratedScenario ProgramGenerator::scenario(std::uint64_t seed) const {
    Generation generation(seed, config_);
    return generation.run(seed);
}

}  // namespace teamplay::fuzz
