#include "fuzz/mutator.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "ir/builder.hpp"

namespace teamplay::fuzz {

namespace {

using ir::Function;
using ir::Instr;
using ir::Node;
using ir::NodeKind;
using ir::Program;
using ir::Reg;

Function* pick_function(Program& program, support::Rng& rng) {
    if (program.functions.empty()) return nullptr;
    auto it = program.functions.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         rng.below(program.functions.size())));
    return &it->second;
}

/// Pointers to every instruction of `fn` satisfying `pred`, pre-order.
template <typename Pred>
std::vector<Instr*> matching_instrs(Function& fn, Pred&& pred) {
    std::vector<Instr*> instrs;
    if (!fn.body) return instrs;
    ir::for_each_instr(*fn.body, [&](Instr& instr) {
        if (pred(instr)) instrs.push_back(&instr);
    });
    return instrs;
}

/// Append a node to the function's top-level Seq body.
bool append_to_body(Function& fn, ir::NodePtr node) {
    if (!fn.body || fn.body->kind != NodeKind::kSeq) return false;
    fn.body->children.push_back(std::move(node));
    return true;
}

ir::NodePtr empty_block() { return Node::block({}); }

bool instrs_equal(const Instr& a, const Instr& b) {
    return a.op == b.op && a.dst == b.dst && a.a == b.a && a.b == b.b &&
           a.c == b.c && a.imm == b.imm && a.secret == b.secret;
}

bool nodes_equal(const Node& a, const Node& b) {
    if (a.kind != b.kind) return false;
    if (a.instrs.size() != b.instrs.size()) return false;
    for (std::size_t i = 0; i < a.instrs.size(); ++i)
        if (!instrs_equal(a.instrs[i], b.instrs[i])) return false;
    if (a.children.size() != b.children.size()) return false;
    for (std::size_t i = 0; i < a.children.size(); ++i)
        if (!nodes_equal(*a.children[i], *b.children[i])) return false;
    if (a.cond != b.cond || a.trip != b.trip || a.bound != b.bound ||
        a.trip_reg != b.trip_reg || a.index_reg != b.index_reg ||
        a.stride != b.stride || a.callee != b.callee || a.args != b.args ||
        a.ret != b.ret)
        return false;
    const auto branch_equal = [](const ir::NodePtr& x, const ir::NodePtr& y) {
        if ((x == nullptr) != (y == nullptr)) return false;
        return x == nullptr || nodes_equal(*x, *y);
    };
    return branch_equal(a.then_branch, b.then_branch) &&
           branch_equal(a.else_branch, b.else_branch) &&
           branch_equal(a.body, b.body);
}

/// Shift every non-parameter register of `fn` up by `delta` (parameters
/// are positional ABI and stay pinned — exactly the canonicalisation the
/// structural fingerprint promises to erase).
void alpha_rename(Function& fn, Reg delta) {
    const auto map = [&fn, delta](Reg reg) {
        if (reg == ir::kNoReg || reg < fn.param_count) return reg;
        return static_cast<Reg>(reg + delta);
    };
    fn.ret_reg = map(fn.ret_reg);
    ir::visit(*fn.body, [&map](Node& node) {
        node.cond = map(node.cond);
        node.trip_reg = map(node.trip_reg);
        node.index_reg = map(node.index_reg);
        node.ret = map(node.ret);
        for (auto& arg : node.args) arg = map(arg);
        for (auto& instr : node.instrs) {
            instr.dst = map(instr.dst);
            instr.a = map(instr.a);
            instr.b = map(instr.b);
            instr.c = map(instr.c);
        }
    });
    fn.reg_count += delta;
}

/// A function name not yet present in the program.
std::string fresh_name(const Program& program, const std::string& stem) {
    std::string candidate = stem;
    for (int i = 0; program.find(candidate) != nullptr; ++i)
        candidate = stem + "_" + std::to_string(i);
    return candidate;
}

}  // namespace

std::string_view name(SemanticMutation mutation) {
    switch (mutation) {
        case SemanticMutation::kAlphaRename: return "alpha-rename";
        case SemanticMutation::kRegCountPad: return "reg-count-pad";
        case SemanticMutation::kDecoyFunction: return "decoy-function";
        case SemanticMutation::kSwapIdenticalRegions:
            return "swap-identical-regions";
    }
    return "?";
}

std::string_view name(InvalidMutation mutation) {
    switch (mutation) {
        case InvalidMutation::kRegOutOfRange: return "reg-out-of-range";
        case InvalidMutation::kMissingDst: return "missing-dst";
        case InvalidMutation::kRetRegOutOfRange: return "ret-reg-out-of-range";
        case InvalidMutation::kDanglingCallee: return "dangling-callee";
        case InvalidMutation::kArgCountMismatch: return "arg-count-mismatch";
        case InvalidMutation::kZeroDynamicBound: return "zero-dynamic-bound";
        case InvalidMutation::kBoundBelowTrip: return "bound-below-trip";
        case InvalidMutation::kMissingThenBranch: return "missing-then-branch";
        case InvalidMutation::kMissingLoopBody: return "missing-loop-body";
        case InvalidMutation::kParamsExceedRegs: return "params-exceed-regs";
        case InvalidMutation::kRecursion: return "recursion";
        case InvalidMutation::kNameKeyMismatch: return "name-key-mismatch";
        case InvalidMutation::kOobMemoryOffset: return "oob-memory-offset";
    }
    return "?";
}

bool apply_semantic(Program& program, const std::string& entry,
                    SemanticMutation mutation, support::Rng& rng) {
    switch (mutation) {
        case SemanticMutation::kAlphaRename: {
            // Prefer the entry function (the fingerprinted sub-program's
            // root); fall back to any function.
            Function* fn = program.find(entry);
            if (fn == nullptr) fn = pick_function(program, rng);
            if (fn == nullptr || !fn->body) return false;
            alpha_rename(*fn, static_cast<Reg>(3 + rng.below(13)));
            return true;
        }
        case SemanticMutation::kRegCountPad: {
            Function* fn = pick_function(program, rng);
            if (fn == nullptr) return false;
            fn->reg_count += static_cast<int>(1 + rng.below(8));
            return true;
        }
        case SemanticMutation::kDecoyFunction: {
            // Unreachable by construction: nothing calls a fresh name.
            ir::FunctionBuilder b(fresh_name(program, "zz_decoy"), 1);
            const auto doubled = b.add(b.param(0), b.param(0));
            b.ret(b.add_imm(doubled, rng.range(1, 64)));
            program.add(b.build());
            return true;
        }
        case SemanticMutation::kSwapIdenticalRegions: {
            struct Site {
                Node* seq;
                std::size_t index;
            };
            std::vector<Site> sites;
            for (auto& [fn_name, fn] : program.functions) {
                if (!fn.body) continue;
                ir::visit(*fn.body, [&sites](Node& node) {
                    if (node.kind != NodeKind::kSeq) return;
                    for (std::size_t i = 0; i + 1 < node.children.size();
                         ++i)
                        if (nodes_equal(*node.children[i],
                                        *node.children[i + 1]))
                            sites.push_back({&node, i});
                });
            }
            if (sites.empty()) return false;
            const auto& site = sites[rng.below(sites.size())];
            std::swap(site.seq->children[site.index],
                      site.seq->children[site.index + 1]);
            return true;
        }
    }
    return false;
}

bool inject_invalid(Program& program, InvalidMutation mutation,
                    support::Rng& rng) {
    Function* fn = pick_function(program, rng);
    if (fn == nullptr) return false;
    switch (mutation) {
        case InvalidMutation::kRegOutOfRange: {
            auto sites = matching_instrs(
                *fn, [](const Instr& i) { return ir::writes_dst(i.op); });
            if (sites.empty()) return false;
            sites[rng.below(sites.size())]->dst =
                static_cast<Reg>(fn->reg_count + 3);
            return true;
        }
        case InvalidMutation::kMissingDst: {
            auto sites = matching_instrs(
                *fn, [](const Instr& i) { return ir::writes_dst(i.op); });
            if (sites.empty()) return false;
            sites[rng.below(sites.size())]->dst = ir::kNoReg;
            return true;
        }
        case InvalidMutation::kRetRegOutOfRange:
            fn->ret_reg = static_cast<Reg>(fn->reg_count + 7);
            return true;
        case InvalidMutation::kDanglingCallee:
            return append_to_body(
                *fn, Node::call(fresh_name(program, "fz_missing"), {},
                                ir::kNoReg));
        case InvalidMutation::kArgCountMismatch: {
            // Prefer a callee other than `fn` so the broken rule is arity
            // alone (a self-call would also trip the recursion check).
            const Function* callee = nullptr;
            for (const auto& [callee_name, candidate] : program.functions)
                if (&candidate != fn) callee = &candidate;
            if (callee == nullptr) return false;
            std::vector<Reg> args(
                static_cast<std::size_t>(callee->param_count) + 1,
                static_cast<Reg>(0));
            return append_to_body(
                *fn, Node::call(callee->name, std::move(args), ir::kNoReg));
        }
        case InvalidMutation::kZeroDynamicBound: {
            auto node = std::make_unique<Node>();
            node->kind = NodeKind::kLoop;
            node->trip_reg = 0;
            node->bound = 0;
            node->body = empty_block();
            return append_to_body(*fn, std::move(node));
        }
        case InvalidMutation::kBoundBelowTrip: {
            auto node = std::make_unique<Node>();
            node->kind = NodeKind::kLoop;
            node->trip = 5;
            node->bound = 2;
            node->body = empty_block();
            return append_to_body(*fn, std::move(node));
        }
        case InvalidMutation::kMissingThenBranch: {
            auto node = std::make_unique<Node>();
            node->kind = NodeKind::kIf;
            node->cond = 0;
            return append_to_body(*fn, std::move(node));
        }
        case InvalidMutation::kMissingLoopBody: {
            auto node = std::make_unique<Node>();
            node->kind = NodeKind::kLoop;
            node->trip = 1;
            node->bound = 1;
            return append_to_body(*fn, std::move(node));
        }
        case InvalidMutation::kParamsExceedRegs:
            fn->param_count = fn->reg_count + 1;
            return true;
        case InvalidMutation::kRecursion: {
            std::vector<Reg> args;
            for (int p = 0; p < fn->param_count; ++p)
                args.push_back(static_cast<Reg>(p));
            return append_to_body(
                *fn, Node::call(fn->name, std::move(args), ir::kNoReg));
        }
        case InvalidMutation::kNameKeyMismatch: {
            const std::string alias = fresh_name(program, "fz_alias");
            Function copy = *fn;  // keeps its original `name`
            program.functions[alias] = std::move(copy);
            return true;
        }
        case InvalidMutation::kOobMemoryOffset: {
            const auto bad_offset =
                static_cast<ir::Word>(program.memory_words) + 5;
            auto sites = matching_instrs(*fn, [](const Instr& i) {
                return i.op == ir::Opcode::kLoad ||
                       i.op == ir::Opcode::kStore;
            });
            if (!sites.empty()) {
                sites[rng.below(sites.size())]->imm = bad_offset;
                return true;
            }
            Instr load;
            load.op = ir::Opcode::kLoad;
            load.dst = 0;
            load.a = 0;
            load.imm = bad_offset;
            return append_to_body(*fn, Node::block({load}));
        }
    }
    return false;
}

}  // namespace teamplay::fuzz
