// Byte-level differential oracle across every execution tier
// (DESIGN.md §13): the engine's determinism contract, weaponised.
//
// Every tier of the stack promises the same observable bytes for the same
// scenario: worker counts, shard counts, the simulator tier, a wire v4
// round-trip and a loopback fabric hop are all *representation* choices
// that must never reach the report.  The oracle runs one generated
// scenario through each tier and compares the canonical report encoding
// (wire::encode with the non-deterministic stage laps stripped) against
// the reference tier byte for byte — ΔELTA's differential-comparison idea
// (PAPERS.md) applied to this engine's own tiers.  Any first differing
// byte is a bug: in the tier, in a cache key that erased too much, or in
// a fingerprint that erased too little.
//
// Tier list (reference first):
//   engine/single    caller-only ScenarioEngine, interpreter sim
//   engine/threads   worker pool exercised (scenario + tuple parallelism)
//   engine/sharded   ShardedScenarioEngine, fingerprint-routed shards
//   sim/trace        trace-compiled simulator tier, fresh TraceCache
//   wire/request     request survives encode→decode, then runs; the
//                    re-encode must also be byte-identical to the first
//   wire/report      report encoding survives decode→re-encode
//   net/loopback     (optional) ShardServer + RemoteShard over real TCP
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario_engine.hpp"
#include "fuzz/generator.hpp"

namespace teamplay::fuzz {

struct OracleConfig {
    /// Workflow knobs shared by every tier (they are part of the cache key,
    /// so all tiers must agree).  Defaults to fuzz_workflow_options().
    core::WorkflowOptions options;
    /// Worker threads of the engine/threads tier.
    std::size_t threads = 2;
    /// Shard count of the engine/sharded tier.
    std::size_t shards = 2;
    /// Run the net/loopback tier (a real ShardServer + RemoteShard pair on
    /// 127.0.0.1).  Costs a TCP listener per scenario; off by default so
    /// the bounded tier-1 pass stays fast — the sweep and a test subset
    /// switch it on.
    bool loopback = false;

    OracleConfig();
};

/// Workflow options sized for fuzzing: small search populations and few
/// profile runs, so one scenario crosses all tiers in milliseconds while
/// still exercising every stage.  Deterministic — never randomise these;
/// they are part of every cache key and every tier must agree on them.
[[nodiscard]] core::WorkflowOptions fuzz_workflow_options();

/// First disagreement between a tier and the reference encoding.
struct Divergence {
    std::string tier;             ///< tier name (see header comment)
    std::size_t byte_offset = 0;  ///< first differing byte (min size if
                                  ///< one encoding is a prefix)
    std::size_t reference_size = 0;
    std::size_t tier_size = 0;

    [[nodiscard]] std::string to_string() const;
};

/// Outcome of one scenario's tier sweep.
struct OracleResult {
    std::vector<std::string> tiers;       ///< tiers compared, in run order
    std::optional<Divergence> divergence; ///< first mismatch, if any

    [[nodiscard]] bool ok() const { return !divergence.has_value(); }
};

/// Canonical byte encoding of a report for differential comparison: the
/// wire v4 encoding with `stage_laps` cleared (wall-clock laps are the one
/// legitimately non-deterministic field).
[[nodiscard]] std::vector<std::uint8_t> canonical_bytes(
    core::ToolchainReport report);

/// The ScenarioRequest of a generated scenario, over an explicit program
/// (the scenario's own, or a mutant of it — the program must outlive the
/// engine run).  Exposed so mutation checks can run original and mutant
/// through ONE engine: a semantic mutant keeps every entry fingerprint,
/// so it must hit the fingerprint-keyed evaluation cache and reproduce
/// the baseline report byte-for-byte — the cache-canonicalisation
/// contract, asserted end to end.  (A fresh engine would recompute the
/// transformed artifacts from the mutated text; those are embedded in the
/// report, so cross-engine byte-identity under alpha-rename is not a
/// promise the stack makes.)
[[nodiscard]] core::ScenarioRequest scenario_request(
    const GeneratedScenario& scenario, const ir::Program& program,
    const core::WorkflowOptions& options);

class DifferentialOracle {
public:
    explicit DifferentialOracle(OracleConfig config = {});

    /// Run `scenario` through every configured tier.  Throws whatever the
    /// reference tier throws (a generated scenario failing outright is a
    /// generator bug, not a divergence); tier disagreement is returned,
    /// not thrown.
    [[nodiscard]] OracleResult check(const GeneratedScenario& scenario) const;

    /// The reference report of a scenario (engine/single tier), for
    /// callers that compare mutants against the unmutated baseline.
    [[nodiscard]] core::ToolchainReport reference(
        const GeneratedScenario& scenario) const;

    /// Reference run of an explicit (program, scenario) pair — the mutant
    /// path: same platform/CSL/options, different program bytes.
    [[nodiscard]] core::ToolchainReport reference(
        const ir::Program& program, const GeneratedScenario& scenario) const;

    [[nodiscard]] const OracleConfig& config() const { return config_; }

private:
    OracleConfig config_;
};

}  // namespace teamplay::fuzz
