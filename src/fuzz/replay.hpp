// Replay logging: every fuzz run reducible to (seed, generator config),
// dumped as one greppable line per scenario (DESIGN.md §13).
//
// RamFuzz logs the values its generators drew so a failure replays
// exactly (SNIPPETS.md №1); this subsystem needs far less because the
// generator is a pure function of its seed — the log line *is* the whole
// reproduction state.  A CI sweep failure therefore travels as one line:
//
//   FUZZ-REPLAY seed=0x00000000deadbeef status=divergence detail=tier=...
//
// and `fuzz_driver --seed 0xdeadbeef` replays the identical scenario —
// same program bytes, same tier pair, same first differing byte — on any
// host (the generator draws from support::Rng, which is bit-stable across
// toolchains).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace teamplay::fuzz {

/// One scenario's outcome, reduced to its replayable essence.
struct ReplayRecord {
    std::uint64_t seed = 0;
    std::string status;  ///< "ok" | "divergence" | "invalid-accepted" |
                         ///< "identity-broken" | "error"
    std::string detail;  ///< free-form single line (tier, offset, what())

    [[nodiscard]] bool failed() const { return status != "ok"; }
};

/// The one-line wire format ("FUZZ-REPLAY seed=0x... status=... detail=...").
/// Newlines in `detail` are flattened to spaces so the line stays one line.
[[nodiscard]] std::string format_record(const ReplayRecord& record);

/// Inverse of format_record; nullopt for lines that are not replay records
/// (a log interleaved with other output greps clean).
[[nodiscard]] std::optional<ReplayRecord> parse_record(
    const std::string& line);

/// The exact command that reproduces a record's scenario.
[[nodiscard]] std::string repro_command(std::uint64_t seed, bool loopback);

/// Append-only log: records accumulate in memory and, when a path is
/// given, are flushed line-by-line to the file (so a crashed sweep still
/// leaves every completed line for the CI artifact upload).
class ReplayLog {
public:
    ReplayLog() = default;
    explicit ReplayLog(std::string path);

    void append(const ReplayRecord& record);

    [[nodiscard]] const std::vector<ReplayRecord>& records() const {
        return records_;
    }
    [[nodiscard]] std::size_t failures() const;

private:
    std::string path_;
    std::vector<ReplayRecord> records_;
};

/// Parse every replay record out of a log file (non-record lines skipped).
[[nodiscard]] std::vector<ReplayRecord> load_replay_log(
    const std::string& path);

}  // namespace teamplay::fuzz
