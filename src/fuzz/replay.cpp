#include "fuzz/replay.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace teamplay::fuzz {

namespace {

constexpr std::string_view kTag = "FUZZ-REPLAY";

std::string one_line(std::string text) {
    std::replace(text.begin(), text.end(), '\n', ' ');
    std::replace(text.begin(), text.end(), '\r', ' ');
    return text;
}

std::string hex_seed(std::uint64_t seed) {
    std::ostringstream out;
    out << "0x" << std::hex << std::setw(16) << std::setfill('0') << seed;
    return out.str();
}

}  // namespace

std::string format_record(const ReplayRecord& record) {
    std::ostringstream out;
    out << kTag << " seed=" << hex_seed(record.seed)
        << " status=" << one_line(record.status)
        << " detail=" << one_line(record.detail);
    return out.str();
}

std::optional<ReplayRecord> parse_record(const std::string& line) {
    const auto tag = line.find(kTag);
    if (tag == std::string::npos) return std::nullopt;
    const auto seed_key = line.find("seed=", tag);
    const auto status_key = line.find("status=", tag);
    const auto detail_key = line.find("detail=", tag);
    if (seed_key == std::string::npos || status_key == std::string::npos ||
        detail_key == std::string::npos)
        return std::nullopt;

    ReplayRecord record;
    try {
        record.seed = std::stoull(line.substr(seed_key + 5), nullptr, 16);
    } catch (const std::exception&) {
        return std::nullopt;
    }
    const auto status_start = status_key + 7;
    const auto status_end = line.find(' ', status_start);
    record.status = line.substr(status_start, status_end == std::string::npos
                                                  ? std::string::npos
                                                  : status_end - status_start);
    record.detail = line.substr(detail_key + 7);
    return record;
}

std::string repro_command(std::uint64_t seed, bool loopback) {
    std::string command = "fuzz_driver --seed " + hex_seed(seed);
    if (loopback) command += " --loopback";
    return command;
}

ReplayLog::ReplayLog(std::string path) : path_(std::move(path)) {}

void ReplayLog::append(const ReplayRecord& record) {
    records_.push_back(record);
    if (path_.empty()) return;
    // Open-append-close per line: a crashed sweep keeps every completed
    // line on disk for the CI artifact upload.
    std::ofstream out(path_, std::ios::app);
    if (out) out << format_record(record) << '\n';
}

std::size_t ReplayLog::failures() const {
    return static_cast<std::size_t>(
        std::count_if(records_.begin(), records_.end(),
                      [](const ReplayRecord& r) { return r.failed(); }));
}

std::vector<ReplayRecord> load_replay_log(const std::string& path) {
    std::vector<ReplayRecord> records;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        if (auto record = parse_record(line)) records.push_back(*record);
    return records;
}

}  // namespace teamplay::fuzz
