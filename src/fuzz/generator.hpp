// Seeded generative scenario fuzzing: random, valid-by-construction IR
// programs plus the CSL annotations and platform that turn them into a
// complete ScenarioRequest (DESIGN.md §13).
//
// The generator is the scenario-diversity answer to the five hand-written
// use-case apps: it draws a whole application — call graph, region nesting,
// memory map, task structure — from a single 64-bit seed, through the same
// `ir::FunctionBuilder` front the real apps use, so every generated program
// is well-formed by construction (`ir::validate` clean) and every generated
// scenario runs the full stage pipeline on a real board model.
//
// Reproducibility contract (RamFuzz-style logged replay, reduced to its
// essence): a scenario is a pure function of `(seed, GeneratorConfig)`.
// There is no hidden stream state — `scenario(seed)` always returns the
// same program, CSL text and platform for the same config, so a CI failure
// is replayable from the one-line seed dump (replay.hpp) on any host.
//
// Execution-safety discipline (what "valid by construction" buys):
//   * load/store address registers are only ever materialised from
//     immediates chosen so base + offset stays inside
//     `Program::memory_words` — the simulator's fault bound — and every
//     other register (params, loop indices, loaded words, arithmetic
//     results) is used as a *value* only, never dereferenced.  Profiled
//     tiers run entries with zero arguments over zeroed memory
//     (profiler::zero_inputs), so generated programs execute trap-free on
//     every tier;
//   * dynamic loop trip registers are immediates in [0, bound], so the
//     machine's trip>bound fault can never fire;
//   * function i may only call functions j < i: the call graph is acyclic
//     by construction (the validator's recursion check stays a negative-
//     testing concern, mutator.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "platform/platform.hpp"

namespace teamplay::fuzz {

/// Size/shape budget of one generated scenario.  Every knob bounds the
/// generator from above, so generated scenarios stay tractable for the
/// full differential oracle (a few milliseconds per tier, not minutes).
struct GeneratorConfig {
    /// Functions per program (the first `max_functions` may all become
    /// task entries or stay pure callees).  At least 1.
    std::size_t min_functions = 2;
    std::size_t max_functions = 4;
    /// CSL tasks per app.  At least 1; entries are drawn (with possible
    /// repetition — shared entries exercise the evaluation cache) from the
    /// generated functions.
    std::size_t max_tasks = 3;
    /// Region-tree nesting depth (If/Loop below the body Seq).
    std::size_t max_region_depth = 3;
    /// Straight-line instructions per generated block.
    std::size_t max_block_instrs = 6;
    /// Regions emitted per Seq level.
    std::size_t max_regions_per_seq = 3;
    /// Static trip count cap; bounds follow the trip from above.
    std::int64_t max_loop_trip = 4;
    /// Flat memory size of the generated program, in words.  Also the
    /// simulator's fault bound; the generator keeps every address under
    /// it.  Normalised to at least 128.
    std::size_t memory_words = 1024;
    /// Admit complex boards (profiled flow) in the platform draw.  The
    /// predictable boards stay twice as likely: static analysis is the
    /// cheaper tier and profiling cost scales with OPP count.
    bool allow_complex_platforms = true;
    /// Emit `security` hints (none/balance/ladder/auto) and secret-tagged
    /// registers, exercising the taint/leakage path.
    bool allow_security_hints = true;

    /// Copy with every field clamped into its documented domain.
    [[nodiscard]] GeneratorConfig normalised() const;
};

/// One generated scenario: everything a ScenarioRequest needs, owned.
struct GeneratedScenario {
    std::string name;        ///< "fuzz_<seed hex>", also the CSL app name
    std::uint64_t seed = 0;  ///< the seed that reproduces this scenario
    ir::Program program;
    platform::Platform platform;
    std::string csl_source;  ///< parsed by the pipeline's ParseStage
    /// Entry function of each CSL task, in task order (task k's entry).
    std::vector<std::string> entries;
};

class ProgramGenerator {
public:
    explicit ProgramGenerator(GeneratorConfig config = {});

    /// The scenario of one seed: pure, deterministic, config-bound.
    [[nodiscard]] GeneratedScenario scenario(std::uint64_t seed) const;

    [[nodiscard]] const GeneratorConfig& config() const { return config_; }

private:
    GeneratorConfig config_;  ///< already normalised
};

}  // namespace teamplay::fuzz
