// Valid-by-construction mutation engine over generated programs
// (DESIGN.md §13): two disjoint mutation families with opposite proof
// obligations, applied by the fuzz driver and the fixed-seed test suite.
//
// Semantic-preserving mutations rewrite representation without touching
// meaning.  The obligation is an *identity*: `ir::structural_fingerprint`
// of every task entry must not move, and — because the engine keys every
// evaluation on that fingerprint — the full toolchain report, certificate
// bytes included, must be byte-identical for the mutated program.  A
// mutation that moves either is a canonicalisation bug (the fingerprint
// erased too little) or a cache-key bug (it erased too much).
//
// Invalidity-injecting mutations break one well-formedness rule at a time.
// The obligation is a *rejection*: `ir::validate` must return a non-empty
// error list for the mutant — negative testing as a first-class path
// (SNIPPETS.md №2).  Every enum value below maps onto exactly one
// rejection class of ir/validate.cpp, so an oracle failure distinguishes
// "the generator produced garbage" from "the validator regressed"
// (tests/test_validate.cpp enumerates the classes directly).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ir/program.hpp"
#include "support/rng.hpp"

namespace teamplay::fuzz {

/// Representation-only rewrites; fingerprints and certificates must hold.
enum class SemanticMutation : std::uint8_t {
    kAlphaRename,    ///< shift every non-parameter register of a function
    kRegCountPad,    ///< grow a function's register file without new uses
    kDecoyFunction,  ///< add a function no task entry can reach
    kSwapIdenticalRegions,  ///< swap adjacent structurally equal regions
};
inline constexpr std::size_t kNumSemanticMutations = 4;

/// One well-formedness rule broken per value; ir::validate must reject.
enum class InvalidMutation : std::uint8_t {
    kRegOutOfRange,        ///< instruction register beyond reg_count
    kMissingDst,           ///< writes_dst opcode with dst = kNoReg
    kRetRegOutOfRange,     ///< function ret_reg beyond reg_count
    kDanglingCallee,       ///< call to a function the program lacks
    kArgCountMismatch,     ///< call arity != callee param_count
    kZeroDynamicBound,     ///< dynamic loop with bound <= 0
    kBoundBelowTrip,       ///< static loop with bound < trip
    kMissingThenBranch,    ///< if node without a then branch
    kMissingLoopBody,      ///< loop node without a body
    kParamsExceedRegs,     ///< param_count > reg_count
    kRecursion,            ///< self-call: cyclic call graph
    kNameKeyMismatch,      ///< program map key != function name
    kOobMemoryOffset,      ///< load/store offset beyond memory_words
};
inline constexpr std::size_t kNumInvalidMutations = 13;

[[nodiscard]] std::string_view name(SemanticMutation mutation);
[[nodiscard]] std::string_view name(InvalidMutation mutation);

/// Apply one semantic-preserving mutation in place.  Returns false when
/// the mutation found no applicable site (e.g. no two adjacent identical
/// regions to swap); the program is untouched in that case.  `entry`
/// biases site selection toward the reachable sub-program when it
/// matters; any function may be rewritten since the identity obligation
/// covers the whole report.
[[nodiscard]] bool apply_semantic(ir::Program& program,
                                  const std::string& entry,
                                  SemanticMutation mutation,
                                  support::Rng& rng);

/// Break exactly one validity rule in place.  Returns false when no
/// applicable site exists (rare: most injections synthesise their own
/// site).  After a true return, `ir::validate(program)` must be
/// non-empty — the oracle treats an accepted mutant as a validator bug.
[[nodiscard]] bool inject_invalid(ir::Program& program,
                                  InvalidMutation mutation,
                                  support::Rng& rng);

}  // namespace teamplay::fuzz
