#include "energy/analyser.hpp"

#include <stdexcept>

namespace teamplay::energy {

Analyser::Accum Analyser::walk(const ir::Node& node,
                               const isa::TargetModel& model,
                               std::map<std::string, Accum>& memo) const {
    Accum acc;
    switch (node.kind) {
        case ir::NodeKind::kBlock:
            for (const auto& instr : node.instrs) {
                const double base =
                    model.energy_of(isa::instr_class(instr.op));
                acc.worst_pj +=
                    base + model.data_alpha_pj_per_bit * kWorstHammingBits;
                acc.avg_pj +=
                    base + model.data_alpha_pj_per_bit * kTypicalHammingBits;
                acc.avg_cycles += model.cycles_of(isa::instr_class(instr.op));
            }
            break;
        case ir::NodeKind::kSeq:
            for (const auto& child : node.children) {
                const Accum c = walk(*child, model, memo);
                acc.worst_pj += c.worst_pj;
                acc.avg_pj += c.avg_pj;
                acc.avg_cycles += c.avg_cycles;
            }
            break;
        case ir::NodeKind::kIf: {
            acc.worst_pj += model.branch_energy_pj;
            acc.avg_pj += model.branch_energy_pj;
            acc.avg_cycles += model.branch_cycles;
            const Accum t = walk(*node.then_branch, model, memo);
            Accum e;
            if (node.else_branch) e = walk(*node.else_branch, model, memo);
            acc.worst_pj += std::max(t.worst_pj, e.worst_pj);
            // Expected case: both branches equally likely.
            acc.avg_pj += 0.5 * (t.avg_pj + e.avg_pj);
            acc.avg_cycles += 0.5 * (t.avg_cycles + e.avg_cycles);
            break;
        }
        case ir::NodeKind::kLoop: {
            const Accum body = walk(*node.body, model, memo);
            const auto bound = static_cast<double>(node.bound);
            // Average case: dynamic loops assumed to run at half the bound,
            // static loops at their actual trip count.
            const double expected =
                node.trip_reg != ir::kNoReg
                    ? bound / 2.0
                    : static_cast<double>(node.trip);
            acc.worst_pj += bound * (model.loop_iter_energy_pj + body.worst_pj);
            acc.avg_pj += expected * (model.loop_iter_energy_pj + body.avg_pj);
            acc.avg_cycles +=
                expected * (model.loop_iter_cycles + body.avg_cycles);
            break;
        }
        case ir::NodeKind::kCall: {
            const ir::Function* callee = program_->find(node.callee);
            if (callee == nullptr)
                throw std::runtime_error("energy: undefined callee '" +
                                         node.callee + "'");
            const auto it = memo.find(node.callee);
            Accum callee_acc;
            if (it != memo.end()) {
                callee_acc = it->second;
            } else {
                callee_acc = walk(*callee->body, model, memo);
                memo.emplace(node.callee, callee_acc);
            }
            acc.worst_pj += model.call_energy_pj + callee_acc.worst_pj;
            acc.avg_pj += model.call_energy_pj + callee_acc.avg_pj;
            acc.avg_cycles += model.call_cycles + callee_acc.avg_cycles;
            break;
        }
    }
    return acc;
}

EnergyResult Analyser::analyse(const std::string& function,
                               const platform::Core& core,
                               std::size_t opp_index) const {
    EnergyResult result;
    if (!core.model.predictable) {
        result.reason = "core '" + core.name +
                        "' has no static energy model (complex architecture); "
                        "use the dynamic profiler";
        return result;
    }
    const ir::Function* fn = program_->find(function);
    if (fn == nullptr) {
        result.reason = "undefined function '" + function + "'";
        return result;
    }

    const auto& point = core.opp(opp_index);
    const double scale = core.energy_scale(point);
    std::map<std::string, Accum> memo;
    const Accum acc = walk(*fn->body, core.model, memo);

    const auto wcet = wcet_.analyse(function, core, opp_index);
    if (!wcet.analysable) {
        result.reason = wcet.reason;
        return result;
    }

    result.analysable = true;
    result.wce_dynamic_j = acc.worst_pj * scale * 1e-12;
    result.wce_static_j = point.static_power_w * wcet.time_s;
    result.wcec_j = result.wce_dynamic_j + result.wce_static_j;
    const double avg_time_s = acc.avg_cycles / point.freq_hz;
    result.avg_j =
        acc.avg_pj * scale * 1e-12 + point.static_power_w * avg_time_s;
    return result;
}

}  // namespace teamplay::energy
