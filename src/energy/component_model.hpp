// Coarse-grained component-based energy modelling for complex platforms
// (Seewald et al. [18][19], the PowProfiler model family).
//
// Complex boards cannot be modelled at the ISA level, so the paper's UAV
// work models board power as  P = P_idle + sum_c u_c * P_c  where u_c is the
// utilisation of component c (CPU cluster, GPU, ...).  The model is fitted
// from coarse measurements and then drives in-flight battery-aware
// scheduling decisions.  This module provides the model, its least-squares
// fitting, and the battery / mission energy arithmetic used by the UAV use
// case (flight time = battery / (mechanical power + electronics power)).
#pragma once

#include <string>
#include <vector>

namespace teamplay::energy {

/// One power observation: component utilisations in [0,1] plus measured
/// total power in watts.
struct PowerSample {
    std::vector<double> utilisation;
    double power_w = 0.0;
};

/// P(u) = idle_w + sum_i u_i * component_w[i].
struct ComponentModel {
    double idle_w = 0.0;
    std::vector<double> component_w;

    [[nodiscard]] double predict_w(const std::vector<double>& u) const;
};

/// Least-squares fit (intercept = idle power).  All samples must have the
/// same utilisation dimensionality; returns a default model for empty input.
[[nodiscard]] ComponentModel fit_component_model(
    const std::vector<PowerSample>& samples);

/// MAPE of a component model over a sample set, in percent.
[[nodiscard]] double component_model_mape(
    const ComponentModel& model, const std::vector<PowerSample>& samples);

/// Mission-level battery arithmetic for the UAV use cases.
struct MissionPower {
    double battery_wh = 0.0;        ///< usable battery energy
    double mechanical_w = 0.0;      ///< propulsion (28 W when cruising [31])
    double electronics_w = 0.0;     ///< compute payload (2..11 W band [31])

    [[nodiscard]] double total_w() const {
        return mechanical_w + electronics_w;
    }
    /// Flight endurance in seconds.
    [[nodiscard]] double flight_time_s() const {
        return total_w() > 0.0 ? battery_wh * 3600.0 / total_w() : 0.0;
    }
};

}  // namespace teamplay::energy
