#include "energy/component_model.hpp"

#include "support/stats.hpp"

namespace teamplay::energy {

double ComponentModel::predict_w(const std::vector<double>& u) const {
    double p = idle_w;
    const std::size_t n = std::min(u.size(), component_w.size());
    for (std::size_t i = 0; i < n; ++i) p += u[i] * component_w[i];
    return p;
}

ComponentModel fit_component_model(const std::vector<PowerSample>& samples) {
    ComponentModel model;
    if (samples.empty()) return model;
    const std::size_t dims = samples.front().utilisation.size();

    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    rows.reserve(samples.size());
    targets.reserve(samples.size());
    for (const auto& sample : samples) {
        std::vector<double> row;
        row.reserve(dims + 1);
        row.push_back(1.0);  // intercept column -> idle power
        for (std::size_t i = 0; i < dims; ++i)
            row.push_back(i < sample.utilisation.size()
                              ? sample.utilisation[i]
                              : 0.0);
        rows.push_back(std::move(row));
        targets.push_back(sample.power_w);
    }
    const auto coeff = support::least_squares(rows, targets);
    if (coeff.size() != dims + 1) return model;
    model.idle_w = coeff[0];
    model.component_w.assign(coeff.begin() + 1, coeff.end());
    return model;
}

double component_model_mape(const ComponentModel& model,
                            const std::vector<PowerSample>& samples) {
    std::vector<double> predicted;
    std::vector<double> actual;
    predicted.reserve(samples.size());
    actual.reserve(samples.size());
    for (const auto& sample : samples) {
        predicted.push_back(model.predict_w(sample.utilisation));
        actual.push_back(sample.power_w);
    }
    return support::mape(predicted, actual);
}

}  // namespace teamplay::energy
