// Static energy analysis (the EnergyAnalyser plug-in of Fig. 1).
//
// Bounds the worst-case energy consumption (WCEC) of a task compositionally,
// exactly like the WCET analysis but priced with the per-instruction-class
// dynamic energy tables.  Static (leakage) energy is added as
// static_power * WCET, and the data-dependent power component is bounded by
// assuming worst-case operand Hamming weight on every instruction — so the
// bound is sound with respect to the simulator's energy charging.
//
// Also provides an average-case estimate (loops at their actual trip count,
// branches at expected weight, operands at typical Hamming weight), which is
// what the multi-criteria optimiser uses when the worst case is not the
// objective.
#pragma once

#include <string>

#include "ir/program.hpp"
#include "platform/platform.hpp"
#include "wcet/analyser.hpp"

namespace teamplay::energy {

struct EnergyResult {
    bool analysable = false;
    double wcec_j = 0.0;      ///< worst-case dynamic + static energy bound
    double wce_dynamic_j = 0.0;
    double wce_static_j = 0.0;
    double avg_j = 0.0;       ///< expected-case estimate (dynamic + static)
    std::string reason;
};

class Analyser {
public:
    explicit Analyser(const ir::Program& program)
        : program_(&program), wcet_(program) {}

    [[nodiscard]] EnergyResult analyse(const std::string& function,
                                       const platform::Core& core,
                                       std::size_t opp_index) const;

private:
    struct Accum {
        double worst_pj = 0.0;  ///< dynamic energy bound at nominal voltage
        double avg_pj = 0.0;
        double avg_cycles = 0.0;
    };

    [[nodiscard]] Accum walk(const ir::Node& node,
                             const isa::TargetModel& model,
                             std::map<std::string, Accum>& memo) const;

    const ir::Program* program_;
    wcet::Analyser wcet_;
};

/// Worst-case operand Hamming weight assumed by the WCEC bound.  The machine
/// charges alpha * popcount(value) with value a 64-bit word, so 64 bits is
/// the sound ceiling.
inline constexpr double kWorstHammingBits = 64.0;

/// Typical operand Hamming weight used by the average-case estimate
/// (embedded data is mostly small integers / bytes).
inline constexpr double kTypicalHammingBits = 6.0;

}  // namespace teamplay::energy
