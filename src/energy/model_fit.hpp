// Energy-model construction methodology (the Energy Modelling Challenge,
// Sec. III-B; Nikov et al. [8], Georgiou et al. [9]).
//
// The paper's models are built by running calibration workloads on the board
// while measuring power, then regressing per-instruction-class energy costs.
// We reproduce that loop faithfully against the simulated board: generate
// kernels with varied instruction mixes, "measure" them on the Machine
// (whose ground truth includes data-dependent components the regression
// cannot see, so the fit has realistic residuals), and solve for the
// per-class costs by least squares.  Bench A3 reports the resulting MAPE,
// which is the paper's "robust and accurate" claim.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/program.hpp"
#include "platform/platform.hpp"
#include "support/rng.hpp"

namespace teamplay::energy {

/// One calibration observation: how many instructions of each class ran, and
/// the measured dynamic energy.
struct CalibrationSample {
    std::array<std::int64_t, isa::kNumInstrClasses> class_counts{};
    double dynamic_energy_j = 0.0;
};

/// A fitted ISA-level model: energy per instruction class, in picojoules at
/// the operating point the samples were collected at.
struct FittedModel {
    std::array<double, isa::kNumInstrClasses> energy_pj{};

    /// Predict the dynamic energy of a run from its class counts.
    [[nodiscard]] double predict_j(
        const std::array<std::int64_t, isa::kNumInstrClasses>& counts) const;
};

/// Generate a synthetic calibration suite: `kernels` functions with varied
/// instruction mixes (ALU-heavy, memory-heavy, multiply-heavy, balanced...),
/// each a few hundred executed instructions.  Function names are "cal0",
/// "cal1", ...
[[nodiscard]] ir::Program make_calibration_suite(int kernels,
                                                 std::uint64_t seed);

/// Run every calibration kernel `repeats` times on the core (random inputs)
/// and record (class counts, measured dynamic energy) pairs.
[[nodiscard]] std::vector<CalibrationSample> collect_samples(
    const ir::Program& suite, const platform::Core& core,
    std::size_t opp_index, int repeats, std::uint64_t seed);

/// Least-squares fit of per-class energies from calibration samples.
[[nodiscard]] FittedModel fit_model(
    const std::vector<CalibrationSample>& samples);

/// Mean absolute percentage error of a model on a sample set.
[[nodiscard]] double model_mape(const FittedModel& model,
                                const std::vector<CalibrationSample>& samples);

}  // namespace teamplay::energy
