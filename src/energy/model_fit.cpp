#include "energy/model_fit.hpp"

#include "ir/builder.hpp"
#include "sim/machine.hpp"
#include "support/stats.hpp"

namespace teamplay::energy {

double FittedModel::predict_j(
    const std::array<std::int64_t, isa::kNumInstrClasses>& counts) const {
    double pj = 0.0;
    for (int c = 0; c < isa::kNumInstrClasses; ++c)
        pj += energy_pj[static_cast<std::size_t>(c)] *
              static_cast<double>(counts[static_cast<std::size_t>(c)]);
    return pj * 1e-12;
}

ir::Program make_calibration_suite(int kernels, std::uint64_t seed) {
    support::Rng rng(seed);
    ir::Program program;
    program.memory_words = 512;

    for (int k = 0; k < kernels; ++k) {
        ir::FunctionBuilder b("cal" + std::to_string(k), 2);
        // Each kernel repeats a randomly weighted mix of instruction
        // classes.  Counts per class are drawn independently so the
        // observation matrix has full column rank (a suite where every load
        // pairs with a store, say, could not identify the two costs apart).
        const int alu_ops = static_cast<int>(rng.range(1, 9));
        const int mul_ops = static_cast<int>(rng.range(0, 5));
        const int div_ops = static_cast<int>(rng.range(0, 2));
        const int load_ops = static_cast<int>(rng.range(0, 5));
        const int store_ops = static_cast<int>(rng.range(0, 5));
        const int sel_ops = static_cast<int>(rng.range(0, 3));
        const int mov_ops = static_cast<int>(rng.range(0, 4));

        const auto trips = static_cast<std::int64_t>(rng.range(8, 40));
        auto x = b.mov(b.param(0));
        auto y = b.mov(b.param(1));
        const auto i = b.loop_begin(trips);
        const auto addr = b.and_imm(i, 255);
        auto acc = b.add(x, y);
        for (int n = 0; n < alu_ops; ++n) acc = b.bxor(acc, b.add(acc, i));
        for (int n = 0; n < mul_ops; ++n) acc = b.mul(acc, y);
        for (int n = 0; n < div_ops; ++n)
            acc = b.div(acc, b.add_imm(i, 3));
        for (int n = 0; n < load_ops; ++n) acc = b.add(acc, b.load(addr, n));
        for (int n = 0; n < store_ops; ++n) b.store(addr, acc, n);
        for (int n = 0; n < sel_ops; ++n) {
            const auto flag = b.cmp_lt(acc, y);
            acc = b.select(flag, acc, y);
        }
        for (int n = 0; n < mov_ops; ++n) acc = b.mov(acc);
        x = b.mov(acc);
        b.loop_end();
        b.ret(x);
        program.add(b.build());
    }
    return program;
}

std::vector<CalibrationSample> collect_samples(const ir::Program& suite,
                                               const platform::Core& core,
                                               std::size_t opp_index,
                                               int repeats,
                                               std::uint64_t seed) {
    support::Rng rng(seed);
    std::vector<CalibrationSample> samples;
    samples.reserve(suite.functions.size() * static_cast<std::size_t>(repeats));

    sim::Machine machine(suite, core, opp_index, seed);
    for (const auto& [name, fn] : suite.functions) {
        for (int r = 0; r < repeats; ++r) {
            const std::vector<ir::Word> args = {
                rng.range(0, 1 << 16), rng.range(1, 1 << 16)};
            const auto run = machine.run(name, args);
            CalibrationSample sample;
            sample.class_counts = run.class_counts;
            sample.dynamic_energy_j = run.dynamic_energy_j;
            samples.push_back(sample);
        }
    }
    return samples;
}

FittedModel fit_model(const std::vector<CalibrationSample>& samples) {
    FittedModel model;
    if (samples.empty()) return model;

    // Classes never exercised by the calibration suite produce all-zero
    // columns and a singular normal matrix; fit only the active ones.
    std::vector<int> active;
    for (int c = 0; c < isa::kNumInstrClasses; ++c) {
        for (const auto& sample : samples) {
            if (sample.class_counts[static_cast<std::size_t>(c)] != 0) {
                active.push_back(c);
                break;
            }
        }
    }
    if (active.empty()) return model;

    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    rows.reserve(samples.size());
    targets.reserve(samples.size());
    for (const auto& sample : samples) {
        std::vector<double> row;
        row.reserve(active.size());
        for (const int c : active)
            row.push_back(static_cast<double>(
                sample.class_counts[static_cast<std::size_t>(c)]));
        rows.push_back(std::move(row));
        targets.push_back(sample.dynamic_energy_j * 1e12);  // fit in pJ
    }
    const auto coeff = support::least_squares(rows, targets);
    if (coeff.size() != active.size()) return model;
    for (std::size_t i = 0; i < active.size(); ++i)
        model.energy_pj[static_cast<std::size_t>(active[i])] = coeff[i];
    return model;
}

double model_mape(const FittedModel& model,
                  const std::vector<CalibrationSample>& samples) {
    std::vector<double> predicted;
    std::vector<double> actual;
    predicted.reserve(samples.size());
    actual.reserve(samples.size());
    for (const auto& sample : samples) {
        predicted.push_back(model.predict_j(sample.class_counts));
        actual.push_back(sample.dynamic_energy_j);
    }
    return support::mape(predicted, actual);
}

}  // namespace teamplay::energy
