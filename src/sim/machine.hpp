// Cycle-approximate execution of IR programs on a modelled core.
//
// This module is the hardware substitution (DESIGN.md §2): it plays the role
// of the physical boards in the paper's evaluation.  For predictable cores it
// charges exactly the cost tables the static analysers use, so static bounds
// are sound and validation against "measurement" is meaningful.  For complex
// cores it adds stochastic cache and pipeline behaviour, making dynamic
// profiling (PowProfiler) the only viable estimation route — the property
// that motivates the paper's second workflow.
//
// The machine also produces a per-instruction power trace with a
// Hamming-weight data-dependent component, which is what the side-channel
// leakage metrics of the SecurityAnalyser consume.
//
// Execution tiers (DESIGN.md §9): the recursive tree-walking interpreter is
// the reference semantics; with SimBackend::kTrace, `run` executes a
// pre-decoded flat trace (sim/trace.hpp) through a threaded-dispatch loop
// instead, falling back to the interpreter when lowering is impossible.
// Both tiers produce bit-identical RunResults — the differential oracle in
// tests/test_sim_trace.cpp pins this.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "platform/platform.hpp"
#include "sim/backend.hpp"
#include "support/rng.hpp"

namespace teamplay::sim {

struct CompiledTrace;

/// Outcome of one task execution.
struct RunResult {
    double cycles = 0.0;
    double time_s = 0.0;
    double dynamic_energy_j = 0.0;
    double static_energy_j = 0.0;  ///< core leakage over the run duration
    ir::Word ret_value = 0;
    std::int64_t instrs_executed = 0;
    std::array<std::int64_t, isa::kNumInstrClasses> class_counts{};

    /// Per-instruction instantaneous power samples in watts (only filled
    /// when tracing was requested).  Sample i corresponds to the i-th
    /// executed instruction, so traces from runs with identical control flow
    /// align point-by-point.
    std::vector<double> power_trace;

    [[nodiscard]] double energy_j() const {
        return dynamic_energy_j + static_energy_j;
    }
    [[nodiscard]] double average_power_w() const {
        return time_s > 0.0 ? energy_j() / time_s : 0.0;
    }
};

/// Interpreter + trace executor for one program on one core at one DVFS
/// operating point.
class Machine {
public:
    /// The program must outlive the machine.  `seed` drives the stochastic
    /// timing of complex cores; predictable cores never consult it.  `sim`
    /// selects the execution tier; its default snapshots the process-wide
    /// backend (sim/backend.hpp).  With the trace backend and no explicit
    /// cache, compiled traces go through TraceCache::process_wide().
    Machine(const ir::Program& program, const platform::Core& core,
            std::size_t opp_index, std::uint64_t seed = 1,
            SimOptions sim = {});

    /// Write a word into shared memory (input staging).
    void poke(std::size_t address, ir::Word value);
    /// Read a word from shared memory (output retrieval).
    [[nodiscard]] ir::Word peek(std::size_t address) const;
    /// Bulk variants.
    void poke_span(std::size_t address, std::span<const ir::Word> values);
    [[nodiscard]] std::vector<ir::Word> peek_span(std::size_t address,
                                                  std::size_t count) const;
    /// Reset all memory to zero.
    void clear_memory();

    /// Execute `function` with the given arguments.  Throws on undefined
    /// functions, argument-count mismatches (invalid_argument, validated
    /// against the entry signature before any state changes), out-of-range
    /// memory access, dynamic loop trips above the static bound, or
    /// exceeding the instruction budget.
    RunResult run(const std::string& function,
                  std::span<const ir::Word> args, bool record_trace = false);

    /// Abort threshold for runaway programs (default 500 M instructions).
    void set_instruction_budget(std::int64_t budget) { budget_ = budget; }

    [[nodiscard]] const platform::Core& core() const { return *core_; }
    [[nodiscard]] const platform::OperatingPoint& opp() const {
        return core_->opp(opp_index_);
    }
    [[nodiscard]] SimBackend backend() const { return backend_; }

    /// Resolve the compiled trace for `function` (memo -> shared cache ->
    /// compile) and remember the outcome.  Returns null when the function
    /// cannot be lowered (interpreter fallback) or the backend is kInterp.
    /// Owners that build many machines over the same program (PowProfiler,
    /// the multi-criteria compiler) resolve once and `attach_trace` the
    /// result to later machines, skipping per-machine fingerprinting.
    [[nodiscard]] std::shared_ptr<const CompiledTrace> resolve_trace(
        const std::string& function);

    /// Pre-seed the trace memo for `function`.  The trace must come from a
    /// structurally-fingerprint-equal (program, entry) pair on a core with
    /// an equal model fingerprint; null marks "known interpreter fallback".
    void attach_trace(const std::string& function,
                      std::shared_ptr<const CompiledTrace> trace);

private:
    struct Frame {
        std::vector<ir::Word> regs;
    };

    template <bool RecordTrace>
    void exec_node(const ir::Node& node, Frame& frame, RunResult& result,
                   int call_depth);
    template <bool RecordTrace>
    void exec_block(const ir::Node& node, Frame& frame, RunResult& result);
    template <bool RecordTrace>
    void charge(isa::InstrClass cls, ir::Word data_value, RunResult& result);
    template <bool RecordTrace>
    void charge_overhead(double cycles, double energy_pj, RunResult& result);
    /// Threaded-dispatch executor over a pre-decoded trace; sets
    /// `result.ret_value` from the trace's entry return register.
    /// `Predictable` specialises out the stochastic-timing path entirely
    /// (the per-instruction RNG draws exist only on complex cores).
    template <bool RecordTrace, bool Predictable>
    void exec_trace(const CompiledTrace& trace, std::span<const ir::Word> args,
                    RunResult& result);
    [[nodiscard]] double stochastic_cycles(double base, bool memory_access);
    [[nodiscard]] std::int64_t charge_estimate(const std::string& function);

    const ir::Program* program_;
    const platform::Core* core_;
    std::size_t opp_index_;
    double energy_scale_;  ///< V^2 scaling for the selected operating point
    std::vector<ir::Word> memory_;
    support::Rng rng_;
    std::int64_t budget_ = 500'000'000;
    SimBackend backend_;
    std::shared_ptr<TraceCache> trace_cache_;
    /// Per-entry resolution memo; a present-but-null value means "lowering
    /// failed, use the interpreter" so failures resolve only once.
    std::map<std::string, std::shared_ptr<const CompiledTrace>> traces_;
    /// Memoised ir::estimate_charges per entry (power-trace reservation).
    std::map<std::string, std::int64_t> charge_estimates_;

    /// One call-frame record of the trace executor's call stack.
    struct TraceCall {
        std::uint32_t ret_pc;
        std::uint32_t caller_base;
        std::int32_t ret_dst;  ///< caller register receiving the result
        std::int32_t ret_src;  ///< callee return register
    };
    /// Scratch buffers reused across runs so the trace tier performs no
    /// per-run allocations once warm.
    std::vector<ir::Word> trace_arena_;
    std::vector<TraceCall> trace_calls_;

    /// Last-entry fast path for `run`: repeated executions of the same
    /// function (profiling campaigns) skip the per-run map lookups.
    /// Invalidated by attach_trace.
    std::string last_entry_;
    const ir::Function* last_fn_ = nullptr;
    std::shared_ptr<const CompiledTrace> last_trace_;
};

}  // namespace teamplay::sim
