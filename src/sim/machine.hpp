// Cycle-approximate execution of IR programs on a modelled core.
//
// This module is the hardware substitution (DESIGN.md §2): it plays the role
// of the physical boards in the paper's evaluation.  For predictable cores it
// charges exactly the cost tables the static analysers use, so static bounds
// are sound and validation against "measurement" is meaningful.  For complex
// cores it adds stochastic cache and pipeline behaviour, making dynamic
// profiling (PowProfiler) the only viable estimation route — the property
// that motivates the paper's second workflow.
//
// The machine also produces a per-instruction power trace with a
// Hamming-weight data-dependent component, which is what the side-channel
// leakage metrics of the SecurityAnalyser consume.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "platform/platform.hpp"
#include "support/rng.hpp"

namespace teamplay::sim {

/// Outcome of one task execution.
struct RunResult {
    double cycles = 0.0;
    double time_s = 0.0;
    double dynamic_energy_j = 0.0;
    double static_energy_j = 0.0;  ///< core leakage over the run duration
    ir::Word ret_value = 0;
    std::int64_t instrs_executed = 0;
    std::array<std::int64_t, isa::kNumInstrClasses> class_counts{};

    /// Per-instruction instantaneous power samples in watts (only filled
    /// when tracing was requested).  Sample i corresponds to the i-th
    /// executed instruction, so traces from runs with identical control flow
    /// align point-by-point.
    std::vector<double> power_trace;

    [[nodiscard]] double energy_j() const {
        return dynamic_energy_j + static_energy_j;
    }
    [[nodiscard]] double average_power_w() const {
        return time_s > 0.0 ? energy_j() / time_s : 0.0;
    }
};

/// Interpreter for one program on one core at one DVFS operating point.
class Machine {
public:
    /// The program must outlive the machine.  `seed` drives the stochastic
    /// timing of complex cores; predictable cores never consult it.
    Machine(const ir::Program& program, const platform::Core& core,
            std::size_t opp_index, std::uint64_t seed = 1);

    /// Write a word into shared memory (input staging).
    void poke(std::size_t address, ir::Word value);
    /// Read a word from shared memory (output retrieval).
    [[nodiscard]] ir::Word peek(std::size_t address) const;
    /// Bulk variants.
    void poke_span(std::size_t address, std::span<const ir::Word> values);
    [[nodiscard]] std::vector<ir::Word> peek_span(std::size_t address,
                                                  std::size_t count) const;
    /// Reset all memory to zero.
    void clear_memory();

    /// Execute `function` with the given arguments.  Throws on undefined
    /// functions, out-of-range memory access, dynamic loop trips above the
    /// static bound, or exceeding the instruction budget.
    RunResult run(const std::string& function,
                  std::span<const ir::Word> args, bool record_trace = false);

    /// Abort threshold for runaway programs (default 500 M instructions).
    void set_instruction_budget(std::int64_t budget) { budget_ = budget; }

    [[nodiscard]] const platform::Core& core() const { return *core_; }
    [[nodiscard]] const platform::OperatingPoint& opp() const {
        return core_->opp(opp_index_);
    }

private:
    struct Frame {
        std::vector<ir::Word> regs;
    };

    void exec_node(const ir::Node& node, Frame& frame, RunResult& result,
                   bool record_trace, int call_depth);
    void exec_block(const ir::Node& node, Frame& frame, RunResult& result,
                    bool record_trace);
    void charge(isa::InstrClass cls, ir::Word data_value, RunResult& result,
                bool record_trace);
    void charge_overhead(double cycles, double energy_pj, RunResult& result,
                         bool record_trace);
    [[nodiscard]] double stochastic_cycles(double base, bool memory_access);

    const ir::Program* program_;
    const platform::Core* core_;
    std::size_t opp_index_;
    double energy_scale_;  ///< V^2 scaling for the selected operating point
    std::vector<ir::Word> memory_;
    support::Rng rng_;
    std::int64_t budget_ = 500'000'000;
};

}  // namespace teamplay::sim
