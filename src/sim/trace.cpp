#include "sim/trace.hpp"

#include <bit>
#include <utility>

#include "ir/fingerprint.hpp"
#include "ir/lowering.hpp"

namespace teamplay::sim {

namespace {

/// FNV-1a over words/doubles/strings (bit-pattern hashing for doubles so
/// the fingerprint is exact, not tolerance-based).
struct Hasher {
    std::uint64_t value = 14695981039346656037ULL;

    void mix(std::uint64_t word) {
        for (int byte = 0; byte < 8; ++byte) {
            value ^= (word >> (8 * byte)) & 0xFFU;
            value *= 1099511628211ULL;
        }
    }
    void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
    void mix(std::string_view text) {
        for (const char c : text) {
            value ^= static_cast<unsigned char>(c);
            value *= 1099511628211ULL;
        }
        mix(static_cast<std::uint64_t>(text.size()));
    }
};

/// Compute-op mapping.  Kept explicit (no ordinal arithmetic) so a
/// reordering of either enum is a compile-time/test-time failure, not a
/// silent misdispatch.
TOp compute_op(ir::Opcode op) {
    using ir::Opcode;
    switch (op) {
        case Opcode::kNop: return TOp::kNop;
        case Opcode::kMovImm: return TOp::kMovImm;
        case Opcode::kMov: return TOp::kMov;
        case Opcode::kNot: return TOp::kNot;
        case Opcode::kNeg: return TOp::kNeg;
        case Opcode::kAbs: return TOp::kAbs;
        case Opcode::kPopcnt: return TOp::kPopcnt;
        case Opcode::kLoad: return TOp::kLoad;
        case Opcode::kStore: return TOp::kStore;
        case Opcode::kSelect: return TOp::kSelect;
        case Opcode::kAdd: return TOp::kAdd;
        case Opcode::kSub: return TOp::kSub;
        case Opcode::kMul: return TOp::kMul;
        case Opcode::kDiv: return TOp::kDiv;
        case Opcode::kRem: return TOp::kRem;
        case Opcode::kAnd: return TOp::kAnd;
        case Opcode::kOr: return TOp::kOr;
        case Opcode::kXor: return TOp::kXor;
        case Opcode::kShl: return TOp::kShl;
        case Opcode::kShr: return TOp::kShr;
        case Opcode::kCmpEq: return TOp::kCmpEq;
        case Opcode::kCmpNe: return TOp::kCmpNe;
        case Opcode::kCmpLt: return TOp::kCmpLt;
        case Opcode::kCmpLe: return TOp::kCmpLe;
        case Opcode::kCmpGt: return TOp::kCmpGt;
        case Opcode::kCmpGe: return TOp::kCmpGe;
        case Opcode::kMin: return TOp::kMin;
        case Opcode::kMax: return TOp::kMax;
    }
    return TOp::kNop;
}

class Lowerer {
public:
    Lowerer(const ir::Program& program, const isa::TargetModel& model,
            CompiledTrace& out)
        : program_(program), model_(model), out_(out) {}

    void lower_function(const ir::Function& fn) {
        entry_pcs_[fn.name] = static_cast<std::uint32_t>(out_.code.size());
        frame_size_ = fn.reg_count;
        if (fn.body) lower_node(*fn.body);
        TraceInstr ret;
        ret.op = TOp::kRet;
        out_.code.push_back(ret);
        frame_sizes_[fn.name] = frame_size_;
    }

    /// Frame size of `fn` including loop scratch slots (valid once the
    /// function is lowered).
    [[nodiscard]] std::int32_t frame_size(const std::string& fn) const {
        return frame_sizes_.at(fn);
    }

    /// Largest frame of any lowered function.
    [[nodiscard]] std::int32_t max_frame_size() const {
        std::int32_t max = 0;
        for (const auto& [name, size] : frame_sizes_)
            if (size > max) max = size;
        return max;
    }

    void patch_calls() {
        for (const auto& [pc, callee] : call_patches_) {
            out_.code[pc].target = entry_pcs_.at(callee);
            // The callee's frame shape (with its scratch slots) is only
            // known after the callee itself is lowered.
            out_.code[pc].a = frame_sizes_.at(callee);
        }
    }

private:
    [[nodiscard]] std::uint32_t here() const {
        return static_cast<std::uint32_t>(out_.code.size());
    }

    void lower_node(const ir::Node& node) {
        using ir::NodeKind;
        switch (node.kind) {
            case NodeKind::kBlock:
                for (const auto& instr : node.instrs) lower_instr(instr);
                break;
            case NodeKind::kSeq:
                for (const auto& child : node.children) lower_node(*child);
                break;
            case NodeKind::kIf: {
                TraceInstr branch;
                branch.op = TOp::kBranch;
                branch.c = node.cond;
                branch.base_cycles = model_.branch_cycles;
                branch.base_energy_pj = model_.branch_energy_pj;
                const std::uint32_t branch_pc = here();
                out_.code.push_back(branch);
                lower_node(*node.then_branch);
                if (node.else_branch) {
                    TraceInstr jump;
                    jump.op = TOp::kJump;
                    const std::uint32_t jump_pc = here();
                    out_.code.push_back(jump);
                    out_.code[branch_pc].target = here();
                    lower_node(*node.else_branch);
                    out_.code[jump_pc].target = here();
                } else {
                    out_.code[branch_pc].target = here();
                }
                break;
            }
            case NodeKind::kLoop: {
                // Loop state lives in two frame scratch slots allocated
                // past the function's IR registers: no executor-side loop
                // stack, and recursion keeps per-frame state naturally.
                const std::int32_t index_slot = frame_size_++;
                const std::int32_t trip_slot = frame_size_++;

                TraceInstr enter;
                enter.op = TOp::kLoopEnter;
                enter.a = node.trip_reg;
                enter.imm = node.trip;
                enter.bound = node.bound;
                enter.dst = index_slot;
                enter.c = trip_slot;
                const std::uint32_t enter_pc = here();
                out_.code.push_back(enter);

                TraceInstr iter;
                iter.op = TOp::kLoopIter;
                iter.dst = node.index_reg;
                iter.imm = node.stride;
                iter.a = index_slot;
                iter.base_cycles = model_.loop_iter_cycles;
                iter.base_energy_pj = model_.loop_iter_energy_pj;
                const std::uint32_t iter_pc = here();
                out_.code.push_back(iter);

                lower_node(*node.body);

                TraceInstr back;
                back.op = TOp::kLoopBack;
                back.a = index_slot;
                back.b = trip_slot;
                back.target = iter_pc;
                out_.code.push_back(back);
                out_.code[enter_pc].target = here();
                break;
            }
            case NodeKind::kCall: {
                // The callee is defined (reachable_functions was complete).
                // Its frame size (call.a) is patched in patch_calls once
                // the callee's scratch slots are known.
                const ir::Function* callee = program_.find(node.callee);
                TraceInstr call;
                call.op = TOp::kCall;
                call.dst = node.ret;
                call.b = callee->ret_reg;
                call.imm = static_cast<ir::Word>(node.args.size());
                call.aux = static_cast<std::uint32_t>(out_.arg_pool.size());
                call.base_cycles = model_.call_cycles;
                call.base_energy_pj = model_.call_energy_pj;
                for (const ir::Reg arg : node.args)
                    out_.arg_pool.push_back(arg);
                call_patches_.emplace_back(here(), node.callee);
                out_.code.push_back(call);
                break;
            }
        }
    }

    void lower_instr(const ir::Instr& instr) {
        TraceInstr out;
        out.op = compute_op(instr.op);
        out.cls = isa::instr_class(instr.op);
        out.dst = instr.dst;
        out.a = instr.a;
        out.b = instr.b;
        out.c = instr.c;
        out.imm = instr.imm;
        out.base_cycles = model_.cycles_of(out.cls);
        out.base_energy_pj = model_.energy_of(out.cls);
        out_.code.push_back(out);
    }

    const ir::Program& program_;
    const isa::TargetModel& model_;
    CompiledTrace& out_;
    std::int32_t frame_size_ = 0;  ///< current function's regs + scratch
    std::map<std::string, std::uint32_t> entry_pcs_;
    std::map<std::string, std::int32_t> frame_sizes_;
    std::vector<std::pair<std::uint32_t, std::string>> call_patches_;
};

}  // namespace

std::shared_ptr<const CompiledTrace> TraceCompiler::compile(
    const ir::Program& program, const std::string& entry,
    const isa::TargetModel& model) {
    std::vector<const ir::Function*> functions;
    if (!ir::reachable_functions(program, entry, functions)) return nullptr;

    auto trace = std::make_shared<CompiledTrace>();
    trace->entry_name = entry;
    trace->entry_param_count = functions.front()->param_count;
    trace->entry_ret_reg = functions.front()->ret_reg;
    trace->function_count = functions.size();
    trace->estimated_charges =
        ir::estimate_charges(program, *functions.front());

    Lowerer lowerer(program, model, *trace);
    for (const ir::Function* fn : functions) lowerer.lower_function(*fn);
    lowerer.patch_calls();
    trace->entry_reg_count = lowerer.frame_size(functions.front()->name);
    trace->max_frame_size = lowerer.max_frame_size();
    return trace;
}

std::uint64_t model_fingerprint(const isa::TargetModel& model) {
    Hasher hash;
    hash.mix(std::uint64_t{0x544D4601});  // domain tag: "TMF" v1
    hash.mix(model.name);
    hash.mix(static_cast<std::uint64_t>(model.predictable ? 1 : 0));
    for (const auto& entry : model.cost) {
        hash.mix(entry.cycles);
        hash.mix(entry.energy_pj);
    }
    hash.mix(model.branch_cycles);
    hash.mix(model.branch_energy_pj);
    hash.mix(model.loop_iter_cycles);
    hash.mix(model.loop_iter_energy_pj);
    hash.mix(model.call_cycles);
    hash.mix(model.call_energy_pj);
    hash.mix(model.nominal_voltage);
    hash.mix(model.data_alpha_pj_per_bit);
    hash.mix(model.cache_miss_prob);
    hash.mix(model.cache_miss_penalty);
    hash.mix(model.timing_jitter_sigma);
    return hash.value;
}

void TraceCache::Stats::merge(const Stats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    entries += other.entries;
}

TraceCache::Stats TraceCache::Stats::since(const Stats& before) const {
    Stats delta = *this;
    delta.hits -= before.hits;
    delta.misses -= before.misses;
    delta.evictions -= before.evictions;
    return delta;
}

std::shared_ptr<const CompiledTrace> TraceCache::get_or_compile(
    const ir::Program& program, const std::string& entry,
    const isa::TargetModel& model) {
    const Key key{ir::structural_fingerprint(program, entry),
                  model_fingerprint(model)};
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++stats_.hits;
            lru_.splice(lru_.begin(), lru_, it->second.lru_it);
            return it->second.trace;
        }
        ++stats_.misses;
    }

    auto trace = TraceCompiler::compile(program, entry, model);

    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
        lru_.push_front(key);
        it->second = Entry{std::move(trace), lru_.begin()};
        stats_.entries = entries_.size();
        evict_to_budget_locked();
    }
    return it->second.trace;
}

void TraceCache::evict_to_budget_locked() {
    if (budget_.max_entries == 0) return;
    while (entries_.size() > budget_.max_entries) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++stats_.evictions;
    }
    stats_.entries = entries_.size();
}

TraceCache::Stats TraceCache::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void TraceCache::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    stats_ = Stats{};
}

const std::shared_ptr<TraceCache>& TraceCache::process_wide() {
    static const std::shared_ptr<TraceCache> cache =
        std::make_shared<TraceCache>();
    return cache;
}

}  // namespace teamplay::sim
