// Simulator execution-tier selection.
//
// The machine has two execution tiers (DESIGN.md §9): the recursive
// tree-walking interpreter (the reference semantics and differential
// oracle) and the binary-translation-lite trace tier, which pre-decodes a
// function into a flat instruction stream executed by a threaded-dispatch
// loop.  Both tiers produce bit-identical RunResults — the tier only
// changes how fast the crank turns, never what comes out.
//
// Selection is layered: every Machine picks up the process-wide default at
// construction (what the CLI's --sim-backend flag sets), and owners that
// manage their own machines — the PowProfiler, the multi-criteria compiler,
// the scenario engine — thread an explicit SimOptions through instead, the
// same way the engine shares its EvaluationCache.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

namespace teamplay::sim {

class TraceCache;

enum class SimBackend : std::uint8_t {
    kInterp,  ///< recursive tree-walking interpreter (reference tier)
    kTrace,   ///< pre-decoded threaded-dispatch traces, interp fallback
};

/// Process-wide default backend consulted by every Machine constructor.
/// Defaults to kInterp; set once at startup (e.g. from --sim-backend)
/// before machines exist — the setter is atomic, but machines snapshot it
/// at construction.
[[nodiscard]] SimBackend default_backend();
void set_default_backend(SimBackend backend);

[[nodiscard]] std::string_view backend_name(SimBackend backend);
/// Parses "interp" / "trace"; nullopt for anything else.
[[nodiscard]] std::optional<SimBackend> parse_backend(std::string_view name);

/// Backend selection plus the trace cache to share, threaded through the
/// components that construct machines internally.  A null cache with the
/// trace backend means the process-wide cache (TraceCache::process_wide).
struct SimOptions {
    SimBackend backend = default_backend();
    std::shared_ptr<TraceCache> trace_cache;
};

}  // namespace teamplay::sim
