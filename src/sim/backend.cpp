#include "sim/backend.hpp"

#include <atomic>

namespace teamplay::sim {

namespace {
std::atomic<SimBackend> g_default_backend{SimBackend::kInterp};
}  // namespace

SimBackend default_backend() {
    return g_default_backend.load(std::memory_order_relaxed);
}

void set_default_backend(SimBackend backend) {
    g_default_backend.store(backend, std::memory_order_relaxed);
}

std::string_view backend_name(SimBackend backend) {
    switch (backend) {
        case SimBackend::kInterp: return "interp";
        case SimBackend::kTrace: return "trace";
    }
    return "?";
}

std::optional<SimBackend> parse_backend(std::string_view name) {
    if (name == "interp") return SimBackend::kInterp;
    if (name == "trace") return SimBackend::kTrace;
    return std::nullopt;
}

}  // namespace teamplay::sim
