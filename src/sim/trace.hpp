// Binary-translation-lite execution tier: pre-decoded simulator traces.
//
// The TraceCompiler lowers one entry function and everything it calls into
// a single flat instruction stream (DESIGN.md §9).  All per-node decode
// work the tree-walking interpreter repeats on every visit is done once,
// at compile time:
//
//   * operands are resolved to frame-relative register indices and
//     immediates are folded into the instruction word;
//   * the isa::InstrClass and the base cycle / dynamic-energy cost of
//     every instruction are looked up from the core's cost tables and
//     stored next to the operation;
//   * structured control flow (If / Loop / Call regions) becomes explicit
//     jump targets: an If is a conditional branch, a Loop is an
//     enter/iterate/back-edge triple carrying the static trip bound, and a
//     Call jumps into the callee's segment of the same stream.
//
// The stream is executed by Machine's threaded-dispatch loop (computed
// goto under GCC/Clang, dense switch otherwise) — see machine.cpp.
//
// Identity guarantee: a compiled trace charges *exactly* the sequence of
// (instruction class, data value) and overhead events the interpreter
// charges, with the same floating-point expression shapes and the same
// RNG consumption order, so cycles, energies, power-trace samples, taint
// inputs and certificates are bit-identical between the two tiers.  Only
// OPP-independent quantities are baked into the stream (base cycles and
// base pJ at nominal voltage); the DVFS energy scale and frequency stay
// runtime multipliers, so one trace serves every operating point.
//
// Caching: a trace is a pure function of (reachable program structure,
// core cost model).  TraceCache keys on (ir::structural_fingerprint,
// model fingerprint) — the same canonical program key the engine's
// EvaluationCache uses — so hot kernels shared across programs, shards
// and millions of submissions pay decode once.  The cache is a small
// bounded LRU with EvaluationCache-style Stats.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ir/program.hpp"
#include "isa/target_model.hpp"

namespace teamplay::sim {

/// Pre-decoded operations.  Compute ops mirror ir::Opcode one-to-one (the
/// dispatch loop gives each its own handler); control ops replace the
/// region tree with explicit jumps.
enum class TOp : std::uint8_t {
    kNop,
    kMovImm,
    kMov,
    kNot,
    kNeg,
    kAbs,
    kPopcnt,
    kLoad,
    kStore,
    kSelect,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kRem,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr,
    kCmpEq,
    kCmpNe,
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kMin,
    kMax,
    kBranch,     ///< If head: charge branch overhead, jump to `target` when
                 ///< the condition register (c) is zero
    kJump,       ///< unconditional jump to `target` (end of a then-branch)
    kLoopEnter,  ///< resolve the trip count, validate the static bound,
                 ///< init the loop's scratch registers (dst = index slot,
                 ///< c = trip slot); jump to `target` (exit) on zero trips
    kLoopIter,   ///< per-iteration: charge loop overhead, publish the index
    kLoopBack,   ///< back edge: ++scratch index, jump to `target` (the
                 ///< kLoopIter) while below the scratch trip count
    kCall,       ///< charge call overhead, push a frame, jump to `target`
    kRet,        ///< pop a frame / halt when the entry frame returns
};

inline constexpr std::size_t kNumTOps = static_cast<std::size_t>(TOp::kRet) + 1;

/// One pre-decoded instruction.  Unused fields hold -1/0; `base_cycles` and
/// `base_energy_pj` are the cost-table lookups for compute ops and the
/// structural overheads (branch/loop-iteration/call) for control ops.
struct TraceInstr {
    TOp op = TOp::kNop;
    isa::InstrClass cls = isa::InstrClass::kNop;
    std::int32_t dst = -1;  ///< destination register / loop index register
    std::int32_t a = -1;    ///< source a / loop trip register / callee regs
    std::int32_t b = -1;    ///< source b / callee return register
    std::int32_t c = -1;    ///< select / branch condition register
    ir::Word imm = 0;       ///< immediate / static trip / stride / arg count
    std::uint32_t target = 0;  ///< jump target / callee entry pc
    std::uint32_t aux = 0;     ///< arg-pool offset (kCall)
    std::int64_t bound = 0;    ///< static loop bound (kLoopEnter)
    double base_cycles = 0.0;
    double base_energy_pj = 0.0;
};

/// A lowered (entry function, core model) pair: the entry's segment first,
/// every transitively called function's segment after it, call targets
/// resolved to stream offsets.  Immutable once built; shared freely across
/// machines and threads.
struct CompiledTrace {
    std::vector<TraceInstr> code;
    std::vector<std::int32_t> arg_pool;  ///< flattened kCall argument lists
    std::string entry_name;              ///< diagnostic only
    int entry_param_count = 0;
    /// Frame size of the entry: the function's reg_count plus two scratch
    /// slots per lowered loop (index and trip count live in the frame, so
    /// the executor keeps no side stack for loops).
    int entry_reg_count = 0;
    /// Largest frame (regs + scratch) of any lowered function: the executor
    /// sizes its register arena once, up front, as entry_reg_count plus
    /// max_frame_size words per allowed call depth, so frame pushes never
    /// reallocate (the arena pointer stays stable for the whole run).
    int max_frame_size = 0;
    std::int32_t entry_ret_reg = -1;
    std::size_t function_count = 0;
    /// ir::estimate_charges of the entry: used to pre-reserve
    /// RunResult::power_trace so the tracing hot path never reallocates.
    std::int64_t estimated_charges = 0;
};

/// Lowers region trees into CompiledTraces.
struct TraceCompiler {
    /// Returns nullptr when the program cannot be lowered (the entry or a
    /// transitively called function is undefined); callers fall back to the
    /// interpreter, which reproduces the exact runtime error surface.
    [[nodiscard]] static std::shared_ptr<const CompiledTrace> compile(
        const ir::Program& program, const std::string& entry,
        const isa::TargetModel& model);
};

/// Canonical fingerprint of a cost model: every field that influences a
/// lowered trace or a charge, hashed by bit pattern.  Two cores with equal
/// fingerprints produce interchangeable traces.
[[nodiscard]] std::uint64_t model_fingerprint(const isa::TargetModel& model);

/// Bounded, thread-safe LRU cache of compiled traces, keyed by
/// (structural fingerprint of the reachable program, model fingerprint).
/// Failed lowerings are cached as null entries so undefined-callee
/// programs do not re-attempt compilation every run.
class TraceCache {
public:
    struct Budget {
        /// Max resident traces; 0 = unbounded (mirrors EvaluationCache).
        std::size_t max_entries = 128;
    };

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0;

        [[nodiscard]] double hit_ratio() const {
            const auto total = hits + misses;
            return total > 0
                       ? static_cast<double>(hits) / static_cast<double>(total)
                       : 0.0;
        }
        /// Commutative fold of per-cache snapshots (counters sum).
        void merge(const Stats& other);
        /// Counter delta since an earlier snapshot of the same cache;
        /// `entries` keeps this snapshot's point-in-time value.
        [[nodiscard]] Stats since(const Stats& before) const;
    };

    TraceCache() : TraceCache(Budget{}) {}
    explicit TraceCache(Budget budget) : budget_(budget) {}

    /// Cache lookup; compiles and admits on miss (evicting cold traces
    /// beyond the budget).  The returned trace may be null (uncompilable
    /// program — interpreter fallback).  Compilation runs outside the
    /// cache lock; a racing miss on the same key wastes one compile but
    /// both racers observe the same admitted trace.
    [[nodiscard]] std::shared_ptr<const CompiledTrace> get_or_compile(
        const ir::Program& program, const std::string& entry,
        const isa::TargetModel& model);

    [[nodiscard]] Stats stats() const;
    /// Drop every entry and reset counters.
    void clear();

    /// Lazily constructed process-wide cache: what machines use when the
    /// trace backend is selected without an explicit cache (e.g. via the
    /// CLI's --sim-backend flag).
    [[nodiscard]] static const std::shared_ptr<TraceCache>& process_wide();

private:
    using Key = std::pair<std::uint64_t, std::uint64_t>;
    struct Entry {
        std::shared_ptr<const CompiledTrace> trace;
        std::list<Key>::iterator lru_it;
    };

    void evict_to_budget_locked();

    Budget budget_;
    mutable std::mutex mutex_;
    std::map<Key, Entry> entries_;
    std::list<Key> lru_;  ///< front = most recently used
    Stats stats_;
};

}  // namespace teamplay::sim
