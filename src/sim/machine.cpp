#include "sim/machine.hpp"

#include <bit>
#include <stdexcept>

namespace teamplay::sim {

namespace {

constexpr int kMaxCallDepth = 64;

ir::Word eval_binop(ir::Opcode op, ir::Word a, ir::Word b) {
    using ir::Opcode;
    using U = std::uint64_t;
    switch (op) {
        case Opcode::kAdd: return static_cast<ir::Word>(static_cast<U>(a) + static_cast<U>(b));
        case Opcode::kSub: return static_cast<ir::Word>(static_cast<U>(a) - static_cast<U>(b));
        case Opcode::kMul: return static_cast<ir::Word>(static_cast<U>(a) * static_cast<U>(b));
        case Opcode::kDiv: return b == 0 ? 0 : a / b;
        case Opcode::kRem: return b == 0 ? 0 : a % b;
        case Opcode::kAnd: return a & b;
        case Opcode::kOr: return a | b;
        case Opcode::kXor: return a ^ b;
        case Opcode::kShl:
            return static_cast<ir::Word>(static_cast<U>(a)
                                         << (static_cast<U>(b) & 63U));
        case Opcode::kShr:
            return static_cast<ir::Word>(static_cast<U>(a) >>
                                         (static_cast<U>(b) & 63U));
        case Opcode::kCmpEq: return a == b ? 1 : 0;
        case Opcode::kCmpNe: return a != b ? 1 : 0;
        case Opcode::kCmpLt: return a < b ? 1 : 0;
        case Opcode::kCmpLe: return a <= b ? 1 : 0;
        case Opcode::kCmpGt: return a > b ? 1 : 0;
        case Opcode::kCmpGe: return a >= b ? 1 : 0;
        case Opcode::kMin: return a < b ? a : b;
        case Opcode::kMax: return a > b ? a : b;
        default: return 0;
    }
}

}  // namespace

Machine::Machine(const ir::Program& program, const platform::Core& core,
                 std::size_t opp_index, std::uint64_t seed)
    : program_(&program), core_(&core), opp_index_(opp_index),
      energy_scale_(core.energy_scale(core.opp(opp_index))),
      memory_(program.memory_words, 0), rng_(seed) {}

void Machine::poke(std::size_t address, ir::Word value) {
    if (address >= memory_.size())
        throw std::out_of_range("Machine::poke: address out of range");
    memory_[address] = value;
}

ir::Word Machine::peek(std::size_t address) const {
    if (address >= memory_.size())
        throw std::out_of_range("Machine::peek: address out of range");
    return memory_[address];
}

void Machine::poke_span(std::size_t address, std::span<const ir::Word> values) {
    if (address + values.size() > memory_.size())
        throw std::out_of_range("Machine::poke_span: range out of bounds");
    std::copy(values.begin(), values.end(),
              memory_.begin() + static_cast<std::ptrdiff_t>(address));
}

std::vector<ir::Word> Machine::peek_span(std::size_t address,
                                         std::size_t count) const {
    if (address + count > memory_.size())
        throw std::out_of_range("Machine::peek_span: range out of bounds");
    return {memory_.begin() + static_cast<std::ptrdiff_t>(address),
            memory_.begin() + static_cast<std::ptrdiff_t>(address + count)};
}

void Machine::clear_memory() {
    std::fill(memory_.begin(), memory_.end(), 0);
}

double Machine::stochastic_cycles(double base, bool memory_access) {
    const auto& model = core_->model;
    if (model.predictable) return base;
    double cycles = base;
    if (model.timing_jitter_sigma > 0.0) {
        const double factor =
            1.0 + rng_.gaussian(0.0, model.timing_jitter_sigma);
        cycles *= factor < 0.1 ? 0.1 : factor;
    }
    if (memory_access && rng_.chance(model.cache_miss_prob))
        cycles += model.cache_miss_penalty;
    return cycles;
}

void Machine::charge(isa::InstrClass cls, ir::Word data_value,
                     RunResult& result, bool record_trace) {
    const auto& model = core_->model;
    const auto& point = core_->opp(opp_index_);
    const bool is_mem =
        cls == isa::InstrClass::kLoad || cls == isa::InstrClass::kStore;
    const double cycles = stochastic_cycles(model.cycles_of(cls), is_mem);
    const double data_pj =
        model.data_alpha_pj_per_bit *
        static_cast<double>(std::popcount(static_cast<std::uint64_t>(data_value)));
    const double energy_j =
        (model.energy_of(cls) + data_pj) * energy_scale_ * 1e-12;

    result.cycles += cycles;
    result.dynamic_energy_j += energy_j;
    ++result.instrs_executed;
    ++result.class_counts[static_cast<std::size_t>(cls)];

    if (record_trace) {
        const double duration_s = cycles / point.freq_hz;
        result.power_trace.push_back(duration_s > 0.0 ? energy_j / duration_s
                                                      : 0.0);
    }
    if (result.instrs_executed > budget_)
        throw std::runtime_error(
            "Machine: instruction budget exceeded (runaway program?)");
}

void Machine::charge_overhead(double cycles, double energy_pj,
                              RunResult& result, bool record_trace) {
    const auto& point = core_->opp(opp_index_);
    const double actual = stochastic_cycles(cycles, false);
    const double energy_j = energy_pj * energy_scale_ * 1e-12;
    result.cycles += actual;
    result.dynamic_energy_j += energy_j;
    if (record_trace) {
        const double duration_s = actual / point.freq_hz;
        result.power_trace.push_back(duration_s > 0.0 ? energy_j / duration_s
                                                      : 0.0);
    }
}

void Machine::exec_block(const ir::Node& node, Frame& frame,
                         RunResult& result, bool record_trace) {
    using ir::Opcode;
    auto& regs = frame.regs;
    for (const auto& instr : node.instrs) {
        switch (instr.op) {
            case Opcode::kNop:
                charge(isa::InstrClass::kNop, 0, result, record_trace);
                break;
            case Opcode::kMovImm:
                regs[static_cast<std::size_t>(instr.dst)] = instr.imm;
                charge(isa::InstrClass::kMove, instr.imm, result,
                       record_trace);
                break;
            case Opcode::kMov: {
                const ir::Word v = regs[static_cast<std::size_t>(instr.a)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kMove, v, result, record_trace);
                break;
            }
            case Opcode::kNot: {
                const ir::Word v = ~regs[static_cast<std::size_t>(instr.a)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kAlu, v, result, record_trace);
                break;
            }
            case Opcode::kNeg: {
                const ir::Word v = -regs[static_cast<std::size_t>(instr.a)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kAlu, v, result, record_trace);
                break;
            }
            case Opcode::kAbs: {
                const ir::Word a = regs[static_cast<std::size_t>(instr.a)];
                const ir::Word v = a < 0 ? -a : a;
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kAlu, v, result, record_trace);
                break;
            }
            case Opcode::kPopcnt: {
                const ir::Word v = static_cast<ir::Word>(std::popcount(
                    static_cast<std::uint64_t>(
                        regs[static_cast<std::size_t>(instr.a)])));
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kAlu, v, result, record_trace);
                break;
            }
            case Opcode::kLoad: {
                const ir::Word addr =
                    regs[static_cast<std::size_t>(instr.a)] + instr.imm;
                if (addr < 0 ||
                    static_cast<std::size_t>(addr) >= memory_.size())
                    throw std::out_of_range("Machine: load out of bounds");
                const ir::Word v = memory_[static_cast<std::size_t>(addr)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kLoad, v, result, record_trace);
                break;
            }
            case Opcode::kStore: {
                const ir::Word addr =
                    regs[static_cast<std::size_t>(instr.a)] + instr.imm;
                if (addr < 0 ||
                    static_cast<std::size_t>(addr) >= memory_.size())
                    throw std::out_of_range("Machine: store out of bounds");
                const ir::Word v = regs[static_cast<std::size_t>(instr.b)];
                memory_[static_cast<std::size_t>(addr)] = v;
                charge(isa::InstrClass::kStore, v, result, record_trace);
                break;
            }
            case Opcode::kSelect: {
                const ir::Word c = regs[static_cast<std::size_t>(instr.c)];
                const ir::Word v =
                    c != 0 ? regs[static_cast<std::size_t>(instr.a)]
                           : regs[static_cast<std::size_t>(instr.b)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kSelect, v, result, record_trace);
                break;
            }
            case Opcode::kDiv:
            case Opcode::kRem: {
                const ir::Word v =
                    eval_binop(instr.op, regs[static_cast<std::size_t>(instr.a)],
                               regs[static_cast<std::size_t>(instr.b)]);
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kDiv, v, result, record_trace);
                break;
            }
            case Opcode::kMul: {
                const ir::Word v =
                    eval_binop(instr.op, regs[static_cast<std::size_t>(instr.a)],
                               regs[static_cast<std::size_t>(instr.b)]);
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kMul, v, result, record_trace);
                break;
            }
            default: {
                const ir::Word v =
                    eval_binop(instr.op, regs[static_cast<std::size_t>(instr.a)],
                               regs[static_cast<std::size_t>(instr.b)]);
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge(isa::InstrClass::kAlu, v, result, record_trace);
                break;
            }
        }
    }
}

void Machine::exec_node(const ir::Node& node, Frame& frame, RunResult& result,
                        bool record_trace, int call_depth) {
    using ir::NodeKind;
    const auto& model = core_->model;
    switch (node.kind) {
        case NodeKind::kBlock:
            exec_block(node, frame, result, record_trace);
            break;
        case NodeKind::kSeq:
            for (const auto& child : node.children)
                exec_node(*child, frame, result, record_trace, call_depth);
            break;
        case NodeKind::kIf: {
            charge_overhead(model.branch_cycles, model.branch_energy_pj,
                            result, record_trace);
            const ir::Word cond =
                frame.regs[static_cast<std::size_t>(node.cond)];
            if (cond != 0) {
                exec_node(*node.then_branch, frame, result, record_trace,
                          call_depth);
            } else if (node.else_branch) {
                exec_node(*node.else_branch, frame, result, record_trace,
                          call_depth);
            }
            break;
        }
        case NodeKind::kLoop: {
            std::int64_t trips = node.trip;
            if (node.trip_reg != ir::kNoReg) {
                trips = frame.regs[static_cast<std::size_t>(node.trip_reg)];
                if (trips < 0) trips = 0;
                if (trips > node.bound)
                    throw std::runtime_error(
                        "Machine: dynamic loop trip exceeds static bound in "
                        "function execution");
            }
            for (std::int64_t i = 0; i < trips; ++i) {
                charge_overhead(model.loop_iter_cycles,
                                model.loop_iter_energy_pj, result,
                                record_trace);
                if (node.index_reg != ir::kNoReg)
                    frame.regs[static_cast<std::size_t>(node.index_reg)] =
                        i * node.stride;
                exec_node(*node.body, frame, result, record_trace,
                          call_depth);
            }
            break;
        }
        case NodeKind::kCall: {
            if (call_depth >= kMaxCallDepth)
                throw std::runtime_error("Machine: call depth exceeded");
            const ir::Function* callee = program_->find(node.callee);
            if (callee == nullptr)
                throw std::runtime_error("Machine: undefined function '" +
                                         node.callee + "'");
            charge_overhead(model.call_cycles, model.call_energy_pj, result,
                            record_trace);
            Frame inner;
            inner.regs.assign(static_cast<std::size_t>(callee->reg_count), 0);
            for (std::size_t i = 0; i < node.args.size(); ++i)
                inner.regs[i] =
                    frame.regs[static_cast<std::size_t>(node.args[i])];
            exec_node(*callee->body, inner, result, record_trace,
                      call_depth + 1);
            if (node.ret != ir::kNoReg && callee->ret_reg != ir::kNoReg)
                frame.regs[static_cast<std::size_t>(node.ret)] =
                    inner.regs[static_cast<std::size_t>(callee->ret_reg)];
            break;
        }
    }
}

RunResult Machine::run(const std::string& function,
                       std::span<const ir::Word> args, bool record_trace) {
    const ir::Function* fn = program_->find(function);
    if (fn == nullptr)
        throw std::runtime_error("Machine: undefined function '" + function +
                                 "'");
    if (static_cast<int>(args.size()) != fn->param_count)
        throw std::invalid_argument("Machine: argument count mismatch for '" +
                                    function + "'");
    RunResult result;
    Frame frame;
    frame.regs.assign(static_cast<std::size_t>(fn->reg_count), 0);
    for (std::size_t i = 0; i < args.size(); ++i) frame.regs[i] = args[i];

    exec_node(*fn->body, frame, result, record_trace, 0);

    const auto& point = core_->opp(opp_index_);
    result.time_s = result.cycles / point.freq_hz;
    result.static_energy_j = point.static_power_w * result.time_s;
    if (fn->ret_reg != ir::kNoReg)
        result.ret_value = frame.regs[static_cast<std::size_t>(fn->ret_reg)];
    return result;
}

}  // namespace teamplay::sim
