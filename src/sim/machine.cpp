#include "sim/machine.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "ir/lowering.hpp"
#include "sim/trace.hpp"

// Threaded dispatch for the trace executor: computed goto on toolchains
// that support the labels-as-values extension (GCC, Clang), a dense switch
// inside a loop otherwise.  Both forms share the same handler bodies: every
// handler updates `pc` explicitly and ends in TP_DISPATCH().
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(TEAMPLAY_FORCE_SWITCH_DISPATCH)
#define TEAMPLAY_COMPUTED_GOTO 1
#else
#define TEAMPLAY_COMPUTED_GOTO 0
#endif

namespace teamplay::sim {

namespace {

constexpr int kMaxCallDepth = 64;

// Out-of-line throw helpers for the trace executor.  The throw expressions
// must not live inside the dispatch handlers: every call site clobbers the
// XMM register file, so inline throws force the cycle/energy accumulators
// onto the stack for the entire run loop (a store-forwarding round trip
// per simulated instruction).  As cold noinline noreturn functions the
// spills sink into the error paths.
[[noreturn, gnu::cold, gnu::noinline]] void throw_budget_exceeded() {
    throw std::runtime_error(
        "Machine: instruction budget exceeded (runaway program?)");
}
[[noreturn, gnu::cold, gnu::noinline]] void throw_load_oob() {
    throw std::out_of_range("Machine: load out of bounds");
}
[[noreturn, gnu::cold, gnu::noinline]] void throw_store_oob() {
    throw std::out_of_range("Machine: store out of bounds");
}
[[noreturn, gnu::cold, gnu::noinline]] void throw_loop_bound() {
    throw std::runtime_error(
        "Machine: dynamic loop trip exceeds static bound in function "
        "execution");
}
[[noreturn, gnu::cold, gnu::noinline]] void throw_call_depth() {
    throw std::runtime_error("Machine: call depth exceeded");
}

/// Cap on the up-front power-trace reservation (samples).  The static
/// charge estimate takes loop bounds and the wider side of every If, so it
/// can exceed the actual sample count by orders of magnitude on
/// early-exiting programs; beyond this cap, amortised vector growth is
/// cheaper than the over-allocation.
constexpr std::int64_t kMaxTraceReserve = 1 << 20;

ir::Word eval_binop(ir::Opcode op, ir::Word a, ir::Word b) {
    using ir::Opcode;
    using U = std::uint64_t;
    switch (op) {
        case Opcode::kAdd: return static_cast<ir::Word>(static_cast<U>(a) + static_cast<U>(b));
        case Opcode::kSub: return static_cast<ir::Word>(static_cast<U>(a) - static_cast<U>(b));
        case Opcode::kMul: return static_cast<ir::Word>(static_cast<U>(a) * static_cast<U>(b));
        case Opcode::kDiv: return b == 0 ? 0 : a / b;
        case Opcode::kRem: return b == 0 ? 0 : a % b;
        case Opcode::kAnd: return a & b;
        case Opcode::kOr: return a | b;
        case Opcode::kXor: return a ^ b;
        case Opcode::kShl:
            return static_cast<ir::Word>(static_cast<U>(a)
                                         << (static_cast<U>(b) & 63U));
        case Opcode::kShr:
            return static_cast<ir::Word>(static_cast<U>(a) >>
                                         (static_cast<U>(b) & 63U));
        case Opcode::kCmpEq: return a == b ? 1 : 0;
        case Opcode::kCmpNe: return a != b ? 1 : 0;
        case Opcode::kCmpLt: return a < b ? 1 : 0;
        case Opcode::kCmpLe: return a <= b ? 1 : 0;
        case Opcode::kCmpGt: return a > b ? 1 : 0;
        case Opcode::kCmpGe: return a >= b ? 1 : 0;
        case Opcode::kMin: return a < b ? a : b;
        case Opcode::kMax: return a > b ? a : b;
        default: return 0;
    }
}

}  // namespace

Machine::Machine(const ir::Program& program, const platform::Core& core,
                 std::size_t opp_index, std::uint64_t seed, SimOptions sim)
    : program_(&program), core_(&core), opp_index_(opp_index),
      energy_scale_(core.energy_scale(core.opp(opp_index))),
      memory_(program.memory_words, 0), rng_(seed), backend_(sim.backend),
      trace_cache_(std::move(sim.trace_cache)) {
    if (backend_ == SimBackend::kTrace && trace_cache_ == nullptr)
        trace_cache_ = TraceCache::process_wide();
}

void Machine::poke(std::size_t address, ir::Word value) {
    if (address >= memory_.size())
        throw std::out_of_range("Machine::poke: address out of range");
    memory_[address] = value;
}

ir::Word Machine::peek(std::size_t address) const {
    if (address >= memory_.size())
        throw std::out_of_range("Machine::peek: address out of range");
    return memory_[address];
}

void Machine::poke_span(std::size_t address, std::span<const ir::Word> values) {
    if (address + values.size() > memory_.size())
        throw std::out_of_range("Machine::poke_span: range out of bounds");
    std::copy(values.begin(), values.end(),
              memory_.begin() + static_cast<std::ptrdiff_t>(address));
}

std::vector<ir::Word> Machine::peek_span(std::size_t address,
                                         std::size_t count) const {
    if (address + count > memory_.size())
        throw std::out_of_range("Machine::peek_span: range out of bounds");
    return {memory_.begin() + static_cast<std::ptrdiff_t>(address),
            memory_.begin() + static_cast<std::ptrdiff_t>(address + count)};
}

void Machine::clear_memory() {
    std::fill(memory_.begin(), memory_.end(), 0);
}

double Machine::stochastic_cycles(double base, bool memory_access) {
    const auto& model = core_->model;
    if (model.predictable) return base;
    double cycles = base;
    if (model.timing_jitter_sigma > 0.0) {
        const double factor =
            1.0 + rng_.gaussian(0.0, model.timing_jitter_sigma);
        cycles *= factor < 0.1 ? 0.1 : factor;
    }
    if (memory_access && rng_.chance(model.cache_miss_prob))
        cycles += model.cache_miss_penalty;
    return cycles;
}

template <bool RecordTrace>
void Machine::charge(isa::InstrClass cls, ir::Word data_value,
                     RunResult& result) {
    const auto& model = core_->model;
    const bool is_mem =
        cls == isa::InstrClass::kLoad || cls == isa::InstrClass::kStore;
    const double cycles = stochastic_cycles(model.cycles_of(cls), is_mem);
    const double data_pj =
        model.data_alpha_pj_per_bit *
        static_cast<double>(std::popcount(static_cast<std::uint64_t>(data_value)));
    const double energy_j =
        (model.energy_of(cls) + data_pj) * energy_scale_ * 1e-12;

    result.cycles += cycles;
    result.dynamic_energy_j += energy_j;
    ++result.instrs_executed;
    ++result.class_counts[static_cast<std::size_t>(cls)];

    if constexpr (RecordTrace) {
        const auto& point = core_->opp(opp_index_);
        const double duration_s = cycles / point.freq_hz;
        result.power_trace.push_back(duration_s > 0.0 ? energy_j / duration_s
                                                      : 0.0);
    }
    if (result.instrs_executed > budget_)
        throw std::runtime_error(
            "Machine: instruction budget exceeded (runaway program?)");
}

template <bool RecordTrace>
void Machine::charge_overhead(double cycles, double energy_pj,
                              RunResult& result) {
    const double actual = stochastic_cycles(cycles, false);
    const double energy_j = energy_pj * energy_scale_ * 1e-12;
    result.cycles += actual;
    result.dynamic_energy_j += energy_j;
    if constexpr (RecordTrace) {
        const auto& point = core_->opp(opp_index_);
        const double duration_s = actual / point.freq_hz;
        result.power_trace.push_back(duration_s > 0.0 ? energy_j / duration_s
                                                      : 0.0);
    }
}

template <bool RecordTrace>
void Machine::exec_block(const ir::Node& node, Frame& frame,
                         RunResult& result) {
    using ir::Opcode;
    auto& regs = frame.regs;
    for (const auto& instr : node.instrs) {
        switch (instr.op) {
            case Opcode::kNop:
                charge<RecordTrace>(isa::InstrClass::kNop, 0, result);
                break;
            case Opcode::kMovImm:
                regs[static_cast<std::size_t>(instr.dst)] = instr.imm;
                charge<RecordTrace>(isa::InstrClass::kMove, instr.imm,
                                    result);
                break;
            case Opcode::kMov: {
                const ir::Word v = regs[static_cast<std::size_t>(instr.a)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kMove, v, result);
                break;
            }
            case Opcode::kNot: {
                const ir::Word v = ~regs[static_cast<std::size_t>(instr.a)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kAlu, v, result);
                break;
            }
            case Opcode::kNeg: {
                const ir::Word v = -regs[static_cast<std::size_t>(instr.a)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kAlu, v, result);
                break;
            }
            case Opcode::kAbs: {
                const ir::Word a = regs[static_cast<std::size_t>(instr.a)];
                const ir::Word v = a < 0 ? -a : a;
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kAlu, v, result);
                break;
            }
            case Opcode::kPopcnt: {
                const ir::Word v = static_cast<ir::Word>(std::popcount(
                    static_cast<std::uint64_t>(
                        regs[static_cast<std::size_t>(instr.a)])));
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kAlu, v, result);
                break;
            }
            case Opcode::kLoad: {
                const ir::Word addr =
                    regs[static_cast<std::size_t>(instr.a)] + instr.imm;
                if (addr < 0 ||
                    static_cast<std::size_t>(addr) >= memory_.size())
                    throw std::out_of_range("Machine: load out of bounds");
                const ir::Word v = memory_[static_cast<std::size_t>(addr)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kLoad, v, result);
                break;
            }
            case Opcode::kStore: {
                const ir::Word addr =
                    regs[static_cast<std::size_t>(instr.a)] + instr.imm;
                if (addr < 0 ||
                    static_cast<std::size_t>(addr) >= memory_.size())
                    throw std::out_of_range("Machine: store out of bounds");
                const ir::Word v = regs[static_cast<std::size_t>(instr.b)];
                memory_[static_cast<std::size_t>(addr)] = v;
                charge<RecordTrace>(isa::InstrClass::kStore, v, result);
                break;
            }
            case Opcode::kSelect: {
                const ir::Word c = regs[static_cast<std::size_t>(instr.c)];
                const ir::Word v =
                    c != 0 ? regs[static_cast<std::size_t>(instr.a)]
                           : regs[static_cast<std::size_t>(instr.b)];
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kSelect, v, result);
                break;
            }
            case Opcode::kDiv:
            case Opcode::kRem: {
                const ir::Word v =
                    eval_binop(instr.op, regs[static_cast<std::size_t>(instr.a)],
                               regs[static_cast<std::size_t>(instr.b)]);
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kDiv, v, result);
                break;
            }
            case Opcode::kMul: {
                const ir::Word v =
                    eval_binop(instr.op, regs[static_cast<std::size_t>(instr.a)],
                               regs[static_cast<std::size_t>(instr.b)]);
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kMul, v, result);
                break;
            }
            default: {
                const ir::Word v =
                    eval_binop(instr.op, regs[static_cast<std::size_t>(instr.a)],
                               regs[static_cast<std::size_t>(instr.b)]);
                regs[static_cast<std::size_t>(instr.dst)] = v;
                charge<RecordTrace>(isa::InstrClass::kAlu, v, result);
                break;
            }
        }
    }
}

template <bool RecordTrace>
void Machine::exec_node(const ir::Node& node, Frame& frame, RunResult& result,
                        int call_depth) {
    using ir::NodeKind;
    const auto& model = core_->model;
    switch (node.kind) {
        case NodeKind::kBlock:
            exec_block<RecordTrace>(node, frame, result);
            break;
        case NodeKind::kSeq:
            for (const auto& child : node.children)
                exec_node<RecordTrace>(*child, frame, result, call_depth);
            break;
        case NodeKind::kIf: {
            charge_overhead<RecordTrace>(model.branch_cycles,
                                         model.branch_energy_pj, result);
            const ir::Word cond =
                frame.regs[static_cast<std::size_t>(node.cond)];
            if (cond != 0) {
                exec_node<RecordTrace>(*node.then_branch, frame, result,
                                       call_depth);
            } else if (node.else_branch) {
                exec_node<RecordTrace>(*node.else_branch, frame, result,
                                       call_depth);
            }
            break;
        }
        case NodeKind::kLoop: {
            std::int64_t trips = node.trip;
            if (node.trip_reg != ir::kNoReg) {
                trips = frame.regs[static_cast<std::size_t>(node.trip_reg)];
                if (trips < 0) trips = 0;
                if (trips > node.bound)
                    throw std::runtime_error(
                        "Machine: dynamic loop trip exceeds static bound in "
                        "function execution");
            }
            for (std::int64_t i = 0; i < trips; ++i) {
                charge_overhead<RecordTrace>(model.loop_iter_cycles,
                                             model.loop_iter_energy_pj,
                                             result);
                if (node.index_reg != ir::kNoReg)
                    frame.regs[static_cast<std::size_t>(node.index_reg)] =
                        i * node.stride;
                exec_node<RecordTrace>(*node.body, frame, result, call_depth);
            }
            break;
        }
        case NodeKind::kCall: {
            if (call_depth >= kMaxCallDepth)
                throw std::runtime_error("Machine: call depth exceeded");
            const ir::Function* callee = program_->find(node.callee);
            if (callee == nullptr)
                throw std::runtime_error("Machine: undefined function '" +
                                         node.callee + "'");
            charge_overhead<RecordTrace>(model.call_cycles,
                                         model.call_energy_pj, result);
            Frame inner;
            inner.regs.assign(static_cast<std::size_t>(callee->reg_count), 0);
            for (std::size_t i = 0; i < node.args.size(); ++i)
                inner.regs[i] =
                    frame.regs[static_cast<std::size_t>(node.args[i])];
            exec_node<RecordTrace>(*callee->body, inner, result,
                                   call_depth + 1);
            if (node.ret != ir::kNoReg && callee->ret_reg != ir::kNoReg)
                frame.regs[static_cast<std::size_t>(node.ret)] =
                    inner.regs[static_cast<std::size_t>(callee->ret_reg)];
            break;
        }
    }
}

template <bool RecordTrace, bool Predictable>
void Machine::exec_trace(const CompiledTrace& trace,
                         std::span<const ir::Word> args, RunResult& result) {
    const auto& model = core_->model;
    const double freq_hz = core_->opp(opp_index_).freq_hz;
    const double alpha = model.data_alpha_pj_per_bit;
    const double scale = energy_scale_;
    // Stochastic-timing constants, consulted only on complex cores.
    const double jitter_sigma = model.timing_jitter_sigma;
    const bool has_jitter = jitter_sigma > 0.0;
    const double miss_prob = model.cache_miss_prob;
    const double miss_penalty = model.cache_miss_penalty;

    // Register arena: the entry frame at base 0, callee frames stacked
    // behind it (each frame includes the loop scratch slots the compiler
    // allocated past the IR registers).  Sized once for the deepest legal
    // call stack so frame pushes never reallocate: the arena pointer is
    // stable for the whole run and kCall/kRet make no library calls — any
    // call site inside a dispatch handler forces the floating-point
    // accumulators below out of their registers.  Frames are zero-filled
    // (interpreter fresh-Frame semantics) by the fused init loops; the
    // zero/copy mix keeps the compiler from lifting them into memset calls.
    auto& regs = trace_arena_;
    const std::size_t entry_words =
        static_cast<std::size_t>(trace.entry_reg_count);
    const std::size_t arena_words =
        entry_words + static_cast<std::size_t>(kMaxCallDepth) *
                          static_cast<std::size_t>(trace.max_frame_size);
    if (regs.size() < arena_words) regs.resize(arena_words);
    ir::Word* const regs0 = regs.data();
    for (std::size_t i = 0; i < entry_words; ++i)
        regs0[i] = i < args.size() ? args[i] : 0;
    std::size_t base = 0;
    std::size_t top = entry_words;  ///< high-water mark of the frame stack
    ir::Word* frame = regs0;

    ir::Word* const mem = memory_.data();
    const ir::Word mem_size = static_cast<ir::Word>(memory_.size());

    auto& calls = trace_calls_;
    if (calls.size() < static_cast<std::size_t>(kMaxCallDepth))
        calls.resize(static_cast<std::size_t>(kMaxCallDepth));
    TraceCall* const call_base = calls.data();
    TraceCall* call_sp = call_base;

    const TraceInstr* const code = trace.code.data();
    std::uint32_t pc = 0;

    // Cost accounting lives in locals (registers) and is flushed to
    // `result` on successful completion only: the accumulation starts from
    // zero and performs the exact floating-point add sequence the
    // interpreter performs on the freshly-zeroed RunResult, so the flush
    // by assignment is bit-identical.  Error paths leave `result` stale,
    // which is unobservable — `run` propagates the exception and every
    // caller discards the result object on throw.
    double cycles_acc = 0.0;
    double energy_acc = 0.0;
    std::int64_t instrs = 0;
    std::array<std::int64_t, isa::kNumInstrClasses> counts{};
    const std::int64_t budget = budget_;

// The charge epilogue of every compute op: identical floating-point
// expression shapes and RNG consumption as Machine::charge
// (stochastic_cycles is inlined with its model loads hoisted), with the
// cost-table lookups replaced by the values pre-decoded into the
// instruction.  These are macros, not lambdas, on purpose: reference
// captures take the accumulators' addresses, which forces GCC to keep
// them on the stack — a store-forwarding round trip per instruction in
// the hottest path of the whole simulator.  As plain locals they live in
// registers.
#define TP_STOCH(cycles_var, is_mem)                                    \
    do {                                                                \
        if constexpr (!Predictable) {                                   \
            if (has_jitter) {                                           \
                const double tp_factor =                                \
                    1.0 + rng_.gaussian(0.0, jitter_sigma);             \
                (cycles_var) *= tp_factor < 0.1 ? 0.1 : tp_factor;      \
            }                                                           \
            if ((is_mem) && rng_.chance(miss_prob))                     \
                (cycles_var) += miss_penalty;                           \
        }                                                               \
    } while (0)
#define TP_CHARGE(in, value, is_mem)                                    \
    do {                                                                \
        double tp_cycles = (in).base_cycles;                            \
        TP_STOCH(tp_cycles, (is_mem));                                  \
        const double tp_data_pj =                                       \
            alpha * static_cast<double>(std::popcount(                  \
                        static_cast<std::uint64_t>(value)));            \
        const double tp_energy_j =                                      \
            ((in).base_energy_pj + tp_data_pj) * scale * 1e-12;         \
        cycles_acc += tp_cycles;                                        \
        energy_acc += tp_energy_j;                                      \
        ++instrs;                                                       \
        ++counts[static_cast<std::size_t>((in).cls)];                   \
        if constexpr (RecordTrace) {                                    \
            const double tp_duration_s = tp_cycles / freq_hz;           \
            result.power_trace.push_back(                               \
                tp_duration_s > 0.0 ? tp_energy_j / tp_duration_s       \
                                    : 0.0);                             \
        }                                                               \
        if (instrs > budget) throw_budget_exceeded();                   \
    } while (0)
// Mirror of Machine::charge_overhead for branch/loop/call costs.
#define TP_OVERHEAD(in)                                                 \
    do {                                                                \
        double tp_actual = (in).base_cycles;                            \
        TP_STOCH(tp_actual, false);                                     \
        const double tp_energy_j = (in).base_energy_pj * scale * 1e-12; \
        cycles_acc += tp_actual;                                        \
        energy_acc += tp_energy_j;                                      \
        if constexpr (RecordTrace) {                                    \
            const double tp_duration_s = tp_actual / freq_hz;           \
            result.power_trace.push_back(                               \
                tp_duration_s > 0.0 ? tp_energy_j / tp_duration_s       \
                                    : 0.0);                             \
        }                                                               \
    } while (0)
#define TP_REG(index) frame[(index)]

#if TEAMPLAY_COMPUTED_GOTO
    // One label per TOp, in enum order.
    static const void* const kDispatch[kNumTOps] = {
        &&L_kNop,    &&L_kMovImm, &&L_kMov,    &&L_kNot,    &&L_kNeg,
        &&L_kAbs,    &&L_kPopcnt, &&L_kLoad,   &&L_kStore,  &&L_kSelect,
        &&L_kAdd,    &&L_kSub,    &&L_kMul,    &&L_kDiv,    &&L_kRem,
        &&L_kAnd,    &&L_kOr,     &&L_kXor,    &&L_kShl,    &&L_kShr,
        &&L_kCmpEq,  &&L_kCmpNe,  &&L_kCmpLt,  &&L_kCmpLe,  &&L_kCmpGt,
        &&L_kCmpGe,  &&L_kMin,    &&L_kMax,    &&L_kBranch, &&L_kJump,
        &&L_kLoopEnter, &&L_kLoopIter, &&L_kLoopBack, &&L_kCall, &&L_kRet,
    };
#define TP_BEGIN() TP_DISPATCH();
#define TP_CASE(name) L_##name:
#define TP_DISPATCH() \
    goto* kDispatch[static_cast<std::size_t>(code[pc].op)]
#define TP_END()
#else
#define TP_BEGIN() \
    tp_dispatch:   \
    switch (code[pc].op) {
#define TP_CASE(name) case TOp::name:
#define TP_DISPATCH() goto tp_dispatch
#define TP_END() }
#endif

// Unary/binary compute-op bodies shared by both dispatch forms.
#define TP_UNARY(name, expr)                            \
    TP_CASE(name) {                                     \
        const TraceInstr& in = code[pc];                \
        const ir::Word a = TP_REG(in.a);                   \
        (void)a;                                        \
        const ir::Word v = (expr);                      \
        TP_REG(in.dst) = v;                                \
        TP_CHARGE(in, v, false);                        \
        ++pc;                                           \
        TP_DISPATCH();                                  \
    }
#define TP_BINOP(name, expr)                            \
    TP_CASE(name) {                                     \
        const TraceInstr& in = code[pc];                \
        const ir::Word a = TP_REG(in.a);                   \
        const ir::Word b = TP_REG(in.b);                   \
        (void)a;                                        \
        (void)b;                                        \
        const ir::Word v = (expr);                      \
        TP_REG(in.dst) = v;                                \
        TP_CHARGE(in, v, false);                        \
        ++pc;                                           \
        TP_DISPATCH();                                  \
    }

    using U = std::uint64_t;
    TP_BEGIN()

    TP_CASE(kNop) {
        TP_CHARGE(code[pc], 0, false);
        ++pc;
        TP_DISPATCH();
    }
    TP_CASE(kMovImm) {
        const TraceInstr& in = code[pc];
        TP_REG(in.dst) = in.imm;
        TP_CHARGE(in, in.imm, false);
        ++pc;
        TP_DISPATCH();
    }
    TP_UNARY(kMov, a)
    TP_UNARY(kNot, ~a)
    TP_UNARY(kNeg, -a)
    TP_UNARY(kAbs, a < 0 ? -a : a)
    TP_UNARY(kPopcnt,
             static_cast<ir::Word>(std::popcount(static_cast<U>(a))))
    TP_CASE(kLoad) {
        const TraceInstr& in = code[pc];
        const ir::Word addr = TP_REG(in.a) + in.imm;
        if (addr < 0 || addr >= mem_size) throw_load_oob();
        const ir::Word v = mem[addr];
        TP_REG(in.dst) = v;
        TP_CHARGE(in, v, true);
        ++pc;
        TP_DISPATCH();
    }
    TP_CASE(kStore) {
        const TraceInstr& in = code[pc];
        const ir::Word addr = TP_REG(in.a) + in.imm;
        if (addr < 0 || addr >= mem_size) throw_store_oob();
        const ir::Word v = TP_REG(in.b);
        mem[addr] = v;
        TP_CHARGE(in, v, true);
        ++pc;
        TP_DISPATCH();
    }
    TP_CASE(kSelect) {
        const TraceInstr& in = code[pc];
        const ir::Word v = TP_REG(in.c) != 0 ? TP_REG(in.a) : TP_REG(in.b);
        TP_REG(in.dst) = v;
        TP_CHARGE(in, v, false);
        ++pc;
        TP_DISPATCH();
    }
    TP_BINOP(kAdd, static_cast<ir::Word>(static_cast<U>(a) + static_cast<U>(b)))
    TP_BINOP(kSub, static_cast<ir::Word>(static_cast<U>(a) - static_cast<U>(b)))
    TP_BINOP(kMul, static_cast<ir::Word>(static_cast<U>(a) * static_cast<U>(b)))
    TP_BINOP(kDiv, b == 0 ? 0 : a / b)
    TP_BINOP(kRem, b == 0 ? 0 : a % b)
    TP_BINOP(kAnd, a& b)
    TP_BINOP(kOr, a | b)
    TP_BINOP(kXor, a ^ b)
    TP_BINOP(kShl,
             static_cast<ir::Word>(static_cast<U>(a) << (static_cast<U>(b) & 63U)))
    TP_BINOP(kShr,
             static_cast<ir::Word>(static_cast<U>(a) >> (static_cast<U>(b) & 63U)))
    TP_BINOP(kCmpEq, a == b ? 1 : 0)
    TP_BINOP(kCmpNe, a != b ? 1 : 0)
    TP_BINOP(kCmpLt, a < b ? 1 : 0)
    TP_BINOP(kCmpLe, a <= b ? 1 : 0)
    TP_BINOP(kCmpGt, a > b ? 1 : 0)
    TP_BINOP(kCmpGe, a >= b ? 1 : 0)
    TP_BINOP(kMin, a < b ? a : b)
    TP_BINOP(kMax, a > b ? a : b)

    TP_CASE(kBranch) {
        const TraceInstr& in = code[pc];
        TP_OVERHEAD(in);
        pc = TP_REG(in.c) != 0 ? pc + 1 : in.target;
        TP_DISPATCH();
    }
    TP_CASE(kJump) {
        pc = code[pc].target;
        TP_DISPATCH();
    }
    TP_CASE(kLoopEnter) {
        const TraceInstr& in = code[pc];
        std::int64_t trips = in.imm;
        if (in.a >= 0) {
            trips = TP_REG(in.a);
            if (trips < 0) trips = 0;
            if (trips > in.bound) throw_loop_bound();
        }
        if (trips <= 0) {
            pc = in.target;
        } else {
            TP_REG(in.dst) = 0;    // scratch index slot
            TP_REG(in.c) = trips;  // scratch trip slot
            ++pc;
        }
        TP_DISPATCH();
    }
    TP_CASE(kLoopIter) {
        const TraceInstr& in = code[pc];
        TP_OVERHEAD(in);
        if (in.dst >= 0) TP_REG(in.dst) = TP_REG(in.a) * in.imm;
        ++pc;
        TP_DISPATCH();
    }
    TP_CASE(kLoopBack) {
        const TraceInstr& in = code[pc];
        const ir::Word i = ++TP_REG(in.a);
        pc = i < TP_REG(in.b) ? in.target : pc + 1;
        TP_DISPATCH();
    }
    TP_CASE(kCall) {
        const TraceInstr& in = code[pc];
        if (call_sp - call_base >= kMaxCallDepth) throw_call_depth();
        TP_OVERHEAD(in);
        const std::size_t new_base = top;
        const std::int32_t* argp = trace.arg_pool.data() + in.aux;
        const std::size_t frame_words = static_cast<std::size_t>(in.a);
        const std::size_t arg_count = static_cast<std::size_t>(in.imm);
        // One pass: parameters from the caller's frame, the rest zeroed.
        for (std::size_t k = 0; k < frame_words; ++k)
            regs0[new_base + k] =
                k < arg_count
                    ? regs0[base + static_cast<std::size_t>(argp[k])]
                    : 0;
        *call_sp++ = TraceCall{pc + 1, static_cast<std::uint32_t>(base),
                               in.dst, in.b};
        base = new_base;
        top = new_base + frame_words;
        frame = regs0 + base;
        pc = in.target;
        TP_DISPATCH();
    }
    TP_CASE(kRet) {
        if (call_sp == call_base) {
            if (trace.entry_ret_reg >= 0)
                result.ret_value =
                    regs0[static_cast<std::size_t>(trace.entry_ret_reg)];
            goto tp_done;
        }
        const TraceCall rec = *--call_sp;
        if (rec.ret_dst >= 0 && rec.ret_src >= 0)
            regs0[rec.caller_base + static_cast<std::size_t>(rec.ret_dst)] =
                regs0[base + static_cast<std::size_t>(rec.ret_src)];
        top = base;
        base = rec.caller_base;
        frame = regs0 + base;
        pc = rec.ret_pc;
        TP_DISPATCH();
    }

    TP_END()
tp_done:
    result.cycles = cycles_acc;
    result.dynamic_energy_j = energy_acc;
    result.instrs_executed = instrs;
    result.class_counts = counts;

#undef TP_BEGIN
#undef TP_CASE
#undef TP_DISPATCH
#undef TP_END
#undef TP_UNARY
#undef TP_BINOP
#undef TP_STOCH
#undef TP_CHARGE
#undef TP_OVERHEAD
#undef TP_REG
}

std::shared_ptr<const CompiledTrace> Machine::resolve_trace(
    const std::string& function) {
    if (backend_ != SimBackend::kTrace) return nullptr;
    const auto it = traces_.find(function);
    if (it != traces_.end()) return it->second;
    std::shared_ptr<const CompiledTrace> trace;
    if (trace_cache_ != nullptr) {
        trace = trace_cache_->get_or_compile(*program_, function,
                                             core_->model);
    } else {
        trace = TraceCompiler::compile(*program_, function, core_->model);
    }
    traces_.emplace(function, trace);
    return trace;
}

void Machine::attach_trace(const std::string& function,
                           std::shared_ptr<const CompiledTrace> trace) {
    traces_[function] = std::move(trace);
    last_entry_.clear();
    last_fn_ = nullptr;
    last_trace_ = nullptr;
}

std::int64_t Machine::charge_estimate(const std::string& function) {
    const auto it = charge_estimates_.find(function);
    if (it != charge_estimates_.end()) return it->second;
    const ir::Function* fn = program_->find(function);
    const std::int64_t estimate =
        fn != nullptr ? ir::estimate_charges(*program_, *fn) : 0;
    charge_estimates_.emplace(function, estimate);
    return estimate;
}

RunResult Machine::run(const std::string& function,
                       std::span<const ir::Word> args, bool record_trace) {
    // Entry resolution (function lookup, trace resolution) is memoised for
    // the common repeated-run case; a different entry re-resolves.
    if (last_fn_ == nullptr || function != last_entry_) {
        const ir::Function* fn = program_->find(function);
        if (fn == nullptr)
            throw std::runtime_error("Machine: undefined function '" +
                                     function + "'");
        last_trace_ = backend_ == SimBackend::kTrace ? resolve_trace(function)
                                                     : nullptr;
        last_fn_ = fn;
        last_entry_ = function;
    }
    const ir::Function* const fn = last_fn_;
    if (static_cast<int>(args.size()) != fn->param_count)
        throw std::invalid_argument(
            "Machine: argument count mismatch for '" + function +
            "': expected " + std::to_string(fn->param_count) + ", got " +
            std::to_string(args.size()));
    RunResult result;

    const CompiledTrace* const trace = last_trace_.get();

    if (trace != nullptr) {
        const bool predictable = core_->model.predictable;
        if (record_trace) {
            result.power_trace.reserve(static_cast<std::size_t>(
                std::min(trace->estimated_charges, kMaxTraceReserve)));
            if (predictable)
                exec_trace<true, true>(*trace, args, result);
            else
                exec_trace<true, false>(*trace, args, result);
        } else {
            if (predictable)
                exec_trace<false, true>(*trace, args, result);
            else
                exec_trace<false, false>(*trace, args, result);
        }
    } else {
        Frame frame;
        frame.regs.assign(static_cast<std::size_t>(fn->reg_count), 0);
        for (std::size_t i = 0; i < args.size(); ++i) frame.regs[i] = args[i];
        if (record_trace) {
            result.power_trace.reserve(static_cast<std::size_t>(
                std::min(charge_estimate(function), kMaxTraceReserve)));
            exec_node<true>(*fn->body, frame, result, 0);
        } else {
            exec_node<false>(*fn->body, frame, result, 0);
        }
        if (fn->ret_reg != ir::kNoReg)
            result.ret_value =
                frame.regs[static_cast<std::size_t>(fn->ret_reg)];
    }

    const auto& point = core_->opp(opp_index_);
    result.time_s = result.cycles / point.freq_hz;
    result.static_energy_j = point.static_power_w * result.time_s;
    return result;
}

}  // namespace teamplay::sim
