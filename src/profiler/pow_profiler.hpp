// Dynamic time/energy profiler (the PowProfiler stand-in of Fig. 2,
// Seewald et al. [18][19]).
//
// On complex architectures, static analysis is unavailable, so the paper's
// second workflow instruments a sequential binary and derives per-task time
// and energy estimates from repeated measured executions.  This module
// reproduces that loop against the simulated board: it runs a task many
// times with randomised inputs, collects the sample distributions and
// produces the estimates the coordination layer schedules with (mean, p95,
// observed max, and a margin-inflated "high-water mark" used in place of a
// true WCET).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace teamplay::profiler {

/// Distribution summary of one measured quantity.
struct Estimate {
    double mean = 0.0;
    double stddev = 0.0;
    double p95 = 0.0;
    double max = 0.0;

    /// Measurement-based bound: observed max inflated by a safety margin
    /// (20% is the engineering convention the coordination layer uses when
    /// no static WCET exists).
    [[nodiscard]] double high_water_mark(double margin = 1.2) const {
        return max * margin;
    }
};

/// Profiling result of one task.
struct TaskProfile {
    std::string function;
    int runs = 0;
    Estimate time_s;
    Estimate energy_j;
    Estimate cycles;
};

/// Prepares machine state (memory image, arguments) before each profiled
/// run; returns the argument vector.
using InputStager =
    std::function<std::vector<ir::Word>(support::Rng&, sim::Machine&)>;

/// Default stager: zeroed memory, zero arguments.
[[nodiscard]] InputStager zero_inputs(int param_count);

class PowProfiler {
public:
    /// `sim` selects the simulator tier of every machine the campaign
    /// builds; the trace is resolved once per profiled function and shared
    /// across the per-run machines.
    PowProfiler(const ir::Program& program, const platform::Core& core,
                std::size_t opp_index, std::uint64_t seed = 1,
                sim::SimOptions sim = {});

    /// Measure `function` over `runs` executions with staged inputs.
    [[nodiscard]] TaskProfile profile(const std::string& function,
                                      const InputStager& stager, int runs);

    /// Profile several tasks back-to-back in the given order, mirroring the
    /// first (sequential) pass of the complex-architecture workflow.
    [[nodiscard]] std::vector<TaskProfile> profile_sequential(
        const std::vector<std::string>& functions, const InputStager& stager,
        int runs_per_task);

private:
    const ir::Program* program_;
    const platform::Core* core_;
    std::size_t opp_index_;
    support::Rng rng_;
    std::uint64_t next_machine_seed_;
    sim::SimOptions sim_;
};

}  // namespace teamplay::profiler
