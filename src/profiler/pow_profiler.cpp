#include "profiler/pow_profiler.hpp"

#include "sim/trace.hpp"
#include "support/stats.hpp"

namespace teamplay::profiler {

namespace {

Estimate summarise(const std::vector<double>& samples) {
    Estimate estimate;
    estimate.mean = support::mean(samples);
    estimate.stddev = support::stddev(samples);
    estimate.p95 = support::percentile(samples, 95.0);
    estimate.max = support::maximum(samples);
    return estimate;
}

}  // namespace

InputStager zero_inputs(int param_count) {
    return [param_count](support::Rng&, sim::Machine& machine) {
        machine.clear_memory();
        return std::vector<ir::Word>(static_cast<std::size_t>(param_count),
                                     0);
    };
}

PowProfiler::PowProfiler(const ir::Program& program,
                         const platform::Core& core, std::size_t opp_index,
                         std::uint64_t seed, sim::SimOptions sim)
    : program_(&program), core_(&core), opp_index_(opp_index), rng_(seed),
      next_machine_seed_(seed * 7919 + 17), sim_(std::move(sim)) {}

TaskProfile PowProfiler::profile(const std::string& function,
                                 const InputStager& stager, int runs) {
    TaskProfile result;
    result.function = function;
    result.runs = runs;

    std::vector<double> times;
    std::vector<double> energies;
    std::vector<double> cycle_samples;
    times.reserve(static_cast<std::size_t>(runs));
    // Resolve the compiled trace once per campaign: fresh machines below
    // attach the shared result instead of fingerprinting the program on
    // every run.
    bool trace_resolved = false;
    std::shared_ptr<const sim::CompiledTrace> trace;
    for (int r = 0; r < runs; ++r) {
        // A fresh machine per run models the board settling between
        // measurements; the seed advances so complex-core noise varies.
        sim::Machine machine(*program_, *core_, opp_index_,
                             next_machine_seed_++, sim_);
        if (machine.backend() == sim::SimBackend::kTrace) {
            if (!trace_resolved) {
                trace = machine.resolve_trace(function);
                trace_resolved = true;
            } else {
                machine.attach_trace(function, trace);
            }
        }
        const auto args = stager(rng_, machine);
        const auto run = machine.run(function, args);
        times.push_back(run.time_s);
        energies.push_back(run.energy_j());
        cycle_samples.push_back(run.cycles);
    }
    result.time_s = summarise(times);
    result.energy_j = summarise(energies);
    result.cycles = summarise(cycle_samples);
    return result;
}

std::vector<TaskProfile> PowProfiler::profile_sequential(
    const std::vector<std::string>& functions, const InputStager& stager,
    int runs_per_task) {
    std::vector<TaskProfile> profiles;
    profiles.reserve(functions.size());
    for (const auto& function : functions)
        profiles.push_back(profile(function, stager, runs_per_task));
    return profiles;
}

}  // namespace teamplay::profiler
