#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace teamplay::support {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
    if (xs.empty()) return 0.0;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double pos =
        clamped / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double maximum(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double minimum(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double welch_t(std::span<const double> a, std::span<const double> b) {
    if (a.size() < 2 || b.size() < 2) return 0.0;
    const double ma = mean(a);
    const double mb = mean(b);
    const double va = variance(a) / static_cast<double>(a.size());
    const double vb = variance(b) / static_cast<double>(b.size());
    const double denom = std::sqrt(va + vb);
    if (denom == 0.0) return 0.0;
    return (ma - mb) / denom;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
    const std::size_t n = std::min(xs.size(), ys.size());
    if (n < 2) return 0.0;
    const double mx = mean(xs.subspan(0, n));
    const double my = mean(ys.subspan(0, n));
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double mutual_information(std::span<const int> labels,
                          std::span<const double> obs, int bins) {
    const std::size_t n = std::min(labels.size(), obs.size());
    if (n == 0 || bins < 2) return 0.0;

    const double lo = minimum(obs.subspan(0, n));
    const double hi = maximum(obs.subspan(0, n));
    if (hi <= lo) return 0.0;  // constant observable leaks nothing

    int max_label = 0;
    for (std::size_t i = 0; i < n; ++i)
        max_label = std::max(max_label, labels[i]);
    const int num_labels = max_label + 1;

    // Joint histogram p(label, bin).
    std::vector<double> joint(
        static_cast<std::size_t>(num_labels) * static_cast<std::size_t>(bins),
        0.0);
    std::vector<double> p_label(static_cast<std::size_t>(num_labels), 0.0);
    std::vector<double> p_bin(static_cast<std::size_t>(bins), 0.0);

    for (std::size_t i = 0; i < n; ++i) {
        if (labels[i] < 0) continue;
        int bin = static_cast<int>((obs[i] - lo) / (hi - lo) *
                                   static_cast<double>(bins));
        bin = std::clamp(bin, 0, bins - 1);
        const auto li = static_cast<std::size_t>(labels[i]);
        joint[li * static_cast<std::size_t>(bins) +
              static_cast<std::size_t>(bin)] += 1.0;
        p_label[li] += 1.0;
        p_bin[static_cast<std::size_t>(bin)] += 1.0;
    }

    const auto total = static_cast<double>(n);
    double mi = 0.0;
    for (int l = 0; l < num_labels; ++l) {
        for (int c = 0; c < bins; ++c) {
            const double pj = joint[static_cast<std::size_t>(l) *
                                        static_cast<std::size_t>(bins) +
                                    static_cast<std::size_t>(c)] /
                              total;
            if (pj <= 0.0) continue;
            const double pl = p_label[static_cast<std::size_t>(l)] / total;
            const double pc = p_bin[static_cast<std::size_t>(c)] / total;
            mi += pj * std::log2(pj / (pl * pc));
        }
    }
    return std::max(mi, 0.0);
}

std::vector<double> least_squares(const std::vector<std::vector<double>>& rows,
                                  std::span<const double> b) {
    if (rows.empty() || rows.front().empty() || rows.size() != b.size())
        return {};
    const std::size_t cols = rows.front().size();

    // Normal equations: (A^T A) x = A^T b.
    std::vector<std::vector<double>> ata(cols, std::vector<double>(cols, 0.0));
    std::vector<double> atb(cols, 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const auto& row = rows[r];
        for (std::size_t i = 0; i < cols; ++i) {
            atb[i] += row[i] * b[r];
            for (std::size_t j = 0; j < cols; ++j)
                ata[i][j] += row[i] * row[j];
        }
    }

    // Gaussian elimination with partial pivoting.
    std::vector<double> x(cols, 0.0);
    for (std::size_t col = 0; col < cols; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < cols; ++r)
            if (std::abs(ata[r][col]) > std::abs(ata[pivot][col])) pivot = r;
        if (std::abs(ata[pivot][col]) < 1e-12) return std::vector<double>(cols, 0.0);
        std::swap(ata[col], ata[pivot]);
        std::swap(atb[col], atb[pivot]);
        for (std::size_t r = col + 1; r < cols; ++r) {
            const double factor = ata[r][col] / ata[col][col];
            for (std::size_t c = col; c < cols; ++c)
                ata[r][c] -= factor * ata[col][c];
            atb[r] -= factor * atb[col];
        }
    }
    for (std::size_t i = cols; i-- > 0;) {
        double acc = atb[i];
        for (std::size_t j = i + 1; j < cols; ++j) acc -= ata[i][j] * x[j];
        x[i] = acc / ata[i][i];
    }
    return x;
}

double mape(std::span<const double> predicted, std::span<const double> actual,
            double eps) {
    const std::size_t n = std::min(predicted.size(), actual.size());
    double acc = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (std::abs(actual[i]) < eps) continue;
        acc += std::abs((predicted[i] - actual[i]) / actual[i]);
        ++counted;
    }
    if (counted == 0) return 0.0;
    return acc / static_cast<double>(counted) * 100.0;
}

}  // namespace teamplay::support
