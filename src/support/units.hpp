// Human-readable formatting and parsing of physical quantities.
//
// The CSL front-end parses budgets written with engineering units ("2ms",
// "0.5mJ") and every report printer uses the formatters so that toolchain
// output reads like the paper's prose.
#pragma once

#include <string>
#include <string_view>

namespace teamplay::support {

/// Format seconds with an auto-selected engineering prefix (ns/us/ms/s).
[[nodiscard]] std::string format_time(double seconds);

/// Format joules with an auto-selected engineering prefix (nJ/uJ/mJ/J).
[[nodiscard]] std::string format_energy(double joules);

/// Format watts with an auto-selected engineering prefix (uW/mW/W).
[[nodiscard]] std::string format_power(double watts);

/// Format hertz with an auto-selected engineering prefix (Hz/kHz/MHz/GHz).
[[nodiscard]] std::string format_frequency(double hertz);

/// Format a dimensionless ratio as a percentage with one decimal.
[[nodiscard]] std::string format_percent(double ratio);

/// Parse a time literal such as "2ms", "500us", "1.5s" into seconds.
/// Returns false on malformed input.
[[nodiscard]] bool parse_time(std::string_view text, double& seconds);

/// Parse an energy literal such as "0.5mJ", "200uJ", "1J" into joules.
/// Returns false on malformed input.
[[nodiscard]] bool parse_energy(std::string_view text, double& joules);

}  // namespace teamplay::support
