#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace teamplay::support {

namespace {

/// Join state of one parallel_for call.  Tasks from different calls share
/// the pool queue; each task resolves against its own batch.
struct Batch {
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t remaining = 0;
    std::exception_ptr error;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers, std::size_t levels)
    : lanes_(std::max<std::size_t>(levels, 1)) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& thread : threads_) thread.join();
}

std::size_t ThreadPool::default_workers() {
    const std::size_t hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0;
}

bool ThreadPool::QueuedTask::before(const QueuedTask& other) const {
    // Deadline-bearing tasks drain first (EDF), deadline-less ones keep
    // submission order after them; `seq` breaks every remaining tie, so
    // equal deadlines are FIFO too.
    if (has_deadline != other.has_deadline) return has_deadline;
    if (has_deadline && deadline != other.deadline)
        return deadline < other.deadline;
    return seq < other.seq;
}

std::function<void()> ThreadPool::pop_locked() {
    const auto later = [](const QueuedTask& a, const QueuedTask& b) {
        return b.before(a);  // heap comparator: "a is less urgent than b"
    };
    for (auto& lane : lanes_) {
        if (lane.empty()) continue;
        std::pop_heap(lane.begin(), lane.end(), later);
        auto task = std::move(lane.back().fn);
        lane.pop_back();
        --queued_;
        return task;
    }
    return {};  // unreachable: caller checked queued_ != 0
}

void ThreadPool::push_locked(std::size_t lane, QueuedTask task) {
    const auto later = [](const QueuedTask& a, const QueuedTask& b) {
        return b.before(a);
    };
    task.seq = next_seq_++;
    auto& heap = lanes_[std::min(lane, lanes_.size() - 1)];
    heap.push_back(std::move(task));
    std::push_heap(heap.begin(), heap.end(), later);
    ++queued_;
}

void ThreadPool::submit(
    std::function<void()> task, std::size_t level,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        QueuedTask queued;
        queued.fn = std::move(task);
        if (deadline.has_value()) {
            queued.deadline = *deadline;
            queued.has_deadline = true;
        }
        push_locked(level, std::move(queued));
    }
    work_cv_.notify_one();
}

bool ThreadPool::try_run_one() {
    std::function<void()> task;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (queued_ == 0) return false;
        task = pop_locked();
    }
    task();
    return true;
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] { return stop_ || queued_ != 0; });
            if (queued_ == 0) return;  // stop requested and drained
            task = pop_locked();
        }
        task();
    }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    if (threads_.empty()) {
        // Same contract as the pooled path: every body runs, the first
        // exception is rethrown once the batch has drained.
        std::exception_ptr error;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                body(i);
            } catch (...) {
                if (!error) error = std::current_exception();
            }
        }
        if (error) std::rethrow_exception(error);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->remaining = n;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < n; ++i) {
            // `body` outlives the batch: parallel_for only returns once
            // every task has run, so capturing it by pointer is safe.
            // Lane 0, no deadline: fan-out of running work preempts queued
            // starts and keeps submission (index) order among itself.
            QueuedTask task;
            task.fn = [batch, &body, i] {
                try {
                    body(i);
                } catch (...) {
                    const std::lock_guard<std::mutex> guard(batch->mutex);
                    if (!batch->error)
                        batch->error = std::current_exception();
                }
                const std::lock_guard<std::mutex> guard(batch->mutex);
                if (--batch->remaining == 0) batch->done_cv.notify_all();
            };
            push_locked(0, std::move(task));
        }
    }
    work_cv_.notify_all();

    // Help drain the queue (possibly including other batches' tasks), then
    // wait for stragglers of this batch still running on workers.
    while (try_run_one()) {
    }
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done_cv.wait(lock, [&batch] { return batch->remaining == 0; });
    if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace teamplay::support
