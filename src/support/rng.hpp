// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic components of the toolchain (simulator noise, profiler input
// generation, multi-objective search) draw from this generator so that every
// experiment in the repository is exactly reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace teamplay::support {

/// SplitMix64-seeded xoshiro256** generator.  Deliberately not
/// `std::mt19937_64`: the standard engines are not guaranteed to produce the
/// same stream across library implementations, and reproducibility across
/// toolchains is a hard requirement for the experiment harness.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        // SplitMix64 expansion of the seed into the full 256-bit state.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /// Uniform 64-bit word.
    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n).  n must be > 0.
    std::uint64_t below(std::uint64_t n) {
        // Lemire's nearly-divisionless bounded generation.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * n;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = -n % n;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * n;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Bernoulli draw with probability p of true.
    bool chance(double p) { return uniform() < p; }

    /// Standard normal via Marsaglia polar method.
    double gaussian() {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u = 0.0;
        double v = 0.0;
        double s = 0.0;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double factor = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * factor;
        have_spare_ = true;
        return u * factor;
    }

    /// Normal with given mean and standard deviation.
    double gaussian(double mean, double stddev) {
        return mean + stddev * gaussian();
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
    bool have_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace teamplay::support
