#include "support/units.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace teamplay::support {

namespace {

std::string format_scaled(double value, const char* unit, double scale,
                          const char* prefix) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3g %s%s", value / scale, prefix, unit);
    return buf;
}

std::string format_si(double value, const char* unit) {
    const double mag = std::fabs(value);
    if (mag == 0.0) return format_scaled(value, unit, 1.0, "");
    if (mag < 1e-6) return format_scaled(value, unit, 1e-9, "n");
    if (mag < 1e-3) return format_scaled(value, unit, 1e-6, "u");
    if (mag < 1.0) return format_scaled(value, unit, 1e-3, "m");
    if (mag < 1e3) return format_scaled(value, unit, 1.0, "");
    if (mag < 1e6) return format_scaled(value, unit, 1e3, "k");
    if (mag < 1e9) return format_scaled(value, unit, 1e6, "M");
    return format_scaled(value, unit, 1e9, "G");
}

/// Split "12.5ms" into numeric part and suffix; returns false when the
/// numeric part is malformed or empty.
bool split_literal(std::string_view text, double& value,
                   std::string_view& suffix) {
    std::size_t pos = 0;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == '-' || text[pos] == '+' ||
            text[pos] == 'e' || text[pos] == 'E')) {
        // Treat 'e'/'E' as part of the number only when followed by a digit
        // or a sign; otherwise it begins the unit suffix (e.g. no such unit
        // currently, but keep parsing robust).
        if (text[pos] == 'e' || text[pos] == 'E') {
            if (pos + 1 >= text.size() ||
                (std::isdigit(static_cast<unsigned char>(text[pos + 1])) ==
                     0 &&
                 text[pos + 1] != '-' && text[pos + 1] != '+'))
                break;
        }
        ++pos;
    }
    if (pos == 0) return false;
    const auto first = text.data();
    const auto result = std::from_chars(first, first + pos, value);
    if (result.ec != std::errc{} || result.ptr != first + pos) return false;
    suffix = text.substr(pos);
    return true;
}

}  // namespace

std::string format_time(double seconds) { return format_si(seconds, "s"); }

std::string format_energy(double joules) { return format_si(joules, "J"); }

std::string format_power(double watts) { return format_si(watts, "W"); }

std::string format_frequency(double hertz) { return format_si(hertz, "Hz"); }

std::string format_percent(double ratio) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", ratio * 100.0);
    return buf;
}

bool parse_time(std::string_view text, double& seconds) {
    double value = 0.0;
    std::string_view suffix;
    if (!split_literal(text, value, suffix)) return false;
    if (suffix == "s" || suffix.empty()) {
        seconds = value;
    } else if (suffix == "ms") {
        seconds = value * 1e-3;
    } else if (suffix == "us") {
        seconds = value * 1e-6;
    } else if (suffix == "ns") {
        seconds = value * 1e-9;
    } else if (suffix == "min") {
        seconds = value * 60.0;
    } else {
        return false;
    }
    return true;
}

bool parse_energy(std::string_view text, double& joules) {
    double value = 0.0;
    std::string_view suffix;
    if (!split_literal(text, value, suffix)) return false;
    if (suffix == "J" || suffix.empty()) {
        joules = value;
    } else if (suffix == "mJ") {
        joules = value * 1e-3;
    } else if (suffix == "uJ") {
        joules = value * 1e-6;
    } else if (suffix == "nJ") {
        joules = value * 1e-9;
    } else if (suffix == "kJ") {
        joules = value * 1e3;
    } else {
        return false;
    }
    return true;
}

}  // namespace teamplay::support
