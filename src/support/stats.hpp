// Statistical primitives shared by the energy-model fitting, the dynamic
// profiler and the side-channel leakage metrics.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace teamplay::support {

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation on the sorted sample.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Maximum; 0 for an empty sample.
[[nodiscard]] double maximum(std::span<const double> xs);

/// Minimum; 0 for an empty sample.
[[nodiscard]] double minimum(std::span<const double> xs);

/// Welch's t-statistic between two samples (unequal variances).  Used by the
/// TVLA-style power leakage test; |t| > ~4.5 is the conventional leakage
/// threshold.  Returns 0 when either sample has fewer than 2 points.
[[nodiscard]] double welch_t(std::span<const double> a,
                             std::span<const double> b);

/// Pearson correlation coefficient; 0 when degenerate.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Histogram-based mutual information estimate (in bits) between a discrete
/// label and a continuous observation, using `bins` equal-width bins over the
/// observation range.  This is the workhorse of the indiscernibility metric:
/// it quantifies how much information about the secret the observable leaks
/// without assuming any particular attack.
[[nodiscard]] double mutual_information(std::span<const int> labels,
                                        std::span<const double> obs,
                                        int bins = 16);

/// Ordinary least squares: solve min ||A x - b||^2 for dense column-major-free
/// small systems via normal equations with partial-pivot Gaussian
/// elimination.  `rows[i]` is one observation row of length `cols`.
/// Returns the coefficient vector (size `cols`); an all-zero vector when the
/// system is singular.
[[nodiscard]] std::vector<double> least_squares(
    const std::vector<std::vector<double>>& rows, std::span<const double> b);

/// Mean absolute percentage error between predictions and ground truth,
/// skipping reference points closer to zero than `eps`.  Returned in percent.
[[nodiscard]] double mape(std::span<const double> predicted,
                          std::span<const double> actual, double eps = 1e-12);

}  // namespace teamplay::support
