// Fixed-size worker pool with caller participation.
//
// Two primitives:
//
//   `parallel_for` — run a body over an index range with the calling thread
//   working alongside the background workers.  Because the caller always
//   makes progress itself, nested `parallel_for` calls issued from inside a
//   body (the ScenarioEngine runs scenarios in parallel, and each
//   scenario's AnalyseStage fans out again over (task, core class, OPP)
//   tuples) can never deadlock: at worst the nested call degrades to the
//   calling thread draining its own work.
//
//   `submit` — enqueue one fire-and-forget task and return immediately; the
//   streaming submission path of the ScenarioEngine is built on it.
//   Notification and cancellation live in the caller's handle (the engine's
//   ScenarioTicket), not in the pool: a waiter that wants the result calls
//   `try_run_one` in a loop to help drain the queue (so a caller-only pool
//   still executes everything on the waiting thread) and then blocks on its
//   own handle state.
//
// Priority levels: the queue is an array of lanes; dequeue always takes
// from the lowest-numbered non-empty lane (strict priority).  Level 0 is
// the most urgent — `parallel_for` fan-out always lands there, so the
// sub-tasks of a scenario that is already running are never starved
// behind queued scenario *starts* in lower lanes (a classic priority
// inversion).  The admission layer (core/admission.hpp) maps its request
// classes onto levels 1..N.
//
// Within a lane, ordering is earliest-deadline-first: tasks submitted
// with a deadline drain in deadline order (submission-order tiebreak),
// and ahead of deadline-less tasks, which keep FIFO order among
// themselves.  A lane with no deadlines anywhere therefore behaves
// exactly like the old FIFO; a tight deadline never sits behind a loose
// one that happened to be submitted first.
//
// Determinism contract: a body must only write to state addressed by its own
// index.  Under that discipline results are identical for any worker count,
// which is what lets the engine promise byte-identical certificates for
// 1 vs N threads.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace teamplay::support {

class ThreadPool {
public:
    /// `workers` background threads; 0 means all work runs on the caller.
    /// `levels` priority lanes (at least 1): level 0 drains first.
    explicit ThreadPool(std::size_t workers = 0, std::size_t levels = 1);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total threads that execute work (workers + the calling thread).
    [[nodiscard]] std::size_t concurrency() const {
        return threads_.size() + 1;
    }

    /// Execute body(0) .. body(n-1), returning when all calls completed.
    /// The calling thread participates.  The first exception thrown by any
    /// body is rethrown here after the batch drains.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& body);

    /// Enqueue one task and return immediately.  The task must not throw;
    /// completion/error reporting belongs to the caller's handle state.
    /// With zero workers the task runs on whichever thread next drains the
    /// queue (`try_run_one` or a `parallel_for` help-drain loop).
    /// `level` selects the priority lane (clamped to the last lane); lower
    /// drains first.  `deadline` orders the task within its lane (EDF,
    /// submission-order tiebreak); deadline-less tasks drain after every
    /// deadline-bearing one, FIFO among themselves.
    void submit(
        std::function<void()> task, std::size_t level = 0,
        std::optional<std::chrono::steady_clock::time_point> deadline = {});

    /// Run one queued task on the calling thread, if any — always from the
    /// most urgent non-empty lane.  Returns false when every lane was
    /// empty.  Waiters use this to participate instead of blocking while
    /// work they depend on sits in the queue.
    bool try_run_one();

    /// Sensible default worker count for batch jobs on this host.
    [[nodiscard]] static std::size_t default_workers();

private:
    /// One queued task with its lane-ordering key.  Lanes are binary
    /// min-heaps over `before` (std::push_heap/pop_heap), so EDF popping
    /// is O(log n) per operation and deadline-less lanes cost the same as
    /// the old FIFO deque up to constants.
    struct QueuedTask {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point deadline{};
        bool has_deadline = false;
        std::uint64_t seq = 0;  ///< global submission order (FIFO tiebreak)

        /// Strict weak order: does `*this` drain before `other`?
        [[nodiscard]] bool before(const QueuedTask& other) const;
    };

    void worker_loop();
    void push_locked(std::size_t lane, QueuedTask task);
    /// Pop from the most urgent non-empty lane.  Caller holds `mutex_` and
    /// has checked `queued_ != 0`.
    [[nodiscard]] std::function<void()> pop_locked();

    std::vector<std::thread> threads_;
    /// One EDF heap per priority level; `queued_` counts tasks across all
    /// lanes so emptiness checks stay O(1).
    std::vector<std::vector<QueuedTask>> lanes_;
    std::uint64_t next_seq_ = 0;
    std::size_t queued_ = 0;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    bool stop_ = false;
};

}  // namespace teamplay::support
