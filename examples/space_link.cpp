// Space use case (Sec. IV-B): image downlink over SpaceWire on the dual-core
// GR712RC under RTEMS.  Runs the predictable toolchain, prints the dual-core
// schedule and a slice of the generated RTEMS glue code.
//
//   $ ./example_space_link
#include <cstdio>
#include <iostream>

#include "core/workflow.hpp"
#include "coordination/runtime.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

int main() {
    const auto app = make_space_app();
    const auto spec = csl::parse(app.csl_source);

    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 8;
    options.compiler.iterations = 8;
    options.scheduler.objective =
        coordination::Scheduler::Objective::kEnergy;
    const auto report = workflow.run(spec, options);

    std::cout << report.summary() << "\n";

    // Both LEON3 cores should carry work (image chain + telemetry chain).
    bool core0 = false;
    bool core1 = false;
    for (const auto& entry : report.schedule.entries) {
        core0 |= entry.core == 0;
        core1 |= entry.core == 1;
    }
    std::printf("dual-core utilisation: core0=%s core1=%s\n",
                core0 ? "busy" : "idle", core1 ? "busy" : "idle");

    // Deterministic runtime replay: all deadlines must hold.
    const auto replay =
        coordination::execute_schedule(report.graph, report.schedule, {});
    std::printf("runtime replay: %d deadline miss(es), makespan %s\n",
                replay.deadline_misses,
                support::format_time(replay.makespan_s).c_str());

    std::puts("\n--- generated RTEMS glue (excerpt) ---");
    const auto& glue = report.glue_code;
    std::cout << glue.substr(0, std::min<std::size_t>(glue.size(), 900))
              << "...\n";

    return report.certificate.all_hold() && replay.deadline_misses == 0 ? 0
                                                                        : 1;
}
