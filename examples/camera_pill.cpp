// Camera-pill use case (Sec. IV-A): run the imaging pipeline functionally on
// the simulated M0+FPGA board, then push it through the full predictable
// toolchain and compare against a traditional compilation.
//
//   $ ./example_camera_pill
#include <cstdio>
#include <iostream>

#include "core/workflow.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

int main() {
    const auto app = make_camera_pill_app();

    // -- functional demo: three frames through the pipeline ------------------
    std::puts("== functional run: 3 frames on the simulated pill ==");
    sim::Machine machine(app.program, app.platform.cores[0], /*opp=*/2);
    stage_xtea_key(machine, {0xA5A5A5A5, 0x5A5A5A5A, 0x0F0F0F0F, 0xF0F0F0F0});
    machine.poke(pill::kState, 20240610);
    for (int frame = 0; frame < 3; ++frame) {
        double frame_time = 0.0;
        double frame_energy = 0.0;
        for (const auto* task : {"pill_capture", "pill_delta",
                                 "pill_compress", "pill_encrypt",
                                 "pill_transmit"}) {
            const auto run = machine.run(task, {});
            frame_time += run.time_s;
            frame_energy += run.energy_j();
        }
        std::printf(
            "frame %d: compressed %3lld words, pipeline %s, %s, crc=%08llx\n",
            frame, static_cast<long long>(machine.peek(pill::kLen)),
            support::format_time(frame_time).c_str(),
            support::format_energy(frame_energy).c_str(),
            static_cast<unsigned long long>(machine.peek(pill::kCrc)));
    }

    // -- toolchain run --------------------------------------------------------
    std::puts("\n== TeamPlay toolchain (Fig. 1) ==");
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 10;
    options.compiler.iterations = 10;
    const auto report = workflow.run(spec, options);
    std::cout << report.summary();

    // -- traditional comparison ----------------------------------------------
    std::puts("\n== traditional toolchain comparison ==");
    const auto& m0 = app.platform.cores[0];
    const compiler::MultiCriteriaCompiler mcc(app.program, m0);
    double traditional_wcet = 0.0;
    double teamplay_wcet = 0.0;
    for (const auto& task : spec.tasks) {
        const auto traditional =
            mcc.compile(task.entry, mcc.traditional_config());
        traditional_wcet += traditional.wcet_s;
        const auto* chosen = report.chosen_version(task.name);
        if (chosen != nullptr) teamplay_wcet += chosen->wcet_s;
    }
    std::printf("pipeline WCET: traditional %s vs TeamPlay %s (%.1f%% faster)\n",
                support::format_time(traditional_wcet).c_str(),
                support::format_time(teamplay_wcet).c_str(),
                (1.0 - teamplay_wcet / traditional_wcet) * 100.0);

    return report.certificate.all_hold() ? 0 : 1;
}
