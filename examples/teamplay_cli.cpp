// Command-line front end for the toolchain: pick a built-in use case (or
// feed a CSL file against one of its programs), run it through the
// ScenarioEngine, and print the full report — schedule Gantt, per-task
// version choices, generated glue, certificate.  With `--all`, every
// built-in use case runs as one parallel batch and the engine's throughput
// statistics are reported.
//
// With `--stream`, scenarios are submitted through the engine's async
// `submit` API and a completion line is printed the moment each scenario
// finishes (completion order, not request order) — the service-core view.
//
//   $ ./example_teamplay_cli pill
//   $ ./example_teamplay_cli space --makespan
//   $ ./example_teamplay_cli uav --platform jetson-tx2
//   $ ./example_teamplay_cli parking --csl my_budgets.csl
//   $ ./example_teamplay_cli rover --platform jetson-nano
//   $ ./example_teamplay_cli --all --jobs 4 --quiet
//   $ ./example_teamplay_cli --all --jobs 4 --stream --cache-budget 16
//   $ ./example_teamplay_cli --all --jobs 4 --shards 2 --quiet
//   $ ./example_teamplay_cli --serve 7791 --jobs 4
//   $ ./example_teamplay_cli --all --shards 0 --remote 127.0.0.1:7791
//
// With `--shards N`, scenarios are routed across N engine shards by the
// structural fingerprint of their task entry kernels (same-kernel
// scenarios land where the cache is warm); the report merges per-shard
// cache and stage telemetry.
//
// `--serve <port>` turns the process into a shard server: one engine
// behind the fabric RPC loop, until SIGINT/SIGTERM.  `--remote host:port`
// adds that server to the routing domain of this process (with
// `--shards 0` everything crosses the wire), and `--fetch-peer host:port`
// consults the peer's warm cache on local misses before recomputing.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/advisor.hpp"
#include "core/result_store.hpp"
#include "core/sharded_engine.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/replay.hpp"
#include "net/shard_server.hpp"
#include "sim/backend.hpp"
#include "sim/trace.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;

namespace {

void usage() {
    std::puts(
        "usage: example_teamplay_cli "
        "<pill|space|uav|rover|parking|--all> [options]\n"
        "  --platform <name>   uav/rover/parking only: apalis-tk1,\n"
        "                      jetson-tx2, jetson-nano (uav/rover),\n"
        "                      nucleo-f091 (parking)\n"
        "  --csl <file>        override the built-in CSL annotations\n"
        "  --makespan          schedule for makespan instead of energy\n"
        "  --seed <n>          search seed (default 42)\n"
        "  --jobs <n>          engine worker threads (default 0 = caller)\n"
        "  --shards <n>        split the engine into n cache shards routed\n"
        "                      by kernel structural fingerprint (default 1)\n"
        "  --serve <port>      run as a shard server: bind the port and\n"
        "                      serve scenario RPCs until SIGINT/SIGTERM\n"
        "                      (engine flags configure the served engine)\n"
        "  --remote <h:p>      add a remote shard server to the routing\n"
        "                      domain (repeatable; with --shards 0 every\n"
        "                      scenario crosses the wire)\n"
        "  --fetch-peer <h:p>  consult this fabric peer's cache on local\n"
        "                      misses before recomputing (repeatable)\n"
        "  --stream            submit scenarios asynchronously and print\n"
        "                      each result as it completes\n"
        "  --priority <p>      admission class for every scenario:\n"
        "                      interactive, batch (default), background\n"
        "  --deadline-ms <n>   per-scenario deadline; requests that cannot\n"
        "                      meet it are rejected at admission or shed at\n"
        "                      the next stage boundary (retryable)\n"
        "  --queue-depth <n>   bound each priority class's admission queue\n"
        "                      at n (default 0 = unbounded)\n"
        "  --cache-budget <n>  evict evaluation-cache entries beyond n,\n"
        "                      per shard (default 0 = unbounded)\n"
        "  --store-dir <dir>   persistent result store shared by all\n"
        "                      shards: misses load from it before\n"
        "                      computing, results spill back, so a\n"
        "                      restarted run warm-starts from disk\n"
        "  --cert-dump <dir>   write each scenario's certificate text to\n"
        "                      <dir>/<label>.cert (byte-identity audits)\n"
        "  --fuzz-seed <n>     (instead of an app) replay one generated\n"
        "                      fuzz scenario through the differential\n"
        "                      oracle; add --loopback for the TCP tier\n"
        "  --sim-backend <b>   simulator tier: interp (reference) or trace\n"
        "                      (pre-decoded threaded dispatch; identical\n"
        "                      results, default interp)\n"
        "  --quiet             only print the certificate verdict");
}

void print_shard_breakdown(const core::ShardedScenarioEngine& engine) {
    // Local shards only: a remote engine prints its own breakdown.
    if (engine.local_shard_count() <= 1) return;
    for (std::size_t shard = 0; shard < engine.local_shard_count();
         ++shard) {
        const auto stats = engine.shard_cache_stats(shard);
        std::printf("  shard %zu: %llu hits / %llu misses, %llu evictions, "
                    "%zu entries\n",
                    shard, static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.misses),
                    static_cast<unsigned long long>(stats.evictions),
                    stats.entries);
    }
}

void print_result_store(const core::ShardedScenarioEngine& engine,
                        const std::shared_ptr<core::ResultStore>& store) {
    if (store == nullptr) return;
    const auto cache = engine.cache_stats();
    const auto stats = store->stats();
    // Stable key=value shape: the CI warm-start job greps ` misses=0 ` to
    // prove a warm run recomputed nothing that was already stored.
    std::printf(
        "result store: hits=%llu misses=%llu spills=%llu rejects=%llu "
        "(indexed=%zu segments=%zu scan-rejects=%llu)\n",
        static_cast<unsigned long long>(cache.store_hits),
        static_cast<unsigned long long>(cache.store_misses),
        static_cast<unsigned long long>(cache.spills),
        static_cast<unsigned long long>(cache.store_rejects),
        stats.indexed, stats.segments,
        static_cast<unsigned long long>(stats.scan_rejects));
}

void print_remote_fetch(const core::ShardedScenarioEngine& engine,
                        bool fetch_peers_configured) {
    if (!fetch_peers_configured) return;
    const auto cache = engine.cache_stats();
    // Stable key=value shape: the CI loopback job greps ` misses=0` to
    // prove every local miss was served from the peer's warm cache
    // without a recompute.
    std::printf("remote fetch: hits=%llu misses=%llu\n",
                static_cast<unsigned long long>(cache.remote_hits),
                static_cast<unsigned long long>(cache.remote_misses));
}

/// Write one certificate's canonical text to <dir>/<label>.cert so two
/// runs (cold vs warm-started) can be byte-compared file by file.
void dump_certificate(const std::string& dir, const std::string& label,
                      const core::ToolchainReport& report) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const auto path = std::filesystem::path(dir) / (label + ".cert");
    std::ofstream out(path, std::ios::binary);
    out << report.certificate.to_text();
    if (!out)
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.string().c_str());
}

void print_admission(const core::ShardedScenarioEngine& engine) {
    const auto totals = engine.admission_stats().totals();
    // Stable key=value shape with ` rejected=` and ` shed=` adjacent: the
    // CI fabric job greps this line to prove overload handling engaged.
    std::printf(
        "admission: submitted=%llu admitted=%llu rejected=%llu shed=%llu "
        "completed=%llu cancelled=%llu failed=%llu queue-peak=%llu\n",
        static_cast<unsigned long long>(totals.submitted),
        static_cast<unsigned long long>(totals.admitted),
        static_cast<unsigned long long>(totals.rejected),
        static_cast<unsigned long long>(totals.shed),
        static_cast<unsigned long long>(totals.completed),
        static_cast<unsigned long long>(totals.cancelled),
        static_cast<unsigned long long>(totals.failed),
        static_cast<unsigned long long>(totals.queue_peak));
}

void print_trace_cache(sim::SimBackend backend) {
    if (backend != sim::SimBackend::kTrace) return;
    const auto stats = sim::TraceCache::process_wide()->stats();
    std::printf("trace cache: %llu hits / %llu misses, %llu evictions, "
                "%zu entries (%.0f%% hit ratio)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions),
                stats.entries, stats.hit_ratio() * 100.0);
}

/// Prints the report and returns whether its certificate is valid.
bool print_report(const core::ToolchainReport& report,
                  const platform::Platform& platform, bool quiet) {
    if (!quiet) {
        std::cout << report.summary() << "\n";
        std::cout << "--- schedule (Gantt) ---\n"
                  << report.schedule.gantt(platform) << "\n";
        std::cout << "--- refactoring advisor ---\n"
                  << core::render_advice(core::advise(report)) << "\n";
        std::cout << "--- generated glue ---\n"
                  << report.glue_code << "\n";
    }
    const bool ok = report.certificate.all_hold() &&
                    contracts::verify_certificate(report.certificate);
    std::printf("%s: certificate %s (%s)\n", report.spec.name.c_str(),
                ok ? "VALID" : "INVALID",
                report.certificate.fully_static()
                    ? "statically proven"
                    : "contains measured evidence");
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string which = argv[1];
    std::string platform_override;
    std::string csl_path;
    bool makespan = false;
    bool quiet = false;
    bool stream = false;
    std::uint64_t seed = 42;
    std::size_t jobs = 0;
    std::size_t shards = 1;
    std::size_t cache_budget = 0;
    std::string store_dir;
    std::string cert_dump_dir;
    std::vector<std::string> remote_endpoints;
    std::vector<std::string> fetch_peers;
    core::Priority priority = core::Priority::kBatch;
    std::uint64_t deadline_ms = 0;
    std::size_t queue_depth = 0;
    bool serve = false;
    std::uint16_t serve_port = 0;
    sim::SimBackend backend = sim::SimBackend::kInterp;
    int opt_start = 2;
    if (which == "--fuzz-seed") {
        // Replay one generated scenario through the differential oracle
        // (the CLI face of tools/fuzz_driver.cpp: same generator, same
        // tiers, same one-line replay record).
        if (argc < 3) {
            usage();
            return 2;
        }
        const std::uint64_t fuzz_seed =
            std::strtoull(argv[2], nullptr, 0);
        bool loopback = false;
        for (int i = 3; i < argc; ++i)
            if (std::strcmp(argv[i], "--loopback") == 0) loopback = true;
        fuzz::OracleConfig config;
        config.loopback = loopback;
        const fuzz::DifferentialOracle oracle(config);
        const auto scenario =
            fuzz::ProgramGenerator().scenario(fuzz_seed);
        std::printf("%s on %s: %zu function(s), %zu task(s)\n",
                    scenario.name.c_str(), scenario.platform.name.c_str(),
                    scenario.program.functions.size(),
                    scenario.entries.size());
        const auto result = oracle.check(scenario);
        fuzz::ReplayRecord record;
        record.seed = fuzz_seed;
        record.status = result.ok() ? "ok" : "divergence";
        record.detail = result.ok()
                            ? "tiers=" + std::to_string(result.tiers.size())
                            : result.divergence->to_string();
        std::puts(fuzz::format_record(record).c_str());
        if (!result.ok())
            std::printf("repro: %s\n",
                        fuzz::repro_command(fuzz_seed, loopback).c_str());
        return result.ok() ? 0 : 1;
    }
    if (which == "--serve") {
        if (argc < 3) {
            usage();
            return 2;
        }
        serve = true;
        serve_port =
            static_cast<std::uint16_t>(std::strtoul(argv[2], nullptr, 10));
        opt_start = 3;
    }
    for (int i = opt_start; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--platform" && i + 1 < argc) {
            platform_override = argv[++i];
        } else if (arg == "--csl" && i + 1 < argc) {
            csl_path = argv[++i];
        } else if (arg == "--makespan") {
            makespan = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--stream") {
            stream = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--shards" && i + 1 < argc) {
            shards = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--remote" && i + 1 < argc) {
            remote_endpoints.emplace_back(argv[++i]);
        } else if (arg == "--fetch-peer" && i + 1 < argc) {
            fetch_peers.emplace_back(argv[++i]);
        } else if (arg == "--priority" && i + 1 < argc) {
            const auto parsed = core::parse_priority(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr, "unknown priority class: %s\n",
                             argv[i]);
                return 2;
            }
            priority = *parsed;
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            deadline_ms = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--queue-depth" && i + 1 < argc) {
            queue_depth = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--cache-budget" && i + 1 < argc) {
            cache_budget = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--store-dir" && i + 1 < argc) {
            store_dir = argv[++i];
        } else if (arg == "--cert-dump" && i + 1 < argc) {
            cert_dump_dir = argv[++i];
        } else if (arg == "--sim-backend" && i + 1 < argc) {
            const auto parsed = sim::parse_backend(argv[++i]);
            if (!parsed) {
                std::fprintf(stderr, "unknown simulator backend: %s\n",
                             argv[i]);
                return 2;
            }
            backend = *parsed;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    try {
        if (serve) {
            // Block the termination signals *before* the server threads
            // exist so every thread inherits the mask and sigwait below is
            // the only consumer.
            sigset_t signals;
            sigemptyset(&signals);
            sigaddset(&signals, SIGINT);
            sigaddset(&signals, SIGTERM);
            pthread_sigmask(SIG_BLOCK, &signals, nullptr);

            sim::set_default_backend(backend);
            net::ShardServer::Options server_options;
            server_options.port = serve_port;
            server_options.engine.worker_threads = jobs;
            server_options.engine.cache_budget = {.max_entries =
                                                      cache_budget};
            if (!store_dir.empty())
                server_options.engine.result_store =
                    std::make_shared<core::ResultStore>(store_dir);
            server_options.engine.sim = {.backend = backend};
            server_options.engine.admission.queue_depths = {
                queue_depth, queue_depth, queue_depth};
            net::ShardServer server(std::move(server_options));
            std::printf("shard server: listening on port %u\n",
                        static_cast<unsigned>(server.port()));
            std::fflush(stdout);  // readiness line for scripted callers
            int signal_number = 0;
            sigwait(&signals, &signal_number);
            std::printf("shard server: shutting down (signal %d)\n",
                        signal_number);
            server.stop();
            server.engine().flush_result_store();
            return 0;
        }

        core::WorkflowOptions options;
        options.compiler.seed = seed;
        options.scheduler.seed = seed;
        options.compiler.population = 10;
        options.compiler.iterations = 10;
        options.profile_runs = 15;
        if (makespan)
            options.scheduler.objective =
                coordination::Scheduler::Objective::kMakespan;

        std::vector<usecases::UseCaseApp> apps;
        if (which == "pill") {
            apps.push_back(usecases::make_camera_pill_app());
        } else if (which == "space") {
            apps.push_back(usecases::make_space_app());
        } else if (which == "uav") {
            apps.push_back(usecases::make_uav_app(platform_override.empty()
                                                      ? "apalis-tk1"
                                                      : platform_override));
        } else if (which == "rover") {
            apps.push_back(usecases::make_rover_app(platform_override.empty()
                                                        ? "apalis-tk1"
                                                        : platform_override));
        } else if (which == "parking") {
            apps.push_back(
                usecases::make_parking_app(platform_override != "apalis-tk1"));
        } else if (which == "--all") {
            apps.push_back(usecases::make_camera_pill_app());
            apps.push_back(usecases::make_space_app());
            apps.push_back(usecases::make_uav_app("apalis-tk1"));
            apps.push_back(usecases::make_rover_app("apalis-tk1"));
            apps.push_back(usecases::make_parking_app(true));
        } else {
            usage();
            return 2;
        }

        if (!csl_path.empty() && which == "--all") {
            // One override file cannot annotate four different apps.
            std::fprintf(stderr, "--csl cannot be combined with --all\n");
            return 2;
        }
        if (!platform_override.empty() && which == "--all") {
            std::fprintf(stderr,
                         "--platform cannot be combined with --all\n");
            return 2;
        }
        std::string csl_override;
        if (!csl_path.empty()) {
            std::ifstream in(csl_path);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n", csl_path.c_str());
                return 2;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            csl_override = buffer.str();
        }

        std::vector<core::ScenarioRequest> requests;
        requests.reserve(apps.size());
        for (const auto& app : apps) {
            core::ScenarioRequest request;
            request.program = &app.program;
            request.platform = &app.platform;
            request.csl_source =
                csl_override.empty() ? app.csl_source : csl_override;
            request.options = options;
            request.label = app.name;
            request.priority = priority;
            if (deadline_ms > 0)
                request.deadline = std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(deadline_ms);
            requests.push_back(std::move(request));
        }

        // Any machine constructed outside the engine (none today, but the
        // flag should govern the whole process) picks the default up too.
        sim::set_default_backend(backend);
        std::shared_ptr<core::ResultStore> store;
        if (!store_dir.empty())
            store = std::make_shared<core::ResultStore>(store_dir);
        core::ShardedScenarioEngine engine(
            {.shards = shards,
             .worker_threads = jobs,
             .cache_budget = {.max_entries = cache_budget},
             .result_store = store,
             .sim = {.backend = backend},
             .remote_endpoints = remote_endpoints,
             .fetch_peers = fetch_peers,
             .admission = {.queue_depths = {queue_depth, queue_depth,
                                            queue_depth}}});

        if (stream) {
            // Service-core view: consume results in completion order via
            // the async submission path, then report batch telemetry.
            std::mutex io_mutex;
            std::size_t completed = 0;
            bool all_ok = true;
            const auto start = std::chrono::steady_clock::now();
            std::vector<core::ScenarioTicket> tickets;
            tickets.reserve(requests.size());
            for (auto& request : requests) {
                tickets.push_back(engine.submit(
                    request, [&](const core::ScenarioOutcome& outcome) {
                        const std::lock_guard<std::mutex> lock(io_mutex);
                        ++completed;
                        if (outcome.report != nullptr) {
                            const bool ok =
                                outcome.report->certificate.all_hold() &&
                                contracts::verify_certificate(
                                    outcome.report->certificate);
                            all_ok = ok && all_ok;
                            std::printf(
                                "[%zu/%zu] %s: certificate %s (%s)\n",
                                completed, requests.size(),
                                outcome.label.c_str(),
                                ok ? "VALID" : "INVALID",
                                outcome.report->certificate.fully_static()
                                    ? "statically proven"
                                    : "contains measured evidence");
                        } else {
                            all_ok = false;
                            std::printf("[%zu/%zu] %s: %s\n", completed,
                                        requests.size(),
                                        outcome.label.c_str(),
                                        outcome.shed        ? "shed"
                                        : outcome.cancelled ? "cancelled"
                                                            : "failed");
                        }
                    }));
            }
            for (auto& ticket : tickets) ticket.wait();
            const double wall_s =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (!cert_dump_dir.empty()) {
                for (std::size_t i = 0; i < tickets.size(); ++i) {
                    try {
                        dump_certificate(cert_dump_dir, requests[i].label,
                                         tickets[i].get());
                    } catch (...) {
                        // Failure already surfaced through the callback.
                    }
                }
            }
            engine.flush_result_store();
            const auto cache = engine.cache_stats();
            std::printf(
                "stream: %zu scenarios in %.3f s (%zu threads; cache: "
                "%llu hits / %llu misses, %llu evictions, %zu entries)\n",
                requests.size(), wall_s, engine.concurrency(),
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                cache.entries);
            print_shard_breakdown(engine);
            print_result_store(engine, store);
            print_remote_fetch(engine, !fetch_peers.empty());
            print_admission(engine);
            print_trace_cache(backend);
            if (!quiet)
                std::printf("--- per-stage telemetry (all shards) ---\n%s",
                            engine.stage_telemetry().to_string().c_str());
            return all_ok ? 0 : 1;
        }

        core::BatchStats stats;
        const auto reports = engine.run_all(requests, &stats);

        bool all_ok = true;
        for (std::size_t i = 0; i < reports.size(); ++i)
            all_ok =
                print_report(reports[i], *requests[i].platform, quiet) &&
                all_ok;
        if (!cert_dump_dir.empty())
            for (std::size_t i = 0; i < reports.size(); ++i)
                dump_certificate(cert_dump_dir, requests[i].label,
                                 reports[i]);
        engine.flush_result_store();
        if (reports.size() > 1)
            std::printf("batch: %s\n", stats.to_string().c_str());
        print_shard_breakdown(engine);
        print_result_store(engine, store);
        print_remote_fetch(engine, !fetch_peers.empty());
        print_admission(engine);
        print_trace_cache(backend);
        if (!quiet)
            std::printf("--- per-stage telemetry (all shards) ---\n%s",
                        stats.stage_telemetry.to_string().c_str());
        return all_ok ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
