// Command-line front end for the toolchain: pick a built-in use case (or
// feed a CSL file against one of its programs), run it through the
// ScenarioEngine, and print the full report — schedule Gantt, per-task
// version choices, generated glue, certificate.  With `--all`, every
// built-in use case runs as one parallel batch and the engine's throughput
// statistics are reported.
//
//   $ ./example_teamplay_cli pill
//   $ ./example_teamplay_cli space --makespan
//   $ ./example_teamplay_cli uav --platform jetson-tx2
//   $ ./example_teamplay_cli parking --csl my_budgets.csl
//   $ ./example_teamplay_cli --all --jobs 4 --quiet
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/advisor.hpp"
#include "core/scenario_engine.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;

namespace {

void usage() {
    std::puts(
        "usage: example_teamplay_cli <pill|space|uav|parking|--all> "
        "[options]\n"
        "  --platform <name>   uav/parking only: apalis-tk1, jetson-tx2,\n"
        "                      jetson-nano (uav), nucleo-f091 (parking)\n"
        "  --csl <file>        override the built-in CSL annotations\n"
        "  --makespan          schedule for makespan instead of energy\n"
        "  --seed <n>          search seed (default 42)\n"
        "  --jobs <n>          engine worker threads (default 0 = caller)\n"
        "  --quiet             only print the certificate verdict");
}

/// Prints the report and returns whether its certificate is valid.
bool print_report(const core::ToolchainReport& report,
                  const platform::Platform& platform, bool quiet) {
    if (!quiet) {
        std::cout << report.summary() << "\n";
        std::cout << "--- schedule (Gantt) ---\n"
                  << report.schedule.gantt(platform) << "\n";
        std::cout << "--- refactoring advisor ---\n"
                  << core::render_advice(core::advise(report)) << "\n";
        std::cout << "--- generated glue ---\n"
                  << report.glue_code << "\n";
    }
    const bool ok = report.certificate.all_hold() &&
                    contracts::verify_certificate(report.certificate);
    std::printf("%s: certificate %s (%s)\n", report.spec.name.c_str(),
                ok ? "VALID" : "INVALID",
                report.certificate.fully_static()
                    ? "statically proven"
                    : "contains measured evidence");
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string which = argv[1];
    std::string platform_override;
    std::string csl_path;
    bool makespan = false;
    bool quiet = false;
    std::uint64_t seed = 42;
    std::size_t jobs = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--platform" && i + 1 < argc) {
            platform_override = argv[++i];
        } else if (arg == "--csl" && i + 1 < argc) {
            csl_path = argv[++i];
        } else if (arg == "--makespan") {
            makespan = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    try {
        core::WorkflowOptions options;
        options.compiler.seed = seed;
        options.scheduler.seed = seed;
        options.compiler.population = 10;
        options.compiler.iterations = 10;
        options.profile_runs = 15;
        if (makespan)
            options.scheduler.objective =
                coordination::Scheduler::Objective::kMakespan;

        std::vector<usecases::UseCaseApp> apps;
        if (which == "pill") {
            apps.push_back(usecases::make_camera_pill_app());
        } else if (which == "space") {
            apps.push_back(usecases::make_space_app());
        } else if (which == "uav") {
            apps.push_back(usecases::make_uav_app(platform_override.empty()
                                                      ? "apalis-tk1"
                                                      : platform_override));
        } else if (which == "parking") {
            apps.push_back(
                usecases::make_parking_app(platform_override != "apalis-tk1"));
        } else if (which == "--all") {
            apps.push_back(usecases::make_camera_pill_app());
            apps.push_back(usecases::make_space_app());
            apps.push_back(usecases::make_uav_app("apalis-tk1"));
            apps.push_back(usecases::make_parking_app(true));
        } else {
            usage();
            return 2;
        }

        if (!csl_path.empty() && which == "--all") {
            // One override file cannot annotate four different apps.
            std::fprintf(stderr, "--csl cannot be combined with --all\n");
            return 2;
        }
        if (!platform_override.empty() && which == "--all") {
            std::fprintf(stderr,
                         "--platform cannot be combined with --all\n");
            return 2;
        }
        std::string csl_override;
        if (!csl_path.empty()) {
            std::ifstream in(csl_path);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n", csl_path.c_str());
                return 2;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            csl_override = buffer.str();
        }

        std::vector<core::ScenarioRequest> requests;
        requests.reserve(apps.size());
        for (const auto& app : apps) {
            core::ScenarioRequest request;
            request.program = &app.program;
            request.platform = &app.platform;
            request.csl_source =
                csl_override.empty() ? app.csl_source : csl_override;
            request.options = options;
            request.label = app.name;
            requests.push_back(std::move(request));
        }

        core::ScenarioEngine engine({.worker_threads = jobs});
        core::BatchStats stats;
        const auto reports = engine.run_all(requests, &stats);

        bool all_ok = true;
        for (std::size_t i = 0; i < reports.size(); ++i)
            all_ok =
                print_report(reports[i], *requests[i].platform, quiet) &&
                all_ok;
        if (reports.size() > 1)
            std::printf("batch: %s\n", stats.to_string().c_str());
        return all_ok ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
