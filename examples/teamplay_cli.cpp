// Command-line front end for the toolchain: pick a built-in use case (or
// feed a CSL file against one of its programs), run the matching workflow,
// and print the full report — schedule Gantt, per-task version choices,
// generated glue, certificate.
//
//   $ ./example_teamplay_cli pill
//   $ ./example_teamplay_cli space --makespan
//   $ ./example_teamplay_cli uav --platform jetson-tx2
//   $ ./example_teamplay_cli parking --csl my_budgets.csl
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/advisor.hpp"
#include "core/workflow.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;

namespace {

void usage() {
    std::puts(
        "usage: example_teamplay_cli <pill|space|uav|parking> [options]\n"
        "  --platform <name>   uav/parking only: apalis-tk1, jetson-tx2,\n"
        "                      jetson-nano (uav), nucleo-f091 (parking)\n"
        "  --csl <file>        override the built-in CSL annotations\n"
        "  --makespan          schedule for makespan instead of energy\n"
        "  --seed <n>          search seed (default 42)\n"
        "  --quiet             only print the certificate verdict");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string which = argv[1];
    std::string platform_override;
    std::string csl_path;
    bool makespan = false;
    bool quiet = false;
    std::uint64_t seed = 42;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--platform" && i + 1 < argc) {
            platform_override = argv[++i];
        } else if (arg == "--csl" && i + 1 < argc) {
            csl_path = argv[++i];
        } else if (arg == "--makespan") {
            makespan = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    usecases::UseCaseApp app;
    try {
        if (which == "pill") {
            app = usecases::make_camera_pill_app();
        } else if (which == "space") {
            app = usecases::make_space_app();
        } else if (which == "uav") {
            app = usecases::make_uav_app(platform_override.empty()
                                             ? "apalis-tk1"
                                             : platform_override);
        } else if (which == "parking") {
            app = usecases::make_parking_app(platform_override !=
                                             "apalis-tk1");
        } else {
            usage();
            return 2;
        }

        std::string csl_source = app.csl_source;
        if (!csl_path.empty()) {
            std::ifstream in(csl_path);
            if (!in) {
                std::fprintf(stderr, "cannot read %s\n", csl_path.c_str());
                return 2;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            csl_source = buffer.str();
        }
        const auto spec = csl::parse(csl_source);

        core::WorkflowOptions options;
        options.compiler.seed = seed;
        options.scheduler.seed = seed;
        options.compiler.population = 10;
        options.compiler.iterations = 10;
        options.profile_runs = 15;
        if (makespan)
            options.scheduler.objective =
                coordination::Scheduler::Objective::kMakespan;

        const auto report =
            core::run_toolchain(app.program, app.platform, spec, options);

        if (!quiet) {
            std::cout << report.summary() << "\n";
            std::cout << "--- schedule (Gantt) ---\n"
                      << report.schedule.gantt(app.platform) << "\n";
            std::cout << "--- refactoring advisor ---\n"
                      << core::render_advice(core::advise(report)) << "\n";
            std::cout << "--- generated glue ---\n"
                      << report.glue_code << "\n";
        }
        const bool ok = report.certificate.all_hold() &&
                        contracts::verify_certificate(report.certificate);
        std::printf("%s: certificate %s (%s)\n", spec.name.c_str(),
                    ok ? "VALID" : "INVALID",
                    report.certificate.fully_static()
                        ? "statically proven"
                        : "contains measured evidence");
        return ok ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
