// UAV use case (Sec. IV-C): the complex-architecture workflow on the Apalis
// TK1 — two-pass profiling + scheduling — followed by the mission-level
// battery arithmetic (flight time from mechanical + electronics power).
//
//   $ ./example_uav_mission
#include <cstdio>
#include <iostream>

#include "core/workflow.hpp"
#include "coordination/runtime.hpp"
#include "energy/component_model.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

int main() {
    const auto app = make_uav_app("apalis-tk1");
    const auto spec = csl::parse(app.csl_source);

    std::puts("== pass 1+2: complex-architecture workflow (Fig. 2) ==");
    core::ComplexWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.profile_runs = 15;
    const auto report = workflow.run(spec, options);
    std::cout << report.summary();

    std::puts("\n--- pass-1 sequential profiling driver (excerpt) ---");
    std::cout << report.sequential_glue.substr(
                     0, std::min<std::size_t>(
                            report.sequential_glue.size(), 600))
              << "...\n";

    // Soft real-time behaviour: fraction of frames meeting every deadline
    // under realistic execution jitter (overlapping frames tolerate misses).
    coordination::RuntimeOptions runtime;
    runtime.jitter_sigma = 0.10;
    runtime.deadline_s = spec.deadline_s;
    const double success = coordination::deadline_success_ratio(
        report.graph, report.schedule, runtime, 500);
    std::printf("\nsoft-RT success ratio over 500 frames: %.1f%%\n",
                success * 100.0);

    // Mission arithmetic: software power from the 200 ms frame schedule.
    const double period = spec.tasks.front().period_s;
    const double frame_energy =
        report.schedule.platform_energy_j(app.platform, period);
    energy::MissionPower mission;
    mission.battery_wh = 65.0;
    mission.mechanical_w = 28.0;  // cruise propulsion [31]
    mission.electronics_w = frame_energy / period;
    std::printf(
        "mission: mech %.0f W + payload %.2f W -> flight time %.0f min\n",
        mission.mechanical_w, mission.electronics_w,
        mission.flight_time_s() / 60.0);

    return report.certificate.all_hold() ? 0 : 1;
}
