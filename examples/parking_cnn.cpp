// Deep-learning use case (Sec. IV-D): free-parking-spot CNN.
//
// Part 1 (Cortex-M0): the multi-criteria compiler emits several variants of
// the convolution task trading WCET against energy — the variant table the
// paper highlights as a design guide.
// Part 2 (Apalis TK1): the coordination layer schedules the network with
// profiled estimates; compared against a hand-optimised mapping.
//
//   $ ./example_parking_cnn
#include <cstdio>
#include <iostream>

#include "core/workflow.hpp"
#include "support/units.hpp"
#include "usecases/apps.hpp"

using namespace teamplay;
using namespace teamplay::usecases;

int main() {
    // -- functional sanity: classify three synthetic scenes ------------------
    const auto m0_app = make_parking_app(/*on_m0=*/true);
    std::puts("== inference on simulated Nucleo-F091 ==");
    for (const ir::Word seed : {42, 777, 123456}) {
        sim::Machine machine(m0_app.program, m0_app.platform.cores[0], 2);
        stage_parking_weights(machine);
        machine.poke(parking::kState, seed);
        double total_time = 0.0;
        for (const auto* task : {"park_capture", "park_conv", "park_pool",
                                 "park_fc1", "park_fc2", "park_decide"})
            total_time += machine.run(task, {}).time_s;
        std::printf("scene %-7lld -> %lld free spot(s), inference %s\n",
                    static_cast<long long>(seed),
                    static_cast<long long>(machine.peek(parking::kResult)),
                    support::format_time(total_time).c_str());
    }

    // -- part 1: compiler variants on the M0 ---------------------------------
    std::puts("\n== compiler variants of park_conv on Cortex-M0 ==");
    const compiler::MultiCriteriaCompiler mcc(m0_app.program,
                                              m0_app.platform.cores[0]);
    compiler::MultiCriteriaCompiler::Options options;
    options.population = 10;
    options.iterations = 10;
    options.explore_security = false;
    const auto front = mcc.optimise("park_conv", options);
    std::printf("%-44s %-12s %-12s\n", "variant", "WCET", "WCEC");
    for (const auto& version : front)
        std::printf("%-44s %-12s %-12s\n", version.config.label().c_str(),
                    support::format_time(version.wcet_s).c_str(),
                    support::format_energy(version.wcec_j).c_str());

    // -- part 2: coordination-only flow on the TK1 ---------------------------
    std::puts("\n== TK1: coordination layer with profiled estimates ==");
    const auto tk1_app = make_parking_app(/*on_m0=*/false);
    const auto spec = csl::parse(tk1_app.csl_source);
    core::ComplexWorkflow workflow(tk1_app.program, tk1_app.platform);
    core::WorkflowOptions wf_options;
    wf_options.profile_runs = 10;
    const auto report = workflow.run(spec, wf_options);
    std::cout << report.schedule.to_string();
    std::printf("certificate: %s\n",
                report.certificate.all_hold() ? "all contracts hold"
                                              : "violation");
    return front.empty() || !report.certificate.all_hold() ? 1 : 0;
}
