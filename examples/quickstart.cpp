// Quickstart: annotate a tiny two-task application with ETS budgets in CSL,
// run the predictable-architecture toolchain (Fig. 1) on the simulated
// Nucleo-F091, and inspect the certificate.
//
//   $ ./example_quickstart
#include <cstdio>
#include <iostream>

#include "core/workflow.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "support/units.hpp"
#include "usecases/kernels.hpp"

using namespace teamplay;

int main() {
    // 1. Write the application at the IR level (the stand-in for C source):
    //    a sensor-filter task and a checksum-transmit task over a shared
    //    buffer at address 256.
    ir::Program program;
    program.memory_words = 2048;
    {
        ir::FunctionBuilder b("sense", 0);
        const auto i = b.loop_begin(128);
        // Simple IIR-style smoothing of a synthetic ramp.
        const auto raw = b.and_imm(b.mul_imm(i, 37), 255);
        const auto prev = b.load(b.add_imm(i, 255));
        const auto smoothed = b.shr_imm(b.add(raw, prev), 1);
        b.store(b.add_imm(i, 256), smoothed);
        b.loop_end();
        b.ret(b.imm(0));
        program.add(b.build());
    }
    {
        ir::FunctionBuilder b("report_len", 0);
        b.store(b.imm(16), b.imm(128));  // publish buffer length
        b.ret(b.imm(0));
        program.add(b.build());
    }
    program.add(usecases::make_transmit("send", 256, 16, 128, 24));

    // 2. Annotate it in CSL: ETS budgets as first-class citizens.
    const auto spec = csl::parse(R"(
app quickstart on nucleo-f091 deadline 50ms {
  task sense  { entry sense;      period 50ms; deadline 20ms;
                budget time 10ms; budget energy 10mJ; }
  task len    { entry report_len; period 50ms; deadline 25ms;
                budget time 1ms;  budget energy 1mJ; after sense; }
  task send   { entry send;       period 50ms; deadline 50ms;
                budget time 10ms; budget energy 10mJ; after len; }
}
)");

    // 3. Run the toolchain: multi-criteria compilation, scheduling, glue
    //    code, contract proofs.
    const auto platform = platform::nucleo_f091();
    core::PredictableWorkflow workflow(program, platform);
    core::WorkflowOptions options;
    options.compiler.population = 8;
    options.compiler.iterations = 8;
    const auto report = workflow.run(spec, options);

    // 4. Inspect the results.
    std::cout << report.summary() << "\n";
    std::cout << "--- generated glue (header) ---\n";
    const auto& glue = report.glue_code;
    std::cout << glue.substr(0, glue.find("*/") + 3) << "\n\n";

    std::cout << "--- per-task Pareto fronts ---\n";
    for (const auto& front : report.fronts) {
        std::printf("%s on class '%s': %zu version(s)\n", front.task.c_str(),
                    front.core_class.empty() ? "any"
                                             : front.core_class.c_str(),
                    front.versions.size());
        for (const auto& version : front.versions)
            std::printf("    %-40s wcet=%-10s wcec=%s\n",
                        version.config.label().c_str(),
                        support::format_time(version.wcet_s).c_str(),
                        support::format_energy(version.wcec_j).c_str());
    }

    const bool ok = report.certificate.all_hold() &&
                    contracts::verify_certificate(report.certificate);
    std::cout << (ok ? "\nquickstart: certificate verified, all budgets met\n"
                     : "\nquickstart: BUDGET VIOLATION\n");
    return ok ? 0 : 1;
}
