// Differential oracle for the trace execution tier (DESIGN.md §9).
//
// The pre-decoded threaded-dispatch backend must be *bit-identical* to the
// tree-walking interpreter: same cycles, energies, instruction/class
// counts, return values, power-trace samples and error surface, on every
// app, core and operating point.  These tests sweep all five use-case
// programs across their platforms' cores and OPPs and compare every
// RunResult field with exact equality — any divergence in lowering,
// charge ordering or RNG consumption shows up as a failure here, not as a
// subtly wrong certificate downstream.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/scenario_engine.hpp"
#include "csl/csl.hpp"
#include "ir/builder.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

// -- differential sweep -------------------------------------------------------

/// Either a completed run or the error it threw — errors are part of the
/// contract the trace tier must reproduce, message bytes included.
struct Outcome {
    std::optional<sim::RunResult> result;
    std::string error;
};

Outcome run_once(const ir::Program& program, const platform::Core& core,
                 std::size_t opp, std::uint64_t seed, sim::SimBackend backend,
                 const std::shared_ptr<sim::TraceCache>& cache,
                 const std::string& entry,
                 const std::vector<ir::Word>& memory_image,
                 const std::vector<ir::Word>& args) {
    sim::Machine machine(program, core, opp, seed,
                         sim::SimOptions{backend, cache});
    if (!memory_image.empty()) machine.poke_span(0, memory_image);
    Outcome outcome;
    try {
        outcome.result = machine.run(entry, args, /*record_trace=*/true);
    } catch (const std::exception& error) {
        outcome.error = error.what();
        if (outcome.error.empty()) outcome.error = "(empty message)";
    }
    return outcome;
}

/// Exact-equality comparison of two outcomes; `context` names the sweep
/// point so a failure is attributable.
void expect_identical(const Outcome& interp, const Outcome& trace,
                      const std::string& context) {
    ASSERT_EQ(interp.error, trace.error) << context;
    ASSERT_EQ(interp.result.has_value(), trace.result.has_value()) << context;
    if (!interp.result.has_value()) return;
    const auto& a = *interp.result;
    const auto& b = *trace.result;
    EXPECT_EQ(a.cycles, b.cycles) << context;
    EXPECT_EQ(a.time_s, b.time_s) << context;
    EXPECT_EQ(a.dynamic_energy_j, b.dynamic_energy_j) << context;
    EXPECT_EQ(a.static_energy_j, b.static_energy_j) << context;
    EXPECT_EQ(a.ret_value, b.ret_value) << context;
    EXPECT_EQ(a.instrs_executed, b.instrs_executed) << context;
    EXPECT_EQ(a.class_counts, b.class_counts) << context;
    ASSERT_EQ(a.power_trace.size(), b.power_trace.size()) << context;
    for (std::size_t i = 0; i < a.power_trace.size(); ++i) {
        ASSERT_EQ(a.power_trace[i], b.power_trace[i])
            << context << " power-trace sample " << i;
    }
}

/// Sweep one app: every task entry on every core at every OPP, once with
/// zeroed memory and once with a seeded random image, interpreter versus
/// trace tier with equal machine seeds.
void sweep_app(const usecases::UseCaseApp& app) {
    const auto spec = csl::parse(app.csl_source);
    const auto cache = std::make_shared<sim::TraceCache>();
    support::Rng stager(0xD1FFEu);

    std::vector<ir::Word> random_image(
        std::min<std::size_t>(app.program.memory_words, 512));
    for (auto& word : random_image)
        word = static_cast<ir::Word>(stager.next() % 97) - 13;

    for (const auto& task : spec.tasks) {
        const ir::Function* fn = app.program.find(task.entry);
        ASSERT_NE(fn, nullptr) << app.name << "/" << task.entry;
        const std::vector<ir::Word> args(
            static_cast<std::size_t>(fn->param_count), 0);
        for (std::size_t c = 0; c < app.platform.cores.size(); ++c) {
            const auto& core = app.platform.cores[c];
            for (std::size_t opp = 0; opp < core.opps.size(); ++opp) {
                const std::vector<ir::Word>* const images[2] = {
                    nullptr, &random_image};
                for (const auto* image : images) {
                    const std::vector<ir::Word> empty;
                    const auto& memory = image ? *image : empty;
                    const std::uint64_t seed = 11 * (c + 1) + opp;
                    const std::string context =
                        app.name + "/" + task.entry + " core=" + core.name +
                        " opp=" + std::to_string(opp) +
                        (image ? " random-image" : " zero-image");
                    expect_identical(
                        run_once(app.program, core, opp, seed,
                                 sim::SimBackend::kInterp, nullptr,
                                 task.entry, memory, args),
                        run_once(app.program, core, opp, seed,
                                 sim::SimBackend::kTrace, cache, task.entry,
                                 memory, args),
                        context);
                }
            }
        }
    }
    // Traces are OPP-invariant and model-keyed: the sweep above must have
    // compiled at most one trace per (entry, distinct core model).
    const auto stats = cache->stats();
    EXPECT_GT(stats.hits, 0u) << app.name;
    EXPECT_LE(stats.misses,
              spec.tasks.size() * app.platform.cores.size())
        << app.name;
}

TEST(SimTraceDifferential, CameraPill) {
    sweep_app(usecases::make_camera_pill_app());
}

TEST(SimTraceDifferential, Space) { sweep_app(usecases::make_space_app()); }

TEST(SimTraceDifferential, Uav) {
    sweep_app(usecases::make_uav_app("apalis-tk1"));
}

TEST(SimTraceDifferential, Rover) {
    sweep_app(usecases::make_rover_app("apalis-tk1"));
}

TEST(SimTraceDifferential, Parking) {
    sweep_app(usecases::make_parking_app(true));
}

// -- synthetic semantics edges ------------------------------------------------

ir::Program make_single(ir::Function fn) {
    ir::Program program;
    program.add(std::move(fn));
    return program;
}

const platform::Platform& nucleo() {
    static const platform::Platform p = platform::nucleo_f091();
    return p;
}

TEST(SimTrace, DynamicLoopAboveBoundThrowsIdentically) {
    ir::FunctionBuilder b("f", 1);
    (void)b.dynamic_loop_begin(b.param(0), 8);
    b.loop_end();
    const auto program = make_single(b.build());
    const std::vector<ir::Word> args{9};
    const auto interp =
        run_once(program, nucleo().cores[0], 0, 1, sim::SimBackend::kInterp,
                 nullptr, "f", {}, args);
    const auto trace =
        run_once(program, nucleo().cores[0], 0, 1, sim::SimBackend::kTrace,
                 nullptr, "f", {}, args);
    EXPECT_FALSE(interp.error.empty());
    expect_identical(interp, trace, "dynamic-loop-bound");
}

TEST(SimTrace, OutOfBoundsLoadThrowsIdentically) {
    ir::FunctionBuilder b("f", 0);
    (void)b.load(b.imm(static_cast<ir::Word>(1) << 40));
    const auto program = make_single(b.build());
    const auto interp = run_once(program, nucleo().cores[0], 0, 1,
                                 sim::SimBackend::kInterp, nullptr, "f", {},
                                 {});
    const auto trace = run_once(program, nucleo().cores[0], 0, 1,
                                sim::SimBackend::kTrace, nullptr, "f", {},
                                {});
    EXPECT_FALSE(interp.error.empty());
    expect_identical(interp, trace, "oob-load");
}

TEST(SimTrace, InstructionBudgetAbortsIdentically) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(1000000);
    (void)b.add(i, i);
    b.loop_end();
    const auto program = make_single(b.build());
    Outcome outcomes[2];
    const sim::SimBackend backends[2] = {sim::SimBackend::kInterp,
                                         sim::SimBackend::kTrace};
    for (int k = 0; k < 2; ++k) {
        sim::Machine machine(program, nucleo().cores[0], 0, 1,
                             sim::SimOptions{backends[k], nullptr});
        machine.set_instruction_budget(1000);
        try {
            outcomes[k].result = machine.run("f", {}, true);
        } catch (const std::exception& error) {
            outcomes[k].error = error.what();
        }
    }
    EXPECT_FALSE(outcomes[0].error.empty());
    expect_identical(outcomes[0], outcomes[1], "budget");
}

TEST(SimTrace, ArgumentCountMismatchNamesExpectedAndGot) {
    ir::FunctionBuilder b("f", 2);
    const auto program = make_single(b.build());
    for (const auto backend :
         {sim::SimBackend::kInterp, sim::SimBackend::kTrace}) {
        sim::Machine machine(program, nucleo().cores[0], 0, 1,
                             sim::SimOptions{backend, nullptr});
        try {
            (void)machine.run("f", std::vector<ir::Word>{1});
            FAIL() << "expected invalid_argument";
        } catch (const std::invalid_argument& error) {
            const std::string what = error.what();
            EXPECT_NE(what.find("expected 2"), std::string::npos) << what;
            EXPECT_NE(what.find("got 1"), std::string::npos) << what;
        }
    }
}

TEST(SimTrace, UndefinedCalleeFallsBackToInterpreterErrorSurface) {
    ir::FunctionBuilder b("f", 0);
    (void)b.call("missing", {});
    const auto program = make_single(b.build());
    // Unlowerable: compile reports null, the machine falls back to the
    // interpreter, and the runtime error matches the reference tier.
    EXPECT_EQ(sim::TraceCompiler::compile(program, "f",
                                          nucleo().cores[0].model),
              nullptr);
    const auto interp = run_once(program, nucleo().cores[0], 0, 1,
                                 sim::SimBackend::kInterp, nullptr, "f", {},
                                 {});
    const auto trace = run_once(program, nucleo().cores[0], 0, 1,
                                sim::SimBackend::kTrace, nullptr, "f", {},
                                {});
    EXPECT_NE(interp.error.find("missing"), std::string::npos);
    expect_identical(interp, trace, "undefined-callee");
}

// -- cache accounting ---------------------------------------------------------

TEST(SimTraceCache, HitMissAndOppInvariance) {
    const auto app = usecases::make_uav_app("apalis-tk1");
    const auto spec = csl::parse(app.csl_source);
    const auto& entry = spec.tasks.front().entry;
    const auto cache = std::make_shared<sim::TraceCache>();
    const auto& core = app.platform.cores.front();

    // One compile serves every OPP: the key is (structure, model), never
    // the operating point.
    for (std::size_t opp = 0; opp < core.opps.size(); ++opp) {
        sim::Machine machine(app.program, core, opp, 1,
                             sim::SimOptions{sim::SimBackend::kTrace, cache});
        EXPECT_NE(machine.resolve_trace(entry), nullptr);
    }
    auto stats = cache->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, core.opps.size() - 1);
    EXPECT_EQ(stats.entries, 1u);

    // Per-machine memoisation: a second resolve on the same machine never
    // consults the cache again.
    sim::Machine machine(app.program, core, 0, 1,
                         sim::SimOptions{sim::SimBackend::kTrace, cache});
    (void)machine.resolve_trace(entry);
    (void)machine.resolve_trace(entry);
    EXPECT_EQ(cache->stats().hits, stats.hits + 1);
}

TEST(SimTraceCache, SharesTracesAcrossIsomorphicPrograms) {
    // The same kernel body under two different entry names in two different
    // programs: the canonical structural fingerprint erases naming, so the
    // second program reuses the first one's trace.
    const auto build = [](const std::string& name) {
        ir::FunctionBuilder b(name, 1);
        const auto i = b.loop_begin(10);
        (void)b.mul(i, b.param(0));
        b.loop_end();
        b.ret(b.param(0));
        return make_single(b.build());
    };
    const auto first = build("alpha");
    const auto second = build("beta");
    const auto cache = std::make_shared<sim::TraceCache>();
    const auto& core = nucleo().cores[0];

    sim::Machine m1(first, core, 0, 1,
                    sim::SimOptions{sim::SimBackend::kTrace, cache});
    sim::Machine m2(second, core, 0, 1,
                    sim::SimOptions{sim::SimBackend::kTrace, cache});
    EXPECT_NE(m1.resolve_trace("alpha"), nullptr);
    EXPECT_NE(m2.resolve_trace("beta"), nullptr);
    const auto stats = cache->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);

    // The shared trace still produces the right answers for both programs.
    EXPECT_EQ(m1.run("alpha", std::vector<ir::Word>{7}).ret_value, 7);
    EXPECT_EQ(m2.run("beta", std::vector<ir::Word>{9}).ret_value, 9);
}

TEST(SimTraceCache, EvictsColdTracesBeyondBudget) {
    const auto cache =
        std::make_shared<sim::TraceCache>(sim::TraceCache::Budget{1});
    const auto& core = nucleo().cores[0];
    const auto make_distinct = [](int loops) {
        ir::FunctionBuilder b("f", 0);
        const auto i = b.loop_begin(loops);
        (void)b.add(i, i);
        b.loop_end();
        ir::Program program;
        program.add(b.build());
        return program;
    };
    const auto p1 = make_distinct(3);
    const auto p2 = make_distinct(5);
    EXPECT_NE(cache->get_or_compile(p1, "f", core.model), nullptr);
    EXPECT_NE(cache->get_or_compile(p2, "f", core.model), nullptr);
    auto stats = cache->stats();
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 1u);
    // p1 was evicted: resolving it again is a fresh miss.
    EXPECT_NE(cache->get_or_compile(p1, "f", core.model), nullptr);
    EXPECT_EQ(cache->stats().misses, 3u);
}

TEST(SimTraceCache, StatsMergeAndSince) {
    sim::TraceCache::Stats a;
    a.hits = 3;
    a.misses = 2;
    a.evictions = 1;
    a.entries = 4;
    sim::TraceCache::Stats b;
    b.hits = 1;
    b.misses = 1;
    b.entries = 2;
    auto merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.hits, 4u);
    EXPECT_EQ(merged.misses, 3u);
    EXPECT_EQ(merged.entries, 6u);
    const auto delta = a.since(b);
    EXPECT_EQ(delta.hits, 2u);
    EXPECT_EQ(delta.misses, 1u);
    EXPECT_EQ(delta.entries, 4u);  // point-in-time, not a delta
    EXPECT_DOUBLE_EQ(a.hit_ratio(), 0.6);
}

// -- engine-level identity ----------------------------------------------------

/// Whole-toolchain oracle: the same scenario through a multi-threaded
/// engine on each backend must produce byte-identical certificates (this is
/// also the ThreadSanitizer workout for the shared TraceCache).
TEST(SimTraceEngine, CertificatesByteIdenticalAcrossBackends) {
    const auto pill = usecases::make_camera_pill_app();
    const auto uav = usecases::make_uav_app("apalis-tk1");

    const auto run_with =
        [&](sim::SimBackend backend) -> std::vector<std::string> {
        core::ScenarioEngine::Options options;
        options.worker_threads = 4;
        options.sim =
            sim::SimOptions{backend, std::make_shared<sim::TraceCache>()};
        core::ScenarioEngine engine(options);
        std::vector<core::ScenarioRequest> requests;
        for (const auto* app : {&pill, &uav}) {
            core::ScenarioRequest request;
            request.program = &app->program;
            request.platform = &app->platform;
            request.csl_source = app->csl_source;
            request.label = app->name;
            requests.push_back(std::move(request));
        }
        std::vector<std::string> certs;
        for (auto& report : engine.run_all(requests))
            certs.push_back(report.certificate.to_text());
        return certs;
    };

    const auto interp = run_with(sim::SimBackend::kInterp);
    const auto trace = run_with(sim::SimBackend::kTrace);
    ASSERT_EQ(interp.size(), trace.size());
    for (std::size_t i = 0; i < interp.size(); ++i)
        EXPECT_EQ(interp[i], trace[i]) << "scenario " << i;
}

}  // namespace
