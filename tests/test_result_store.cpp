// ResultStore (core/result_store.hpp): round-trip byte identity through
// the segment format, warm start across store instances, spill-on-evict
// and shutdown-flush through an attached EvaluationCache, and the whole
// corruption surface — truncated final frame, byte-flipped payload, stale
// frame and segment versions, empty and foreign files — each skipped and
// counted, never fatal, with recomputed results byte-identical to the
// originals.  Ends with warm-started engines (sharded, shared store)
// proving zero recomputes and byte-identical certificates.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/result_store.hpp"
#include "core/sharded_engine.hpp"
#include "core/wire.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;
namespace fs = std::filesystem;

/// Fresh directory per test: no state bleeds between cases.
class ResultStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("teamplay_store_test_" + std::string(::testing::
                    UnitTest::GetInstance()->current_test_info()->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }
    void TearDown() override {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    [[nodiscard]] fs::path segment_path(std::size_t sequence = 0) const {
        char name[32];
        std::snprintf(name, sizeof name, "segment-%06zu.tpseg", sequence);
        return dir_ / name;
    }

    [[nodiscard]] std::vector<std::uint8_t> read_segment(
        std::size_t sequence = 0) const {
        std::ifstream in(segment_path(sequence), std::ios::binary);
        return {std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
    }

    void write_segment(const std::vector<std::uint8_t>& bytes,
                       std::size_t sequence = 0) const {
        std::ofstream out(segment_path(sequence),
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }

    fs::path dir_;
};

core::EvaluationKey make_key(const std::string& entry,
                             std::uint64_t fp = 42) {
    core::EvaluationKey key;
    key.structural_fp = fp;
    key.entry = entry;
    key.core_class = "big";
    key.opp_index = 1;
    key.kind = core::AnalysisKind::kTaint;
    key.params = 7;
    return key;
}

core::EvaluationResult make_result(double leakage) {
    core::EvaluationResult result;
    result.leakage = leakage;
    return result;
}

/// FNV-1a 64, mirrored from the codec so tests can re-seal patched frames
/// (same helper as test_wire).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
    std::uint64_t value = 14695981039346656037ULL;
    for (std::size_t i = 0; i < size; ++i) {
        value ^= data[i];
        value *= 1099511628211ULL;
    }
    return value;
}

/// Segment layout bookkeeping: byte offsets of the first record's result
/// frame, given the key stored first.
struct RecordLayout {
    std::size_t result_payload_begin = 0;
    std::size_t result_payload_size = 0;
};

RecordLayout first_record_layout(const core::EvaluationKey& key,
                                 const core::EvaluationResult& result) {
    constexpr std::size_t kSegmentHeader = 6;  // "TPSG" + u16 version
    const auto key_bytes = core::wire::encode(key).size();
    RecordLayout layout;
    layout.result_payload_begin = kSegmentHeader + 4 + key_bytes + 4;
    layout.result_payload_size = core::wire::encode(result).size();
    return layout;
}

// -- round-trip and warm start ------------------------------------------------

TEST_F(ResultStoreTest, RoundTripsBytesWithinOneInstance) {
    core::ResultStore store(dir_);
    const auto key = make_key("alpha");
    const auto result = make_result(0.5);
    EXPECT_TRUE(store.store(key, result));
    EXPECT_TRUE(store.contains(key));

    const auto loaded = store.load(key);
    ASSERT_EQ(loaded.status, core::ResultStore::LoadStatus::kHit);
    ASSERT_TRUE(loaded.result.has_value());
    EXPECT_EQ(core::wire::encode(*loaded.result),
              core::wire::encode(result));
}

TEST_F(ResultStoreTest, WarmStartsAcrossInstances) {
    const auto key = make_key("alpha");
    const auto result = make_result(0.25);
    {
        core::ResultStore store(dir_);
        EXPECT_TRUE(store.store(key, result));
    }
    core::ResultStore reopened(dir_);
    const auto stats = reopened.stats();
    EXPECT_EQ(stats.segments, 1U);
    EXPECT_EQ(stats.indexed, 1U);
    EXPECT_EQ(stats.scan_rejects, 0U);

    const auto loaded = reopened.load(key);
    ASSERT_EQ(loaded.status, core::ResultStore::LoadStatus::kHit);
    EXPECT_EQ(core::wire::encode(*loaded.result),
              core::wire::encode(result));
    EXPECT_EQ(reopened.stats().load_hits, 1U);
}

TEST_F(ResultStoreTest, DeduplicatesStoredKeys) {
    core::ResultStore store(dir_);
    const auto key = make_key("alpha");
    EXPECT_TRUE(store.store(key, make_result(0.5)));
    EXPECT_FALSE(store.store(key, make_result(0.5)));
    EXPECT_EQ(store.stats().appended, 1U);
}

TEST_F(ResultStoreTest, MissingKeyIsAMiss) {
    core::ResultStore store(dir_);
    const auto loaded = store.load(make_key("absent"));
    EXPECT_EQ(loaded.status, core::ResultStore::LoadStatus::kMiss);
    EXPECT_FALSE(loaded.result.has_value());
    EXPECT_EQ(store.stats().load_misses, 1U);
}

TEST_F(ResultStoreTest, LaterDuplicateRecordWins) {
    // Append-only semantics: a second segment re-storing a key (after a
    // corruption-triggered recompute, say) shadows the first at scan.
    const auto key = make_key("alpha");
    {
        core::ResultStore store(dir_);
        EXPECT_TRUE(store.store(key, make_result(0.5)));
    }
    {
        core::ResultStore second(dir_);
        // The key is already indexed from segment 0: force a new record by
        // writing through a store opened on an empty view of the world.
        EXPECT_FALSE(second.store(key, make_result(0.75)));
    }
    // Hand-append a second segment holding the same key, different value.
    {
        std::vector<std::uint8_t> segment = read_segment(0);
        core::wire::Buffer stream(segment.begin(),
                                  segment.begin() + 6);  // header only
        core::wire::append_frame(stream, core::wire::encode(key));
        core::wire::append_frame(stream,
                                 core::wire::encode(make_result(0.75)));
        write_segment(stream, 1);
    }
    core::ResultStore reopened(dir_);
    const auto loaded = reopened.load(key);
    ASSERT_EQ(loaded.status, core::ResultStore::LoadStatus::kHit);
    EXPECT_EQ(loaded.result->leakage, 0.75);
}

// -- cache integration --------------------------------------------------------

TEST_F(ResultStoreTest, EvictionSpillsAndReloadInsteadOfRecompute) {
    auto store = std::make_shared<core::ResultStore>(dir_);
    core::EvaluationCache cache({.max_entries = 1}, store);
    int alpha_computes = 0;

    const auto alpha = make_key("alpha");
    const auto beta = make_key("beta");
    (void)cache.lookup(alpha, [&] {
        ++alpha_computes;
        return make_result(0.5);
    });
    // Admitting beta evicts alpha (budget 1) and spills it to the store.
    (void)cache.lookup(beta, [] { return make_result(0.75); });
    EXPECT_TRUE(store->contains(alpha));

    const auto before = cache.stats();
    EXPECT_GE(before.spills, 1U);

    // Alpha's next lookup is a cache miss served by the store: the compute
    // closure must not run again.
    const auto reloaded = cache.lookup(
        alpha, [&]() -> core::EvaluationResult {
            ++alpha_computes;
            ADD_FAILURE() << "stored key recomputed";
            return make_result(0.0);
        });
    EXPECT_EQ(alpha_computes, 1);
    EXPECT_EQ(reloaded->leakage, 0.5);
    const auto after = cache.stats();
    EXPECT_EQ(after.store_hits, before.store_hits + 1);
}

TEST_F(ResultStoreTest, ShutdownFlushWarmsTheNextCache) {
    const auto key = make_key("alpha");
    {
        auto store = std::make_shared<core::ResultStore>(dir_);
        core::EvaluationCache cache({}, store);
        (void)cache.lookup(key, [] { return make_result(0.5); });
        // No eviction (unbounded): persistence comes from the destructor's
        // flush_to_store().
    }
    auto store = std::make_shared<core::ResultStore>(dir_);
    EXPECT_TRUE(store->contains(key));
    core::EvaluationCache cache({}, store);
    const auto value = cache.lookup(key, []() -> core::EvaluationResult {
        ADD_FAILURE() << "flushed key recomputed";
        return make_result(0.0);
    });
    EXPECT_EQ(value->leakage, 0.5);
    EXPECT_EQ(cache.stats().store_hits, 1U);
    EXPECT_EQ(cache.stats().store_misses, 0U);
}

TEST_F(ResultStoreTest, CacheWithoutStoreKeepsStoreCountersZero) {
    core::EvaluationCache cache({.max_entries = 1});
    (void)cache.lookup(make_key("alpha"), [] { return make_result(0.5); });
    (void)cache.lookup(make_key("beta"), [] { return make_result(0.75); });
    cache.flush_to_store();
    const auto stats = cache.stats();
    EXPECT_EQ(stats.store_hits, 0U);
    EXPECT_EQ(stats.store_misses, 0U);
    EXPECT_EQ(stats.spills, 0U);
    EXPECT_EQ(stats.store_rejects, 0U);
}

// -- corruption ---------------------------------------------------------------

TEST_F(ResultStoreTest, TruncatedFinalFrameIsSkippedNotFatal) {
    const auto alpha = make_key("alpha");
    const auto beta = make_key("beta");
    const auto alpha_result = make_result(0.5);
    {
        core::ResultStore store(dir_);
        EXPECT_TRUE(store.store(alpha, alpha_result));
        EXPECT_TRUE(store.store(beta, make_result(0.75)));
    }
    // Tear the tail off the last record, as a crash mid-append would.
    auto bytes = read_segment();
    bytes.resize(bytes.size() - 5);
    write_segment(bytes);

    core::ResultStore reopened(dir_);
    EXPECT_GE(reopened.stats().scan_rejects, 1U);
    // The intact first record still serves, byte-identical.
    const auto loaded = reopened.load(alpha);
    ASSERT_EQ(loaded.status, core::ResultStore::LoadStatus::kHit);
    EXPECT_EQ(core::wire::encode(*loaded.result),
              core::wire::encode(alpha_result));
    // The torn record is simply absent.
    EXPECT_EQ(reopened.load(beta).status,
              core::ResultStore::LoadStatus::kMiss);
}

TEST_F(ResultStoreTest, ByteFlippedResultIsRejectedAndRecomputedIdentically) {
    const auto key = make_key("alpha");
    const auto result = make_result(0.5);
    const auto pristine = core::wire::encode(result);
    {
        core::ResultStore store(dir_);
        EXPECT_TRUE(store.store(key, result));
    }
    // Flip one byte in the middle of the result payload: the frame's
    // checksum no longer matches, so the lazy verify at load must reject.
    auto bytes = read_segment();
    const auto layout = first_record_layout(key, result);
    bytes[layout.result_payload_begin + layout.result_payload_size / 2] ^=
        0x40;
    write_segment(bytes);

    {
        core::ResultStore store(dir_);
        // Scan indexes the frame without decoding it — corruption is found
        // at load, where the store drops the entry and reports kReject.
        EXPECT_TRUE(store.contains(key));
        const auto loaded = store.load(key);
        EXPECT_EQ(loaded.status, core::ResultStore::LoadStatus::kReject);
        EXPECT_FALSE(loaded.result.has_value());
        EXPECT_EQ(store.stats().load_rejects, 1U);
        EXPECT_FALSE(store.contains(key));
    }

    // Same corruption through an attached cache (fresh instance, so the
    // scan re-indexes the corrupt frame): the miss consults the store,
    // observes the reject, recomputes — byte-identical — and the
    // recomputed entry re-enters the store now the frame is unindexed.
    auto store = std::make_shared<core::ResultStore>(dir_);
    core::EvaluationCache cache({}, store);
    const auto recomputed =
        cache.lookup(key, [&] { return make_result(0.5); });
    EXPECT_EQ(core::wire::encode(*recomputed), pristine);
    EXPECT_EQ(cache.stats().store_rejects, 1U);
    EXPECT_EQ(cache.stats().store_hits, 0U);
    cache.flush_to_store();
    EXPECT_TRUE(store->contains(key));
    EXPECT_EQ(store->load(key).status,
              core::ResultStore::LoadStatus::kHit);
}

TEST_F(ResultStoreTest, StaleFrameVersionIsRejectedAtLoad) {
    const auto key = make_key("alpha");
    const auto result = make_result(0.5);
    {
        core::ResultStore store(dir_);
        EXPECT_TRUE(store.store(key, result));
    }
    // Patch the result frame's embedded wire version and re-seal its
    // checksum, so the corruption presents purely as version skew.
    auto bytes = read_segment();
    const auto layout = first_record_layout(key, result);
    const std::size_t version_at = layout.result_payload_begin + 4;
    bytes[version_at] = static_cast<std::uint8_t>(core::wire::kVersion + 1);
    bytes[version_at + 1] = 0;
    const std::uint64_t checksum =
        fnv1a(bytes.data() + layout.result_payload_begin,
              layout.result_payload_size - 8);
    for (int i = 0; i < 8; ++i)
        bytes[layout.result_payload_begin + layout.result_payload_size - 8 +
              static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(checksum >> (8 * i));
    write_segment(bytes);

    core::ResultStore store(dir_);
    EXPECT_TRUE(store.contains(key));
    EXPECT_EQ(store.load(key).status,
              core::ResultStore::LoadStatus::kReject);
    EXPECT_EQ(store.stats().load_rejects, 1U);
}

TEST_F(ResultStoreTest, StaleSegmentVersionIsSkippedWholesale) {
    const auto key = make_key("alpha");
    {
        core::ResultStore store(dir_);
        EXPECT_TRUE(store.store(key, make_result(0.5)));
    }
    auto bytes = read_segment();
    bytes[4] = static_cast<std::uint8_t>(core::wire::kVersion + 1);
    bytes[5] = 0;
    write_segment(bytes);

    core::ResultStore reopened(dir_);
    EXPECT_EQ(reopened.stats().indexed, 0U);
    EXPECT_GE(reopened.stats().scan_rejects, 1U);
    EXPECT_EQ(reopened.load(key).status,
              core::ResultStore::LoadStatus::kMiss);
}

TEST_F(ResultStoreTest, EmptyAndForeignFilesAreSkipped) {
    { std::ofstream out(dir_ / "empty.tpseg", std::ios::binary); }
    {
        std::ofstream out(dir_ / "foreign.tpseg", std::ios::binary);
        out << "this is not a segment file at all, but it is long enough";
    }
    core::ResultStore store(dir_);
    const auto stats = store.stats();
    EXPECT_EQ(stats.indexed, 0U);
    EXPECT_EQ(stats.scan_rejects, 2U);
    // The poisoned directory still accepts new work.
    const auto key = make_key("alpha");
    EXPECT_TRUE(store.store(key, make_result(0.5)));
    EXPECT_EQ(store.load(key).status,
              core::ResultStore::LoadStatus::kHit);
}

// -- engine integration -------------------------------------------------------

core::WorkflowOptions fast_options() {
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 5;
    options.scheduler.anneal_iterations = 60;
    return options;
}

struct Fleet {
    std::vector<usecases::UseCaseApp> apps;
    std::vector<core::ScenarioRequest> requests;
};

/// The warm-start acceptance trio: UAV, camera pill, rover (the rover
/// shares perception kernels with the UAV).
Fleet make_fleet() {
    Fleet fleet;
    fleet.apps.push_back(usecases::make_uav_app("apalis-tk1"));
    fleet.apps.push_back(usecases::make_camera_pill_app());
    fleet.apps.push_back(usecases::make_rover_app("apalis-tk1"));
    for (const auto& app : fleet.apps) {
        core::ScenarioRequest request;
        request.program = &app.program;
        request.platform = &app.platform;
        request.csl_source = app.csl_source;
        request.options = fast_options();
        request.label = app.name;
        fleet.requests.push_back(std::move(request));
    }
    return fleet;
}

std::vector<std::string> certificate_texts(
    const std::vector<core::ToolchainReport>& reports) {
    std::vector<std::string> texts;
    texts.reserve(reports.size());
    for (const auto& report : reports)
        texts.push_back(report.certificate.to_text());
    return texts;
}

TEST_F(ResultStoreTest, WarmEngineServesIdenticalCertificatesWithoutRecompute) {
    const auto fleet = make_fleet();
    std::vector<std::string> cold_certs;
    {
        core::ShardedScenarioEngine engine(
            {.shards = 2,
             .worker_threads = 2,
             .result_store = std::make_shared<core::ResultStore>(dir_)});
        cold_certs = certificate_texts(engine.run_all(fleet.requests));
        // Engine destruction flushes every shard's cache to the store.
    }
    core::ShardedScenarioEngine warm(
        {.shards = 2,
         .worker_threads = 2,
         .result_store = std::make_shared<core::ResultStore>(dir_)});
    const auto warm_certs = certificate_texts(warm.run_all(fleet.requests));

    EXPECT_EQ(warm_certs, cold_certs);  // byte-identical, uav/pill/rover
    const auto stats = warm.cache_stats();
    EXPECT_GT(stats.store_hits, 0U);
    EXPECT_EQ(stats.store_misses, 0U);  // zero analysis recomputes
}

TEST_F(ResultStoreTest, WarmStartIsBudgetAndShardInvariant) {
    const auto fleet = make_fleet();
    std::vector<std::string> reference;
    {
        core::ScenarioEngine engine;  // no store: the identity baseline
        reference = certificate_texts(engine.run_all(fleet.requests));
    }
    {
        core::ShardedScenarioEngine cold(
            {.shards = 3,
             .worker_threads = 4,
             .result_store = std::make_shared<core::ResultStore>(dir_)});
        EXPECT_EQ(certificate_texts(cold.run_all(fleet.requests)),
                  reference);
    }
    // Warm restart under a hostile budget: every miss spills immediately,
    // loads and recomputes interleave, bytes must not move.
    core::ShardedScenarioEngine warm(
        {.shards = 1,
         .worker_threads = 4,
         .cache_budget = {.max_entries = 1},
         .result_store = std::make_shared<core::ResultStore>(dir_)});
    EXPECT_EQ(certificate_texts(warm.run_all(fleet.requests)), reference);
    EXPECT_EQ(warm.cache_stats().store_misses, 0U);
}

TEST_F(ResultStoreTest, ConcurrentShardsShareOneStore) {
    // TSan coverage: four shards, workers, a tiny budget (eviction spills
    // race with loads) and two passes over one shared directory.
    const auto fleet = make_fleet();
    auto store = std::make_shared<core::ResultStore>(dir_);
    core::ShardedScenarioEngine engine(
        {.shards = 4,
         .worker_threads = 4,
         .cache_budget = {.max_entries = 2},
         .result_store = store});
    const auto first = certificate_texts(engine.run_all(fleet.requests));
    const auto second = certificate_texts(engine.run_all(fleet.requests));
    EXPECT_EQ(first, second);
    EXPECT_GT(store->stats().appended, 0U);
}

}  // namespace
