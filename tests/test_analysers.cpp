// Unit tests for the static WCET and energy analysers, including the
// soundness property: on predictable cores, the static bound must never be
// below what the simulator charges on any execution.
#include <gtest/gtest.h>

#include "energy/analyser.hpp"
#include "energy/component_model.hpp"
#include "energy/model_fit.hpp"
#include "ir/builder.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "wcet/analyser.hpp"

namespace {

using namespace teamplay;

ir::Program single(ir::Function fn) {
    ir::Program program;
    program.add(std::move(fn));
    return program;
}

const platform::Platform& nucleo() {
    static const platform::Platform p = platform::nucleo_f091();
    return p;
}

TEST(Wcet, StraightLineBlockMatchesSimulatorExactly) {
    ir::FunctionBuilder b("f", 2);
    const auto s = b.add(b.param(0), b.param(1));
    const auto m = b.mul(s, s);
    b.ret(b.sub(m, s));
    const auto program = single(b.build());

    const wcet::Analyser analyser(program);
    const auto bound = analyser.analyse("f", nucleo().cores[0], 0);
    ASSERT_TRUE(bound.analysable);

    sim::Machine machine(program, nucleo().cores[0], 0);
    const auto run = machine.run("f", std::vector<ir::Word>{3, 4});
    // No branches: the bound is exact.
    EXPECT_DOUBLE_EQ(bound.cycles, run.cycles);
}

TEST(Wcet, BranchBoundTakesWorstArm) {
    ir::FunctionBuilder b("f", 1);
    const auto c = b.cmp_gt(b.param(0), b.imm(0));
    b.if_begin(c);
    (void)b.add(c, c);  // cheap arm: 1 ALU
    b.if_else();
    (void)b.div(c, c);  // expensive arm: 1 DIV (17 cycles on M0)
    b.if_end();
    const auto program = single(b.build());

    const wcet::Analyser analyser(program);
    const auto bound = analyser.analyse("f", nucleo().cores[0], 0);
    ASSERT_TRUE(bound.analysable);

    sim::Machine machine(program, nucleo().cores[0], 0);
    const auto cheap = machine.run("f", std::vector<ir::Word>{5});
    const auto pricey = machine.run("f", std::vector<ir::Word>{-5});
    EXPECT_GT(pricey.cycles, cheap.cycles);
    EXPECT_DOUBLE_EQ(bound.cycles, pricey.cycles);
    EXPECT_GE(bound.cycles, cheap.cycles);
}

TEST(Wcet, LoopBoundUsesStaticBoundNotTrip) {
    ir::FunctionBuilder b("f", 1);
    const auto i = b.dynamic_loop_begin(b.param(0), 64);
    (void)b.add(i, i);
    b.loop_end();
    const auto program = single(b.build());

    const wcet::Analyser analyser(program);
    const auto bound = analyser.analyse("f", nucleo().cores[0], 0);
    ASSERT_TRUE(bound.analysable);

    // Execute with fewer iterations than the bound: must stay below.
    sim::Machine machine(program, nucleo().cores[0], 0);
    const auto run = machine.run("f", std::vector<ir::Word>{10});
    EXPECT_LT(run.cycles, bound.cycles);

    const auto full = machine.run("f", std::vector<ir::Word>{64});
    EXPECT_DOUBLE_EQ(bound.cycles, full.cycles);
}

TEST(Wcet, CallsExpandCalleeBound) {
    ir::FunctionBuilder leaf("leaf", 0);
    (void)leaf.div(leaf.imm(100), leaf.imm(3));
    ir::FunctionBuilder main_fn("main", 0);
    (void)main_fn.call("leaf", {});
    (void)main_fn.call("leaf", {});
    ir::Program program;
    program.add(leaf.build());
    program.add(main_fn.build());

    const wcet::Analyser analyser(program);
    const auto leaf_bound = analyser.analyse("leaf", nucleo().cores[0], 0);
    const auto main_bound = analyser.analyse("main", nucleo().cores[0], 0);
    ASSERT_TRUE(main_bound.analysable);
    EXPECT_GT(main_bound.cycles, 2.0 * leaf_bound.cycles);
}

TEST(Wcet, ComplexCoreRefusesAnalysis) {
    ir::FunctionBuilder b("f", 0);
    (void)b.imm(1);
    const auto program = single(b.build());
    const auto tk1 = platform::apalis_tk1();
    const wcet::Analyser analyser(program);
    const auto bound = analyser.analyse("f", tk1.cores[0], 0);
    EXPECT_FALSE(bound.analysable);
    EXPECT_NE(bound.reason.find("profiler"), std::string::npos);
}

TEST(Wcet, UndefinedFunctionRefused) {
    ir::Program program;
    const wcet::Analyser analyser(program);
    EXPECT_FALSE(analyser.analyse("ghost", nucleo().cores[0], 0).analysable);
}

// Property sweep: for randomly generated structured programs, the static
// WCET bound is never below the simulator's charge, on any of 5 random
// inputs (soundness), on a predictable core.
class WcetSoundness : public ::testing::TestWithParam<int> {};

ir::Program random_program(support::Rng& rng) {
    ir::FunctionBuilder b("f", 2);
    const int outer = static_cast<int>(rng.range(1, 4));
    for (int o = 0; o < outer; ++o) {
        const auto i = b.loop_begin(rng.range(1, 12), rng.range(12, 20));
        auto acc = b.add(i, b.param(0));
        if (rng.chance(0.6)) {
            const auto c = b.cmp_lt(acc, b.param(1));
            b.if_begin(c);
            acc = b.mul(acc, acc);
            if (rng.chance(0.5)) {
                b.if_else();
                acc = b.div(acc, b.add_imm(i, 1));
            }
            b.if_end();
        }
        if (rng.chance(0.5)) {
            const auto addr = b.and_imm(acc, 63);
            b.store(addr, acc);
            (void)b.load(addr);
        }
        b.loop_end();
    }
    b.ret(b.imm(0));
    return single(b.build());
}

TEST_P(WcetSoundness, BoundDominatesAllObservedRuns) {
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    const auto program = random_program(rng);
    const wcet::Analyser analyser(program);
    const auto bound = analyser.analyse("f", nucleo().cores[0], 1);
    ASSERT_TRUE(bound.analysable);

    sim::Machine machine(program, nucleo().cores[0], 1);
    for (int run_idx = 0; run_idx < 5; ++run_idx) {
        const std::vector<ir::Word> args = {rng.range(-100, 100),
                                            rng.range(-100, 100)};
        const auto run = machine.run("f", args);
        EXPECT_LE(run.cycles, bound.cycles)
            << "WCET bound violated on input (" << args[0] << ", " << args[1]
            << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, WcetSoundness,
                         ::testing::Range(0, 20));

// Energy analysis -----------------------------------------------------------

TEST(EnergyAnalysis, WcecDominatesSimulatedEnergy) {
    ir::FunctionBuilder b("f", 1);
    const auto i = b.loop_begin(32);
    const auto v = b.mul(i, b.param(0));
    b.store(b.and_imm(i, 31), v);
    b.loop_end();
    const auto program = single(b.build());

    const energy::Analyser analyser(program);
    const auto bound = analyser.analyse("f", nucleo().cores[0], 2);
    ASSERT_TRUE(bound.analysable);

    sim::Machine machine(program, nucleo().cores[0], 2);
    const auto run =
        machine.run("f", std::vector<ir::Word>{0x7FFFFFFFFFFFFFFF});
    EXPECT_LE(run.energy_j(), bound.wcec_j);
    EXPECT_GT(bound.wcec_j, 0.0);
}

TEST(EnergyAnalysis, AverageBelowWorstCase) {
    ir::FunctionBuilder b("f", 1);
    const auto c = b.cmp_gt(b.param(0), b.imm(0));
    b.if_begin(c);
    (void)b.div(c, c);
    b.if_end();
    const auto i = b.dynamic_loop_begin(b.param(0), 100);
    (void)b.add(i, i);
    b.loop_end();
    const auto program = single(b.build());

    const energy::Analyser analyser(program);
    const auto result = analyser.analyse("f", nucleo().cores[0], 0);
    ASSERT_TRUE(result.analysable);
    EXPECT_LT(result.avg_j, result.wcec_j);
}

TEST(EnergyAnalysis, ComplexCoreRefuses) {
    ir::FunctionBuilder b("f", 0);
    (void)b.imm(1);
    const auto program = single(b.build());
    const auto tx2 = platform::jetson_tx2();
    const energy::Analyser analyser(program);
    EXPECT_FALSE(analyser.analyse("f", tx2.cores[0], 0).analysable);
}

TEST(EnergyAnalysis, LowerVoltageOppCostsLessDynamicEnergy) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(64);
    (void)b.mul(i, i);
    b.loop_end();
    const auto program = single(b.build());
    const energy::Analyser analyser(program);
    const auto lo = analyser.analyse("f", nucleo().cores[0], 0);
    const auto hi = analyser.analyse("f", nucleo().cores[0], 2);
    ASSERT_TRUE(lo.analysable && hi.analysable);
    EXPECT_LT(lo.wce_dynamic_j, hi.wce_dynamic_j);
}

// Energy model fitting (the A3 methodology) ----------------------------------

TEST(EnergyModelFit, RecoversPerClassCostsWithinTolerance) {
    const auto suite = energy::make_calibration_suite(24, /*seed=*/7);
    const auto& core = nucleo().cores[0];
    const auto samples = energy::collect_samples(suite, core, 1, 4, 11);
    ASSERT_GT(samples.size(), 20u);

    const auto model = energy::fit_model(samples);
    // The fitted ALU cost should be near the ground-truth table value plus
    // the average data-dependent component (a few pJ): within 50%.
    const double truth =
        core.model.energy_of(isa::InstrClass::kAlu) * core.energy_scale(core.opp(1));
    const double fitted =
        model.energy_pj[static_cast<std::size_t>(isa::InstrClass::kAlu)];
    EXPECT_GT(fitted, 0.3 * truth);
    EXPECT_LT(fitted, 3.0 * truth);
}

TEST(EnergyModelFit, HeldOutMapeIsSmall) {
    const auto suite = energy::make_calibration_suite(30, /*seed=*/21);
    const auto& core = nucleo().cores[0];
    auto samples = energy::collect_samples(suite, core, 1, 6, 13);
    // Split train/test.
    std::vector<energy::CalibrationSample> train;
    std::vector<energy::CalibrationSample> test;
    for (std::size_t i = 0; i < samples.size(); ++i)
        (i % 3 == 0 ? test : train).push_back(samples[i]);

    const auto model = energy::fit_model(train);
    const double err = energy::model_mape(model, test);
    // The paper's models report errors in the few-percent range; our ground
    // truth has a data-dependent component the regression can't observe, so
    // allow up to 10%.
    EXPECT_LT(err, 10.0);
    EXPECT_GT(err, 0.0);  // perfection would mean the test is vacuous
}

TEST(ComponentModel, FitRecoversIdleAndPerComponentPower) {
    support::Rng rng(3);
    std::vector<energy::PowerSample> samples;
    const double idle = 1.9;
    const std::vector<double> truth = {4.5, 7.0, 2.0};
    for (int i = 0; i < 120; ++i) {
        energy::PowerSample sample;
        sample.utilisation = {rng.uniform(), rng.uniform(), rng.uniform()};
        sample.power_w = idle;
        for (std::size_t c = 0; c < truth.size(); ++c)
            sample.power_w += truth[c] * sample.utilisation[c];
        sample.power_w += rng.gaussian(0.0, 0.05);  // measurement noise
        samples.push_back(std::move(sample));
    }
    const auto model = energy::fit_component_model(samples);
    EXPECT_NEAR(model.idle_w, idle, 0.1);
    ASSERT_EQ(model.component_w.size(), 3u);
    EXPECT_NEAR(model.component_w[0], truth[0], 0.15);
    EXPECT_NEAR(model.component_w[1], truth[1], 0.15);
    EXPECT_NEAR(model.component_w[2], truth[2], 0.15);
    EXPECT_LT(energy::component_model_mape(model, samples), 2.0);
}

TEST(ComponentModel, EmptyInputYieldsDefault) {
    const auto model = energy::fit_component_model({});
    EXPECT_EQ(model.idle_w, 0.0);
    EXPECT_TRUE(model.component_w.empty());
}

TEST(MissionPower, FlightTimeArithmetic) {
    energy::MissionPower mission;
    mission.battery_wh = 68.0;
    mission.mechanical_w = 28.0;
    mission.electronics_w = 6.0;
    EXPECT_NEAR(mission.total_w(), 34.0, 1e-12);
    EXPECT_NEAR(mission.flight_time_s(), 68.0 * 3600.0 / 34.0, 1e-9);
}

}  // namespace
