// ShardedScenarioEngine (core/sharded_engine.hpp): fingerprint routing
// stability, byte-identical certificates versus the single engine for any
// shard count and cache budget, cross-program colocation, fold-based
// merges of cache stats / telemetry / BatchStats, cancellation through the
// router, and the error surface of malformed requests.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/sharded_engine.hpp"
#include "csl/csl.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

core::WorkflowOptions fast_options() {
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 5;
    options.scheduler.anneal_iterations = 60;
    return options;
}

core::ScenarioRequest request_for(const usecases::UseCaseApp& app,
                                  const std::string& label = {}) {
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.csl_source = app.csl_source;
    request.options = fast_options();
    request.label = label.empty() ? app.name : label;
    return request;
}

struct Fleet {
    std::vector<usecases::UseCaseApp> apps;
    std::vector<core::ScenarioRequest> requests;
};

/// Mixed batch over all flows: 2 predictable apps, 2 complex apps (UAV and
/// rover share their perception kernels), 2 option variants each.
Fleet make_fleet() {
    Fleet fleet;
    fleet.apps.push_back(usecases::make_camera_pill_app());
    fleet.apps.push_back(usecases::make_space_app());
    fleet.apps.push_back(usecases::make_uav_app("apalis-tk1"));
    fleet.apps.push_back(usecases::make_rover_app("apalis-tk1"));
    for (const auto& app : fleet.apps)
        for (const int variant : {0, 1}) {
            auto request = request_for(
                app, app.name + "/v" + std::to_string(variant));
            if (variant == 1) request.options.scheduler.seed = 7;
            fleet.requests.push_back(std::move(request));
        }
    return fleet;
}

// -- routing ------------------------------------------------------------------

TEST(ShardRouter, StableAndSpecRepresentationIndependent) {
    const auto uav = usecases::make_uav_app("apalis-tk1");
    const core::ShardedScenarioEngine engine({.shards = 4});

    const auto from_source = request_for(uav);
    auto pre_parsed = request_for(uav);
    pre_parsed.spec = csl::parse(uav.csl_source);

    const auto shard = engine.shard_of(from_source);
    EXPECT_EQ(shard, engine.shard_of(from_source));  // deterministic
    EXPECT_EQ(shard, engine.shard_of(pre_parsed));   // representation-free
    EXPECT_LT(shard, engine.shard_count());
}

TEST(ShardRouter, SameKernelScenariosColocate) {
    // Option/label/scheduler variations of the same application analyse
    // the same kernels, so they must land where the cache is warm.
    const auto uav = usecases::make_uav_app("apalis-tk1");
    const core::ShardedScenarioEngine engine({.shards = 4});
    auto variant = request_for(uav, "variant");
    variant.options.scheduler.seed = 99;
    variant.options.profile_runs = 7;
    EXPECT_EQ(engine.shard_of(request_for(uav)), engine.shard_of(variant));
}

TEST(ShardRouter, ShardCountZeroIsNormalisedToOne) {
    const core::ShardedScenarioEngine engine({.shards = 0});
    EXPECT_EQ(engine.shard_count(), 1U);
}

TEST(ShardRouter, WorkerThreadsDistributeAcrossShards) {
    const core::ShardedScenarioEngine engine(
        {.shards = 4, .worker_threads = 6});
    // 6 workers split 2/2/1/1 plus one calling thread per shard.
    EXPECT_EQ(engine.concurrency(), 10U);
}

// -- determinism: the acceptance criterion ------------------------------------

TEST(ShardedEngine, CertificatesByteIdenticalForAnyShardCountAndBudget) {
    const auto fleet = make_fleet();

    core::ScenarioEngine reference;
    const auto baseline = reference.run_all(fleet.requests);

    for (const std::size_t shards : {1U, 2U, 4U}) {
        for (const std::size_t budget : {0U, 3U}) {
            core::ShardedScenarioEngine engine(
                {.shards = shards,
                 .worker_threads = 2,
                 .cache_budget = {.max_entries = budget}});
            const auto reports = engine.run_all(fleet.requests);
            ASSERT_EQ(reports.size(), baseline.size());
            for (std::size_t i = 0; i < reports.size(); ++i) {
                EXPECT_EQ(reports[i].certificate.to_text(),
                          baseline[i].certificate.to_text())
                    << "shards=" << shards << " budget=" << budget
                    << " scenario=" << fleet.requests[i].label;
                EXPECT_EQ(reports[i].summary(), baseline[i].summary())
                    << "shards=" << shards << " budget=" << budget;
                EXPECT_EQ(reports[i].glue_code, baseline[i].glue_code);
            }
        }
    }
}

TEST(ShardedEngine, CrossProgramHitsSurviveSharding) {
    // The UAV and the rover share their primary kernel (uav_capture), so
    // the router colocates them at any shard count and the mixed batch
    // does strictly less work than isolated runs.
    const auto uav = usecases::make_uav_app("apalis-tk1");
    const auto rover = usecases::make_rover_app("apalis-tk1");

    const core::ShardedScenarioEngine router({.shards = 4});
    ASSERT_EQ(router.shard_of(request_for(uav)),
              router.shard_of(request_for(rover)));

    core::ScenarioEngine uav_alone;
    (void)uav_alone.run(request_for(uav));
    core::ScenarioEngine rover_alone;
    (void)rover_alone.run(request_for(rover));
    const auto isolated = uav_alone.cache_stats().misses +
                          rover_alone.cache_stats().misses;

    core::ShardedScenarioEngine engine({.shards = 4});
    std::vector<core::ScenarioRequest> requests{request_for(uav),
                                                request_for(rover)};
    core::BatchStats stats;
    (void)engine.run_all(requests, &stats);
    EXPECT_LT(stats.cache.misses, isolated);
    EXPECT_GT(stats.cache.hits, 0U);
}

// -- folds --------------------------------------------------------------------

TEST(ShardedEngine, CacheStatsAreTheFoldOfShardSnapshots) {
    const auto fleet = make_fleet();
    core::ShardedScenarioEngine engine({.shards = 2});
    (void)engine.run_all(fleet.requests);

    core::EvaluationCache::Stats folded;
    for (std::size_t shard = 0; shard < engine.shard_count(); ++shard)
        folded.merge(engine.shard_cache_stats(shard));

    const auto merged = engine.cache_stats();
    EXPECT_EQ(merged.hits, folded.hits);
    EXPECT_EQ(merged.misses, folded.misses);
    EXPECT_EQ(merged.evictions, folded.evictions);
    EXPECT_EQ(merged.entries, folded.entries);
    EXPECT_EQ(merged.resident_cost, folded.resident_cost);
    // Work actually happened, and both shards saw some of it (the fleet
    // spans kernels with different fingerprints).
    EXPECT_GT(merged.misses, 0U);
}

TEST(ShardedEngine, TelemetryFoldCountsEveryStageOfEveryScenario) {
    const auto fleet = make_fleet();
    core::ShardedScenarioEngine engine({.shards = 4});
    core::BatchStats stats;
    (void)engine.run_all(fleet.requests, &stats);

    const auto telemetry = engine.stage_telemetry();
    // 5 pipeline stages, one lap per scenario each.
    ASSERT_EQ(telemetry.stages().size(), 5U);
    for (const auto& [name, stage] : telemetry.stages())
        EXPECT_EQ(stage.count, fleet.requests.size()) << name;
    for (const auto& [name, stage] : stats.stage_telemetry.stages())
        EXPECT_EQ(stage.count, fleet.requests.size()) << name;
}

TEST(ShardedEngine, BatchStatsMergeFoldsCountersAndTakesMaxWall) {
    core::BatchStats a;
    a.scenarios = 4;
    a.workers = 2;
    a.wall_s = 2.0;
    a.cache.hits = 10;
    a.cache.misses = 5;
    a.stage_telemetry.record("parse", 0.5);

    core::BatchStats b;
    b.scenarios = 6;
    b.workers = 3;
    b.wall_s = 1.0;
    b.cache.hits = 1;
    b.cache.evictions = 2;
    b.stage_telemetry.record("parse", 0.25);
    b.stage_telemetry.record("certify", 0.125);

    a.merge(b);
    EXPECT_EQ(a.scenarios, 10U);
    EXPECT_EQ(a.workers, 5U);
    EXPECT_EQ(a.wall_s, 2.0);            // concurrent batches: max
    EXPECT_EQ(a.scenarios_per_s, 5.0);   // re-derived from folded totals
    EXPECT_EQ(a.cache.hits, 11U);
    EXPECT_EQ(a.cache.misses, 5U);
    EXPECT_EQ(a.cache.evictions, 2U);
    EXPECT_EQ(a.stage_telemetry.stages().at("parse").count, 2U);
    EXPECT_EQ(a.stage_telemetry.stages().at("parse").max_s, 0.5);
    EXPECT_EQ(a.stage_telemetry.stages().at("certify").count, 1U);
}

// -- service surface ----------------------------------------------------------

TEST(ShardedEngine, StreamingCompletionAndCancellation) {
    const auto pill = usecases::make_camera_pill_app();
    const auto space = usecases::make_space_app();
    core::ShardedScenarioEngine engine({.shards = 2});  // caller-only

    auto doomed = engine.submit(request_for(space));
    doomed.cancel();  // before anything drains its shard

    std::vector<std::string> completed;
    auto ticket = engine.submit(
        request_for(pill), [&](const core::ScenarioOutcome& outcome) {
            completed.push_back(outcome.label);
        });
    auto report = ticket.get();
    EXPECT_TRUE(report.certificate.all_hold());
    EXPECT_EQ(completed, std::vector<std::string>{"camera_pill"});

    EXPECT_THROW((void)doomed.get(), core::CancelledError);
    // A cancelled request stays retryable on the same engine.
    auto retried = engine.submit(request_for(space));
    EXPECT_TRUE(retried.get().certificate.all_hold());
}

TEST(ShardedEngine, MalformedRequestsSurfaceThroughTickets) {
    const auto pill = usecases::make_camera_pill_app();

    core::ShardedScenarioEngine engine({.shards = 2});
    auto bad_csl = request_for(pill);
    bad_csl.csl_source = "app broken on nothing {";
    auto csl_ticket = engine.submit(bad_csl);
    EXPECT_THROW((void)csl_ticket.get(), csl::CslError);

    core::ScenarioRequest no_program;
    no_program.platform = &pill.platform;
    no_program.csl_source = pill.csl_source;
    auto program_ticket = engine.submit(no_program);
    EXPECT_THROW((void)program_ticket.get(), std::invalid_argument);
}

TEST(ShardedEngine, ClearCachesResetsEveryShard) {
    const auto fleet = make_fleet();
    core::ShardedScenarioEngine engine({.shards = 2});
    (void)engine.run_all(fleet.requests);
    ASSERT_GT(engine.cache_stats().entries, 0U);
    engine.clear_caches();
    const auto cleared = engine.cache_stats();
    EXPECT_EQ(cleared.entries, 0U);
    EXPECT_EQ(cleared.hits, 0U);
    EXPECT_EQ(cleared.misses, 0U);
}

}  // namespace
