// Admission & deadline subsystem (core/admission.hpp, DESIGN.md §12):
// bounded-queue rejection at submit, estimate-based deadline refusal,
// mid-flight shedding at stage boundaries, priority-ordered dequeue on the
// shared pool, shed-is-retryable semantics (a shed request resubmitted
// without a deadline produces byte-identical certificates), and the
// AdmissionStats fold/diff arithmetic that rides in BatchStats.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario_engine.hpp"
#include "support/thread_pool.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;
using Clock = std::chrono::steady_clock;

core::WorkflowOptions fast_options() {
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 5;
    options.scheduler.anneal_iterations = 60;
    return options;
}

core::ScenarioRequest request_for(const usecases::UseCaseApp& app,
                                  const std::string& label) {
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = csl::parse(app.csl_source);
    request.options = fast_options();
    request.label = label;
    return request;
}

// -- thread-pool priority lanes ----------------------------------------------

TEST(ThreadPoolLanes, StrictPriorityAcrossLanesFifoWithin) {
    support::ThreadPool pool(0, 3);
    std::vector<int> order;
    pool.submit([&order] { order.push_back(20); }, 2);
    pool.submit([&order] { order.push_back(10); }, 1);
    pool.submit([&order] { order.push_back(0); }, 0);
    pool.submit([&order] { order.push_back(11); }, 1);
    while (pool.try_run_one()) {
    }
    // Lane 0 drains first, then lane 1 (FIFO within it), then lane 2.
    EXPECT_EQ(order, (std::vector<int>{0, 10, 11, 20}));
}

TEST(ThreadPoolLanes, OutOfRangeLevelClampsToLastLane) {
    support::ThreadPool pool(0, 2);
    std::vector<int> order;
    pool.submit([&order] { order.push_back(9); }, 99);
    pool.submit([&order] { order.push_back(0); }, 0);
    while (pool.try_run_one()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 9}));
}

// -- EDF ordering within a lane ------------------------------------------------

TEST(ThreadPoolLanes, EdfWithinLaneTightDeadlineFirst) {
    support::ThreadPool pool(0, 2);
    const auto now = Clock::now();
    std::vector<int> order;
    // Submitted loose-first: FIFO would run 1 before 2; EDF must not.
    pool.submit([&order] { order.push_back(1); }, 1,
                now + std::chrono::seconds(100));
    pool.submit([&order] { order.push_back(2); }, 1,
                now + std::chrono::seconds(10));
    pool.submit([&order] { order.push_back(3); }, 1);  // no deadline
    pool.submit([&order] { order.push_back(4); }, 1);  // no deadline
    while (pool.try_run_one()) {
    }
    // Deadlines drain earliest-first, then the deadline-less tail in FIFO.
    EXPECT_EQ(order, (std::vector<int>{2, 1, 3, 4}));
}

TEST(ThreadPoolLanes, EdfEqualDeadlinesKeepSubmissionOrder) {
    support::ThreadPool pool(0, 1);
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    std::vector<int> order;
    pool.submit([&order] { order.push_back(1); }, 0, deadline);
    pool.submit([&order] { order.push_back(2); }, 0, deadline);
    pool.submit([&order] { order.push_back(3); }, 0, deadline);
    while (pool.try_run_one()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadPoolLanes, EdfNeverCrossesLaneBoundaries) {
    support::ThreadPool pool(0, 2);
    std::vector<int> order;
    // A deadline in lane 1 must not preempt deadline-less lane 0 work:
    // strict priority across lanes stays above EDF within a lane.
    pool.submit([&order] { order.push_back(10); }, 1,
                Clock::now() + std::chrono::milliseconds(1));
    pool.submit([&order] { order.push_back(0); }, 0);
    while (pool.try_run_one()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 10}));
}

TEST(Admission, EdfOrdersSameClassByDeadlineNotArrival) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine engine;  // caller-only = one (borrowed) worker

    std::vector<std::string> completion_order;
    const auto record = [&completion_order](
                            const core::ScenarioOutcome& outcome) {
        completion_order.push_back(outcome.label);
    };

    // All kBatch — same lane.  Loose submitted before tight; a deadline-
    // less straggler arrives last and must run after both.
    auto loose = request_for(pill, "loose");
    loose.deadline = Clock::now() + std::chrono::seconds(200);
    auto tight = request_for(pill, "tight");
    tight.deadline = Clock::now() + std::chrono::seconds(100);
    auto none = request_for(pill, "none");

    auto loose_ticket = engine.submit(std::move(loose), record);
    auto tight_ticket = engine.submit(std::move(tight), record);
    auto none_ticket = engine.submit(std::move(none), record);

    none_ticket.wait();
    EXPECT_EQ(completion_order,
              (std::vector<std::string>{"tight", "loose", "none"}));
    EXPECT_NO_THROW((void)loose_ticket.get());
    EXPECT_NO_THROW((void)tight_ticket.get());
}

// -- bounded-queue admission ---------------------------------------------------

TEST(Admission, QueueFullRejectsAtSubmitAndFreesOnDrain) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine::Options options;  // caller-only pool
    options.admission.queue_depths = {0, 1, 0};  // batch bounded at 1
    core::ScenarioEngine engine(options);

    auto first = engine.submit(request_for(pill, "first"));
    EXPECT_FALSE(first.done());  // queued, nothing drains yet

    bool rejected_shed_flag = false;
    auto second = engine.submit(
        request_for(pill, "second"),
        [&rejected_shed_flag](const core::ScenarioOutcome& outcome) {
            rejected_shed_flag = outcome.shed;
        });
    EXPECT_TRUE(second.done());  // failed fast, never touched the pool
    EXPECT_TRUE(rejected_shed_flag);
    try {
        (void)second.get();
        FAIL() << "queue-full submit must raise ShedError";
    } catch (const core::ShedError& e) {
        EXPECT_EQ(e.reason(), core::ShedError::Reason::kQueueFull);
    }

    // Draining the first ticket frees its slot; the class admits again.
    EXPECT_NO_THROW((void)first.get());
    auto third = engine.submit(request_for(pill, "third"));
    EXPECT_NO_THROW((void)third.get());

    const auto totals = engine.admission_stats().totals();
    EXPECT_EQ(totals.submitted, 3u);
    EXPECT_EQ(totals.admitted, 2u);
    EXPECT_EQ(totals.rejected, 1u);
    EXPECT_EQ(totals.completed, 2u);
    EXPECT_EQ(totals.queue_peak, 1u);
}

// -- deadline refusal and mid-flight shedding ---------------------------------

TEST(Admission, ExpiredDeadlineShedsAtFirstStageBoundary) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine engine;  // caller-only: we control when it runs

    auto request = request_for(pill, "deadline");
    request.deadline = Clock::now() + std::chrono::milliseconds(10);
    bool shed_flag = false;
    auto ticket = engine.submit(
        std::move(request),
        [&shed_flag](const core::ScenarioOutcome& outcome) {
            shed_flag = outcome.shed;
        });
    EXPECT_FALSE(ticket.done());  // admitted: the deadline was feasible

    // By the time anything drains the queue the budget is gone; the first
    // stage boundary sheds it (kBudgetExhausted, not an admission reject).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    try {
        (void)ticket.get();
        FAIL() << "expired budget must raise ShedError";
    } catch (const core::ShedError& e) {
        EXPECT_EQ(e.reason(), core::ShedError::Reason::kBudgetExhausted);
    }
    EXPECT_TRUE(shed_flag);

    const auto totals = engine.admission_stats().totals();
    EXPECT_EQ(totals.admitted, 1u);
    EXPECT_EQ(totals.shed, 1u);
    EXPECT_EQ(totals.rejected, 0u);
}

TEST(Admission, WarmEstimateRejectsUnmeetableDeadlineAtSubmit) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine engine;

    // Warm the per-stage means with one real completion...
    (void)engine.run(request_for(pill, "warmup"));
    ASSERT_GT(engine.admission_stats().totals().completed, 0u);

    // ...then ask for a deadline far inside the estimated pipeline cost.
    auto request = request_for(pill, "hopeless");
    request.deadline = Clock::now() + std::chrono::microseconds(1);
    auto ticket = engine.submit(std::move(request));
    EXPECT_TRUE(ticket.done());
    try {
        (void)ticket.get();
        FAIL() << "unmeetable deadline must be refused at admission";
    } catch (const core::ShedError& e) {
        EXPECT_EQ(e.reason(),
                  core::ShedError::Reason::kDeadlineUnmeetable);
    }
    EXPECT_EQ(engine.admission_stats().totals().rejected, 1u);
}

// -- priority-ordered execution -----------------------------------------------

TEST(Admission, SingleWorkerDrainsInPriorityOrderNotSubmissionOrder) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine engine;  // caller-only = one (borrowed) worker

    std::vector<std::string> completion_order;
    const auto record = [&completion_order](
                            const core::ScenarioOutcome& outcome) {
        completion_order.push_back(outcome.label);
    };

    auto background = request_for(pill, "background");
    background.priority = core::Priority::kBackground;
    auto batch = request_for(pill, "batch");
    batch.priority = core::Priority::kBatch;
    auto interactive = request_for(pill, "interactive");
    interactive.priority = core::Priority::kInteractive;

    auto last = engine.submit(std::move(background), record);
    auto mid = engine.submit(std::move(batch), record);
    auto first = engine.submit(std::move(interactive), record);

    // Draining until the background ticket completes must execute the
    // whole backlog in class order, not arrival order.
    last.wait();
    EXPECT_EQ(completion_order,
              (std::vector<std::string>{"interactive", "batch",
                                        "background"}));
    EXPECT_NO_THROW((void)first.get());
    EXPECT_NO_THROW((void)mid.get());
}

// -- retryable semantics -------------------------------------------------------

TEST(Admission, ShedIsRetryableAndResubmitMatchesBytes) {
    const auto pill = usecases::make_camera_pill_app();

    // Reference bytes from an engine with no admission pressure at all.
    core::ScenarioEngine reference;
    const auto expected =
        reference.run(request_for(pill, "ref")).certificate.to_text();

    core::ScenarioEngine engine;
    auto doomed = request_for(pill, "doomed");
    doomed.deadline = Clock::now() + std::chrono::milliseconds(5);
    auto ticket = engine.submit(std::move(doomed));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    // The generic retry idiom: ShedError is caught as the service's
    // retryable class, and the identical request (deadline relaxed)
    // produces the identical bytes.
    std::string retried;
    try {
        retried = ticket.get().certificate.to_text();
    } catch (const core::CancelledError&) {  // covers ShedError
        retried = engine.run(request_for(pill, "doomed"))
                      .certificate.to_text();
    }
    EXPECT_EQ(retried, expected);
}

// -- stats arithmetic ----------------------------------------------------------

TEST(AdmissionStats, MergeSumsCountersAndMaxesQueuePeak) {
    core::AdmissionStats a;
    a.classes[0] = {.submitted = 4,
                    .admitted = 3,
                    .rejected = 1,
                    .shed = 1,
                    .completed = 2,
                    .cancelled = 0,
                    .failed = 0,
                    .queue_peak = 5};
    a.remote_failures = {1, 2};
    core::AdmissionStats b;
    b.classes[0] = {.submitted = 2,
                    .admitted = 2,
                    .rejected = 0,
                    .shed = 0,
                    .completed = 2,
                    .cancelled = 0,
                    .failed = 0,
                    .queue_peak = 3};
    b.classes[1].submitted = 7;
    b.remote_failures = {3};

    a.merge(b);
    EXPECT_EQ(a.classes[0].submitted, 6u);
    EXPECT_EQ(a.classes[0].completed, 4u);
    EXPECT_EQ(a.classes[0].queue_peak, 5u);  // max, not sum
    EXPECT_EQ(a.classes[1].submitted, 7u);
    ASSERT_EQ(a.remote_failures.size(), 2u);
    EXPECT_EQ(a.remote_failures[0], 4u);  // element-wise sum
    EXPECT_EQ(a.remote_failures[1], 2u);  // resize-to-max keeps the tail

    const auto totals = a.totals();
    EXPECT_EQ(totals.submitted, 13u);
    EXPECT_EQ(totals.queue_peak, 5u);
}

TEST(AdmissionStats, SinceDiffsMonotonicCountersKeepsGauges) {
    core::AdmissionStats before;
    before.classes[2].submitted = 10;
    before.classes[2].completed = 8;
    before.classes[2].queue_peak = 4;
    core::AdmissionStats after = before;
    after.classes[2].submitted = 15;
    after.classes[2].completed = 11;
    after.classes[2].queue_peak = 6;
    after.remote_failures = {2};

    const auto delta = after.since(before);
    EXPECT_EQ(delta.classes[2].submitted, 5u);
    EXPECT_EQ(delta.classes[2].completed, 3u);
    EXPECT_EQ(delta.classes[2].queue_peak, 6u);  // gauge passes through
    ASSERT_EQ(delta.remote_failures.size(), 1u);
    EXPECT_EQ(delta.remote_failures[0], 2u);  // gauge passes through
}

TEST(Admission, BatchStatsFoldsAdmissionDeltas) {
    const auto pill = usecases::make_camera_pill_app();
    core::ScenarioEngine engine;
    std::vector<core::ScenarioRequest> requests;
    requests.push_back(request_for(pill, "one"));
    requests.push_back(request_for(pill, "two"));

    core::BatchStats stats;
    (void)engine.run_all(requests, &stats);
    EXPECT_EQ(stats.admission.totals().submitted, 2u);
    EXPECT_EQ(stats.admission.totals().completed, 2u);

    // A second batch reports only its own delta, not the lifetime counters.
    core::BatchStats second;
    (void)engine.run_all(requests, &second);
    EXPECT_EQ(second.admission.totals().submitted, 2u);
    EXPECT_EQ(engine.admission_stats().totals().submitted, 4u);
}

}  // namespace
