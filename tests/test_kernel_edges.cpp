// Edge cases of the use-case kernels: empty/odd-length buffers, saturated
// runs, border handling, cross-platform consistency of results.
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "usecases/apps.hpp"
#include "usecases/kernels.hpp"

namespace {

using namespace teamplay;
using namespace teamplay::usecases;

const platform::Platform& nucleo() {
    static const platform::Platform p = platform::nucleo_f091();
    return p;
}

TEST(XteaBuffer, OddLengthRoundsUpToBlocks) {
    const auto app = make_camera_pill_app();
    sim::Machine m(app.program, app.platform.cores[0], 0);
    stage_xtea_key(m, {9, 8, 7, 6});
    // 5 words -> 3 blocks (the 6th word is read from the buffer padding).
    m.poke(pill::kLen, 5);
    for (int i = 0; i < 6; ++i)
        m.poke(static_cast<std::size_t>(pill::kComp) + i, 100 + i);
    (void)m.run("pill_encrypt", {});
    // All six words of the 3 blocks written.
    for (int i = 0; i < 6; ++i)
        EXPECT_NE(m.peek(static_cast<std::size_t>(pill::kEnc) + i), 0)
            << "word " << i;
}

TEST(XteaBuffer, ZeroLengthEncryptsNothing) {
    const auto app = make_camera_pill_app();
    sim::Machine m(app.program, app.platform.cores[0], 0);
    stage_xtea_key(m, {1, 2, 3, 4});
    m.poke(pill::kLen, 0);
    const auto run = m.run("pill_encrypt", {});
    EXPECT_EQ(run.ret_value, 0);
    EXPECT_EQ(m.peek(pill::kEnc), 0);
}

TEST(XteaBlocks, DifferentKeysGiveDifferentCiphertext) {
    const auto app = make_camera_pill_app();
    sim::Machine m(app.program, app.platform.cores[0], 0);
    stage_xtea_key(m, {1, 2, 3, 4});
    const auto c1 =
        m.run("pill_xtea_block", std::vector<ir::Word>{10, 20}).ret_value;
    stage_xtea_key(m, {1, 2, 3, 5});
    const auto c2 =
        m.run("pill_xtea_block", std::vector<ir::Word>{10, 20}).ret_value;
    EXPECT_NE(c1, c2);
}

TEST(RleEdge, SingleElementBuffer) {
    ir::Program program;
    program.memory_words = 256;
    program.add(make_rle_compress("comp", 10, 50, 1, 4));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(10, 42);
    EXPECT_EQ(m.run("comp", {}).ret_value, 2);
    EXPECT_EQ(m.peek(50), 1);   // run of one
    EXPECT_EQ(m.peek(51), 42);  // value
}

TEST(RleEdge, AlternatingWorstCaseDoublesSize) {
    constexpr std::int64_t kN = 32;
    ir::Program program;
    program.memory_words = 512;
    program.add(make_rle_compress("comp", 10, 100, kN, 4));
    program.add(make_rle_decompress("decomp", 100, 300, 4, kN));
    sim::Machine m(program, nucleo().cores[0], 0);
    std::vector<ir::Word> data;
    for (std::int64_t i = 0; i < kN; ++i) data.push_back(i % 2);
    m.poke_span(10, data);
    EXPECT_EQ(m.run("comp", {}).ret_value, 2 * kN);  // no compression
    EXPECT_EQ(m.run("decomp", {}).ret_value, kN);
    EXPECT_EQ(m.peek_span(300, kN), data);
}

TEST(CrcEdge, EmptyBufferYieldsInvertedInit) {
    ir::Program program;
    program.memory_words = 128;
    program.add(make_crc32("crc", 10, 4, 64, 20));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(4, 0);  // zero length
    // CRC of nothing: 0xFFFFFFFF ^ 0xFFFFFFFF = 0.
    EXPECT_EQ(m.run("crc", {}).ret_value, 0);
}

TEST(CrcEdge, SensitiveToSingleBitFlips) {
    ir::Program program;
    program.memory_words = 128;
    program.add(make_crc32("crc", 10, 4, 64, 20));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(4, 4);
    m.poke_span(10, std::vector<ir::Word>{1, 2, 3, 4});
    const auto c1 = m.run("crc", {}).ret_value;
    m.poke(12, 3 ^ 1);  // flip one bit
    const auto c2 = m.run("crc", {}).ret_value;
    EXPECT_NE(c1, c2);
}

TEST(SobelEdge, UniformImageHasNoDetections) {
    ir::Program program;
    program.memory_words = 4096;
    program.add(make_sobel_detect("det", 100, 1200, 16, 12, 8, 50));
    sim::Machine m(program, nucleo().cores[0], 0);
    for (int i = 0; i < 16 * 12; ++i) m.poke(100 + i, 77);
    EXPECT_EQ(m.run("det", {}).ret_value, 0);
}

TEST(SobelEdge, StepEdgeDetected) {
    ir::Program program;
    program.memory_words = 4096;
    program.add(make_sobel_detect("det", 100, 1200, 16, 12, 8, 100));
    sim::Machine m(program, nucleo().cores[0], 0);
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 16; ++x)
            m.poke(static_cast<std::size_t>(100 + y * 16 + x),
                   x < 8 ? 0 : 255);
    const auto hits = m.run("det", {}).ret_value;
    EXPECT_GT(hits, 5);  // the vertical edge column
    // Detections concentrated around x=7..8.
    for (int y = 1; y < 11; ++y) {
        EXPECT_EQ(m.peek(static_cast<std::size_t>(1200 + y * 16 + 2)), 0);
        const auto near_edge =
            m.peek(static_cast<std::size_t>(1200 + y * 16 + 7)) +
            m.peek(static_cast<std::size_t>(1200 + y * 16 + 8));
        EXPECT_GE(near_edge, 1);
    }
}

TEST(CentroidEdge, EmptyMapFallsBackGracefully) {
    ir::Program program;
    program.memory_words = 2048;
    program.add(make_centroid("cen", 100, 8, 8, 20));
    sim::Machine m(program, nucleo().cores[0], 0);
    EXPECT_EQ(m.run("cen", {}).ret_value, 0);  // zero hits, no crash
    EXPECT_EQ(m.peek(20), 0);
    EXPECT_EQ(m.peek(21), 0);
}

TEST(CentroidEdge, SinglePointExactlyLocated) {
    ir::Program program;
    program.memory_words = 2048;
    program.add(make_centroid("cen", 100, 8, 8, 20));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(100 + 3 * 8 + 5, 1);  // (x=5, y=3)
    EXPECT_EQ(m.run("cen", {}).ret_value, 1);
    EXPECT_EQ(m.peek(20), 5 * 256 / 8);
    EXPECT_EQ(m.peek(21), 3 * 256 / 8);
}

TEST(PacketizeEdge, ExactMultipleOfPayloadHasNoPadding) {
    ir::Program program;
    program.memory_words = 2048;
    program.add(make_packetize("pkt", 100, 4, 64, 500, 8, 6));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(4, 16);  // exactly two packets of 8
    for (int i = 0; i < 16; ++i) m.poke(100 + i, i + 1);
    const auto total = m.run("pkt", {}).ret_value;
    EXPECT_EQ(total, 2 * (8 + 3));
    // Second packet's payload carries words 9..16.
    EXPECT_EQ(m.peek(500 + 11 + 2), 9);
}

TEST(Capture, FramesEvolveButStayInByteRange) {
    ir::Program program;
    program.memory_words = 4096;
    program.add(make_capture("cap", 100, 16, 8, 4));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(4, 999);
    (void)m.run("cap", {});
    const auto frame1 = m.peek_span(100, 16 * 8);
    (void)m.run("cap", {});
    const auto frame2 = m.peek_span(100, 16 * 8);
    EXPECT_NE(frame1, frame2);  // sensor state advanced
    for (const auto px : frame1) {
        EXPECT_GE(px, 0);
        EXPECT_LE(px, 255);
    }
}

TEST(UavPlatformVariants, PipelineRunsOnAllThreeBoards) {
    for (const auto* name : {"apalis-tk1", "jetson-tx2", "jetson-nano"}) {
        const auto app = make_uav_app(name);
        EXPECT_EQ(app.platform.name, name);
        sim::Machine m(app.program, app.platform.cores[0], 0, 3);
        m.poke(uav::kState, 1);
        for (const auto* task :
             {"uav_capture", "uav_resize", "uav_detect", "uav_track",
              "uav_encode", "uav_downlink"})
            EXPECT_NO_THROW((void)m.run(task, {})) << name << "/" << task;
    }
}

TEST(Maxpool, SelectsMaximumPerWindow) {
    ir::Program program;
    program.memory_words = 1024;
    program.add(make_maxpool2x2("pool", 100, 300, 4, 4, 1));
    sim::Machine m(program, nucleo().cores[0], 0);
    const std::vector<ir::Word> input = {1, 2, 5, 6,   3, 4, 7, 8,
                                         9, 10, 13, 14, 11, 12, 15, 16};
    m.poke_span(100, input);
    (void)m.run("pool", {});
    EXPECT_EQ(m.peek(300), 4);
    EXPECT_EQ(m.peek(301), 8);
    EXPECT_EQ(m.peek(302), 12);
    EXPECT_EQ(m.peek(303), 16);
}

TEST(Fc, ComputesQ8MatVecWithBias) {
    ir::Program program;
    program.memory_words = 1024;
    // 2 inputs -> 1 output, no relu.
    program.add(make_fc("fc", 100, 200, 300, 400, 2, 1, false));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke(100, 10);
    m.poke(101, 20);
    m.poke(200, 256);  // weight 1.0 in Q8
    m.poke(201, 512);  // weight 2.0
    m.poke(300, 5);    // bias
    (void)m.run("fc", {});
    EXPECT_EQ(m.peek(400), (10 * 256 + 20 * 512) / 256 + 5);
}

TEST(Argmax, PicksFirstOfEqualMaxima) {
    ir::Program program;
    program.memory_words = 256;
    program.add(make_argmax("am", 100, 4, 50));
    sim::Machine m(program, nucleo().cores[0], 0);
    m.poke_span(100, std::vector<ir::Word>{3, 9, 9, 1});
    EXPECT_EQ(m.run("am", {}).ret_value, 1);
    m.poke_span(100, std::vector<ir::Word>{-5, -2, -9, -2});
    EXPECT_EQ(m.run("am", {}).ret_value, 1);
}

}  // namespace
