// ScenarioEngine layer: thread pool semantics, evaluation-cache
// memoisation, engine-vs-legacy equivalence on the paper's use cases,
// determinism across worker counts, and batch execution statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/scenario_engine.hpp"
#include "core/stages.hpp"
#include "support/thread_pool.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

// -- thread pool --------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexOnceCallerOnly) {
    support::ThreadPool pool(0);
    EXPECT_EQ(pool.concurrency(), 1u);
    std::vector<int> counts(64, 0);
    pool.parallel_for(counts.size(),
                      [&](std::size_t i) { counts[i] += 1; });
    for (const int count : counts) EXPECT_EQ(count, 1);
}

TEST(ThreadPool, CoversEveryIndexOnceWithWorkers) {
    support::ThreadPool pool(3);
    EXPECT_EQ(pool.concurrency(), 4u);
    std::vector<std::atomic<int>> counts(512);
    pool.parallel_for(counts.size(), [&](std::size_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
    support::ThreadPool pool(2);
    std::vector<std::vector<int>> grid(8, std::vector<int>(8, 0));
    pool.parallel_for(grid.size(), [&](std::size_t row) {
        pool.parallel_for(grid[row].size(),
                          [&](std::size_t col) { grid[row][col] = 1; });
    });
    for (const auto& row : grid)
        EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0), 8);
}

TEST(ThreadPool, RethrowsBodyException) {
    support::ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(16,
                                   [](std::size_t i) {
                                       if (i == 7)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
}

// -- evaluation cache ---------------------------------------------------------

core::EvaluationKey taint_key(std::uint64_t structural_fp, const char* entry) {
    core::EvaluationKey key;
    key.structural_fp = structural_fp;
    key.entry = entry;
    key.kind = core::AnalysisKind::kTaint;
    return key;
}

TEST(EvaluationCache, MissThenHit) {
    core::EvaluationCache cache;
    int computes = 0;
    const auto compute = [&computes] {
        ++computes;
        core::EvaluationResult result;
        result.leakage = 4.0;
        return result;
    };
    const std::uint64_t marker = 1;
    const auto key = taint_key(marker, "f");
    EXPECT_DOUBLE_EQ(cache.lookup(key, compute)->leakage, 4.0);
    EXPECT_DOUBLE_EQ(cache.lookup(key, compute)->leakage, 4.0);
    EXPECT_EQ(computes, 1);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(EvaluationCache, SingleFlightUnderConcurrency) {
    core::EvaluationCache cache;
    support::ThreadPool pool(3);
    std::atomic<int> computes{0};
    const std::uint64_t marker = 1;
    const auto key = taint_key(marker, "g");
    pool.parallel_for(32, [&](std::size_t) {
        (void)cache.lookup(key, [&] {
            computes.fetch_add(1);
            return core::EvaluationResult{};
        });
    });
    EXPECT_EQ(computes.load(), 1);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, 32u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(EvaluationCache, ThrowingComputePropagatesAndRetries) {
    core::EvaluationCache cache;
    const std::uint64_t marker = 1;
    const auto key = taint_key(marker, "h");
    EXPECT_THROW((void)cache.lookup(
                     key,
                     []() -> core::EvaluationResult {
                         throw std::runtime_error("analysis failed");
                     }),
                 std::runtime_error);
    // The failure is not cached: a later lookup recomputes successfully.
    const auto result = cache.lookup(key, [] {
        core::EvaluationResult r;
        r.leakage = 1.0;
        return r;
    });
    EXPECT_DOUBLE_EQ(result->leakage, 1.0);
}

TEST(EvaluationCache, ClearDropsEntries) {
    core::EvaluationCache cache;
    const std::uint64_t marker = 1;
    int computes = 0;
    const auto compute = [&computes] {
        ++computes;
        return core::EvaluationResult{};
    };
    (void)cache.lookup(taint_key(marker, "f"), compute);
    cache.clear();
    (void)cache.lookup(taint_key(marker, "f"), compute);
    EXPECT_EQ(computes, 2);
}

// -- engine vs legacy path ----------------------------------------------------

core::WorkflowOptions fast_options() {
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.profile_runs = 5;
    options.scheduler.anneal_iterations = 60;
    return options;
}

core::ScenarioRequest request_for(const usecases::UseCaseApp& app,
                                  const csl::AppSpec& spec,
                                  const core::WorkflowOptions& options) {
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.spec = spec;
    request.options = options;
    request.label = app.name;
    return request;
}

void expect_reports_identical(const core::ToolchainReport& a,
                              const core::ToolchainReport& b) {
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_EQ(a.certificate.to_text(), b.certificate.to_text());
    EXPECT_EQ(a.glue_code, b.glue_code);
    EXPECT_EQ(a.sequential_glue, b.sequential_glue);
    EXPECT_EQ(a.schedule.entries.size(), b.schedule.entries.size());
    EXPECT_DOUBLE_EQ(a.schedule.makespan_s, b.schedule.makespan_s);
    EXPECT_EQ(a.fronts.size(), b.fronts.size());
}

TEST(ScenarioEngine, MatchesLegacyPredictablePathOnCameraPill) {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    const auto options = fast_options();

    core::PredictableWorkflow legacy(app.program, app.platform);
    const auto legacy_report = legacy.run(spec, options);

    core::ScenarioEngine engine;
    const auto engine_report = engine.run(request_for(app, spec, options));

    expect_reports_identical(engine_report, legacy_report);
    EXPECT_TRUE(engine_report.certificate.fully_static());
    EXPECT_TRUE(contracts::verify_certificate(engine_report.certificate));
}

TEST(ScenarioEngine, MatchesLegacyComplexPathOnUav) {
    const auto app = usecases::make_uav_app("apalis-tk1");
    const auto spec = csl::parse(app.csl_source);
    const auto options = fast_options();

    core::ComplexWorkflow legacy(app.program, app.platform);
    const auto legacy_report = legacy.run(spec, options);

    core::ScenarioEngine engine;
    const auto engine_report = engine.run(request_for(app, spec, options));

    expect_reports_identical(engine_report, legacy_report);
    EXPECT_FALSE(engine_report.certificate.fully_static());
    EXPECT_FALSE(engine_report.sequential_glue.empty());
    EXPECT_TRUE(contracts::verify_certificate(engine_report.certificate));
}

TEST(ScenarioEngine, ParsesCslSourceWhenSpecAbsent) {
    const auto app = usecases::make_camera_pill_app();
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.csl_source = app.csl_source;
    request.options = fast_options();
    core::ScenarioEngine engine;
    const auto report = engine.run(request);
    EXPECT_EQ(report.spec.name, csl::parse(app.csl_source).name);
    EXPECT_TRUE(report.schedule.feasible);
}

TEST(ScenarioEngine, RejectsRequestWithoutProgramOrPlatform) {
    core::ScenarioEngine engine;
    EXPECT_THROW((void)engine.run(core::ScenarioRequest{}),
                 std::invalid_argument);
}

// -- cache behaviour through the engine ---------------------------------------

TEST(ScenarioEngine, SecondIdenticalScenarioIsAllCacheHits) {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    const auto options = fast_options();
    core::ScenarioEngine engine;

    const auto first = engine.run(request_for(app, spec, options));
    const auto after_first = engine.cache_stats();
    // One front per (task, admissible core class): all misses, no hits.
    EXPECT_EQ(after_first.misses, first.fronts.size());
    EXPECT_EQ(after_first.hits, 0u);

    const auto second = engine.run(request_for(app, spec, options));
    const auto after_second = engine.cache_stats();
    EXPECT_EQ(after_second.misses, after_first.misses);  // nothing recomputed
    EXPECT_EQ(after_second.hits, first.fronts.size());
    expect_reports_identical(first, second);
}

TEST(ScenarioEngine, SchedulerOnlyVariantsShareAnalyses) {
    const auto app = usecases::make_uav_app("apalis-tk1");
    const auto spec = csl::parse(app.csl_source);
    core::ScenarioEngine engine;

    auto options = fast_options();
    (void)engine.run(request_for(app, spec, options));
    const auto after_first = engine.cache_stats();

    options.scheduler.objective =
        coordination::Scheduler::Objective::kMakespan;
    options.scheduler.seed = 99;
    (void)engine.run(request_for(app, spec, options));
    const auto after_second = engine.cache_stats();
    // Scheduling options do not key any analysis: zero new misses.
    EXPECT_EQ(after_second.misses, after_first.misses);
    EXPECT_GT(after_second.hits, after_first.hits);
}

// -- determinism and batches --------------------------------------------------

std::vector<core::ScenarioRequest> mixed_requests(
    const std::vector<usecases::UseCaseApp>& apps) {
    std::vector<core::ScenarioRequest> requests;
    for (const auto& app : apps) {
        auto options = fast_options();
        requests.push_back(
            request_for(app, csl::parse(app.csl_source), options));
        options.scheduler.objective =
            coordination::Scheduler::Objective::kMakespan;
        requests.push_back(
            request_for(app, csl::parse(app.csl_source), options));
    }
    return requests;
}

TEST(ScenarioEngine, DeterministicAcrossWorkerCounts) {
    std::vector<usecases::UseCaseApp> apps;
    apps.push_back(usecases::make_camera_pill_app());
    apps.push_back(usecases::make_uav_app("apalis-tk1"));
    const auto requests = mixed_requests(apps);

    core::ScenarioEngine single;  // caller-only
    core::ScenarioEngine pooled({.worker_threads = 4});
    const auto sequential = single.run_all(requests);
    const auto parallel = pooled.run_all(requests);

    ASSERT_EQ(sequential.size(), parallel.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        SCOPED_TRACE(requests[i].label + " #" + std::to_string(i));
        expect_reports_identical(sequential[i], parallel[i]);
    }
}

TEST(ScenarioEngine, RunAllReportsBatchStatsAndOrder) {
    std::vector<usecases::UseCaseApp> apps;
    apps.push_back(usecases::make_camera_pill_app());
    apps.push_back(usecases::make_space_app());
    apps.push_back(usecases::make_uav_app("apalis-tk1"));
    apps.push_back(usecases::make_parking_app(true));
    const auto requests = mixed_requests(apps);  // 8 mixed scenarios
    ASSERT_GE(requests.size(), 8u);

    core::ScenarioEngine engine({.worker_threads = 4});
    core::BatchStats stats;
    const auto reports = engine.run_all(requests, &stats);

    ASSERT_EQ(reports.size(), requests.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        // Reports come back in request order.
        EXPECT_EQ(reports[i].spec.name, requests[i].spec->name) << i;
        EXPECT_TRUE(reports[i].schedule.feasible) << i;
        EXPECT_TRUE(contracts::verify_certificate(reports[i].certificate))
            << i;
    }
    EXPECT_EQ(stats.scenarios, requests.size());
    EXPECT_EQ(stats.workers, 5u);  // 4 workers + caller
    EXPECT_GT(stats.wall_s, 0.0);
    EXPECT_GT(stats.scenarios_per_s, 0.0);
    // Each app appears twice with scheduler-only variations: the second
    // occurrence's analyses must come from the cache.
    EXPECT_GT(stats.cache.hits, 0u);
    EXPECT_GT(stats.cache.misses, 0u);
    EXPECT_FALSE(stats.to_string().empty());
}

TEST(ScenarioEngine, StageConfigurationsMatchThePaper) {
    const auto predictable = core::predictable_stage_configuration();
    const auto complex = core::complex_stage_configuration();
    ASSERT_EQ(predictable.size(), 5u);
    ASSERT_EQ(complex.size(), 5u);
    const char* expected[] = {"parse", "analyse", "schedule", "contract",
                              "certify"};
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(predictable[i]->name(), expected[i]);
        EXPECT_EQ(complex[i]->name(), expected[i]);
    }
}

}  // namespace
