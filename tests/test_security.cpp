// Unit tests for the SecurityAnalyser (taint + measured leakage) and the
// SecurityOptimiser transforms (ladderisation, balancing).  The central
// properties: transforms preserve semantics (differential execution) and
// actually remove the measured side channels.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "security/leakage.hpp"
#include "security/taint.hpp"
#include "security/transforms.hpp"
#include "sim/machine.hpp"

namespace {

using namespace teamplay;

ir::Program single(ir::Function fn) {
    ir::Program program;
    program.add(std::move(fn));
    return program;
}

const platform::Platform& nucleo() {
    static const platform::Platform p = platform::nucleo_f091();
    return p;
}

/// A deliberately leaky kernel: square-and-multiply style loop where an
/// expensive operation runs only when the current secret bit is set.
ir::Program leaky_modexp(int bits) {
    ir::FunctionBuilder b("modexp", 1);
    const auto key = b.secret(b.param(0));
    const auto acc_addr = b.imm(200);
    b.store(acc_addr, b.imm(1));
    const auto modulus = b.imm(65521);
    const auto i = b.loop_begin(bits);
    const auto bit = b.band(b.shr(key, i), b.imm(1));
    const auto acc0 = b.load(acc_addr);
    const auto sq = b.rem(b.mul(acc0, acc0), modulus);
    b.store(acc_addr, sq);
    b.if_begin(bit);
    {
        const auto acc1 = b.load(acc_addr);
        const auto mult = b.rem(b.mul(acc1, b.imm(7)), modulus);
        b.store(acc_addr, mult);
    }
    b.if_end();
    b.loop_end();
    b.ret(b.load(acc_addr));
    return single(b.build());
}

TEST(Taint, SecretSourcePropagatesToBranch) {
    const auto program = leaky_modexp(8);
    const auto report =
        security::analyze_taint(program, *program.find("modexp"));
    EXPECT_GE(report.secret_sources, 1);
    EXPECT_GE(report.secret_branches, 1);
    EXPECT_TRUE(report.leaky());
    EXPECT_GT(report.leakage_proxy(), 0.0);
}

TEST(Taint, CleanFunctionHasNoLeaks) {
    ir::FunctionBuilder b("clean", 2);
    const auto c = b.cmp_lt(b.param(0), b.param(1));
    b.if_begin(c);
    (void)b.add(b.param(0), b.param(1));
    b.if_end();
    const auto program = single(b.build());
    const auto report =
        security::analyze_taint(program, *program.find("clean"));
    EXPECT_FALSE(report.leaky());
    EXPECT_EQ(report.leakage_proxy(), 0.0);
}

TEST(Taint, TaintedParamsTreatedAsSecret) {
    ir::FunctionBuilder b("f", 1);
    const auto c = b.cmp_eq(b.param(0), b.imm(0));
    b.if_begin(c);
    (void)b.imm(1);
    b.if_end();
    const auto program = single(b.build());
    const auto clean = security::analyze_taint(program, *program.find("f"));
    EXPECT_EQ(clean.secret_branches, 0);
    const auto tainted =
        security::analyze_taint(program, *program.find("f"), {0});
    EXPECT_EQ(tainted.secret_branches, 1);
}

TEST(Taint, FlowsThroughCalls) {
    ir::FunctionBuilder leaf("leaf", 1);
    leaf.ret(leaf.add_imm(leaf.param(0), 1));
    ir::FunctionBuilder main_fn("main", 1);
    const auto key = main_fn.secret(main_fn.param(0));
    const auto out = main_fn.call("leaf", {key});
    const auto c = main_fn.cmp_gt(out, main_fn.imm(10));
    main_fn.if_begin(c);
    (void)main_fn.imm(1);
    main_fn.if_end();
    ir::Program program;
    program.add(leaf.build());
    program.add(main_fn.build());
    const auto report =
        security::analyze_taint(program, *program.find("main"));
    EXPECT_EQ(report.secret_branches, 1);
}

TEST(Taint, SecretAddressFlaggedAsMemoryLeak) {
    ir::FunctionBuilder b("sbox", 1);
    const auto key = b.secret(b.param(0));
    const auto addr = b.and_imm(key, 255);
    (void)b.load(addr);
    const auto program = single(b.build());
    const auto report = security::analyze_taint(program, *program.find("sbox"));
    EXPECT_GE(report.secret_memory_ops, 1);
    EXPECT_TRUE(report.leaky());
}

TEST(Taint, LoopCarriedTaintReachesFixpoint) {
    // Taint enters the accumulator only via the loop body; a branch on the
    // accumulator after the loop must be flagged.
    ir::FunctionBuilder b("f", 1);
    const auto key = b.secret(b.param(0));
    const auto addr = b.imm(50);
    b.store(addr, b.imm(0));
    const auto i = b.loop_begin(4);
    const auto acc = b.load(addr);
    b.store(addr, b.add(acc, b.band(key, i)));
    b.loop_end();
    const auto final_acc = b.load(addr);
    const auto c = b.cmp_gt(final_acc, b.imm(2));
    b.if_begin(c);
    (void)b.imm(1);
    b.if_end();
    const auto program = single(b.build());
    const auto report = security::analyze_taint(program, *program.find("f"));
    EXPECT_GE(report.secret_branches, 1);
}

// Measured leakage ------------------------------------------------------------

security::SecretRunner make_runner(const ir::Program& program,
                                   const std::string& fn) {
    return [&program, fn](ir::Word secret) {
        sim::Machine machine(program, nucleo().cores[0], 0);
        return machine.run(fn, std::vector<ir::Word>{secret},
                           /*record_trace=*/true);
    };
}

TEST(Leakage, LeakyKernelShowsTimingAndPowerLeakage) {
    const auto program = leaky_modexp(8);
    const auto report =
        security::measure_leakage(make_runner(program, "modexp"), 120, 8, 5);
    EXPECT_GT(report.timing_spread_cycles, 1.0);
    EXPECT_GT(report.timing_mi_bits, 0.02);
    EXPECT_TRUE(report.leaky());
}

TEST(Leakage, ConstantFlowKernelShowsNoTimingLeakage) {
    // Branch-free equivalent via select.
    ir::FunctionBuilder b("ct", 1);
    const auto key = b.secret(b.param(0));
    auto acc = b.imm(1);
    const auto modulus = b.imm(65521);
    const auto i = b.loop_begin(8);
    const auto bit = b.band(b.shr(key, i), b.imm(1));
    const auto sq = b.rem(b.mul(acc, acc), modulus);
    const auto mult = b.rem(b.mul(sq, b.imm(7)), modulus);
    acc = b.select(bit, mult, sq);
    b.loop_end();
    b.ret(acc);
    const auto program = single(b.build());

    const auto report =
        security::measure_leakage(make_runner(program, "ct"), 100, 8, 7);
    EXPECT_EQ(report.timing_spread_cycles, 0.0);
    EXPECT_LT(report.timing_mi_bits, 0.05);
}

// Transforms ------------------------------------------------------------------

/// Differential check: same return value for every input in [0, 2^bits).
void expect_same_semantics(const ir::Program& before,
                           const ir::Program& after, const std::string& fn,
                           int bits) {
    sim::Machine m_before(before, nucleo().cores[0], 0);
    sim::Machine m_after(after, nucleo().cores[0], 0);
    for (ir::Word secret = 0; secret < (1 << bits); ++secret) {
        m_before.clear_memory();
        m_after.clear_memory();
        const auto r0 = m_before.run(fn, std::vector<ir::Word>{secret});
        const auto r1 = m_after.run(fn, std::vector<ir::Word>{secret});
        ASSERT_EQ(r0.ret_value, r1.ret_value) << "diverged at secret "
                                              << secret;
    }
}

/// Pure-branch leaky kernel (no memory ops in the arms -> ladderisable).
ir::Program pure_branch_kernel() {
    ir::FunctionBuilder b("k", 1);
    const auto key = b.secret(b.param(0));
    auto acc = b.imm(1);
    const auto i = b.loop_begin(6);
    const auto bit = b.band(b.shr(key, i), b.imm(1));
    const auto doubled = b.add(acc, acc);
    b.if_begin(bit);
    acc = b.add(doubled, b.imm(3));
    b.if_else();
    acc = b.mov(doubled);
    b.if_end();
    b.loop_end();
    b.ret(acc);
    return single(b.build());
}

TEST(Ladderise, RemovesSecretBranches) {
    auto program = pure_branch_kernel();
    auto& fn = *program.find("k");
    const auto stats = security::ladderise(program, fn);
    EXPECT_EQ(stats.rewritten, 1);
    EXPECT_EQ(stats.skipped, 0);
    const auto report = security::analyze_taint(program, fn);
    EXPECT_EQ(report.secret_branches, 0);
}

TEST(Ladderise, PreservesSemantics) {
    const auto before = pure_branch_kernel();
    auto after = pure_branch_kernel();
    security::ladderise(after, *after.find("k"));
    expect_same_semantics(before, after, "k", 6);
}

TEST(Ladderise, EliminatesMeasuredTimingLeakage) {
    auto program = pure_branch_kernel();
    const auto before =
        security::measure_leakage(make_runner(program, "k"), 100, 6, 11);
    EXPECT_GT(before.timing_spread_cycles, 0.0);

    security::ladderise(program, *program.find("k"));
    const auto after =
        security::measure_leakage(make_runner(program, "k"), 100, 6, 11);
    EXPECT_EQ(after.timing_spread_cycles, 0.0);
    EXPECT_LT(after.timing_mi_bits, 0.05);
}

TEST(Ladderise, SkipsBranchesWithMemoryOps) {
    auto program = leaky_modexp(4);  // arms contain loads/stores
    auto& fn = *program.find("modexp");
    const auto stats = security::ladderise(program, fn);
    EXPECT_EQ(stats.rewritten, 0);
    EXPECT_GE(stats.skipped, 1);
}

TEST(Ladderise, ElseLessBranchHandled) {
    ir::FunctionBuilder b("k", 1);
    const auto key = b.secret(b.param(0));
    auto acc = b.imm(5);
    const auto bit = b.band(key, b.imm(1));
    b.if_begin(bit);
    acc = b.mul(acc, b.imm(3));
    b.if_end();
    b.ret(acc);
    auto program = single(b.build());
    auto transformed = program;  // deep copy via Function copy semantics
    const auto stats =
        security::ladderise(transformed, *transformed.find("k"));
    EXPECT_EQ(stats.rewritten, 1);
    expect_same_semantics(program, transformed, "k", 2);
}

TEST(Balance, EqualisesTimingOfArms) {
    const auto before = pure_branch_kernel();
    auto after = pure_branch_kernel();
    const auto stats =
        security::balance_secret_branches(after, *after.find("k"));
    EXPECT_EQ(stats.rewritten, 1);

    // Timing leakage collapses: both arms now have equal class profiles.
    const auto report =
        security::measure_leakage(make_runner(after, "k"), 80, 6, 13);
    EXPECT_EQ(report.timing_spread_cycles, 0.0);
}

TEST(Balance, PreservesSemantics) {
    const auto before = pure_branch_kernel();
    auto after = pure_branch_kernel();
    security::balance_secret_branches(after, *after.find("k"));
    expect_same_semantics(before, after, "k", 6);
}

TEST(Balance, HandlesArmsWithMemoryOps) {
    auto program = leaky_modexp(4);
    auto& fn = *program.find("modexp");
    const auto stats = security::balance_secret_branches(program, fn);
    EXPECT_EQ(stats.rewritten, 1);

    // Semantics preserved.
    const auto original = leaky_modexp(4);
    expect_same_semantics(original, program, "modexp", 4);

    // Timing flat.
    const auto report =
        security::measure_leakage(make_runner(program, "modexp"), 80, 4, 17);
    EXPECT_EQ(report.timing_spread_cycles, 0.0);
}

TEST(Balance, BothCountermeasuresRemoveTimingChannel) {
    // Balancing and ladderisation both flatten the timing channel.  Neither
    // removes first-order power leakage under a Hamming-weight model (the
    // merged/selected values still carry secret-dependent weights) — that is
    // the realistic picture the security bench reports; masking would be the
    // next countermeasure up, out of scope for the paper's toolchain.
    auto balanced = pure_branch_kernel();
    security::balance_secret_branches(balanced, *balanced.find("k"));
    auto laddered = pure_branch_kernel();
    security::ladderise(laddered, *laddered.find("k"));

    const auto rb =
        security::measure_leakage(make_runner(balanced, "k"), 200, 6, 19);
    const auto rl =
        security::measure_leakage(make_runner(laddered, "k"), 200, 6, 19);
    EXPECT_EQ(rb.timing_spread_cycles, 0.0);
    EXPECT_EQ(rl.timing_spread_cycles, 0.0);
    EXPECT_LT(rb.timing_mi_bits, 0.05);
    EXPECT_LT(rl.timing_mi_bits, 0.05);
}

}  // namespace
