// Unit tests for the contract system: every proof rule, tamper detection at
// arbitrary tree positions, certificate semantics and rendering.
#include <gtest/gtest.h>

#include "contracts/system.hpp"
#include "ir/builder.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;
using contracts::ProofNode;
using contracts::ProofRule;

ProofNode leaf(double value) {
    ProofNode node;
    node.rule = ProofRule::kInstrCost;
    node.value = value;
    return node;
}

TEST(ProofRules, LeavesMustBeChildlessAndNonNegative) {
    EXPECT_TRUE(contracts::verify_proof(leaf(5.0)));
    EXPECT_FALSE(contracts::verify_proof(leaf(-1.0)));
    ProofNode bad = leaf(5.0);
    bad.children.push_back(leaf(1.0));
    EXPECT_FALSE(contracts::verify_proof(bad));
}

TEST(ProofRules, SeqSumsChildren) {
    ProofNode seq;
    seq.rule = ProofRule::kSeq;
    seq.children = {leaf(2.0), leaf(3.0), leaf(4.0)};
    seq.value = 9.0;
    EXPECT_TRUE(contracts::verify_proof(seq));
    seq.value = 8.0;
    EXPECT_FALSE(contracts::verify_proof(seq));
}

TEST(ProofRules, AltTakesMaximum) {
    ProofNode alt;
    alt.rule = ProofRule::kAlt;
    alt.children = {leaf(2.0), leaf(7.0), leaf(3.0)};
    alt.value = 7.0;
    EXPECT_TRUE(contracts::verify_proof(alt));
    alt.value = 12.0;  // claiming looser-than-max is still wrong arithmetic
    EXPECT_FALSE(contracts::verify_proof(alt));
}

TEST(ProofRules, LoopMultipliesByParam) {
    ProofNode loop;
    loop.rule = ProofRule::kLoop;
    loop.param = 10.0;
    loop.children = {leaf(4.0)};
    loop.value = 40.0;
    EXPECT_TRUE(contracts::verify_proof(loop));
    loop.param = 9.0;
    EXPECT_FALSE(contracts::verify_proof(loop));
    loop.param = 10.0;
    loop.children.push_back(leaf(1.0));  // loop must have exactly one child
    EXPECT_FALSE(contracts::verify_proof(loop));
}

TEST(ProofRules, ScaleMultipliesByParam) {
    ProofNode scale;
    scale.rule = ProofRule::kScale;
    scale.param = 1e-6;
    scale.children = {leaf(3.0)};
    scale.value = 3e-6;
    EXPECT_TRUE(contracts::verify_proof(scale));
}

TEST(ProofRules, CallSumsOverheadAndBody) {
    ProofNode call;
    call.rule = ProofRule::kCall;
    ProofNode overhead;
    overhead.rule = ProofRule::kOverhead;
    overhead.value = 4.0;
    call.children = {overhead, leaf(100.0)};
    call.value = 104.0;
    EXPECT_TRUE(contracts::verify_proof(call));
}

TEST(ProofRules, MeasuredLeafAccepted) {
    const auto node = contracts::measured_leaf(0.01, "profiled");
    EXPECT_TRUE(contracts::verify_proof(node));
    EXPECT_EQ(node.rule, ProofRule::kMeasured);
}

TEST(ProofRules, AllRulesHaveNames) {
    for (int r = 0; r <= static_cast<int>(ProofRule::kStaticLeak); ++r) {
        const auto name =
            contracts::rule_name(static_cast<ProofRule>(r));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
    for (int p = 0; p <= static_cast<int>(contracts::Property::kSecurity);
         ++p) {
        EXPECT_NE(contracts::property_name(
                      static_cast<contracts::Property>(p)),
                  "?");
    }
}

// Tamper matrix: corrupting any single node of a real proof tree must be
// detected by the independent checker.
class ProofTamper : public ::testing::TestWithParam<int> {};

void collect_nodes(ProofNode& node, std::vector<ProofNode*>& out) {
    out.push_back(&node);
    for (auto& child : node.children) collect_nodes(child, out);
}

TEST_P(ProofTamper, AnySingleNodeCorruptionDetected) {
    const auto app = usecases::make_camera_pill_app();
    const auto& core = app.platform.cores[0];
    auto proof = contracts::build_energy_proof_joules(app.program,
                                                      "pill_compress", core,
                                                      1);
    ASSERT_TRUE(contracts::verify_proof(proof));

    std::vector<ProofNode*> nodes;
    collect_nodes(proof, nodes);
    const auto index =
        static_cast<std::size_t>(GetParam()) % nodes.size();
    const double original_bound = proof.value;
    ProofNode* target = nodes[index];
    // The security property of the checker: no single-node corruption can
    // TIGHTEN the certified bound undetected.  (Inflating a non-maximal
    // alternative branch passes the checker but leaves the root bound
    // intact — the proof still proves a sound bound, so that is fine.)
    target->value = target->value * 0.5 + 1.0;
    const bool detected = !contracts::verify_proof(proof);
    EXPECT_TRUE(detected || proof.value >= original_bound - 1e-12)
        << "corruption at node " << index << " (rule "
        << contracts::rule_name(target->rule)
        << ") tightened the bound undetected";
}

INSTANTIATE_TEST_SUITE_P(TamperPositions, ProofTamper,
                         ::testing::Range(0, 24));

TEST(Certificate, AllHoldAndFullyStaticSemantics) {
    contracts::Certificate certificate;
    certificate.app = "a";
    certificate.platform = "p";
    EXPECT_TRUE(certificate.all_hold());  // vacuous truth
    EXPECT_TRUE(certificate.fully_static());

    contracts::ContractResult holds;
    holds.holds = true;
    holds.proof = contracts::measured_leaf(1.0, "m");
    holds.analysed = 1.0;
    holds.budget = 2.0;
    holds.measured_only = true;
    certificate.results.push_back(holds);
    EXPECT_TRUE(certificate.all_hold());
    EXPECT_FALSE(certificate.fully_static());

    contracts::ContractResult fails = holds;
    fails.holds = false;
    fails.analysed = 3.0;
    certificate.results.push_back(fails);
    EXPECT_FALSE(certificate.all_hold());
}

TEST(Certificate, VerifyRejectsInconsistentHoldsFlag) {
    contracts::ContractResult result;
    result.poi = "x";
    result.property = contracts::Property::kTime;
    result.budget = 1.0;
    result.analysed = 2.0;
    result.holds = true;  // lie: 2.0 > 1.0
    result.proof = contracts::measured_leaf(2.0, "m");
    contracts::Certificate certificate;
    certificate.results.push_back(result);
    EXPECT_FALSE(contracts::verify_certificate(certificate));
}

TEST(Certificate, VerifyRejectsAnalysedProofMismatch) {
    contracts::ContractResult result;
    result.budget = 10.0;
    result.analysed = 1.0;
    result.holds = true;
    result.proof = contracts::measured_leaf(5.0, "m");  // proof says 5
    contracts::Certificate certificate;
    certificate.results.push_back(result);
    EXPECT_FALSE(contracts::verify_certificate(certificate));
}

TEST(Certificate, TextRenderingContainsVerdictAndUnits) {
    const auto app = usecases::make_camera_pill_app();
    const auto& core = app.platform.cores[0];
    contracts::ContractInput input;
    input.poi = "delta";
    input.function = "pill_delta";
    input.program = &app.program;
    input.core = &core;
    input.opp_index = 2;
    input.time_budget_s = 1.0;
    input.energy_budget_j = 1.0;
    const auto certificate =
        contracts::check_contracts("pill", "camera-pill", {input});
    const auto text = certificate.to_text();
    EXPECT_NE(text.find("TeamPlay ETS Certificate"), std::string::npos);
    EXPECT_NE(text.find("ALL CONTRACTS HOLD"), std::string::npos);
    EXPECT_NE(text.find("delta.time"), std::string::npos);
    EXPECT_NE(text.find("delta.energy"), std::string::npos);
    EXPECT_NE(text.find("statically proven"), std::string::npos);
}

TEST(Contracts, MissingStaticEvidenceThrows) {
    contracts::ContractInput input;
    input.poi = "x";
    input.function = "f";
    input.time_budget_s = 1.0;
    input.measured_only = false;  // static proof requested, no program/core
    EXPECT_THROW(
        (void)contracts::check_contracts("a", "p", {input}),
        std::invalid_argument);
}

TEST(Contracts, SecurityContractUsesLeakageProxy) {
    contracts::ContractInput input;
    input.poi = "crypto";
    input.function = "f";
    input.measured_only = true;
    input.leakage_budget = 2.0;
    input.leakage_proxy = 4.0;  // too leaky
    const auto certificate = contracts::check_contracts("a", "p", {input});
    ASSERT_EQ(certificate.results.size(), 1u);
    EXPECT_EQ(certificate.results[0].property,
              contracts::Property::kSecurity);
    EXPECT_FALSE(certificate.results[0].holds);
    EXPECT_TRUE(contracts::verify_certificate(certificate));
}

TEST(Contracts, NegativeBudgetsMeanNoContract) {
    contracts::ContractInput input;
    input.poi = "x";
    input.function = "f";
    input.measured_only = true;
    // All budgets negative -> nothing to check.
    const auto certificate = contracts::check_contracts("a", "p", {input});
    EXPECT_TRUE(certificate.results.empty());
    EXPECT_TRUE(certificate.all_hold());
}

TEST(Contracts, TimeProofRejectsComplexCore) {
    const auto app = usecases::make_camera_pill_app();
    const auto tk1 = platform::apalis_tk1();
    EXPECT_THROW((void)contracts::build_time_proof_cycles(
                     app.program, "pill_delta", tk1.cores[0].model),
                 std::invalid_argument);
}

TEST(Contracts, ProofForUnknownFunctionThrows) {
    const auto app = usecases::make_camera_pill_app();
    EXPECT_THROW((void)contracts::build_time_proof_cycles(
                     app.program, "ghost", app.platform.cores[0].model),
                 std::invalid_argument);
}

}  // namespace
