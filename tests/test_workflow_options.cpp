// Workflow option plumbing and report invariants: glue style overrides,
// engine selection, security hint enforcement, RTA attachment, front
// invariants.
#include <gtest/gtest.h>

#include "core/workflow.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

TEST(WorkflowOptions, GlueStyleOverride) {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    options.glue_style = coordination::GlueStyle::kRtems;
    const auto report = workflow.run(spec, options);
    EXPECT_NE(report.glue_code.find("rtems"), std::string::npos);

    options.glue_style = coordination::GlueStyle::kPosix;
    const auto report2 = workflow.run(spec, options);
    EXPECT_NE(report2.glue_code.find("pthread"), std::string::npos);
}

TEST(WorkflowOptions, EngineSelectionAllProduceValidReports) {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    for (const auto engine :
         {compiler::MultiCriteriaCompiler::Engine::kFpa,
          compiler::MultiCriteriaCompiler::Engine::kNsga2,
          compiler::MultiCriteriaCompiler::Engine::kWeightedSum}) {
        core::WorkflowOptions options;
        options.compiler.engine = engine;
        options.compiler.population = 4;
        options.compiler.iterations = 4;
        const auto report = workflow.run(spec, options);
        EXPECT_TRUE(report.schedule.feasible);
        EXPECT_TRUE(contracts::verify_certificate(report.certificate));
        EXPECT_FALSE(report.fronts.empty());
    }
}

TEST(WorkflowOptions, SecurityHintForcesCountermeasure) {
    // Rewrite the pill CSL to demand ladderisation on the encrypt task.
    const auto app = usecases::make_camera_pill_app();
    std::string csl_text = app.csl_source;
    const auto pos = csl_text.find("security auto");
    ASSERT_NE(pos, std::string::npos);
    csl_text.replace(pos, std::string("security auto").size(),
                     "security ladder");
    const auto spec = csl::parse(csl_text);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    const auto report = workflow.run(spec, options);
    for (const auto& front : report.fronts) {
        if (front.task != "encrypt") continue;
        for (const auto& version : front.versions)
            EXPECT_EQ(version.config.security,
                      compiler::SecurityLevel::kLadder);
    }
}

TEST(WorkflowReport, RtaAttachedForPeriodicSingleCoreApps) {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    const auto report = workflow.run(spec, options);
    // All five pill tasks are periodic and pinned to the M0 -> RM analysis
    // for that core must be present and pass.
    ASSERT_FALSE(report.rta.empty());
    for (const auto& [core_index, result] : report.rta) {
        EXPECT_TRUE(result.schedulable);
        for (const double response : result.response_times)
            EXPECT_GT(response, 0.0);
    }
}

TEST(WorkflowReport, FrontsAreMutuallyNonDominated) {
    const auto app = usecases::make_parking_app(true);
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 8;
    options.compiler.iterations = 8;
    const auto report = workflow.run(spec, options);
    for (const auto& front : report.fronts) {
        for (const auto& a : front.versions)
            for (const auto& b : front.versions) {
                if (&a == &b) continue;
                const bool dominates =
                    a.time_s <= b.time_s && a.energy_j <= b.energy_j &&
                    a.leakage <= b.leakage &&
                    (a.time_s < b.time_s || a.energy_j < b.energy_j ||
                     a.leakage < b.leakage);
                EXPECT_FALSE(dominates)
                    << front.task << ": " << a.config.label()
                    << " dominates " << b.config.label();
            }
    }
}

TEST(WorkflowReport, ChosenVersionResolvesEveryScheduledTask) {
    const auto app = usecases::make_camera_pill_app();
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    const auto report = workflow.run(spec, options);
    for (const auto& entry : report.schedule.entries) {
        const auto* version = report.chosen_version(entry.task);
        ASSERT_NE(version, nullptr) << entry.task;
        // The schedule's budgeted duration equals the version's WCET.
        EXPECT_NEAR(entry.finish_s - entry.start_s, version->wcet_s, 1e-12);
    }
    EXPECT_EQ(report.chosen_version("nonexistent"), nullptr);
}

TEST(WorkflowReport, SummaryMentionsEveryTask) {
    const auto app = usecases::make_space_app();
    const auto spec = csl::parse(app.csl_source);
    core::PredictableWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.compiler.population = 4;
    options.compiler.iterations = 4;
    const auto report = workflow.run(spec, options);
    const auto text = report.summary();
    for (const auto& task : spec.tasks)
        EXPECT_NE(text.find(task.name), std::string::npos) << task.name;
}

TEST(ComplexWorkflowOptions, ProfileRunsControlSampleCount) {
    const auto app = usecases::make_uav_app();
    const auto spec = csl::parse(app.csl_source);
    core::ComplexWorkflow workflow(app.program, app.platform);
    core::WorkflowOptions options;
    options.profile_runs = 4;
    const auto report = workflow.run(spec, options);
    // Every (task, class, opp) combination received a profiled version.
    for (const auto& task : report.graph.tasks) {
        for (const auto& [cls, versions] : task.versions) {
            EXPECT_FALSE(versions.empty());
            for (const auto& version : versions) {
                EXPECT_GT(version.time_s, 0.0);
                EXPECT_NE(version.note.find("profiled"), std::string::npos);
            }
        }
    }
}

}  // namespace
