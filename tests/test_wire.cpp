// Wire codec (core/wire.hpp): exhaustive field round-trips for all six
// message types (including full IR programs inside compiled task versions
// and whole ScenarioRequest/ToolchainReport frames), property-style
// randomised keys/telemetry with a seeded RNG, strict rejection of
// truncated/corrupted/trailing-garbage buffers, and the version-mismatch
// error path.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "compiler/multi_criteria.hpp"
#include "coordination/glue.hpp"
#include "coordination/scheduler.hpp"
#include "core/scenario_engine.hpp"
#include "core/wire.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;
using core::wire::Buffer;

core::EvaluationKey sample_key() {
    core::EvaluationKey key;
    key.structural_fp = 0x0123456789ABCDEFULL;
    key.entry = "uav_detect";
    key.core_class = "big";
    key.opp_index = 3;
    key.kind = core::AnalysisKind::kProfile;
    key.params = 0xFEDCBA9876543210ULL;
    return key;
}

/// FNV-1a 64, mirrored from the codec so tests can re-seal patched frames.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size) {
    std::uint64_t value = 14695981039346656037ULL;
    for (std::size_t i = 0; i < size; ++i) {
        value ^= data[i];
        value *= 1099511628211ULL;
    }
    return value;
}

void reseal(Buffer& buffer) {
    const std::uint64_t checksum =
        fnv1a(buffer.data(), buffer.size() - 8);
    for (int i = 0; i < 8; ++i)
        buffer[buffer.size() - 8 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(checksum >> (8 * i));
}

// -- EvaluationKey ------------------------------------------------------------

TEST(Wire, KeyRoundTripsEveryField) {
    const auto key = sample_key();
    const auto decoded = core::wire::decode_key(core::wire::encode(key));
    EXPECT_EQ(decoded.structural_fp, key.structural_fp);
    EXPECT_EQ(decoded.entry, key.entry);
    EXPECT_EQ(decoded.core_class, key.core_class);
    EXPECT_EQ(decoded.opp_index, key.opp_index);
    EXPECT_EQ(decoded.kind, key.kind);
    EXPECT_EQ(decoded.params, key.params);
    EXPECT_EQ(decoded, key);  // spaceship: full tuple equality
}

TEST(Wire, RandomisedKeysRoundTrip) {
    std::mt19937_64 rng(20260729);  // seeded: failures are reproducible
    std::uniform_int_distribution<std::uint64_t> word;
    std::uniform_int_distribution<int> kind(0, 2);
    std::uniform_int_distribution<int> length(0, 40);
    std::uniform_int_distribution<int> byte(0, 255);
    const auto random_text = [&] {
        std::string text(static_cast<std::size_t>(length(rng)), '\0');
        for (auto& c : text) c = static_cast<char>(byte(rng));
        return text;
    };
    for (int i = 0; i < 200; ++i) {
        core::EvaluationKey key;
        key.structural_fp = word(rng);
        key.entry = random_text();
        key.core_class = random_text();
        key.opp_index = word(rng);
        key.kind = static_cast<core::AnalysisKind>(kind(rng));
        key.params = word(rng);
        const auto buffer = core::wire::encode(key);
        EXPECT_EQ(core::wire::decode_key(buffer), key);
        // encode(decode(b)) == b, byte for byte.
        EXPECT_EQ(core::wire::encode(core::wire::decode_key(buffer)),
                  buffer);
    }
}

// -- EvaluationResult ---------------------------------------------------------

TEST(Wire, ResultWithCompiledFrontRoundTrips) {
    // A real compiled version, so the embedded transformed program is a
    // genuine pass-pipeline product, not a toy tree.
    const auto pill = usecases::make_camera_pill_app();
    const compiler::MultiCriteriaCompiler mcc(pill.program,
                                              pill.platform.cores[0]);
    compiler::PassConfig config;
    config.unroll_factor = 2;
    config.security = compiler::SecurityLevel::kBalance;
    auto version = mcc.compile("pill_compress", config);

    core::EvaluationResult result;
    result.front =
        std::make_shared<const std::vector<compiler::TaskVersion>>(
            std::vector<compiler::TaskVersion>{version});
    result.leakage = 0.25;

    const auto buffer = core::wire::encode(result);
    const auto decoded = core::wire::decode_result(buffer);
    ASSERT_NE(decoded.front, nullptr);
    ASSERT_EQ(decoded.front->size(), 1U);
    const auto& out = decoded.front->front();
    EXPECT_EQ(out.config.unroll_factor, version.config.unroll_factor);
    EXPECT_EQ(out.config.security, version.config.security);
    EXPECT_EQ(out.config.opp_index, version.config.opp_index);
    EXPECT_EQ(out.analysable, version.analysable);
    EXPECT_EQ(out.wcet_s, version.wcet_s);
    EXPECT_EQ(out.wcec_j, version.wcec_j);
    EXPECT_EQ(out.time_s, version.time_s);
    EXPECT_EQ(out.energy_j, version.energy_j);
    EXPECT_EQ(out.energy_dynamic_j, version.energy_dynamic_j);
    EXPECT_EQ(out.leakage, version.leakage);
    EXPECT_EQ(out.static_instrs, version.static_instrs);
    ASSERT_NE(out.program, nullptr);
    // The transformed program survives byte-for-byte (canonical dump).
    EXPECT_EQ(ir::to_string(*out.program), ir::to_string(*version.program));
    EXPECT_EQ(decoded.leakage, result.leakage);
    EXPECT_EQ(core::wire::encode(decoded), buffer);
}

TEST(Wire, ResultWithProfileRoundTrips) {
    core::EvaluationResult result;
    result.profile.function = "uav_detect";
    result.profile.runs = 25;
    result.profile.time_s = {1.5e-3, 2.5e-5, 1.9e-3, 2.0e-3};
    result.profile.energy_j = {3.0e-4, 1.0e-6, 3.2e-4, 3.3e-4};
    result.profile.cycles = {1.2e6, 3.4e3, 1.3e6, 1.31e6};
    result.leakage = 1.75;

    const auto buffer = core::wire::encode(result);
    const auto decoded = core::wire::decode_result(buffer);
    EXPECT_EQ(decoded.front, nullptr);
    EXPECT_EQ(decoded.profile.function, result.profile.function);
    EXPECT_EQ(decoded.profile.runs, result.profile.runs);
    EXPECT_EQ(decoded.profile.time_s.mean, result.profile.time_s.mean);
    EXPECT_EQ(decoded.profile.time_s.stddev, result.profile.time_s.stddev);
    EXPECT_EQ(decoded.profile.time_s.p95, result.profile.time_s.p95);
    EXPECT_EQ(decoded.profile.time_s.max, result.profile.time_s.max);
    EXPECT_EQ(decoded.profile.energy_j.mean, result.profile.energy_j.mean);
    EXPECT_EQ(decoded.profile.cycles.max, result.profile.cycles.max);
    EXPECT_EQ(decoded.leakage, result.leakage);
    EXPECT_EQ(core::wire::encode(decoded), buffer);
}

// -- StageTelemetry / BatchStats ---------------------------------------------

TEST(Wire, TelemetryRoundTrips) {
    core::StageTelemetry telemetry;
    telemetry.record("parse", 0.001);
    telemetry.record("parse", 0.003);
    telemetry.record("analyse", 0.25);
    telemetry.record("certify", 0.0005);

    const auto buffer = core::wire::encode(telemetry);
    const auto decoded = core::wire::decode_telemetry(buffer);
    ASSERT_EQ(decoded.stages().size(), telemetry.stages().size());
    for (const auto& [name, stage] : telemetry.stages()) {
        const auto& out = decoded.stages().at(name);
        EXPECT_EQ(out.count, stage.count);
        EXPECT_EQ(out.total_s, stage.total_s);
        EXPECT_EQ(out.max_s, stage.max_s);
    }
    EXPECT_EQ(core::wire::encode(decoded), buffer);

    const core::StageTelemetry empty;
    EXPECT_TRUE(core::wire::decode_telemetry(core::wire::encode(empty))
                    .empty());
}

TEST(Wire, RandomisedTelemetryRoundTrips) {
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> seconds(0.0, 2.0);
    std::uniform_int_distribution<int> stages(0, 12);
    std::uniform_int_distribution<int> laps(1, 20);
    for (int i = 0; i < 50; ++i) {
        core::StageTelemetry telemetry;
        const int n = stages(rng);
        for (int s = 0; s < n; ++s) {
            const std::string name = "stage_" + std::to_string(s);
            const int k = laps(rng);
            for (int lap = 0; lap < k; ++lap)
                telemetry.record(name, seconds(rng));
        }
        const auto buffer = core::wire::encode(telemetry);
        EXPECT_EQ(core::wire::encode(core::wire::decode_telemetry(buffer)),
                  buffer);
    }
}

TEST(Wire, BatchStatsRoundTrip) {
    core::BatchStats stats;
    stats.scenarios = 12;
    stats.workers = 5;
    stats.wall_s = 1.25;
    stats.scenarios_per_s = 9.6;
    stats.cache.hits = 100;
    stats.cache.misses = 40;
    stats.cache.evictions = 7;
    stats.cache.store_hits = 21;
    stats.cache.store_misses = 19;
    stats.cache.spills = 9;
    stats.cache.store_rejects = 2;
    stats.cache.remote_hits = 14;
    stats.cache.remote_misses = 3;
    stats.cache.entries = 33;
    stats.cache.resident_cost = 112.5;
    stats.stage_telemetry.record("schedule", 0.125);
    stats.admission.classes[0] = {.submitted = 9,
                                  .admitted = 8,
                                  .rejected = 1,
                                  .shed = 2,
                                  .completed = 5,
                                  .cancelled = 1,
                                  .failed = 0,
                                  .queue_peak = 4};
    stats.admission.classes[2].submitted = 3;
    stats.admission.classes[2].shed = 3;
    stats.admission.remote_failures = {0, 7, 1};

    const auto buffer = core::wire::encode(stats);
    const auto decoded = core::wire::decode_batch_stats(buffer);
    EXPECT_EQ(decoded.scenarios, stats.scenarios);
    EXPECT_EQ(decoded.workers, stats.workers);
    EXPECT_EQ(decoded.wall_s, stats.wall_s);
    EXPECT_EQ(decoded.scenarios_per_s, stats.scenarios_per_s);
    EXPECT_EQ(decoded.cache.hits, stats.cache.hits);
    EXPECT_EQ(decoded.cache.misses, stats.cache.misses);
    EXPECT_EQ(decoded.cache.evictions, stats.cache.evictions);
    EXPECT_EQ(decoded.cache.store_hits, stats.cache.store_hits);
    EXPECT_EQ(decoded.cache.store_misses, stats.cache.store_misses);
    EXPECT_EQ(decoded.cache.spills, stats.cache.spills);
    EXPECT_EQ(decoded.cache.store_rejects, stats.cache.store_rejects);
    EXPECT_EQ(decoded.cache.remote_hits, stats.cache.remote_hits);
    EXPECT_EQ(decoded.cache.remote_misses, stats.cache.remote_misses);
    EXPECT_EQ(decoded.cache.entries, stats.cache.entries);
    EXPECT_EQ(decoded.cache.resident_cost, stats.cache.resident_cost);
    EXPECT_EQ(decoded.stage_telemetry.stages().at("schedule").count, 1U);
    EXPECT_EQ(decoded.admission.classes[0].submitted, 9U);
    EXPECT_EQ(decoded.admission.classes[0].rejected, 1U);
    EXPECT_EQ(decoded.admission.classes[0].shed, 2U);
    EXPECT_EQ(decoded.admission.classes[0].queue_peak, 4U);
    EXPECT_EQ(decoded.admission.classes[2].shed, 3U);
    EXPECT_EQ(decoded.admission.remote_failures,
              (std::vector<std::uint64_t>{0, 7, 1}));
    EXPECT_EQ(core::wire::encode(decoded), buffer);
}

// -- strictness ---------------------------------------------------------------

TEST(Wire, EveryTruncationIsRejected) {
    const auto buffer = core::wire::encode(sample_key());
    for (std::size_t length = 0; length < buffer.size(); ++length) {
        const std::span<const std::uint8_t> prefix(buffer.data(), length);
        EXPECT_THROW((void)core::wire::decode_key(prefix),
                     core::wire::WireFormatError)
            << "prefix length " << length;
    }
}

TEST(Wire, EveryByteFlipIsRejected) {
    const auto pristine = core::wire::encode(sample_key());
    for (std::size_t index = 0; index < pristine.size(); ++index) {
        Buffer corrupted = pristine;
        corrupted[index] ^= 0x5A;
        // Always a format error (magic or checksum), never a bogus decode
        // and never a misreported version skew.
        EXPECT_THROW((void)core::wire::decode_key(corrupted),
                     core::wire::WireFormatError)
            << "flipped byte " << index;
    }
}

TEST(Wire, VersionMismatchIsItsOwnError) {
    Buffer future = core::wire::encode(sample_key());
    future[4] = static_cast<std::uint8_t>(core::wire::kVersion + 1);
    future[5] = 0;
    reseal(future);  // structurally intact, just from a newer generation
    try {
        (void)core::wire::decode_key(future);
        FAIL() << "expected WireVersionError";
    } catch (const core::wire::WireVersionError& error) {
        EXPECT_EQ(error.found(), core::wire::kVersion + 1);
    }
}

TEST(Wire, MessageKindMismatchIsRejected) {
    const core::StageTelemetry telemetry;
    const auto buffer = core::wire::encode(telemetry);
    EXPECT_THROW((void)core::wire::decode_key(buffer),
                 core::wire::WireFormatError);
    EXPECT_THROW(
        (void)core::wire::decode_batch_stats(core::wire::encode(
            sample_key())),
        core::wire::WireFormatError);
}

TEST(Wire, TrailingGarbageIsRejected) {
    Buffer padded = core::wire::encode(sample_key());
    padded.insert(padded.end() - 8, 0x00);  // extra payload byte
    reseal(padded);
    EXPECT_THROW((void)core::wire::decode_key(padded),
                 core::wire::WireFormatError);
}

TEST(Wire, ForgedSequenceCountIsRejected) {
    // Patch the front-count field of a result message to a huge value: the
    // decoder must reject it from the remaining-bytes bound, not allocate.
    core::EvaluationResult result;
    result.front =
        std::make_shared<const std::vector<compiler::TaskVersion>>();
    Buffer forged = core::wire::encode(result);
    // Payload starts after the 7-byte header: flags byte, then the count.
    for (std::size_t i = 8; i < 12; ++i) forged[i] = 0xFF;
    reseal(forged);
    EXPECT_THROW((void)core::wire::decode_result(forged),
                 core::wire::WireFormatError);
}

TEST(Wire, NonCanonicalFunctionOrderIsRejected) {
    // The encoder emits program functions in sorted name order; a
    // checksum-valid buffer with names out of order (or duplicated) must
    // be rejected, or encode(decode(b)) == b would silently fail.
    ir::Program program;
    program.memory_words = 64;
    for (const char* name : {"fa", "fb"}) {
        ir::FunctionBuilder b(name, 0);
        b.ret(b.imm(7));
        program.add(b.build());
    }
    compiler::TaskVersion version;
    version.program = std::make_shared<const ir::Program>(program);
    core::EvaluationResult result;
    result.front =
        std::make_shared<const std::vector<compiler::TaskVersion>>(
            std::vector<compiler::TaskVersion>{version});

    Buffer swapped = core::wire::encode(result);
    // The two bodies are identical, so swapping just the 2-byte names
    // yields a structurally valid payload whose names are unsorted.
    bool patched = false;
    for (std::size_t i = 0; i + 1 < swapped.size() - 8; ++i) {
        if (swapped[i] == 'f' && swapped[i + 1] == 'a') {
            swapped[i + 1] = 'b';
            patched = true;
        } else if (patched && swapped[i] == 'f' && swapped[i + 1] == 'b') {
            swapped[i + 1] = 'a';
            break;
        }
    }
    ASSERT_TRUE(patched);
    reseal(swapped);
    EXPECT_THROW((void)core::wire::decode_result(swapped),
                 core::wire::WireFormatError);
}

TEST(Wire, InvalidEnumBytesAreRejected) {
    Buffer bad_kind = core::wire::encode(sample_key());
    // The key's AnalysisKind byte sits 8 bytes before the params u64 and
    // checksum u64 trailer.
    bad_kind[bad_kind.size() - 17] = 0x7F;
    reseal(bad_kind);
    EXPECT_THROW((void)core::wire::decode_key(bad_kind),
                 core::wire::WireFormatError);
}

// -- ScenarioRequest / ToolchainReport frames ---------------------------------

const usecases::UseCaseApp& pill_app() {
    static const usecases::UseCaseApp app =
        usecases::make_camera_pill_app();
    return app;
}

core::ScenarioRequest sample_request() {
    const auto& app = pill_app();
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.csl_source = app.csl_source;
    request.options.compiler.population = 4;
    request.options.compiler.iterations = 4;
    request.options.compiler.seed = 9;
    request.options.scheduler.seed = 9;
    request.options.scheduler.anneal_iterations = 60;
    request.options.profile_runs = 5;
    request.label = "pill#wire";
    // Non-default priority, no deadline: the v4 tail bytes are exercised
    // by every corruption matrix below while byte-exact round-tripping
    // still holds (only deadline-carrying frames are semantic-only).
    request.priority = core::Priority::kBackground;
    return request;
}

/// Corruption indices for a frame: exhaustive on small frames, and on
/// large ones (request/report frames embed whole IR programs) the full
/// header plus a fixed stride — every structural region still gets hit
/// while the test stays fast.
std::vector<std::size_t> corruption_indices(std::size_t size) {
    std::vector<std::size_t> indices;
    const std::size_t stride = size <= 4096 ? 1 : 131;
    for (std::size_t i = 0; i < size;
         i += (i < 64 || stride == 1 ? 1 : stride))
        indices.push_back(i);
    return indices;
}

TEST(Wire, RequestFrameRoundTripsEveryField) {
    auto request = sample_request();
    request.options.scheduler.objective =
        coordination::Scheduler::Objective::kMakespan;
    request.options.glue_style = coordination::GlueStyle::kRtems;

    const auto buffer = core::wire::encode(request);
    const auto frame = core::wire::decode_request(buffer);
    const auto decoded = frame.request();

    ASSERT_NE(decoded.program, nullptr);
    ASSERT_NE(decoded.platform, nullptr);
    EXPECT_EQ(ir::to_string(*decoded.program),
              ir::to_string(*request.program));
    EXPECT_EQ(decoded.platform->name, request.platform->name);
    ASSERT_EQ(decoded.platform->cores.size(),
              request.platform->cores.size());
    EXPECT_EQ(decoded.platform->cores[0].opps.size(),
              request.platform->cores[0].opps.size());
    EXPECT_EQ(decoded.csl_source, request.csl_source);
    EXPECT_EQ(decoded.spec.has_value(), request.spec.has_value());
    EXPECT_EQ(decoded.label, request.label);
    EXPECT_EQ(decoded.options.compiler.population,
              request.options.compiler.population);
    EXPECT_EQ(decoded.options.compiler.seed,
              request.options.compiler.seed);
    EXPECT_EQ(decoded.options.scheduler.objective,
              request.options.scheduler.objective);
    EXPECT_EQ(decoded.options.scheduler.anneal_iterations,
              request.options.scheduler.anneal_iterations);
    EXPECT_EQ(decoded.options.profile_runs, request.options.profile_runs);
    EXPECT_EQ(decoded.options.glue_style, request.options.glue_style);
    EXPECT_EQ(decoded.priority, core::Priority::kBackground);
    EXPECT_FALSE(decoded.deadline.has_value());
    // encode(decode(b)) == b: the decoded request re-encodes to the exact
    // same frame, so a relayed request is indistinguishable from the
    // original.
    EXPECT_EQ(core::wire::encode(decoded), buffer);
}

TEST(Wire, DeadlineCrossesAsBudgetWithinTolerance) {
    using Clock = std::chrono::steady_clock;
    auto request = sample_request();
    request.priority = core::Priority::kInteractive;
    const auto deadline = Clock::now() + std::chrono::milliseconds(250);
    request.deadline = deadline;

    // The budget is sampled at encode time and re-anchored on the decoding
    // host's clock, so the round trip is semantic: same remaining budget
    // up to the encode->decode latency (the documented wire-v4 exception
    // to byte-exactness — time moved between the two samplings).
    const auto frame =
        core::wire::decode_request(core::wire::encode(request));
    EXPECT_EQ(frame.priority, core::Priority::kInteractive);
    ASSERT_TRUE(frame.deadline.has_value());
    const double skew_s =
        std::abs(std::chrono::duration<double>(*frame.deadline - deadline)
                     .count());
    EXPECT_LT(skew_s, 0.05) << "re-anchored deadline drifted " << skew_s;
    EXPECT_EQ(frame.request().deadline, frame.deadline);

    // A deadline that expired before encoding stays expired after decode
    // (negative budgets are legal: the request died in transit and the
    // receiving admission check refuses it).
    request.deadline = Clock::now() - std::chrono::milliseconds(100);
    const auto expired =
        core::wire::decode_request(core::wire::encode(request));
    ASSERT_TRUE(expired.deadline.has_value());
    EXPECT_LT(*expired.deadline, Clock::now());
}

TEST(Wire, NaNDeadlineBudgetIsRejected) {
    auto request = sample_request();
    request.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(100);
    Buffer patched = core::wire::encode(request);
    // Tail layout with a deadline: [budget f64][checksum u64]; overwrite
    // the budget with a quiet NaN and reseal so only the NaN check fires.
    const std::uint64_t nan_bits = 0x7FF8000000000000ULL;
    for (int i = 0; i < 8; ++i)
        patched[patched.size() - 16 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(nan_bits >> (8 * i));
    reseal(patched);
    EXPECT_THROW((void)core::wire::decode_request(patched),
                 core::wire::WireFormatError);
}

TEST(Wire, InvalidPriorityByteIsRejected) {
    Buffer patched = core::wire::encode(sample_request());
    // Tail layout without a deadline: [priority u8][has_deadline bool]
    // [checksum u64]; a class byte beyond the enum must be refused even
    // under a valid checksum.
    ASSERT_EQ(patched[patched.size() - 10],
              static_cast<std::uint8_t>(core::Priority::kBackground));
    patched[patched.size() - 10] = 0x7F;
    reseal(patched);
    EXPECT_THROW((void)core::wire::decode_request(patched),
                 core::wire::WireFormatError);
}

TEST(Wire, RequestWithoutProgramIsUnencodable) {
    core::ScenarioRequest empty;
    EXPECT_THROW((void)core::wire::encode(empty), std::invalid_argument);
}

TEST(Wire, ReportFrameRoundTrips) {
    // A genuine report from a full engine run, so every sub-codec (task
    // graph with version fronts, schedule, certificate proof trees, RTA
    // map, stage laps) carries production-shaped data.
    core::ScenarioEngine engine;
    const auto report = engine.submit(sample_request()).get();

    const auto buffer = core::wire::encode(report);
    const auto decoded = core::wire::decode_report(buffer);
    EXPECT_EQ(decoded.spec.name, report.spec.name);
    EXPECT_EQ(decoded.platform_name, report.platform_name);
    EXPECT_EQ(decoded.schedule.makespan_s, report.schedule.makespan_s);
    EXPECT_EQ(decoded.schedule.entries.size(),
              report.schedule.entries.size());
    EXPECT_EQ(decoded.certificate.to_text(),
              report.certificate.to_text());
    EXPECT_EQ(decoded.glue_code, report.glue_code);
    EXPECT_EQ(decoded.sequential_glue, report.sequential_glue);
    EXPECT_EQ(decoded.fronts.size(), report.fronts.size());
    EXPECT_EQ(decoded.rta.size(), report.rta.size());
    EXPECT_EQ(decoded.stage_laps.size(), report.stage_laps.size());
    EXPECT_EQ(core::wire::encode(decoded), buffer);
}

TEST(Wire, RequestEveryTruncationIsRejected) {
    const auto buffer = core::wire::encode(sample_request());
    for (const std::size_t length : corruption_indices(buffer.size())) {
        const std::span<const std::uint8_t> prefix(buffer.data(), length);
        EXPECT_THROW((void)core::wire::decode_request(prefix),
                     core::wire::WireFormatError)
            << "prefix length " << length;
    }
}

TEST(Wire, RequestEveryByteFlipIsRejected) {
    const auto pristine = core::wire::encode(sample_request());
    for (const std::size_t index : corruption_indices(pristine.size())) {
        Buffer corrupted = pristine;
        corrupted[index] ^= 0x5A;
        EXPECT_THROW((void)core::wire::decode_request(corrupted),
                     core::wire::WireFormatError)
            << "flipped byte " << index;
    }
}

TEST(Wire, RequestVersionSkewIsItsOwnError) {
    Buffer future = core::wire::encode(sample_request());
    future[4] = static_cast<std::uint8_t>(core::wire::kVersion + 1);
    future[5] = 0;
    reseal(future);
    try {
        (void)core::wire::decode_request(future);
        FAIL() << "expected WireVersionError";
    } catch (const core::wire::WireVersionError& error) {
        EXPECT_EQ(error.found(), core::wire::kVersion + 1);
    }
}

TEST(Wire, RequestTrailingGarbageIsRejected) {
    Buffer padded = core::wire::encode(sample_request());
    padded.insert(padded.end() - 8, 0x00);
    reseal(padded);
    EXPECT_THROW((void)core::wire::decode_request(padded),
                 core::wire::WireFormatError);
}

TEST(Wire, RequestKindConfusionIsRejected) {
    // A key frame is not a request, and a request frame is not a key —
    // whatever the envelope claimed.
    EXPECT_THROW(
        (void)core::wire::decode_request(core::wire::encode(sample_key())),
        core::wire::WireFormatError);
    EXPECT_THROW((void)core::wire::decode_key(
                     core::wire::encode(sample_request())),
                 core::wire::WireFormatError);
}

TEST(Wire, ReportCorruptionMatrixIsRejected) {
    core::ScenarioEngine engine;
    const auto report = engine.submit(sample_request()).get();
    const Buffer pristine = core::wire::encode(report);

    for (const std::size_t length : corruption_indices(pristine.size())) {
        const std::span<const std::uint8_t> prefix(pristine.data(),
                                                   length);
        EXPECT_THROW((void)core::wire::decode_report(prefix),
                     core::wire::WireFormatError)
            << "prefix length " << length;
    }
    for (const std::size_t index : corruption_indices(pristine.size())) {
        Buffer corrupted = pristine;
        corrupted[index] ^= 0x5A;
        EXPECT_THROW((void)core::wire::decode_report(corrupted),
                     core::wire::WireFormatError)
            << "flipped byte " << index;
    }
    Buffer future = pristine;
    future[4] = static_cast<std::uint8_t>(core::wire::kVersion + 1);
    future[5] = 0;
    reseal(future);
    EXPECT_THROW((void)core::wire::decode_report(future),
                 core::wire::WireVersionError);
    Buffer padded = pristine;
    padded.insert(padded.end() - 8, 0x00);
    reseal(padded);
    EXPECT_THROW((void)core::wire::decode_report(padded),
                 core::wire::WireFormatError);
}

}  // namespace
