// Shard fabric transport (net/): loopback round-trips are byte-identical
// to in-process runs, transport faults (mid-frame disconnect, server
// restart, poisoned frames) surface as the retryable cancellation class
// and never poison the server, cancels propagate across the wire, and a
// warm fabric peer serves a cold engine's misses with zero recomputes.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "core/scenario_engine.hpp"
#include "core/sharded_engine.hpp"
#include "net/protocol.hpp"
#include "net/remote_shard.hpp"
#include "net/shard_server.hpp"
#include "usecases/apps.hpp"

namespace {

using namespace teamplay;

const usecases::UseCaseApp& pill_app() {
    static const usecases::UseCaseApp app =
        usecases::make_camera_pill_app();
    return app;
}

/// A light scenario (small search, few profile runs) so each wire round
/// trip stays in the tens of milliseconds.
core::ScenarioRequest light_request(const std::string& label = "pill#net") {
    const auto& app = pill_app();
    core::ScenarioRequest request;
    request.program = &app.program;
    request.platform = &app.platform;
    request.csl_source = app.csl_source;
    request.options.compiler.population = 4;
    request.options.compiler.iterations = 4;
    request.options.compiler.seed = 5;
    request.options.scheduler.seed = 5;
    request.options.scheduler.anneal_iterations = 50;
    request.options.profile_runs = 4;
    request.label = label;
    return request;
}

std::unique_ptr<net::ShardServer> make_server(std::uint16_t port = 0) {
    net::ShardServer::Options options;
    options.port = port;
    options.engine.worker_threads = 2;
    return std::make_unique<net::ShardServer>(std::move(options));
}

net::RemoteShard::Options client_options(std::uint16_t port) {
    net::RemoteShard::Options options;
    options.host = "127.0.0.1";
    options.port = port;
    return options;
}

TEST(Net, EnvelopeRoundTripAndRejects) {
    net::Envelope envelope;
    envelope.id = 0x1122334455667788ULL;
    envelope.type = net::MsgType::kReplyReport;
    envelope.payload = {1, 2, 3, 4, 5};
    const auto bytes = net::encode_envelope(envelope);
    const auto decoded = net::decode_envelope(bytes);
    EXPECT_EQ(decoded.id, envelope.id);
    EXPECT_EQ(decoded.type, envelope.type);
    EXPECT_EQ(decoded.payload, envelope.payload);

    EXPECT_THROW((void)net::decode_envelope(
                     std::span<const std::uint8_t>(bytes.data(), 8)),
                 core::wire::WireFormatError);
    auto bad_type = bytes;
    bad_type[8] = 0xEE;
    EXPECT_THROW((void)net::decode_envelope(bad_type),
                 core::wire::WireFormatError);
}

TEST(Net, LoopbackReportIsByteIdenticalToInProcess) {
    const auto server = make_server();
    net::RemoteShard remote(client_options(server->port()));

    auto report = remote.submit(light_request()).get();

    core::ScenarioEngine local;
    auto expected = local.submit(light_request()).get();

    EXPECT_EQ(report.certificate.to_text(),
              expected.certificate.to_text());
    EXPECT_EQ(report.glue_code, expected.glue_code);
    EXPECT_EQ(report.schedule.makespan_s, expected.schedule.makespan_s);

    // The remote report additionally carries the three per-hop transport
    // laps.  Lap *durations* are wall-clock and differ run to run, so the
    // byte-identity check compares the reports with laps cleared.
    ASSERT_GE(report.stage_laps.size(), 3U);
    EXPECT_EQ(report.stage_laps[report.stage_laps.size() - 3].stage,
              "net/encode");
    EXPECT_EQ(report.stage_laps[report.stage_laps.size() - 2].stage,
              "net/rtt");
    EXPECT_EQ(report.stage_laps[report.stage_laps.size() - 1].stage,
              "net/decode");
    report.stage_laps.clear();
    expected.stage_laps.clear();
    EXPECT_EQ(core::wire::encode(report), core::wire::encode(expected));

    const auto telemetry = remote.transport_telemetry();
    EXPECT_EQ(telemetry.stages().at("net/rtt").count, 1U);
}

TEST(Net, CompletionCallbackFiresOnReaderThread) {
    const auto server = make_server();
    net::RemoteShard remote(client_options(server->port()));
    std::promise<std::string> label;
    auto future = label.get_future();
    auto ticket = remote.submit(
        light_request("pill#callback"),
        [&label](const core::ScenarioOutcome& outcome) {
            label.set_value(outcome.label);
        });
    EXPECT_EQ(future.get(), "pill#callback");
    ticket.wait();
}

TEST(Net, ServerGoneMidScenarioFailsTicketRetryably) {
    auto server = make_server();
    const auto port = server->port();
    net::RemoteShard remote(client_options(port));

    // Tear the server down while the scenario is in flight: its reply
    // socket is shut before the engine drains, so the client sees the
    // connection die mid-exchange.
    auto ticket = remote.submit(light_request());
    server.reset();

    bool retryable = false;
    std::string message;
    try {
        (void)ticket.get();
        // Timing may let the reply win the race with the shutdown; that
        // is not a failure of the fault path, just a fast server.
        retryable = true;
    } catch (const core::CancelledError& e) {
        retryable = true;  // the documented retryable class
        message = e.what();
    } catch (const std::exception& e) {
        message = e.what();
    }
    EXPECT_TRUE(retryable) << message;

    // Retry after restart on the same port: reconnect (with backoff) and
    // the replayed scenario is byte-identical to an in-process run.
    server = make_server(port);
    const auto report = remote.submit(light_request()).get();
    core::ScenarioEngine local;
    EXPECT_EQ(report.certificate.to_text(),
              local.submit(light_request()).get().certificate.to_text());
}

TEST(Net, ServerRestartBetweenRequestsReconnects) {
    auto server = make_server();
    const auto port = server->port();
    net::RemoteShard remote(client_options(port));
    const auto first = remote.submit(light_request()).get();

    server.reset();
    server = make_server(port);

    // The old connection is dead; the next submit reconnects (directly or
    // via the one-resend path) and must produce the same certificate.
    const auto second = remote.submit(light_request()).get();
    EXPECT_EQ(second.certificate.to_text(), first.certificate.to_text());
}

TEST(Net, UnreachableEndpointFailsTicketAfterBackoff) {
    net::RemoteShard::Options options;
    options.host = "127.0.0.1";
    options.port = 1;  // reserved port: nothing listens there
    options.connect_attempts = 2;
    options.initial_backoff_s = 0.001;
    options.max_backoff_s = 0.002;
    net::RemoteShard remote(options);
    auto ticket = remote.submit(light_request());
    EXPECT_THROW((void)ticket.get(), core::CancelledError);
    EXPECT_FALSE(remote.fetch(core::EvaluationKey{}).has_value());
    EXPECT_FALSE(remote.stats().has_value());
}

TEST(Net, MidFrameDisconnectDoesNotPoisonServer) {
    const auto server = make_server();
    {
        // A peer that promises a 100-byte frame, sends 10, and vanishes.
        auto torn = net::Socket::connect_to("127.0.0.1", server->port());
        const std::uint8_t prefix[4] = {100, 0, 0, 0};
        torn.send_all(prefix, 4);
        const std::uint8_t partial[10] = {};
        torn.send_all(partial, 10);
    }
    // The server dropped that connection and keeps serving new ones.
    net::RemoteShard remote(client_options(server->port()));
    EXPECT_TRUE(remote.stats().has_value());
}

TEST(Net, PoisonedPayloadGetsErrorReplyAndConnectionSurvives) {
    const auto server = make_server();
    auto socket = net::Socket::connect_to("127.0.0.1", server->port());

    // A structurally valid envelope whose payload fails strict wire
    // decoding: answered with kReplyError, connection stays up.
    net::Envelope poisoned;
    poisoned.id = 7;
    poisoned.type = net::MsgType::kSubmit;
    poisoned.payload = {0xDE, 0xAD, 0xBE, 0xEF};
    net::send_frame(socket, net::encode_envelope(poisoned));
    auto reply_frame = net::recv_frame(socket);
    ASSERT_TRUE(reply_frame.has_value());
    auto reply = net::decode_envelope(*reply_frame);
    EXPECT_EQ(reply.id, 7U);
    EXPECT_EQ(reply.type, net::MsgType::kReplyError);

    // Same socket, valid request: still served.
    net::Envelope stats;
    stats.id = 8;
    stats.type = net::MsgType::kStats;
    net::send_frame(socket, net::encode_envelope(stats));
    reply_frame = net::recv_frame(socket);
    ASSERT_TRUE(reply_frame.has_value());
    reply = net::decode_envelope(*reply_frame);
    EXPECT_EQ(reply.id, 8U);
    EXPECT_EQ(reply.type, net::MsgType::kReplyStats);
    EXPECT_NO_THROW((void)core::wire::decode_batch_stats(reply.payload));
}

TEST(Net, CancelPropagatesAcrossTheWire) {
    const auto server = make_server();
    net::RemoteShard remote(client_options(server->port()));

    // Saturate both server workers so the victim stays queued long enough
    // for the cancel frame to arrive before it starts.
    auto busy_a = remote.submit(light_request("pill#busy_a"));
    auto busy_b = remote.submit(light_request("pill#busy_b"));
    auto victim_request = light_request("pill#victim");
    victim_request.options.compiler.seed = 99;  // distinct cache keys
    victim_request.options.scheduler.seed = 99;
    auto victim = remote.submit(victim_request);
    victim.cancel();

    bool cancelled = false;
    try {
        (void)victim.get();
    } catch (const core::CancelledError&) {
        cancelled = true;
    }
    // The cancel can lose the race if a worker freed up first; the
    // invariant is that it never errors any other way and the rest of the
    // batch is untouched.
    EXPECT_NO_THROW((void)busy_a.get());
    EXPECT_NO_THROW((void)busy_b.get());
    if (!cancelled) GTEST_SKIP() << "victim completed before the cancel";
}

TEST(Net, WarmPeerServesMissesWithZeroRecomputes) {
    const auto server = make_server();
    net::RemoteShard peer(client_options(server->port()));
    (void)peer.submit(light_request()).get();  // warm the peer's cache

    core::ScenarioEngine local;
    local.set_remote_fetch(
        [&peer](const core::EvaluationKey& key) { return peer.fetch(key); });
    const auto report = local.submit(light_request()).get();

    const auto stats = local.cache_stats();
    EXPECT_GT(stats.remote_hits, 0U);
    EXPECT_EQ(stats.remote_misses, 0U);

    core::ScenarioEngine reference;
    EXPECT_EQ(
        report.certificate.to_text(),
        reference.submit(light_request()).get().certificate.to_text());
}

TEST(Net, ShardedEngineRoutesOverTheFabric) {
    const auto server_a = make_server();
    const auto server_b = make_server();
    core::ShardedScenarioEngine::Options options;
    options.shards = 1;
    options.worker_threads = 2;
    options.remote_endpoints = {
        "127.0.0.1:" + std::to_string(server_a->port()),
        "127.0.0.1:" + std::to_string(server_b->port()),
    };
    core::ShardedScenarioEngine engine(std::move(options));
    EXPECT_EQ(engine.shard_count(), 3U);
    EXPECT_EQ(engine.local_shard_count(), 1U);
    EXPECT_EQ(engine.remote_shard_count(), 2U);

    const auto report = engine.run(light_request());
    core::ScenarioEngine reference;
    EXPECT_EQ(
        report.certificate.to_text(),
        reference.submit(light_request()).get().certificate.to_text());
}

TEST(Net, ServerSideShedRepliesRetryableShedError) {
    const auto server = make_server();
    net::RemoteShard remote(client_options(server->port()));

    // The deadline travels as remaining budget and is already negative at
    // encode time, so the server's admission check refuses it the moment
    // it lands — a deterministic server-side shed, no timing races.
    auto doomed = light_request("pill#doomed");
    doomed.deadline = std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(10);
    std::promise<bool> shed_flag;
    auto shed_future = shed_flag.get_future();
    auto ticket = remote.submit(
        doomed, [&shed_flag](const core::ScenarioOutcome& outcome) {
            shed_flag.set_value(outcome.shed);
        });
    try {
        (void)ticket.get();
        FAIL() << "server-side shed must surface as ShedError";
    } catch (const core::ShedError& e) {
        EXPECT_EQ(e.reason(), core::ShedError::Reason::kRemote);
    }
    EXPECT_TRUE(shed_future.get());

    // Retryable by the generic idiom: the identical request without the
    // deadline completes and matches an in-process run byte for byte.
    const auto report = remote.submit(light_request("pill#doomed")).get();
    core::ScenarioEngine reference;
    EXPECT_EQ(
        report.certificate.to_text(),
        reference.submit(light_request()).get().certificate.to_text());

    // The refusal is visible in the server's stats RPC: AdmissionStats
    // crossed the wire inside BatchStats.
    const auto stats = remote.stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_GE(stats->admission.totals().rejected, 1U);
    EXPECT_GE(stats->admission.totals().submitted, 2U);
    EXPECT_GE(stats->admission.totals().completed, 1U);
}

TEST(Net, HealthyProbeDistinguishesLiveFromUnreachable) {
    const auto server = make_server();
    net::RemoteShard live(client_options(server->port()));
    EXPECT_TRUE(live.healthy());
    EXPECT_TRUE(live.healthy());  // idempotent on the kept connection

    net::RemoteShard::Options options;
    options.host = "127.0.0.1";
    options.port = 1;  // reserved port: nothing listens there
    net::RemoteShard dead(options);
    // The probe caps at one connect attempt: no 5-attempt backoff stall.
    EXPECT_FALSE(dead.healthy());
}

TEST(Net, ConsecutiveRemoteFailureGaugeCountsTransportLoss) {
    core::ShardedScenarioEngine::Options options;
    options.shards = 0;  // pure front-end: everything crosses the wire
    options.remote_endpoints = {"127.0.0.1:1"};
    core::ShardedScenarioEngine engine(std::move(options));

    auto first = engine.submit(light_request("pill#gauge_a"));
    EXPECT_THROW((void)first.get(), core::CancelledError);
    auto second = engine.submit(light_request("pill#gauge_b"));
    EXPECT_THROW((void)second.get(), core::CancelledError);

    const auto admission = engine.admission_stats();
    ASSERT_GE(admission.remote_failures.size(), 1U);
    EXPECT_GE(admission.remote_failures[0], 2U);  // consecutive, summed up
}

TEST(Net, MalformedEndpointsAreRejected) {
    for (const std::string endpoint :
         {"nocolon", ":7791", "host:", "host:0", "host:99999",
          "host:7x91"}) {
        core::ShardedScenarioEngine::Options options;
        options.remote_endpoints = {endpoint};
        EXPECT_THROW(core::ShardedScenarioEngine{std::move(options)},
                     std::invalid_argument)
            << endpoint;
    }
}

}  // namespace
