// Unit tests for the structured IR: builder, clone, printer, validation,
// statistics.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/stats.hpp"
#include "ir/validate.hpp"

namespace {

using namespace teamplay;

ir::Program single(ir::Function fn) {
    ir::Program program;
    program.add(std::move(fn));
    return program;
}

TEST(IrBuilder, StraightLineFunction) {
    ir::FunctionBuilder b("f", 2);
    const auto sum = b.add(b.param(0), b.param(1));
    b.ret(sum);
    const auto fn = b.build();

    EXPECT_EQ(fn.name, "f");
    EXPECT_EQ(fn.param_count, 2);
    EXPECT_GT(fn.reg_count, 2);
    EXPECT_NE(fn.ret_reg, ir::kNoReg);
    ASSERT_NE(fn.body, nullptr);
    EXPECT_EQ(fn.body->kind, ir::NodeKind::kSeq);
}

TEST(IrBuilder, ParamOutOfRangeThrows) {
    ir::FunctionBuilder b("f", 1);
    EXPECT_THROW((void)b.param(1), std::out_of_range);
    EXPECT_THROW((void)b.param(-1), std::out_of_range);
}

TEST(IrBuilder, BuildTwiceThrows) {
    ir::FunctionBuilder b("f", 0);
    (void)b.build();
    EXPECT_THROW((void)b.build(), std::logic_error);
}

TEST(IrBuilder, UnbalancedControlThrows) {
    ir::FunctionBuilder b("f", 0);
    const auto c = b.imm(1);
    b.if_begin(c);
    EXPECT_THROW((void)b.build(), std::logic_error);
}

TEST(IrBuilder, LoopEndWithoutBeginThrows) {
    ir::FunctionBuilder b("f", 0);
    EXPECT_THROW(b.loop_end(), std::logic_error);
}

TEST(IrBuilder, ElseWithoutIfThrows) {
    ir::FunctionBuilder b("f", 0);
    EXPECT_THROW(b.if_else(), std::logic_error);
}

TEST(IrBuilder, LoopBoundDefaultsToTrip) {
    ir::FunctionBuilder b("f", 0);
    (void)b.loop_begin(10);
    b.loop_end();
    const auto fn = b.build();
    const auto& loop = *fn.body->children.at(0);
    EXPECT_EQ(loop.kind, ir::NodeKind::kLoop);
    EXPECT_EQ(loop.trip, 10);
    EXPECT_EQ(loop.bound, 10);
}

TEST(IrBuilder, LoopBoundBelowTripThrows) {
    ir::FunctionBuilder b("f", 0);
    EXPECT_THROW((void)b.loop_begin(10, 5), std::invalid_argument);
}

TEST(IrBuilder, NestedStructuresProduceTree) {
    ir::FunctionBuilder b("f", 1);
    const auto i = b.loop_begin(4);
    const auto cond = b.cmp_lt(i, b.param(0));
    b.if_begin(cond);
    (void)b.add(i, i);
    b.if_else();
    (void)b.sub(i, i);
    b.if_end();
    b.loop_end();
    const auto fn = b.build();

    const auto stats = ir::analyze(fn);
    EXPECT_EQ(stats.loops, 1);
    EXPECT_EQ(stats.branches, 1);
    EXPECT_EQ(stats.max_loop_depth, 1);
}

TEST(IrClone, DeepCopyIsIndependent) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(3);
    (void)b.add(i, i);
    b.loop_end();
    auto fn = b.build();

    const auto copy = fn.body->clone();
    fn.body->children.clear();
    ASSERT_EQ(copy->children.size(), 1u);
    EXPECT_EQ(copy->children[0]->kind, ir::NodeKind::kLoop);
}

TEST(IrFunctionCopy, CopyConstructorClonesBody) {
    ir::FunctionBuilder b("f", 0);
    (void)b.imm(42);
    const auto fn = b.build();
    const ir::Function copy = fn;  // NOLINT(performance-unnecessary-copy-initialization)
    ASSERT_NE(copy.body, nullptr);
    EXPECT_NE(copy.body.get(), fn.body.get());
    EXPECT_EQ(copy.name, fn.name);
}

TEST(IrValidate, WellFormedProgramHasNoErrors) {
    ir::FunctionBuilder callee("leaf", 1);
    callee.ret(callee.add_imm(callee.param(0), 1));
    ir::FunctionBuilder caller("main", 0);
    const auto v = caller.call("leaf", {caller.imm(41)});
    caller.ret(v);

    ir::Program program;
    program.add(callee.build());
    program.add(caller.build());
    EXPECT_TRUE(ir::validate(program).empty());
}

TEST(IrValidate, UndefinedCalleeReported) {
    ir::FunctionBuilder b("main", 0);
    (void)b.call("missing", {});
    const auto program = single(b.build());
    const auto errors = ir::validate(program);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("missing"), std::string::npos);
}

TEST(IrValidate, ArgumentCountMismatchReported) {
    ir::FunctionBuilder callee("leaf", 2);
    ir::FunctionBuilder caller("main", 0);
    (void)caller.call("leaf", {caller.imm(1)});
    ir::Program program;
    program.add(callee.build());
    program.add(caller.build());
    EXPECT_FALSE(ir::validate(program).empty());
}

TEST(IrValidate, RecursionReported) {
    ir::FunctionBuilder a("a", 0);
    (void)a.call("b", {});
    ir::FunctionBuilder b("b", 0);
    (void)b.call("a", {});
    ir::Program program;
    program.add(a.build());
    program.add(b.build());
    const auto errors = ir::validate(program);
    ASSERT_FALSE(errors.empty());
    bool mentions_recursion = false;
    for (const auto& e : errors)
        if (e.find("recursion") != std::string::npos) mentions_recursion = true;
    EXPECT_TRUE(mentions_recursion);
}

TEST(IrValidate, RegisterOutOfRangeReported) {
    ir::FunctionBuilder b("f", 0);
    (void)b.imm(1);
    auto fn = b.build();
    // Corrupt: reference a register beyond reg_count.
    fn.body->children[0]->instrs.push_back(
        ir::Instr{.op = ir::Opcode::kMov, .dst = 0, .a = 99});
    const auto program = single(std::move(fn));
    EXPECT_FALSE(ir::validate(program).empty());
}

TEST(IrValidate, ValidateOrThrowThrowsOnBadProgram) {
    ir::FunctionBuilder b("main", 0);
    (void)b.call("missing", {});
    const auto program = single(b.build());
    EXPECT_THROW(ir::validate_or_throw(program), std::runtime_error);
}

TEST(IrPrinter, ContainsStructure) {
    ir::FunctionBuilder b("demo", 1);
    const auto i = b.loop_begin(8, 16);
    const auto c = b.cmp_eq(i, b.param(0));
    b.if_begin(c);
    (void)b.secret_imm(0xDEAD);
    b.if_end();
    b.loop_end();
    const auto fn = b.build();
    const auto text = ir::to_string(fn);

    EXPECT_NE(text.find("func demo"), std::string::npos);
    EXPECT_NE(text.find("loop"), std::string::npos);
    EXPECT_NE(text.find("bound=16"), std::string::npos);
    EXPECT_NE(text.find("if"), std::string::npos);
    EXPECT_NE(text.find("; secret"), std::string::npos);
}

TEST(IrStats, WeightedCountsMultiplyLoopTrips) {
    ir::FunctionBuilder b("f", 0);
    const auto i = b.loop_begin(10);
    const auto j = b.loop_begin(5);
    (void)b.add(i, j);
    b.loop_end();
    b.loop_end();
    const auto fn = b.build();
    const auto stats = ir::analyze(fn);
    EXPECT_EQ(stats.static_instrs, 1);
    EXPECT_EQ(stats.weighted_instrs, 50);
    EXPECT_EQ(stats.max_loop_depth, 2);
}

TEST(IrStats, ExpandedStatsFollowCalls) {
    ir::FunctionBuilder leaf("leaf", 0);
    (void)leaf.imm(1);
    (void)leaf.imm(2);
    ir::FunctionBuilder main_fn("main", 0);
    (void)main_fn.loop_begin(3);
    (void)main_fn.call("leaf", {});
    main_fn.loop_end();
    ir::Program program;
    program.add(leaf.build());
    program.add(main_fn.build());

    const auto stats =
        ir::analyze_expanded(program, *program.find("main"));
    // leaf body (2 instrs) counted once per call site expansion, weighted by
    // the surrounding loop trip count.
    EXPECT_EQ(stats.weighted_instrs, 6);
}

TEST(IrInstr, OpcodePredicates) {
    EXPECT_TRUE(ir::writes_dst(ir::Opcode::kAdd));
    EXPECT_FALSE(ir::writes_dst(ir::Opcode::kStore));
    EXPECT_FALSE(ir::writes_dst(ir::Opcode::kNop));
    EXPECT_TRUE(ir::reads_b(ir::Opcode::kAdd));
    EXPECT_FALSE(ir::reads_b(ir::Opcode::kMov));
    EXPECT_TRUE(ir::reads_c(ir::Opcode::kSelect));
    EXPECT_FALSE(ir::is_pure(ir::Opcode::kLoad));
    EXPECT_TRUE(ir::is_pure(ir::Opcode::kAdd));
}

TEST(IrInstr, AllOpcodesHaveNames) {
    for (int i = 0; i < ir::kNumOpcodes; ++i) {
        const auto name = ir::opcode_name(static_cast<ir::Opcode>(i));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "?");
    }
}

}  // namespace
